//! Designer tooling beyond the three headline tasks: infeasibility
//! diagnosis, incremental layout exploration, plan analytics and the
//! time–space timeline.
//!
//! Run with: `cargo run --release --example diagnostics`

use etcs::prelude::*;
use etcs::sim;

fn main() -> Result<(), etcs::NetworkError> {
    let scenario = fixtures::running_example();
    let config = EncoderConfig::default();
    let instance = Instance::new(&scenario)?;

    // 1. Why does the schedule fail on pure TTDs?
    match diagnose(&scenario, &VssLayout::pure_ttd(), &config)? {
        Diagnosis::Feasible => println!("diagnosis: schedule works — nothing to explain"),
        Diagnosis::Structural => println!(
            "diagnosis: structural deadlock — no deadline relaxation can help \
             (the paper's Example 2: all four TTDs end up blocked)"
        ),
        Diagnosis::Conflict { names, .. } => {
            println!(
                "diagnosis: conflicting arrival deadlines: {}",
                names.join(", ")
            )
        }
    }

    // 2. Sweep all single-border layouts incrementally on one solver.
    let mut explorer = LayoutExplorer::new(&scenario, &config)?;
    let candidates = explorer.net().border_candidates();
    println!("\nsingle-border layouts that repair the schedule:");
    for &node in &candidates {
        let layout = VssLayout::with_borders([node]);
        if explorer.admits(&layout) {
            println!("  border at v{} -> feasible", node.0);
        }
    }

    // 3. Which borders of the finest layout are load-bearing?
    let full = VssLayout::full(explorer.net());
    let essential = explorer
        .essential_borders(&full)
        .expect("finest layout admits the schedule");
    println!(
        "\nfinest layout: {} borders, of which {} are essential",
        full.num_borders(),
        essential.len()
    );

    // 4. Plan analytics and the time–space diagram of a generated plan.
    let (outcome, _) = generate(&scenario, &config)?;
    let plan = outcome.plan().expect("feasible");
    println!("\nplan statistics:\n{}", sim::plan_stats(&instance, plan));
    println!("time–space diagram (rows = segments, columns = steps):");
    println!("{}", sim::render_timeline(&instance, plan));

    // 5. The ETCS deployment cost/benefit curve: completion time as a
    //    function of the border budget.
    println!("border-budget trade-off (Pareto front):");
    for point in etcs::border_tradeoff(&scenario, &config, 5)? {
        match point.completion_steps {
            Some(steps) => println!("  <= {} border(s): {} steps", point.max_borders, steps),
            None => println!("  <= {} border(s): infeasible", point.max_borders),
        }
    }
    println!();

    // 6. Compare with the greedy fixed-block dispatcher on the same layout.
    let dispatched = sim::dispatch(&instance, &plan.layout);
    match dispatched.completion_steps() {
        Some(steps) => println!(
            "greedy dispatcher on the same layout: completes in {steps} steps \
             (SAT plan: {})",
            plan.completion_steps(&instance)
        ),
        None => println!(
            "greedy dispatcher on the same layout: fails to complete — global \
             lookahead (the SAT plan) is genuinely needed"
        ),
    }
    Ok(())
}
