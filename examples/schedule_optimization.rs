//! Schedule optimisation (the paper's third design task): drop the arrival
//! deadlines and let the solver co-design the VSS layout and the train
//! movements for the earliest possible completion — the paper's Fig. 2.
//!
//! Run with: `cargo run --release --example schedule_optimization`

use etcs::prelude::*;

fn main() -> Result<(), etcs::NetworkError> {
    let config = EncoderConfig::default();
    let scenario = fixtures::running_example();
    let open = scenario.without_arrivals();
    let instance = Instance::new(&open)?;

    println!("=== {} — schedule optimisation ===\n", scenario.name);
    println!("Fig. 1b arrival deadlines:");
    for run in scenario.schedule.runs() {
        println!(
            "  {}: dep {} -> arr {}",
            run.train.name,
            run.departure,
            run.arrival.map(|a| a.to_string()).unwrap_or_default()
        );
    }

    let (outcome, report) = optimize(&scenario, &config)?;
    let DesignOutcome::Solved { plan, costs } = outcome else {
        println!("infeasible within the horizon");
        return Ok(());
    };
    println!(
        "\noptimised: all trains complete within {} steps using {} border(s) \
         ({:.2} s, {} solver calls)",
        costs[0],
        costs[1],
        report.runtime.as_secs_f64(),
        report.solver_calls,
    );

    println!("\nimproved arrival times (the paper's Fig. 2b):");
    for (run, arrival) in scenario
        .schedule
        .runs()
        .iter()
        .zip(plan.arrival_steps(&instance))
    {
        let improved = arrival.map(|s| scenario.time_of(s));
        let original = run.arrival;
        match (improved, original) {
            (Some(new), Some(old)) => {
                let gain = old.as_u64().saturating_sub(new.as_u64());
                println!(
                    "  {}: {} -> {} ({} s earlier)",
                    run.train.name, old, new, gain
                );
            }
            (Some(new), None) => println!("  {}: {}", run.train.name, new),
            _ => println!("  {}: never arrives", run.train.name),
        }
    }

    println!("\nstep-by-step movement of the optimised plan:");
    for p in &plan.plans {
        println!("  {}:", p.name);
        for (t, pos) in p.positions.iter().enumerate() {
            if !pos.is_empty() {
                let names: Vec<&str> = pos.iter().map(|&e| instance.net.edge_name(e)).collect();
                println!("    t{t:<2} {}", names.join(" + "));
            }
        }
    }

    let validation = etcs::sim::validate(&instance, &plan, false);
    println!("\nindependent validation: {validation}");
    Ok(())
}
