//! VSS layout generation across all four case studies (the paper's second
//! design task), comparing the generated layouts with the trivial
//! "border everywhere" answer the paper discusses.
//!
//! Run with: `cargo run --release --example layout_generation`

use etcs::prelude::*;

fn main() -> Result<(), etcs::NetworkError> {
    let config = EncoderConfig::default();
    for scenario in fixtures::all() {
        let instance = Instance::new(&scenario)?;
        let pure_sections = VssLayout::pure_ttd().section_count(&instance.net);
        let full_sections = VssLayout::full(&instance.net).section_count(&instance.net);
        println!("=== {} ===", scenario.name);
        println!("pure TTD: {pure_sections} sections; finest VSS: {full_sections} sections");

        let (outcome, report) = generate(&scenario, &config)?;
        match outcome {
            DesignOutcome::Solved { plan, costs } => {
                println!(
                    "minimal repair: {} virtual border(s) -> {} sections, solved in {:.2} s \
                     with {} solver calls",
                    costs[0],
                    plan.section_count(&instance),
                    report.runtime.as_secs_f64(),
                    report.solver_calls,
                );
                let borders: Vec<String> = plan
                    .layout
                    .borders()
                    .iter()
                    .map(|n| format!("v{}", n.0))
                    .collect();
                println!("borders at: {}", borders.join(", "));
                // Double-check with the verification task.
                let (check, _) = verify(&scenario, &plan.layout, &config)?;
                assert!(check.is_feasible(), "generated layout must verify");
                println!("re-verification with the generated layout: feasible ✓");
            }
            DesignOutcome::Infeasible => {
                println!("no VSS layout can realise this schedule within the horizon");
            }
        }
        println!();
    }
    Ok(())
}
