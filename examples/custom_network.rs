//! Building a custom railway scenario from scratch with the public API:
//! a small single-track branch line with one passing loop, two opposing
//! trains, and all three design tasks.
//!
//! Run with: `cargo run --release --example custom_network`

use etcs::prelude::*;

fn main() -> Result<(), etcs::NetworkError> {
    // 1. Topology: Westhaven — loop station Midford — Easton.
    let km = Meters::from_km;
    let mut b = NetworkBuilder::new();
    let westhaven_end = b.node();
    let p1 = b.node();
    let p2 = b.node();
    let p3 = b.node();
    let easton_end = b.node();

    let west_track = b.track(westhaven_end, p1, km(0.5), "Westhaven");
    let link_w = b.track(p1, p2, km(2.0), "west link");
    let loop_a = b.track(p2, p3, km(1.0), "Midford a");
    let loop_b = b.track(p2, p3, km(1.0), "Midford b");
    let link_e = b.track(p3, easton_end, km(2.5), "east link");

    // 2. TTD sections (the existing trackside detection).
    b.ttd("TTD-W", [west_track, link_w]);
    b.ttd("TTD-Ma", [loop_a]);
    b.ttd("TTD-Mb", [loop_b]);
    b.ttd("TTD-E", [link_e]);

    // 3. Stations.
    let westhaven = b.station("Westhaven", [west_track], true);
    let _midford = b.station("Midford", [loop_a, loop_b], false);
    // Easton is reached via the east link's last segment; model it as its
    // own short track for a crisp arrival condition.
    let network = b.build()?;

    // 4. Two opposing trains; the eastbound one terminates at Midford.
    let schedule = Schedule::new(vec![
        TrainRun::new(
            Train::new("Eastbound", Meters(300), KmPerHour(120)),
            westhaven,
            _midford,
            Seconds::ZERO,
            Some(Seconds::parse_hms("0:03:00").expect("valid")),
        ),
        TrainRun::new(
            Train::new("Second eastbound", Meters(300), KmPerHour(120)),
            westhaven,
            _midford,
            Seconds::from_minutes(1),
            Some(Seconds::parse_hms("0:04:00").expect("valid")),
        ),
    ]);

    let scenario = Scenario {
        name: "Branch line".into(),
        network,
        schedule,
        r_s: km(0.5),
        r_t: Seconds(30),
        horizon: Seconds::from_minutes(5),
    };
    scenario.validate()?;

    let config = EncoderConfig::default();
    let instance = Instance::new(&scenario)?;
    println!(
        "custom scenario: {} segments, {} border candidates, {} steps",
        instance.net.num_edges(),
        instance.net.border_candidates().len(),
        scenario.t_max()
    );

    // Verification, generation, optimisation.
    let (v, _) = verify(&scenario, &VssLayout::pure_ttd(), &config)?;
    println!(
        "pure TTD: {}",
        if v.is_feasible() {
            "feasible"
        } else {
            "infeasible"
        }
    );

    let (g, _) = generate(&scenario, &config)?;
    match &g {
        DesignOutcome::Solved { plan, costs } => {
            println!("generation: {} border(s), layout {}", costs[0], plan.layout);
        }
        DesignOutcome::Infeasible => println!("generation: infeasible"),
    }

    let (o, _) = optimize(&scenario, &config)?;
    if let DesignOutcome::Solved { costs, .. } = o {
        println!(
            "optimisation: complete in {} steps with {} border(s)",
            costs[0], costs[1]
        );
    }
    Ok(())
}
