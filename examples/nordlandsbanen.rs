//! The real-life-inspired Nordlandsbanen case study: 58 stations and 822 km
//! from Trondheim to Bodø, with crossing loops, opposing day trains and
//! freights. Runs all three design tasks and prints a line-occupancy view.
//!
//! Run with: `cargo run --release --example nordlandsbanen`

use etcs::prelude::*;

fn main() -> Result<(), etcs::NetworkError> {
    let scenario = fixtures::nordlandsbanen();
    let config = EncoderConfig::default();
    let instance = Instance::new(&scenario)?;

    println!("=== {} ===", scenario.name);
    println!(
        "{} stations, {:.0} km of track, {} segments at r_s = {} km, {} TTD sections",
        scenario.network.stations().len(),
        scenario.network.total_length().as_km(),
        instance.net.num_edges(),
        scenario.r_s.as_km(),
        scenario.network.ttds().len(),
    );
    println!(
        "{} trains over {} steps of {} each\n",
        scenario.schedule.len(),
        scenario.t_max(),
        scenario.r_t
    );

    let (outcome, report) = verify(&scenario, &VssLayout::pure_ttd(), &config)?;
    println!(
        "verification (pure TTD): {} in {:.2} s",
        if outcome.is_feasible() {
            "feasible"
        } else {
            "INFEASIBLE"
        },
        report.runtime.as_secs_f64()
    );

    let (outcome, report) = generate(&scenario, &config)?;
    let plan = outcome.plan().expect("VSS repairs the timetable");
    println!(
        "generation: {} virtual borders, {} sections, {:.2} s",
        plan.layout.num_borders(),
        plan.section_count(&instance),
        report.runtime.as_secs_f64()
    );

    // Where did the borders go? Group them by the TTD they subdivide.
    println!("\nsubdivided TTD sections:");
    let net = &instance.net;
    let mut by_ttd: std::collections::BTreeMap<&str, usize> = Default::default();
    for &node in plan.layout.borders() {
        let edge = net.edges_at(node)[0];
        let ttd = net.segment(edge).ttd;
        *by_ttd
            .entry(&scenario.network.ttds()[ttd.index()].name)
            .or_default() += 1;
    }
    for (ttd, count) in by_ttd {
        println!("  {ttd}: +{count} border(s)");
    }

    println!("\ntimetable as executed (arrival at destination):");
    for (run, arrival) in scenario
        .schedule
        .runs()
        .iter()
        .zip(plan.arrival_steps(&instance))
    {
        let dest = &scenario.network.stations()[run.destination.index()].name;
        match arrival {
            Some(step) => println!(
                "  {:<14} -> {:<10} at {}",
                run.train.name,
                dest,
                scenario.time_of(step)
            ),
            None => println!("  {:<14} -> {:<10} never arrives", run.train.name, dest),
        }
    }

    let validation = etcs::sim::validate(&instance, plan, true);
    println!("\nindependent validation: {validation}");
    Ok(())
}
