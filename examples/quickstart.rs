//! Quickstart: the paper's running example end to end.
//!
//! Reproduces Example 2 of the paper: the Fig. 1b schedule deadlocks on
//! pure TTD operation, a generated VSS layout repairs it, and schedule
//! optimisation completes the scenario faster still.
//!
//! Run with: `cargo run --release --example quickstart`

use etcs::prelude::*;

fn main() -> Result<(), etcs::NetworkError> {
    let scenario = fixtures::running_example();
    let config = EncoderConfig::default();
    let instance = Instance::new(&scenario)?;

    println!("=== {} ===", scenario.name);
    println!(
        "network: {} TTDs, {} segments at r_s = {} km; {} trains over {} steps of {}\n",
        scenario.network.ttds().len(),
        instance.net.num_edges(),
        scenario.r_s.as_km(),
        scenario.schedule.len(),
        scenario.t_max(),
        scenario.r_t,
    );

    // Task 1: verification on the pure TTD layout.
    let pure = VssLayout::pure_ttd();
    let (outcome, report) = verify(&scenario, &pure, &config)?;
    println!(
        "verification on pure TTD: {} ({} clauses, {:.3} s)",
        if outcome.is_feasible() {
            "feasible"
        } else {
            "INFEASIBLE — the paper's deadlock"
        },
        report.stats.clauses,
        report.runtime.as_secs_f64(),
    );

    // Task 2: VSS layout generation.
    let (designed, report) = generate(&scenario, &config)?;
    let plan = designed.plan().expect("a VSS layout repairs the schedule");
    println!(
        "generation: {} virtual border(s) -> {} sections total ({:.3} s)",
        plan.layout.num_borders(),
        plan.section_count(&instance),
        report.runtime.as_secs_f64(),
    );
    for (name, arrival) in scenario
        .schedule
        .runs()
        .iter()
        .map(|r| r.train.name.clone())
        .zip(plan.arrival_steps(&instance))
    {
        match arrival {
            Some(step) => println!("  {name}: arrives at {}", scenario.time_of(step)),
            None => println!("  {name}: never arrives"),
        }
    }

    // The independent simulator cross-checks the solver's plan.
    let validation = etcs::sim::validate(&instance, plan, true);
    println!("independent validation: {validation}");

    // Task 3: schedule optimisation.
    let (optimised, report) = optimize(&scenario, &config)?;
    if let DesignOutcome::Solved { plan, costs } = &optimised {
        println!(
            "optimisation: {} steps (was {}), {} border(s), {:.3} s",
            costs[0],
            scenario.t_max(),
            costs[1],
            report.runtime.as_secs_f64(),
        );
        let open = Instance::new(&scenario.without_arrivals())?;
        println!("optimised layout: {}", plan.layout);
        println!(
            "independent validation: {}",
            etcs::sim::validate(&open, plan, false)
        );
    }
    Ok(())
}
