#!/usr/bin/env sh
# Repository gate: formatting, lints, tests. Run from the workspace root.
#
#   sh ci/check.sh
#
# Mirrors what CI enforces; keep it dependency-free (rustup components
# only) so it also works in offline containers.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --examples"
cargo build -q --examples

echo "==> cargo test"
cargo test -q --workspace

echo "==> bench_optimize smoke (release, running example + convoy, traced)"
TRACE=target/BENCH_optimize_smoke.trace.jsonl
cargo run --release -q -p etcs-bench --bin bench_optimize -- \
    --smoke --out target/BENCH_optimize_smoke.json --trace "$TRACE"

echo "==> obs trace smoke (JSONL parses, span vocabulary is stable)"
# The bench already cross-checked probe counts, conflict totals and the
# portfolio winner against its own Stats; here we pin the *schema*: the
# documented span/event names must appear in the artifact. This doubles as
# documentation of the event format (see DESIGN.md section 10).
test -s "$TRACE" || { echo "missing trace artifact $TRACE"; exit 1; }
for name in task.optimize task.optimize_incremental task.optimize_portfolio \
        encode probe stage2 sat.solve race portfolio.outcome parallel.worker; do
    grep -q "\"name\":\"$name\"" "$TRACE" || {
        echo "trace $TRACE lacks expected span/event name '$name'"
        exit 1
    }
done

echo "==> bench_serve smoke (release, throughput + cache bit-identity)"
cargo run --release -q -p etcs-bench --bin bench_serve -- \
    --smoke --out target/BENCH_serve_smoke.json
test -s target/BENCH_serve_smoke.json || {
    echo "missing bench artifact target/BENCH_serve_smoke.json"; exit 1;
}

echo "==> served smoke (JSONL batch, warm cache, digests match direct solves)"
SERVE_IN=target/serve_smoke.in.jsonl
SERVE_OUT=target/serve_smoke.out.jsonl
SERVE_TRACE=target/serve_smoke.trace.jsonl
: > "$SERVE_IN"
i=0
while [ $i -lt 10 ]; do
    for kind in verify generate optimize optimize_incremental diagnose; do
        printf '{"id": "%s-%d", "kind": "%s", "scenario": "fixture:running_example"}\n' \
            "$kind" "$i" "$kind" >> "$SERVE_IN"
    done
    i=$((i + 1))
done
printf '{"id": "file-job", "kind": "generate", "scenario": "file:scenarios/branch_line.rail"}\n' \
    >> "$SERVE_IN"
cargo run --release -q -p etcs-serve --bin served -- \
    --input "$SERVE_IN" --output "$SERVE_OUT" --trace "$SERVE_TRACE" --workers 2
# 51 mixed-kind jobs in, 51 "done" responses out, and repeats must have
# been answered from the cache with digests identical to the cold solves.
test "$(wc -l < "$SERVE_OUT")" -eq 51 || {
    echo "served: expected 51 response lines"; exit 1;
}
test "$(grep -c '"status": "done"' "$SERVE_OUT")" -eq 51 || {
    echo "served: not every job completed"; exit 1;
}
grep -q '"cache": "hit"' "$SERVE_OUT" || {
    echo "served: warm cache produced no hits"; exit 1;
}
# Bit-identity: every response for a given kind (same scenario) must carry
# the same payload digest, whether it was a cold solve or a cache hit.
for kind in verify generate optimize optimize_incremental diagnose; do
    n=$(grep "\"id\": \"$kind-" "$SERVE_OUT" \
        | sed 's/.*"digest": "\([0-9a-f]*\)".*/\1/' | sort -u | wc -l)
    test "$n" -eq 1 || {
        echo "served: $kind digests diverged between cache hits and solves"
        exit 1
    }
done
for name in serve.enqueue serve.admit serve.job; do
    grep -q "\"name\":\"$name\"" "$SERVE_TRACE" || {
        echo "serve trace lacks expected span/event name '$name'"
        exit 1
    }
done

echo "==> bench artifacts parse (in-repo JSON parser)"
# Every checked-in BENCH_*.json must be readable by the workspace's own
# dependency-free parser (etcs_obs::json) — a truncated or hand-mangled
# artifact fails here instead of breaking downstream tooling.
cargo run --release -q -p etcs-bench --bin json_check -- BENCH_*.json

echo "==> bench_lazy smoke (release, CEGAR vs eager bit-identity, traced)"
LAZY_TRACE=target/BENCH_lazy_smoke.trace.jsonl
cargo run --release -q -p etcs-bench --bin bench_lazy -- \
    --smoke --out target/BENCH_lazy_smoke.json --trace "$LAZY_TRACE"
test -s target/BENCH_lazy_smoke.json || {
    echo "missing bench artifact target/BENCH_lazy_smoke.json"; exit 1;
}
# The bench itself asserts eager/lazy cost equality and cross-checks the
# trace against its LazyReport; here we pin the span vocabulary and that
# the CEGAR loop actually iterated (a zero-round run would mean the
# relaxation was never refined and the lazy path was not exercised).
for name in task.optimize_lazy lazy.round lazy.refine; do
    grep -q "\"name\":\"$name\"" "$LAZY_TRACE" || {
        echo "lazy trace lacks expected span/event name '$name'"
        exit 1
    }
done
grep -q '"rounds":' target/BENCH_lazy_smoke.json || {
    echo "bench_lazy artifact lacks per-fixture round counts"; exit 1;
}
if grep -q '"rounds": 0' target/BENCH_lazy_smoke.json; then
    echo "bench_lazy smoke fixture converged in 0 rounds (refiner idle)"
    exit 1
fi

echo "==> bench_preprocess smoke (release, certified reduction, traced)"
PP_TRACE=target/BENCH_preprocess_smoke.trace.jsonl
cargo run --release -q -p etcs-bench --bin bench_preprocess -- \
    --smoke --out target/BENCH_preprocess_smoke.json --trace "$PP_TRACE"
test -s target/BENCH_preprocess_smoke.json || {
    echo "missing bench artifact target/BENCH_preprocess_smoke.json"; exit 1;
}
# The bench itself asserts preprocess-on/off optima are bit-identical and
# cross-checks the traced span fields against PreprocessStats; here we pin
# the span vocabulary and that the pass actually removed clauses (a
# zero-reduction run would mean the preprocessor went idle).
grep -q '"name":"sat.preprocess"' "$PP_TRACE" || {
    echo "preprocess trace lacks the sat.preprocess span"
    exit 1
}
grep -q '"geomean_clause_reduction"' target/BENCH_preprocess_smoke.json || {
    echo "bench_preprocess artifact lacks the headline reduction"; exit 1;
}
if grep -q '"geomean_clause_reduction": 0\.0000' target/BENCH_preprocess_smoke.json; then
    echo "bench_preprocess smoke removed no clauses (preprocessor idle)"
    exit 1
fi

echo "==> bench_parallel smoke (release, portfolio races, clause traffic)"
PAR_TRACE=target/BENCH_parallel_smoke.trace.jsonl
cargo run --release -q -p etcs-bench --bin bench_parallel -- \
    --smoke --out target/BENCH_parallel_smoke.json --trace "$PAR_TRACE"
test -s target/BENCH_parallel_smoke.json || {
    echo "missing bench artifact target/BENCH_parallel_smoke.json"; exit 1;
}
# The bench itself asserts optima are bit-identical across thread counts
# and that the 2-thread race imported at least one clause from the pool;
# here we pin the portfolio event vocabulary (DESIGN.md section 14) and
# re-assert the import gate on the artifact so a silently-idle share pool
# cannot pass.
for name in portfolio.share portfolio.import portfolio.winner; do
    grep -q "\"name\":\"$name\"" "$PAR_TRACE" || {
        echo "portfolio trace lacks expected event name '$name'"
        exit 1
    }
done
grep -q '"imported": [1-9]' target/BENCH_parallel_smoke.json || {
    echo "bench_parallel: no smoke race imported a clause (pool idle)"
    exit 1
}

echo "==> bench_corpus smoke (release, corpus sweep + differential gate)"
cargo run --release -q -p etcs-bench --bin bench_corpus -- \
    --smoke --out target/BENCH_corpus_smoke.json
cargo run --release -q -p etcs-bench --bin json_check -- \
    target/BENCH_corpus_smoke.json
# The bench itself asserts that all four solve configurations agree on
# verdict and optima on every corpus instance and that p50<=p90<=max per
# distribution; here we pin the artifact shape: the ordering flag must be
# recorded true and at least two families must report nonzero instance
# counts (an empty sweep would otherwise pass silently).
grep -q '"ordering_ok": true' target/BENCH_corpus_smoke.json || {
    echo "bench_corpus: percentile ordering flag missing or false"; exit 1;
}
fam=$(grep -c '"instances": [1-9]' target/BENCH_corpus_smoke.json)
test "$fam" -ge 2 || {
    echo "bench_corpus: fewer than two families with instances (got $fam)"
    exit 1
}

echo "==> served corpus-exemplar smoke (generated .rail files load end-to-end)"
CORPUS_IN=target/serve_corpus.in.jsonl
CORPUS_OUT=target/serve_corpus.out.jsonl
: > "$CORPUS_IN"
for fam in grid_ladder station_throat moving_block; do
    printf '{"id": "corpus-%s", "kind": "generate", "scenario": "file:scenarios/corpus/%s_small.rail"}\n' \
        "$fam" "$fam" >> "$CORPUS_IN"
done
cargo run --release -q -p etcs-serve --bin served -- \
    --input "$CORPUS_IN" --output "$CORPUS_OUT" --workers 2
test "$(grep -c '"status": "done"' "$CORPUS_OUT")" -eq 3 || {
    echo "served: corpus exemplars did not all solve"; exit 1;
}

echo "==> served --lazy smoke (verdict digests identical to eager solves)"
LAZY_IN=target/serve_lazy.in.jsonl
EAGER_OUT=target/serve_lazy.eager.jsonl
LAZY_OUT=target/serve_lazy.lazy.jsonl
: > "$LAZY_IN"
for kind in verify optimize optimize_incremental; do
    printf '{"id": "%s", "kind": "%s", "scenario": "fixture:running_example"}\n' \
        "$kind" "$kind" >> "$LAZY_IN"
done
cargo run --release -q -p etcs-serve --bin served -- \
    --input "$LAZY_IN" --output "$EAGER_OUT" --workers 2
cargo run --release -q -p etcs-serve --bin served -- \
    --input "$LAZY_IN" --output "$LAZY_OUT" --workers 2 --lazy
test "$(grep -c '"status": "done"' "$LAZY_OUT")" -eq 3 || {
    echo "served --lazy: not every job completed"; exit 1;
}
# The CEGAR loop must reach the same verdict and the same optimal costs:
# payload.verdict_digest hashes exactly that (the witness plan may
# legitimately differ, the verdict must not).
for kind in verify optimize optimize_incremental; do
    eager_digest=$(grep "\"id\": \"$kind\"" "$EAGER_OUT" \
        | sed 's/.*"verdict_digest": "\([0-9a-f]*\)".*/\1/')
    lazy_digest=$(grep "\"id\": \"$kind\"" "$LAZY_OUT" \
        | sed 's/.*"verdict_digest": "\([0-9a-f]*\)".*/\1/')
    test -n "$eager_digest" && test "$eager_digest" = "$lazy_digest" || {
        echo "served --lazy: $kind verdict digest diverged from eager"
        exit 1
    }
done

echo "==> fleet smoke (two served --listen shards, digests bit-identical to served)"
# The same 51-job batch the served smoke ran, now routed across two
# loopback shards by fleetd. The fleet's core guarantee is that the
# output is bit-identical to the single-process run above.
FLEET_OUT=target/fleet_smoke.out.jsonl
FLEET_TRACE=target/fleet_smoke.trace.jsonl
FLEET_LOG=target/fleet_smoke.fleetd.log
cargo build --release -q -p etcs-serve -p etcs-fleet
target/release/served --listen 127.0.0.1:47841 --name s1 --workers 2 \
    2> target/fleet_shard1.log &
FLEET_S1=$!
target/release/served --listen 127.0.0.1:47842 --name s2 --workers 2 \
    2> target/fleet_shard2.log &
FLEET_S2=$!
target/release/fleetd --shard 127.0.0.1:47841 --shard 127.0.0.1:47842 \
    --input "$SERVE_IN" --output "$FLEET_OUT" --trace "$FLEET_TRACE" \
    --replicas 1 --check-histories --shutdown-shards 2> "$FLEET_LOG"
wait $FLEET_S1
wait $FLEET_S2
test "$(wc -l < "$FLEET_OUT")" -eq 51 || {
    echo "fleetd: expected 51 response lines"; exit 1;
}
test "$(grep -c '"status": "done"' "$FLEET_OUT")" -eq 51 || {
    echo "fleetd: not every job completed"; exit 1;
}
# Bit-identity against the single-process served run: for every job kind
# (and the file-loaded job) the fleet must produce exactly the digest the
# single process produced.
for kind in verify generate optimize optimize_incremental diagnose file-job; do
    ref=$(grep "\"id\": \"$kind" "$SERVE_OUT" \
        | sed 's/.*"digest": "\([0-9a-f]*\)".*/\1/' | sort -u)
    got=$(grep "\"id\": \"$kind" "$FLEET_OUT" \
        | sed 's/.*"digest": "\([0-9a-f]*\)".*/\1/' | sort -u)
    test -n "$ref" && test "$ref" = "$got" || {
        echo "fleetd: $kind digests diverged from single-process served"
        exit 1
    }
done
for name in fleet.forward fleet.replicate; do
    grep -q "\"name\":\"$name\"" "$FLEET_TRACE" || {
        echo "fleet trace lacks expected event name '$name'"
        exit 1
    }
done
grep -q '"record": "consistency", "verdict": "ok"' "$FLEET_LOG" || {
    echo "fleetd: consistency check did not pass"; exit 1;
}
grep -q '"record": "stats"' target/fleet_shard1.log || {
    echo "shard 1 emitted no final stats record"; exit 1;
}

echo "==> fleet crash smoke (one shard killed mid-batch, no job dropped)"
# Same batch, fresh ports, and shard 2 deterministically exits (as if
# kill -9'd) after its 5th job. fleetd must mark it lost, re-dispatch the
# in-flight jobs onto the survivor, still produce 51 bit-identical
# responses, and the survivor's history must still pass the checker.
FLEET2_OUT=target/fleet_crash.out.jsonl
FLEET2_TRACE=target/fleet_crash.trace.jsonl
FLEET2_LOG=target/fleet_crash.fleetd.log
target/release/served --listen 127.0.0.1:47843 --name s1 --workers 2 \
    2> target/fleet_crash_shard1.log &
FLEET_S1=$!
target/release/served --listen 127.0.0.1:47844 --name s2 --workers 2 \
    --crash-after 5 2> target/fleet_crash_shard2.log &
FLEET_S2=$!
target/release/fleetd --shard 127.0.0.1:47843 --shard 127.0.0.1:47844 \
    --input "$SERVE_IN" --output "$FLEET2_OUT" --trace "$FLEET2_TRACE" \
    --replicas 1 --check-histories --shutdown-shards 2> "$FLEET2_LOG"
wait $FLEET_S1
wait $FLEET_S2 && { echo "crash shard exited cleanly (hook never fired)"; exit 1; } || true
test "$(grep -c '"status": "done"' "$FLEET2_OUT")" -eq 51 || {
    echo "fleetd: shard loss dropped a job"; exit 1;
}
for kind in verify generate optimize optimize_incremental diagnose file-job; do
    ref=$(grep "\"id\": \"$kind" "$SERVE_OUT" \
        | sed 's/.*"digest": "\([0-9a-f]*\)".*/\1/' | sort -u)
    got=$(grep "\"id\": \"$kind" "$FLEET2_OUT" \
        | sed 's/.*"digest": "\([0-9a-f]*\)".*/\1/' | sort -u)
    test -n "$ref" && test "$ref" = "$got" || {
        echo "fleetd: $kind digests diverged after shard loss"
        exit 1
    }
done
grep -q '"name":"fleet.shard_lost"' "$FLEET2_TRACE" || {
    echo "fleet trace lacks the shard_lost event"; exit 1;
}
grep -q '"record": "consistency", "verdict": "ok"' "$FLEET2_LOG" || {
    echo "fleetd: post-crash consistency check did not pass"; exit 1;
}
grep -q '"record": "crash_injected"' target/fleet_crash_shard2.log || {
    echo "crash shard never recorded its injected exit"; exit 1;
}

echo "==> bench_fleet smoke (release, jobs/s vs shard count, digest gate)"
cargo run --release -q -p etcs-bench --bin bench_fleet -- \
    --smoke --out target/BENCH_fleet_smoke.json
cargo run --release -q -p etcs-bench --bin json_check -- \
    target/BENCH_fleet_smoke.json
grep -q '"replicated_keys": [1-9]' target/BENCH_fleet_smoke.json || {
    echo "bench_fleet: no run replicated a cache entry"; exit 1;
}

echo "==> bench_replan smoke (release, warm-vs-cold replanning, differential gate)"
cargo run --release -q -p etcs-bench --bin bench_replan -- \
    --smoke --out target/BENCH_replan_smoke.json
cargo run --release -q -p etcs-bench --bin json_check -- \
    target/BENCH_replan_smoke.json
# The bench itself asserts every tick's verdict and optima are
# bit-identical to a cold re-solve of the patched scenario; here we
# re-assert the headline on the artifact: warm replanning must beat the
# cold re-solves on total conflicts.
grep -q '"warm_wins": true' target/BENCH_replan_smoke.json || {
    echo "bench_replan: warm replanning did not beat cold re-solves"; exit 1;
}

echo "==> served replan smoke (session records, warm ticks, digest parity)"
REPLAN_IN=target/serve_replan.in.jsonl
REPLAN_OUT=target/serve_replan.out.jsonl
REPLAN_TRACE=target/serve_replan.trace.jsonl
REPLAN_LOG=target/serve_replan.log
: > "$REPLAN_IN"
printf '{"record": "open", "session": "s1", "scenario": "fixture:running_example"}\n' >> "$REPLAN_IN"
printf '{"id": "cold", "kind": "optimize_incremental", "scenario": "fixture:running_example"}\n' >> "$REPLAN_IN"
printf '{"record": "tick", "session": "s1"}\n' >> "$REPLAN_IN"
printf '{"record": "delta", "session": "s1", "delta": "deadline Train 1 : arr 0:04:00"}\n' >> "$REPLAN_IN"
printf '{"record": "tick", "session": "s1"}\n' >> "$REPLAN_IN"
printf '{"record": "close", "session": "s1"}\n' >> "$REPLAN_IN"
cargo run --release -q -p etcs-serve --bin served -- \
    --input "$REPLAN_IN" --output "$REPLAN_OUT" --trace "$REPLAN_TRACE" \
    --workers 2 2> "$REPLAN_LOG"
test "$(wc -l < "$REPLAN_OUT")" -eq 6 || {
    echo "served replan: expected 6 response lines"; exit 1;
}
test "$(grep -c '"record": "ticked"' "$REPLAN_OUT")" -eq 2 || {
    echo "served replan: expected 2 ticked records"; exit 1;
}
grep '"record": "ticked"' "$REPLAN_OUT" | grep -q '"warm": true' || {
    echo "served replan: the deadline delta did not warm-start"; exit 1;
}
# Digest parity: a streamed tick and the cold one-shot job over the same
# scenario hash the same verdict + optima.
tick_digest=$(grep '"record": "ticked"' "$REPLAN_OUT" | grep '"tick": 1' \
    | sed 's/.*"verdict_digest": "\([0-9a-f]*\)".*/\1/')
job_digest=$(grep '"id": "cold"' "$REPLAN_OUT" \
    | sed 's/.*"verdict_digest": "\([0-9a-f]*\)".*/\1/')
test -n "$tick_digest" && test "$tick_digest" = "$job_digest" || {
    echo "served replan: streamed tick digest diverged from the cold job"
    exit 1
}
# The terminal stats record covers the (closed) session, and the span
# vocabulary is stable (DESIGN.md section 17).
grep '"record": "stats"' "$REPLAN_LOG" \
    | grep -q '"replan": {"ticks": 2, "warm_hits": 1, "cold_fallbacks": 1, "deadline_misses": 0' || {
    echo "served replan: stats record lacks the session counters"; exit 1;
}
for name in replan.open replan.delta replan.tick; do
    grep -q "\"name\":\"$name\"" "$REPLAN_TRACE" || {
        echo "replan trace lacks expected span name '$name'"
        exit 1
    }
done

echo "All checks passed."
