#!/usr/bin/env sh
# Repository gate: formatting, lints, tests. Run from the workspace root.
#
#   sh ci/check.sh
#
# Mirrors what CI enforces; keep it dependency-free (rustup components
# only) so it also works in offline containers.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q --workspace

echo "==> bench_optimize smoke (release, running example + convoy, traced)"
TRACE=target/BENCH_optimize_smoke.trace.jsonl
cargo run --release -q -p etcs-bench --bin bench_optimize -- \
    --smoke --out target/BENCH_optimize_smoke.json --trace "$TRACE"

echo "==> obs trace smoke (JSONL parses, span vocabulary is stable)"
# The bench already cross-checked probe counts, conflict totals and the
# portfolio winner against its own Stats; here we pin the *schema*: the
# documented span/event names must appear in the artifact. This doubles as
# documentation of the event format (see DESIGN.md section 10).
test -s "$TRACE" || { echo "missing trace artifact $TRACE"; exit 1; }
for name in task.optimize task.optimize_incremental task.optimize_portfolio \
        encode probe stage2 sat.solve race portfolio.outcome parallel.worker; do
    grep -q "\"name\":\"$name\"" "$TRACE" || {
        echo "trace $TRACE lacks expected span/event name '$name'"
        exit 1
    }
done

echo "All checks passed."
