#!/usr/bin/env sh
# Repository gate: formatting, lints, tests. Run from the workspace root.
#
#   sh ci/check.sh
#
# Mirrors what CI enforces; keep it dependency-free (rustup components
# only) so it also works in offline containers.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q --workspace

echo "==> bench_optimize smoke (release, running example + convoy)"
cargo run --release -q -p etcs-bench --bin bench_optimize -- \
    --smoke --out target/BENCH_optimize_smoke.json

echo "All checks passed."
