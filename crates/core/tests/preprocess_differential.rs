//! Differential contract of the certified preprocessor: every design task,
//! on every shipped fixture, must return bit-identical verdicts and optima
//! with `EncoderConfig::preprocess` on and off. Witness plans may legally
//! differ (preprocessing changes the search trajectory), but feasibility
//! and the proven-optimal cost vectors may not — the preprocessor is an
//! equivalence-preserving rewrite, and this suite is what holds it to that.

use etcs_core::{
    generate, optimize, optimize_incremental, verify, verify_certified, CertifiedVerdict,
    DesignOutcome, EncoderConfig, VerifyOutcome,
};
use etcs_network::{fixtures, VssLayout};

fn plain() -> EncoderConfig {
    EncoderConfig::default()
}

fn preprocessed() -> EncoderConfig {
    EncoderConfig {
        preprocess: true,
        ..EncoderConfig::default()
    }
}

fn costs(outcome: &DesignOutcome) -> Option<&[u64]> {
    match outcome {
        DesignOutcome::Solved { costs, .. } => Some(costs),
        DesignOutcome::Infeasible => None,
    }
}

#[test]
fn preprocessed_verification_matches_on_all_fixtures() {
    for scenario in fixtures::all() {
        let (off, _) = verify(&scenario, &VssLayout::pure_ttd(), &plain()).expect("well-formed");
        let (on, _) =
            verify(&scenario, &VssLayout::pure_ttd(), &preprocessed()).expect("well-formed");
        assert_eq!(
            off.is_feasible(),
            on.is_feasible(),
            "{}: preprocessing flipped the pure-TTD verdict",
            scenario.name
        );
        // A feasible preprocessed witness must still be a real plan for
        // the *original* constraints — the sim-backed decoder would have
        // rejected a model that reconstruction failed to repair.
        if let VerifyOutcome::Feasible(plan) = &on {
            assert_eq!(plan.layout, VssLayout::pure_ttd());
        }
    }
}

#[test]
fn preprocessed_generation_matches_optima_on_all_fixtures() {
    for scenario in fixtures::all() {
        let (off, _) = generate(&scenario, &plain()).expect("well-formed");
        let (on, _) = generate(&scenario, &preprocessed()).expect("well-formed");
        assert_eq!(
            costs(&off),
            costs(&on),
            "{}: preprocessing changed the minimal border count",
            scenario.name
        );
    }
}

#[test]
fn preprocessed_optimization_matches_optima() {
    for scenario in [fixtures::running_example(), fixtures::convoy()] {
        let (off, _) = optimize(&scenario, &plain()).expect("well-formed");
        let (on, _) = optimize(&scenario, &preprocessed()).expect("well-formed");
        assert_eq!(
            costs(&off),
            costs(&on),
            "{}: preprocessing changed the (deadline, borders) optimum",
            scenario.name
        );
    }
}

#[test]
fn preprocessed_incremental_optimization_matches_optima() {
    for scenario in [fixtures::running_example(), fixtures::convoy()] {
        let (off, _) = optimize_incremental(&scenario, &plain()).expect("well-formed");
        let (on, _) = optimize_incremental(&scenario, &preprocessed()).expect("well-formed");
        assert_eq!(
            costs(&off),
            costs(&on),
            "{}: preprocessing changed the incremental optimum",
            scenario.name
        );
    }
}

#[test]
fn certified_verification_accepts_preprocessed_runs() {
    let scenario = fixtures::running_example();

    // Feasible case: the generated layout; the reconstructed model must
    // pass the independent model check over the traced (original) formula.
    let (designed, _) = generate(&scenario, &plain()).expect("well-formed");
    let layout = designed.plan().expect("feasible").layout.clone();
    let (outcome, _, cert) =
        verify_certified(&scenario, &layout, &preprocessed()).expect("certifies");
    assert!(outcome.is_feasible());
    assert!(matches!(cert.verdict, CertifiedVerdict::ModelChecked));

    // Infeasible case: pure TTD; the combined preprocessing + search proof
    // must pass the backward DRAT checker over the original axioms.
    let (outcome, _, cert) =
        verify_certified(&scenario, &VssLayout::pure_ttd(), &preprocessed()).expect("certifies");
    assert!(!outcome.is_feasible());
    assert!(matches!(cert.verdict, CertifiedVerdict::ProofChecked(_)));
}
