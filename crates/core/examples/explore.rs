//! Developer tool: run one design task on one bundled case study and dump
//! the full solution (layout, arrivals, per-step positions).
//!
//! Usage: `cargo run --release -p etcs-core --example explore -- \
//!     [running|simple|complex|nordlandsbanen] [verify|verifyfull|generate|optimize]`

use etcs_core::{generate, optimize, verify, DesignOutcome, EncoderConfig, Instance};
use etcs_network::{fixtures, Scenario, VssLayout};
use std::time::Instant;

fn scenario_by_name(name: &str) -> Scenario {
    match name {
        "running" => fixtures::running_example(),
        "simple" => fixtures::simple_layout(),
        "complex" => fixtures::complex_layout(),
        "nordlandsbanen" => fixtures::nordlandsbanen(),
        other => panic!("unknown scenario `{other}`"),
    }
}

fn dump_plan(inst: &Instance, plan: &etcs_core::SolvedPlan) {
    println!("arrivals: {:?}", plan.arrival_steps(inst));
    println!("sections: {}", plan.section_count(inst));
    println!("layout:   {}", plan.layout);
    for (p, spec) in plan.plans.iter().zip(&inst.trains) {
        println!("  {} (dep t{}):", p.name, spec.dep_step);
        for (t, pos) in p.positions.iter().enumerate() {
            if !pos.is_empty() {
                let names: Vec<&str> = pos.iter().map(|&e| inst.net.edge_name(e)).collect();
                println!("    t{t:<3} {}", names.join(" + "));
            }
        }
    }
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "running".into());
    let task = std::env::args().nth(2).unwrap_or_else(|| "optimize".into());
    let scenario = scenario_by_name(&which);
    let inst = Instance::new(&scenario).expect("bundled scenarios are valid");
    println!(
        "{}: {} segments, t_max {}, {} trains",
        scenario.name,
        inst.net.num_edges(),
        inst.t_max,
        inst.trains.len()
    );
    let cfg = EncoderConfig::default();
    let t0 = Instant::now();
    match task.as_str() {
        "verify" | "verifyfull" => {
            let layout = if task == "verify" {
                VssLayout::pure_ttd()
            } else {
                VssLayout::full(&inst.net)
            };
            let (o, r) = verify(&scenario, &layout, &cfg).expect("well-formed");
            println!(
                "verify({}): feasible={} vars={} clauses={} time={:.3}s",
                if task == "verify" {
                    "pure TTD"
                } else {
                    "full VSS"
                },
                o.is_feasible(),
                r.stats.solver_vars,
                r.stats.clauses,
                r.runtime.as_secs_f64()
            );
            if let Some(plan) = o.plan() {
                dump_plan(&inst, plan);
            }
        }
        "generate" => {
            let (o, r) = generate(&scenario, &cfg).expect("well-formed");
            match o {
                DesignOutcome::Solved { plan, costs } => {
                    println!(
                        "generate: {} border(s), {} solver calls, {:.3}s",
                        costs[0],
                        r.solver_calls,
                        r.runtime.as_secs_f64()
                    );
                    dump_plan(&inst, &plan);
                }
                DesignOutcome::Infeasible => {
                    println!("generate: INFEASIBLE ({:.3}s)", r.runtime.as_secs_f64())
                }
            }
        }
        "optimize" => {
            let open = scenario.without_arrivals();
            let oinst = Instance::new(&open).expect("valid");
            let (o, r) = optimize(&scenario, &cfg).expect("well-formed");
            match o {
                DesignOutcome::Solved { plan, costs } => {
                    println!(
                        "optimize: {} steps, {} border(s), {} solver calls, {:.3}s",
                        costs[0],
                        costs[1],
                        r.solver_calls,
                        r.runtime.as_secs_f64()
                    );
                    dump_plan(&oinst, &plan);
                }
                DesignOutcome::Infeasible => {
                    println!("optimize: INFEASIBLE ({:.3}s)", r.runtime.as_secs_f64())
                }
            }
        }
        other => panic!("unknown task `{other}`"),
    }
    println!("total {:.3}s", t0.elapsed().as_secs_f64());
}
