//! Decoding SAT models back into designer artefacts: VSS layouts and
//! per-train movement plans.

use etcs_network::{EdgeId, NodeId, VssLayout};
use etcs_sat::Model;

use crate::encoder::VarMap;
use crate::instance::Instance;

/// The movement of one train over the scenario, decoded from a model.
///
/// `positions[t]` is the set of occupied segments at step `t` (empty when
/// the train is off the network — before departure or after leaving).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrainPlan {
    /// Train display name.
    pub name: String,
    /// Occupied segments per time step.
    pub positions: Vec<Vec<EdgeId>>,
}

impl TrainPlan {
    /// First step at which the train occupies one of the given goal edges.
    pub fn arrival_step(&self, goal: &[EdgeId]) -> Option<usize> {
        self.positions
            .iter()
            .position(|p| p.iter().any(|e| goal.contains(e)))
    }

    /// Last step at which the train occupies any segment.
    pub fn last_present_step(&self) -> Option<usize> {
        self.positions.iter().rposition(|p| !p.is_empty())
    }

    /// `true` if the train is on the network at step `t`.
    pub fn is_present(&self, t: usize) -> bool {
        self.positions.get(t).is_some_and(|p| !p.is_empty())
    }
}

/// Everything decoded from a satisfying assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SolvedPlan {
    /// The VSS layout (virtual borders chosen by the solver, or the fixed
    /// layout for the verification task).
    pub layout: VssLayout,
    /// One movement plan per train, in schedule order.
    pub plans: Vec<TrainPlan>,
}

impl SolvedPlan {
    /// Decodes a model produced by solving an encoding of `inst`.
    pub fn decode(inst: &Instance, vars: &VarMap, model: &Model) -> Self {
        let borders: Vec<NodeId> = vars
            .border
            .iter()
            .enumerate()
            .filter_map(|(i, v)| {
                v.and_then(|var| model.var_is_true(var).then(|| NodeId::from_index(i)))
            })
            .collect();
        let layout = VssLayout::with_borders(borders);

        let plans = inst
            .trains
            .iter()
            .enumerate()
            .map(|(tr, spec)| {
                let positions = (0..inst.t_max)
                    .map(|t| {
                        (0..inst.net.num_edges())
                            .map(EdgeId::from_index)
                            .filter(|&e| {
                                vars.occ_lit(tr, t, e).is_some_and(|l| model.lit_is_true(l))
                            })
                            .collect()
                    })
                    .collect();
                TrainPlan {
                    name: spec.name.clone(),
                    positions,
                }
            })
            .collect();

        SolvedPlan { layout, plans }
    }

    /// Completion time in steps: the step after the last arrival event
    /// (every train has reached its goal and either left or parked).
    ///
    /// This is the paper's "Time Steps" column: the number of time steps the
    /// schedule needs.
    pub fn completion_steps(&self, inst: &Instance) -> usize {
        let mut last = 0usize;
        for (plan, spec) in self.plans.iter().zip(&inst.trains) {
            let arrival = plan
                .arrival_step(&spec.goal_edges)
                .unwrap_or(inst.t_max - 1);
            last = last.max(arrival);
        }
        last + 1
    }

    /// Per-train arrival steps (first occupation of the goal).
    pub fn arrival_steps(&self, inst: &Instance) -> Vec<Option<usize>> {
        self.plans
            .iter()
            .zip(&inst.trains)
            .map(|(plan, spec)| plan.arrival_step(&spec.goal_edges))
            .collect()
    }

    /// Total number of sections (TTD + VSS) of the decoded layout — the
    /// paper's "TTD/VSS" column.
    pub fn section_count(&self, inst: &Instance) -> usize {
        self.layout.section_count(&inst.net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(positions: Vec<Vec<u32>>) -> TrainPlan {
        TrainPlan {
            name: "t".into(),
            positions: positions
                .into_iter()
                .map(|p| p.into_iter().map(EdgeId).collect())
                .collect(),
        }
    }

    #[test]
    fn arrival_step_finds_first_goal_occupation() {
        let p = plan(vec![vec![0], vec![1], vec![2, 3], vec![]]);
        assert_eq!(p.arrival_step(&[EdgeId(3)]), Some(2));
        assert_eq!(p.arrival_step(&[EdgeId(9)]), None);
    }

    #[test]
    fn last_present_step_ignores_trailing_absence() {
        let p = plan(vec![vec![0], vec![1], vec![], vec![]]);
        assert_eq!(p.last_present_step(), Some(1));
        assert!(p.is_present(0));
        assert!(!p.is_present(3));
        assert!(!p.is_present(99));
    }

    #[test]
    fn empty_plan_has_no_arrival() {
        let p = plan(vec![vec![], vec![]]);
        assert_eq!(p.arrival_step(&[EdgeId(0)]), None);
        assert_eq!(p.last_present_step(), None);
    }
}
