//! Content-addressed cache keys for task results.
//!
//! [`cache_key`] hashes everything that determines a task's *deterministic*
//! result — network topology, schedule, spatial/temporal resolutions,
//! horizon, task kind (with its layout, where it takes one), and encoder
//! configuration — into a 128-bit fingerprint. Two inputs with the same key
//! produce bit-identical reports (modulo wall-clock fields), which is what
//! lets `etcs-serve`'s result cache answer repeat jobs without solving.
//!
//! # Canonicalisation
//!
//! The hash is deliberately conservative: it only normalises orderings that
//! provably cannot change the solver's output.
//!
//! * **TTD / station member-track lists** are hashed sorted. The encoder
//!   only ever tests membership (`tracks.contains(..)`) and iterates edges
//!   in *edge* order, so listing a TTD's tracks in a different order yields
//!   the same clauses in the same order.
//! * **VSS border sets** are order-canonical by construction
//!   ([`VssLayout`] stores a `BTreeSet`), so insertion order never reaches
//!   the hash.
//! * The **scenario name** is excluded: it appears only in observability
//!   span fields, never in any result.
//!
//! Everything else — track declaration order, TTD/station declaration
//! order, run order — is hashed as-is, because those orders assign the ids
//! the encoding is built from and reordering them can legitimately change
//! which optimal model the solver finds first.
//!
//! The fingerprint is two independently-seeded FNV-1a-64 lanes, each
//! finished with a splitmix64-style avalanche that mixes in the other lane.
//! No cryptographic strength is claimed; the cache only needs collisions to
//! be vanishingly unlikely across a service lifetime of jobs.

use etcs_network::Scenario;

use crate::encoder::{EncoderConfig, TaskKind};

/// The version tag mixed into every [`cache_key`]. Any change to the
/// encoding or decoding pipeline that can alter results must bump this so
/// stale persisted (or replicated) caches can never alias. Distributed
/// components exchange this string in their handshakes: two processes may
/// only share cache entries when their versions agree.
pub const CACHE_KEY_VERSION: &str = "etcs-cache-key-v3";

const FNV_PRIME: u64 = 0x100_0000_01b3;
const OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
const OFFSET_B: u64 = 0x6c62_272e_07bb_0142;

/// Incremental two-lane FNV-1a writer with length-prefixed framing, so
/// adjacent variable-length fields can never alias each other.
struct Canon {
    a: u64,
    b: u64,
}

impl Canon {
    fn new() -> Self {
        Canon {
            a: OFFSET_A,
            b: OFFSET_B,
        }
    }

    fn byte(&mut self, x: u8) {
        self.a = (self.a ^ u64::from(x)).wrapping_mul(FNV_PRIME);
        self.b = (self.b ^ u64::from(x)).wrapping_mul(FNV_PRIME);
    }

    fn u64(&mut self, x: u64) {
        for byte in x.to_le_bytes() {
            self.byte(byte);
        }
    }

    fn usize(&mut self, x: usize) {
        self.u64(x as u64);
    }

    fn bool(&mut self, x: bool) {
        self.byte(u8::from(x));
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        for &byte in s.as_bytes() {
            self.byte(byte);
        }
    }

    /// A domain-separation tag between record kinds.
    fn tag(&mut self, t: u8) {
        self.byte(0xfe);
        self.byte(t);
    }

    fn finish(self) -> u128 {
        fn avalanche(mut x: u64) -> u64 {
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^ (x >> 31)
        }
        let hi = avalanche(self.a ^ self.b.rotate_left(32));
        let lo = avalanche(self.b ^ self.a.rotate_left(17));
        (u128::from(hi) << 64) | u128::from(lo)
    }
}

/// Computes the content-addressed cache key of a task over `scenario`.
///
/// See the module docs for exactly what is (and is not) canonicalised.
/// The key is versioned (`etcs-cache-key-v3`): any change to the encoding
/// or decoding pipeline that can alter results must bump the version tag so
/// stale persisted caches can never alias. v3 added
/// [`EncoderConfig::solve_mode`] to the hash — verdicts and optima are
/// mode-independent, but the witness plan a portfolio race returns may
/// legitimately differ from the sequential one.
///
/// # Examples
///
/// ```
/// use etcs_core::{cache_key, EncoderConfig, TaskKind};
/// use etcs_network::fixtures;
///
/// let scenario = fixtures::running_example();
/// let config = EncoderConfig::default();
/// let a = cache_key(&scenario, &TaskKind::Generate, &config);
/// let b = cache_key(&scenario, &TaskKind::Optimize, &config);
/// assert_ne!(a, b, "task kinds address distinct results");
/// ```
pub fn cache_key(scenario: &Scenario, task: &TaskKind, config: &EncoderConfig) -> u128 {
    let mut c = Canon::new();
    c.str(CACHE_KEY_VERSION);
    write_config(&mut c, config);
    write_timing(&mut c, scenario);
    write_topology(&mut c, scenario);
    write_schedule(&mut c, scenario, false);
    write_task(&mut c, task);
    c.finish()
}

/// Hashes the encoder configuration (tag `0x01`).
fn write_config(c: &mut Canon, config: &EncoderConfig) {
    c.tag(0x01); // encoder configuration
    c.bool(config.prune_to_goal);
    c.bool(config.allow_immediate_reoccupation);
    c.bool(config.symmetric_movement);
    c.bool(config.trace);
    c.bool(config.proof);
    c.bool(config.preprocess);
    match config.solve_mode {
        crate::encoder::SolveMode::Single => c.byte(0),
        crate::encoder::SolveMode::Portfolio(n) => {
            c.byte(1);
            c.usize(n);
        }
    }
}

/// Hashes the spatial/temporal resolutions and horizon (tag `0x02`).
fn write_timing(c: &mut Canon, scenario: &Scenario) {
    c.tag(0x02); // resolutions and horizon
    c.u64(scenario.r_s.as_u64());
    c.u64(scenario.r_t.as_u64());
    c.u64(scenario.horizon.as_u64());
}

/// Hashes the network topology: tracks, TTDs, stations (tags `0x03`–`0x05`).
fn write_topology(c: &mut Canon, scenario: &Scenario) {
    let net = &scenario.network;
    c.tag(0x03); // topology: declaration order is id order, hash as-is
    c.usize(net.num_nodes());
    c.usize(net.tracks().len());
    for t in net.tracks() {
        c.usize(t.from.index());
        c.usize(t.to.index());
        c.u64(t.length.as_u64());
        c.str(&t.name);
    }
    c.tag(0x04); // TTDs: entry order matters, member order does not
    c.usize(net.ttds().len());
    for ttd in net.ttds() {
        c.str(&ttd.name);
        let mut members: Vec<usize> = ttd.tracks.iter().map(|t| t.index()).collect();
        members.sort_unstable();
        c.usize(members.len());
        for m in members {
            c.usize(m);
        }
    }
    c.tag(0x05); // stations: entry order matters, member order does not
    c.usize(net.stations().len());
    for station in net.stations() {
        c.str(&station.name);
        c.bool(station.boundary);
        let mut members: Vec<usize> = station.tracks.iter().map(|t| t.index()).collect();
        members.sort_unstable();
        c.usize(members.len());
        for m in members {
            c.usize(m);
        }
    }
}

/// Hashes the schedule in run order (tag `0x06`). With `mask_deadlines`
/// the arrival and per-stop deadlines are hashed as if absent — the exact
/// transformation [`Scenario::without_arrivals`] applies — so the masked
/// hash is invariant under deadline-only edits.
fn write_schedule(c: &mut Canon, scenario: &Scenario, mask_deadlines: bool) {
    c.tag(0x06); // schedule, in run order (run order is train-id order)
    c.usize(scenario.schedule.len());
    for run in scenario.schedule.runs() {
        c.str(&run.train.name);
        c.u64(run.train.length.as_u64());
        c.u64(u64::from(run.train.max_speed.as_u32()));
        c.usize(run.origin.index());
        c.usize(run.destination.index());
        c.u64(run.departure.as_u64());
        match run.arrival.filter(|_| !mask_deadlines) {
            Some(a) => {
                c.byte(1);
                c.u64(a.as_u64());
            }
            None => c.byte(0),
        }
        c.usize(run.stops.len());
        for (station, deadline) in &run.stops {
            c.usize(station.index());
            match deadline.as_ref().filter(|_| !mask_deadlines) {
                Some(d) => {
                    c.byte(1);
                    c.u64(d.as_u64());
                }
                None => c.byte(0),
            }
        }
    }
}

/// Hashes only the deadline-carrying schedule fields (tag `0x08`): per run,
/// the arrival option and the per-stop deadline options. Together with the
/// masked schedule hash this covers every schedule byte [`cache_key`] sees.
fn write_deadlines(c: &mut Canon, scenario: &Scenario) {
    c.tag(0x08); // deadlines only (arrivals + stop deadlines)
    c.usize(scenario.schedule.len());
    for run in scenario.schedule.runs() {
        match run.arrival {
            Some(a) => {
                c.byte(1);
                c.u64(a.as_u64());
            }
            None => c.byte(0),
        }
        c.usize(run.stops.len());
        for (_, deadline) in &run.stops {
            match deadline {
                Some(d) => {
                    c.byte(1);
                    c.u64(d.as_u64());
                }
                None => c.byte(0),
            }
        }
    }
}

fn write_task(c: &mut Canon, task: &TaskKind) {
    c.tag(0x07); // task kind (+ layout where the task takes one)
    let layout = match task {
        TaskKind::Verify(layout) => {
            c.byte(0);
            Some(layout)
        }
        TaskKind::Generate => {
            c.byte(1);
            None
        }
        TaskKind::Optimize => {
            c.byte(2);
            None
        }
        TaskKind::OptimizeIncremental => {
            c.byte(3);
            None
        }
        TaskKind::Diagnose(layout) => {
            c.byte(4);
            Some(layout)
        }
    };
    if let Some(layout) = layout {
        // BTreeSet iteration is already sorted: insertion order never
        // reaches the hash.
        c.usize(layout.num_borders());
        for border in layout.borders() {
            c.usize(border.index());
        }
    }
}

/// Component-wise fingerprints of a scenario under one encoder
/// configuration, for warm-start keying in the online replanner.
///
/// [`cache_key`] answers "is this the same *task*"; `SubFingerprints`
/// answers the finer question "which *parts* changed". Each field hashes
/// one independently-editable slice of the input, and [`core`] combines
/// everything that determines the *open* (deadline-free) encoding — the
/// formula a persistent incremental solver holds between re-solves. A
/// delta that only tightens or relaxes deadlines leaves `core` unchanged,
/// so the warm solver (whose deadlines travel as assumptions, never as
/// clauses) remains sound; any other delta moves `core` and forces a
/// re-encode.
///
/// [`core`]: SubFingerprints::core
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SubFingerprints {
    /// Encoder configuration (flags + solve mode).
    pub config: u128,
    /// Spatial/temporal resolutions and horizon.
    pub timing: u128,
    /// Network topology: tracks, TTDs, stations.
    pub topology: u128,
    /// Schedule with deadlines masked: trains, routes, departures, stops.
    pub schedule: u128,
    /// Deadlines only: arrival and per-stop deadline options.
    pub deadlines: u128,
    /// Everything the open (deadline-free) encoding depends on: config +
    /// timing + topology + masked schedule. Equal to the `core` of
    /// [`Scenario::without_arrivals`] applied to the same scenario.
    pub core: u128,
}

/// Computes the component-wise [`SubFingerprints`] of `scenario` under
/// `config`.
///
/// The components share [`cache_key`]'s canonicalisation and version tag
/// (a cache-key version bump invalidates warm-start keys too, which is
/// exactly right: the encoding changed).
///
/// # Examples
///
/// ```
/// use etcs_core::{sub_fingerprints, EncoderConfig};
/// use etcs_network::fixtures;
///
/// let scenario = fixtures::running_example();
/// let config = EncoderConfig::default();
/// let fps = sub_fingerprints(&scenario, &config);
/// // Dropping every deadline keeps the core (the open encoding is
/// // unchanged) while the deadline component moves.
/// let open = sub_fingerprints(&scenario.without_arrivals(), &config);
/// assert_eq!(fps.core, open.core);
/// ```
pub fn sub_fingerprints(scenario: &Scenario, config: &EncoderConfig) -> SubFingerprints {
    let component = |write: &dyn Fn(&mut Canon)| {
        let mut c = Canon::new();
        c.str(CACHE_KEY_VERSION);
        write(&mut c);
        c.finish()
    };
    let core = {
        let mut c = Canon::new();
        c.str(CACHE_KEY_VERSION);
        write_config(&mut c, config);
        write_timing(&mut c, scenario);
        write_topology(&mut c, scenario);
        write_schedule(&mut c, scenario, true);
        c.finish()
    };
    SubFingerprints {
        config: component(&|c| write_config(c, config)),
        timing: component(&|c| write_timing(c, scenario)),
        topology: component(&|c| write_topology(c, scenario)),
        schedule: component(&|c| write_schedule(c, scenario, true)),
        deadlines: component(&|c| write_deadlines(c, scenario)),
        core,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etcs_network::{fixtures, VssLayout};

    fn config() -> EncoderConfig {
        EncoderConfig::default()
    }

    #[test]
    fn key_is_stable_across_calls() {
        let s = fixtures::running_example();
        assert_eq!(
            cache_key(&s, &TaskKind::Generate, &config()),
            cache_key(&s, &TaskKind::Generate, &config()),
        );
    }

    #[test]
    fn task_kinds_get_distinct_keys() {
        let s = fixtures::running_example();
        let layout = VssLayout::pure_ttd();
        let keys = [
            cache_key(&s, &TaskKind::Verify(layout.clone()), &config()),
            cache_key(&s, &TaskKind::Generate, &config()),
            cache_key(&s, &TaskKind::Optimize, &config()),
            cache_key(&s, &TaskKind::OptimizeIncremental, &config()),
            cache_key(&s, &TaskKind::Diagnose(layout), &config()),
        ];
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j], "kinds {i} and {j} collide");
            }
        }
    }

    #[test]
    fn scenario_name_is_excluded() {
        let s = fixtures::running_example();
        let mut renamed = s.clone();
        renamed.name = "something else entirely".into();
        assert_eq!(
            cache_key(&s, &TaskKind::Generate, &config()),
            cache_key(&renamed, &TaskKind::Generate, &config()),
        );
    }

    #[test]
    fn config_changes_the_key() {
        let s = fixtures::running_example();
        let mut other = config();
        other.symmetric_movement = !other.symmetric_movement;
        assert_ne!(
            cache_key(&s, &TaskKind::Generate, &config()),
            cache_key(&s, &TaskKind::Generate, &other),
        );
        let mut preprocessed = config();
        preprocessed.preprocess = true;
        assert_ne!(
            cache_key(&s, &TaskKind::Generate, &config()),
            cache_key(&s, &TaskKind::Generate, &preprocessed),
            "preprocess flag addresses distinct cached results"
        );
        let mut raced = config();
        raced.solve_mode = crate::encoder::SolveMode::Portfolio(4);
        assert_ne!(
            cache_key(&s, &TaskKind::Generate, &config()),
            cache_key(&s, &TaskKind::Generate, &raced),
            "portfolio witness plans may differ; the mode addresses its own slot"
        );
        let mut other_width = config();
        other_width.solve_mode = crate::encoder::SolveMode::Portfolio(2);
        assert_ne!(
            cache_key(&s, &TaskKind::Generate, &raced),
            cache_key(&s, &TaskKind::Generate, &other_width),
        );
    }

    #[test]
    fn schedule_changes_the_key() {
        let s = fixtures::running_example();
        let mut tightened = s.clone();
        let mut runs: Vec<_> = tightened.schedule.runs().to_vec();
        runs[0].departure = etcs_network::Seconds(runs[0].departure.as_u64() + 60);
        tightened.schedule = etcs_network::Schedule::new(runs);
        assert_ne!(
            cache_key(&s, &TaskKind::Generate, &config()),
            cache_key(&tightened, &TaskKind::Generate, &config()),
        );
    }

    #[test]
    fn deadline_edits_keep_the_core_sub_fingerprint() {
        let s = fixtures::running_example();
        let fps = sub_fingerprints(&s, &config());
        let open = sub_fingerprints(&s.without_arrivals(), &config());
        assert_eq!(fps.core, open.core, "core ignores deadlines");
        assert_eq!(fps.schedule, open.schedule, "masked schedule too");
        assert_ne!(
            fps.deadlines, open.deadlines,
            "the running example carries arrivals; dropping them must move \
             the deadline component"
        );
        assert_eq!(fps.config, open.config);
        assert_eq!(fps.timing, open.timing);
        assert_eq!(fps.topology, open.topology);
    }

    #[test]
    fn departure_edits_move_the_core_sub_fingerprint() {
        let s = fixtures::running_example();
        let mut delayed = s.clone();
        let mut runs: Vec<_> = delayed.schedule.runs().to_vec();
        runs[0].departure = etcs_network::Seconds(runs[0].departure.as_u64() + 60);
        delayed.schedule = etcs_network::Schedule::new(runs);
        let a = sub_fingerprints(&s, &config());
        let b = sub_fingerprints(&delayed, &config());
        assert_ne!(a.core, b.core, "departures shape the open encoding");
        assert_ne!(a.schedule, b.schedule);
        assert_eq!(a.topology, b.topology);
        assert_eq!(a.timing, b.timing);
    }

    #[test]
    fn sub_fingerprint_components_are_pairwise_distinct() {
        let s = fixtures::running_example();
        let fps = sub_fingerprints(&s, &config());
        let keys = [
            fps.config,
            fps.timing,
            fps.topology,
            fps.schedule,
            fps.deadlines,
            fps.core,
        ];
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j], "components {i} and {j} collide");
            }
        }
    }

    #[test]
    fn config_moves_core_but_not_topology() {
        let s = fixtures::running_example();
        let mut raced = config();
        raced.solve_mode = crate::encoder::SolveMode::Portfolio(2);
        let a = sub_fingerprints(&s, &config());
        let b = sub_fingerprints(&s, &raced);
        assert_ne!(a.config, b.config);
        assert_ne!(a.core, b.core, "solve mode reaches the warm-start key");
        assert_eq!(a.topology, b.topology);
        assert_eq!(a.deadlines, b.deadlines);
    }

    #[test]
    fn layout_border_insertion_order_is_canonical() {
        let s = fixtures::running_example();
        let forward = VssLayout::with_borders([
            etcs_network::NodeId::from_index(2),
            etcs_network::NodeId::from_index(5),
            etcs_network::NodeId::from_index(9),
        ]);
        let backward = VssLayout::with_borders([
            etcs_network::NodeId::from_index(9),
            etcs_network::NodeId::from_index(2),
            etcs_network::NodeId::from_index(5),
        ]);
        assert_eq!(
            cache_key(&s, &TaskKind::Verify(forward), &config()),
            cache_key(&s, &TaskKind::Verify(backward), &config()),
        );
    }
}
