//! Alternative optimisation objectives (Section III-C of the paper).
//!
//! The paper notes that "efficient" can be interpreted in different ways
//! and that the symbolic formulation accommodates any of them by swapping
//! the objective function. [`crate::optimize`] implements the paper's
//! headline choice (minimum number of time steps until everything is
//! done); this module adds the other interpretation the paper mentions:
//! every individual train should reach its final stop as fast as possible,
//! i.e. minimise the *sum of travel times*.

use std::time::Instant;

use etcs_network::{NetworkError, Scenario};
use etcs_sat::{maxsat, Lit, Objective, Strategy};

use crate::decode::SolvedPlan;
use crate::encoder::{encode, EncoderConfig, TaskKind};
use crate::instance::Instance;
use crate::tasks::{DesignOutcome, TaskReport};

/// *Schedule optimisation, per-train variant*: free the arrivals and
/// minimise the **total travel time** `Σ_tr (arrival_tr − departure_tr)`
/// in steps, then the number of VSS borders.
///
/// Because each `visited[tr]` chain is monotone, a train's travel time
/// equals the number of steps at which it has not yet visited its goal, so
/// the objective is a plain cardinality sum over `¬visited` literals.
///
/// Returns costs `[total_travel_steps, borders]`.
///
/// # Errors
///
/// Returns [`NetworkError`] if the scenario is malformed.
///
/// # Examples
///
/// ```
/// use etcs_core::{optimize_arrivals, DesignOutcome, EncoderConfig};
/// use etcs_network::fixtures;
///
/// let scenario = fixtures::running_example();
/// let (outcome, _) = optimize_arrivals(&scenario, &EncoderConfig::default())?;
/// let DesignOutcome::Solved { costs, .. } = outcome else { unreachable!() };
/// assert!(costs[0] > 0);
/// # Ok::<(), etcs_network::NetworkError>(())
/// ```
pub fn optimize_arrivals(
    scenario: &Scenario,
    config: &EncoderConfig,
) -> Result<(DesignOutcome, TaskReport), NetworkError> {
    let start = Instant::now();
    let open = scenario.without_arrivals();
    let inst = Instance::new(&open)?;
    let mut enc = encode(&inst, config, &TaskKind::Optimize);
    let stats = enc.stats;

    // Σ_tr #(steps after departure at which the goal is not yet visited).
    let cost_lits: Vec<Lit> = (0..inst.trains.len())
        .flat_map(|tr| {
            let dep = inst.trains[tr].dep_step;
            (dep..inst.t_max)
                .filter_map(|t| enc.vars.visited[tr][t].map(|l| !l))
                .collect::<Vec<_>>()
        })
        .collect();
    let travel_objective = Objective::count_of(cost_lits);
    let border_objective = enc.border_objective.clone();

    let result = maxsat::minimize_lex_full(
        &mut enc.solver,
        &[travel_objective, border_objective],
        Strategy::LinearSatUnsat,
    )
    .unwrap_or_else(|_| unreachable!("no conflict budget configured"));
    let (outcome, calls) = match result {
        Some(r) => {
            let plan = SolvedPlan::decode(&inst, &enc.vars, &r.model);
            (
                DesignOutcome::Solved {
                    plan,
                    costs: r.costs,
                },
                r.solver_calls,
            )
        }
        None => (DesignOutcome::Infeasible, 1),
    };
    Ok((
        outcome,
        TaskReport {
            stats,
            runtime: start.elapsed(),
            solver_calls: calls,
            search: *enc.solver.stats(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize;
    use etcs_network::fixtures;

    fn config() -> EncoderConfig {
        EncoderConfig::default()
    }

    fn total_travel(inst: &Instance, plan: &SolvedPlan) -> usize {
        plan.arrival_steps(inst)
            .iter()
            .zip(&inst.trains)
            .map(|(a, spec)| a.expect("arrives") - spec.dep_step)
            .sum()
    }

    #[test]
    fn minimises_total_travel_on_running_example() {
        let scenario = fixtures::running_example();
        let open = scenario.without_arrivals();
        let inst = Instance::new(&open).expect("valid");

        let (by_arrivals, _) = optimize_arrivals(&scenario, &config()).expect("ok");
        let DesignOutcome::Solved { plan: pa, costs } = by_arrivals else {
            panic!("feasible");
        };
        // Reported cost equals the decoded total travel time.
        assert_eq!(costs[0] as usize, total_travel(&inst, &pa));

        // The completion-oriented optimum cannot have smaller total travel.
        let (by_completion, _) = optimize(&scenario, &config()).expect("ok");
        let pc = by_completion.plan().expect("feasible");
        assert!(total_travel(&inst, &pa) <= total_travel(&inst, pc));
    }

    #[test]
    fn plan_is_independently_valid() {
        let scenario = fixtures::running_example();
        let open = scenario.without_arrivals();
        let inst = Instance::new(&open).expect("valid");
        let (outcome, _) = optimize_arrivals(&scenario, &config()).expect("ok");
        let plan = outcome.plan().expect("feasible");
        // Every train still arrives; the decoded plan is well-formed.
        for a in plan.arrival_steps(&inst) {
            assert!(a.is_some());
        }
    }

    #[test]
    fn infeasible_scenarios_are_reported() {
        // A train that can never reach its goal: departure at the horizon.
        let mut scenario = fixtures::running_example();
        let mut runs = scenario.schedule.runs().to_vec();
        runs[0].departure = scenario.horizon;
        scenario.schedule = etcs_network::Schedule::new(runs);
        let (outcome, _) = optimize_arrivals(&scenario, &config()).expect("ok");
        assert!(matches!(outcome, DesignOutcome::Infeasible));
    }
}
