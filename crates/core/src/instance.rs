//! Problem instances: a scenario lifted onto the discrete grid, with all
//! per-train data and distance tables the encoder needs.

use etcs_network::{DiscreteNet, EdgeId, NetworkError, Scenario, TrainId};

/// What happens when a train completes its run (pinned-down semantics the
//  paper leaves informal; see DESIGN.md §3).
/// Exit behaviour of a train at its destination.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExitPolicy {
    /// The destination is a boundary station: the train leaves the modelled
    /// network and stops occupying track.
    Leave,
    /// The destination is interior: the train parks on a destination track
    /// and keeps occupying it until the end of the scenario.
    Park,
}

/// Discrete per-train data.
#[derive(Clone, Debug)]
pub struct TrainSpec {
    /// Dense train id (index into [`Instance::trains`]).
    pub id: TrainId,
    /// Display name.
    pub name: String,
    /// Departure time step.
    pub dep_step: usize,
    /// Arrival deadline step (`None` for the optimisation task).
    pub deadline_step: Option<usize>,
    /// Segments the train occupies (`l*` of the paper, ≥ 1).
    pub length: usize,
    /// Segments the train may advance per step (`v*`, ≥ 1).
    pub speed: u32,
    /// Edges of the origin station.
    pub origin_edges: Vec<EdgeId>,
    /// Edges of the destination station.
    pub goal_edges: Vec<EdgeId>,
    /// Intermediate stops: edges and optional deadline steps.
    pub stops: Vec<(Vec<EdgeId>, Option<usize>)>,
    /// Exit behaviour at the destination.
    pub exit: ExitPolicy,
}

/// A scenario prepared for encoding: discrete network, per-train specs and
/// the all-pairs segment distance table.
#[derive(Debug, Clone)]
pub struct Instance {
    /// The source scenario.
    pub scenario: Scenario,
    /// The discretised network.
    pub net: DiscreteNet,
    /// Number of time steps.
    pub t_max: usize,
    /// Per-train discrete data.
    pub trains: Vec<TrainSpec>,
    /// `dist[e][f]` = line-graph hop distance, `None` if disconnected.
    dist: Vec<Vec<Option<u32>>>,
}

impl Instance {
    /// Prepares a scenario.
    ///
    /// # Errors
    ///
    /// Propagates [`NetworkError`] from validation and discretisation, and
    /// reports dangling station references.
    pub fn new(scenario: &Scenario) -> Result<Self, NetworkError> {
        scenario.validate()?;
        let net = scenario.discretise()?;
        let t_max = scenario.t_max();

        let mut trains = Vec::new();
        for (id, run) in scenario.schedule.iter() {
            let origin_edges = net.station_edges(run.origin).to_vec();
            let goal_edges = net.station_edges(run.destination).to_vec();
            if origin_edges.is_empty() || goal_edges.is_empty() {
                return Err(NetworkError::UnknownReference {
                    what: format!(
                        "train `{}` starts or ends at a station with no tracks",
                        run.train.name
                    ),
                });
            }
            let stops = run
                .stops
                .iter()
                .map(|&(s, deadline)| {
                    (
                        net.station_edges(s).to_vec(),
                        deadline.map(|d| scenario.step_of(d)),
                    )
                })
                .collect();
            let exit = if scenario.network.stations()[run.destination.index()].boundary {
                ExitPolicy::Leave
            } else {
                ExitPolicy::Park
            };
            trains.push(TrainSpec {
                id,
                name: run.train.name.clone(),
                dep_step: scenario.step_of(run.departure),
                deadline_step: run.arrival.map(|a| scenario.step_of(a)),
                length: run.train.discrete_length(scenario.r_s) as usize,
                speed: run.train.discrete_speed(scenario.r_s, scenario.r_t) as u32,
                origin_edges,
                goal_edges,
                stops,
                exit,
            });
        }

        let dist = (0..net.num_edges())
            .map(|e| net.edge_distances(EdgeId::from_index(e)))
            .collect();

        Ok(Instance {
            scenario: scenario.clone(),
            net,
            t_max,
            trains,
            dist,
        })
    }

    /// Hop distance between two segments.
    pub fn dist(&self, e: EdgeId, f: EdgeId) -> Option<u32> {
        self.dist[e.index()][f.index()]
    }

    /// Minimum hop distance from a segment to any segment of a set.
    pub fn dist_to_set(&self, e: EdgeId, set: &[EdgeId]) -> Option<u32> {
        set.iter().filter_map(|&g| self.dist(e, g)).min()
    }

    /// The edges train `tr` may legally occupy at step `t` — the
    /// *time–space cone*: reachable from the origin in the elapsed steps and
    /// (when `prune_to_goal`) still able to make its deadline. Trains longer
    /// than one segment get a `length - 1` slack on both sides because the
    /// cone is evaluated per occupied segment, not per train front.
    ///
    /// The pruning is sound: a removed `occupies` variable is 0 in every
    /// plan satisfying the movement and deadline constraints.
    pub fn active_edges(&self, tr: &TrainSpec, t: usize, prune_to_goal: bool) -> Vec<EdgeId> {
        if t < tr.dep_step {
            return Vec::new();
        }
        let slack = (tr.length - 1) as u32;
        let elapsed = (t - tr.dep_step) as u32;
        let from_origin = tr.speed.saturating_mul(elapsed).saturating_add(slack);
        let deadline = tr.deadline_step.unwrap_or(self.t_max - 1);
        let remaining = deadline.saturating_sub(t) as u32;
        let to_goal = tr.speed.saturating_mul(remaining).saturating_add(slack);
        (0..self.net.num_edges())
            .map(EdgeId::from_index)
            .filter(|&e| {
                let o = self.dist_to_set(e, &tr.origin_edges);
                if !matches!(o, Some(d) if d <= from_origin) {
                    return false;
                }
                if prune_to_goal {
                    let g = self.dist_to_set(e, &tr.goal_edges);
                    if !matches!(g, Some(d) if d <= to_goal) {
                        return false;
                    }
                }
                true
            })
            .collect()
    }

    /// Sets every train's arrival deadline to step `d` (used by the
    /// shrinking-horizon optimisation search).
    pub fn set_uniform_deadline(&mut self, d: usize) {
        for tr in &mut self.trains {
            tr.deadline_step = Some(d);
        }
    }

    /// A lower bound on the step by which train `tr` can first reach its
    /// goal: departure plus unobstructed travel time.
    pub fn earliest_arrival(&self, tr: &TrainSpec) -> Option<usize> {
        let hops = tr
            .origin_edges
            .iter()
            .filter_map(|&o| self.dist_to_set(o, &tr.goal_edges))
            .min()?;
        Some(tr.dep_step + (hops as usize).div_ceil(tr.speed as usize))
    }

    /// A lower bound on the smallest uniform arrival deadline any plan can
    /// meet: the latest [`earliest_arrival`](Self::earliest_arrival) over
    /// all trains (a train with no path to its goal contributes the horizon
    /// end). The optimisation searches start their deadline walk here.
    pub fn completion_lower_bound(&self) -> usize {
        self.trains
            .iter()
            .map(|tr| self.earliest_arrival(tr).unwrap_or(self.t_max - 1))
            .max()
            .unwrap_or(0)
    }

    /// The paper's nominal variable count (`|Trains| · t_max · |E|` occupancy
    /// variables plus one border variable per node that could carry one) —
    /// the "Var." column of Table I.
    pub fn nominal_var_count(&self) -> usize {
        self.trains.len() * self.t_max * self.net.num_edges()
            + self.net.border_candidates().len()
            + self.net.forced_borders().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etcs_network::fixtures;

    #[test]
    fn running_example_instance() {
        let inst = Instance::new(&fixtures::running_example()).expect("valid");
        assert_eq!(inst.trains.len(), 4);
        assert_eq!(inst.t_max, 11);
        let t1 = &inst.trains[0];
        assert_eq!(t1.dep_step, 0);
        assert_eq!(t1.deadline_step, Some(9));
        assert_eq!(t1.speed, 3);
        assert_eq!(t1.length, 1);
        assert_eq!(t1.exit, ExitPolicy::Leave);
        let t3 = &inst.trains[2];
        assert_eq!(t3.exit, ExitPolicy::Park, "station C is interior");
        assert_eq!(t3.goal_edges.len(), 2, "both C platform tracks");
    }

    #[test]
    fn distances_symmetric_and_zero_on_diagonal() {
        let inst = Instance::new(&fixtures::running_example()).expect("valid");
        let n = inst.net.num_edges();
        for e in 0..n {
            let e = EdgeId::from_index(e);
            assert_eq!(inst.dist(e, e), Some(0));
            for f in 0..n {
                let f = EdgeId::from_index(f);
                assert_eq!(inst.dist(e, f), inst.dist(f, e));
            }
        }
    }

    #[test]
    fn cone_grows_with_time() {
        let inst = Instance::new(&fixtures::running_example()).expect("valid");
        let tr = &inst.trains[0];
        let c0 = inst.active_edges(tr, 0, false);
        let c1 = inst.active_edges(tr, 1, false);
        assert!(c0.len() <= c1.len());
        // At departure the train is at (or spilling out of) its origin.
        assert!(!c0.is_empty());
        for e in &c0 {
            let d = inst.dist_to_set(*e, &tr.origin_edges).expect("connected");
            assert!(d <= (tr.length - 1) as u32);
        }
    }

    #[test]
    fn cone_is_empty_before_departure() {
        let inst = Instance::new(&fixtures::running_example()).expect("valid");
        let t3 = &inst.trains[2];
        assert_eq!(t3.dep_step, 2);
        assert!(inst.active_edges(t3, 0, false).is_empty());
        assert!(inst.active_edges(t3, 1, false).is_empty());
        assert!(!inst.active_edges(t3, 2, false).is_empty());
    }

    #[test]
    fn goal_pruning_shrinks_late_cones() {
        let inst = Instance::new(&fixtures::running_example()).expect("valid");
        let tr = &inst.trains[0]; // deadline step 9
        let unpruned = inst.active_edges(tr, 9, false);
        let pruned = inst.active_edges(tr, 9, true);
        assert!(pruned.len() < unpruned.len());
        // At the deadline the pruned cone hugs the goal.
        for e in &pruned {
            let d = inst.dist_to_set(*e, &tr.goal_edges).expect("connected");
            assert!(d <= (tr.length - 1) as u32);
        }
    }

    #[test]
    fn nominal_var_count_formula() {
        let inst = Instance::new(&fixtures::running_example()).expect("valid");
        let expected = 4 * 11 * inst.net.num_edges()
            + inst.net.border_candidates().len()
            + inst.net.forced_borders().len();
        assert_eq!(inst.nominal_var_count(), expected);
    }
}
