//! Multi-core layers over the design tasks: batch APIs that fan
//! independent scenarios out across cores, and a deadline *portfolio* that
//! races two search strategies on the same instance.
//!
//! Everything here is built on `std::thread::scope` — scenarios are
//! independent SAT problems, so plain scoped threads with an atomic work
//! index saturate the cores without any pool machinery. Per-thread state
//! (encodings, solvers) never crosses a thread boundary.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::thread;
use std::time::Instant;

use etcs_network::{NetworkError, Scenario, VssLayout};
use etcs_obs::Obs;
use etcs_sat::{Lit, SatResult, Solver, Stats};

use crate::encoder::{encode, EncoderConfig, Encoding, TaskKind};
use crate::instance::Instance;
use crate::tasks::{
    minimize_borders, optimize_incremental_obs, optimize_obs, verify_obs, DesignOutcome, Stage2,
    TaskReport, VerifyOutcome,
};

/// Which optimisation loop the batch/portfolio APIs run per scenario.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OptimizeMode {
    /// The from-scratch loop ([`optimize`]): one encoding per probe.
    Scratch,
    /// One persistent incremental solver ([`optimize_incremental`]).
    #[default]
    Incremental,
    /// Race incremental walk-up against binary search over the deadline
    /// selectors ([`optimize_portfolio`]); first verdict wins.
    Portfolio,
}

/// Default worker count: one per available core.
fn default_threads() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f` over `items` on `threads` scoped workers. Work is handed out
/// through an atomic index (cheap dynamic load balancing — scenario solve
/// times vary by orders of magnitude); results come back in input order.
///
/// With an enabled `obs`, every worker thread runs inside a
/// `parallel.worker` span (field `worker`; close fields `jobs`,
/// `elapsed_us`), so a trace shows how the batch was load-balanced.
fn run_batch<T, R, F>(items: &[T], threads: usize, obs: &Obs, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.clamp(1, n.max(1));
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let next = &next;
                let f = &f;
                let obs = obs.clone();
                s.spawn(move || {
                    let span = obs.span_with("parallel.worker", &[("worker", w.into())]);
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(&items[i])));
                    }
                    span.close_with(&[("jobs", out.len().into())]);
                    out
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("batch worker panicked") {
                results[i] = Some(r);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every index was claimed exactly once"))
        .collect()
}

/// [`verify`] for a batch of independent `(scenario, layout)` jobs, solved
/// across all available cores. Results are in input order.
pub fn verify_all(
    jobs: &[(Scenario, VssLayout)],
    config: &EncoderConfig,
) -> Vec<Result<(VerifyOutcome, TaskReport), NetworkError>> {
    verify_all_with_threads(jobs, config, default_threads())
}

/// [`verify_all`] with an explicit worker count (mainly for scaling
/// measurements; `threads` is clamped to `1..=jobs.len()`).
pub fn verify_all_with_threads(
    jobs: &[(Scenario, VssLayout)],
    config: &EncoderConfig,
    threads: usize,
) -> Vec<Result<(VerifyOutcome, TaskReport), NetworkError>> {
    verify_all_obs(jobs, config, threads, &Obs::disabled())
}

/// [`verify_all_with_threads`] with observability: a `parallel.worker` span
/// per worker thread, each job traced through [`crate::verify_obs`] on the
/// shared handle (span ids and `seq` numbers keep concurrent jobs apart).
pub fn verify_all_obs(
    jobs: &[(Scenario, VssLayout)],
    config: &EncoderConfig,
    threads: usize,
    obs: &Obs,
) -> Vec<Result<(VerifyOutcome, TaskReport), NetworkError>> {
    run_batch(jobs, threads, obs, |(scenario, layout)| {
        verify_obs(scenario, layout, config, obs)
    })
}

/// Optimises a batch of independent scenarios across all available cores,
/// each with the loop selected by `mode`. Results are in input order.
pub fn optimize_all(
    scenarios: &[Scenario],
    config: &EncoderConfig,
    mode: OptimizeMode,
) -> Vec<Result<(DesignOutcome, TaskReport), NetworkError>> {
    optimize_all_with_threads(scenarios, config, mode, default_threads())
}

/// [`optimize_all`] with an explicit worker count (mainly for scaling
/// measurements; `threads` is clamped to `1..=scenarios.len()`).
///
/// Note [`OptimizeMode::Portfolio`] itself spawns two racer threads per
/// scenario, so a portfolio batch oversubscribes cores at
/// `threads = num_cpus`; prefer `Incremental` for saturated batches.
pub fn optimize_all_with_threads(
    scenarios: &[Scenario],
    config: &EncoderConfig,
    mode: OptimizeMode,
    threads: usize,
) -> Vec<Result<(DesignOutcome, TaskReport), NetworkError>> {
    optimize_all_obs(scenarios, config, mode, threads, &Obs::disabled())
}

/// [`optimize_all_with_threads`] with observability: a `parallel.worker`
/// span per worker thread and every scenario traced through the `mode`'s
/// `*_obs` task on the shared handle.
pub fn optimize_all_obs(
    scenarios: &[Scenario],
    config: &EncoderConfig,
    mode: OptimizeMode,
    threads: usize,
    obs: &Obs,
) -> Vec<Result<(DesignOutcome, TaskReport), NetworkError>> {
    run_batch(scenarios, threads, obs, |scenario| match mode {
        OptimizeMode::Scratch => optimize_obs(scenario, config, obs),
        OptimizeMode::Incremental => optimize_incremental_obs(scenario, config, obs),
        OptimizeMode::Portfolio => optimize_portfolio_obs(scenario, config, obs),
    })
}

/// Conflicts per budget slice of the portfolio racers: long enough that
/// slicing overhead is noise, short enough that a losing racer stops
/// within milliseconds of the winner's claim.
const RACE_SLICE: u64 = 4096;

/// Solves under `assumptions` in conflict-budget slices, checking the
/// shared claim flag between slices. `None` means the other racer claimed
/// the verdict first. On a verdict the budget is lifted again, leaving the
/// solver ready for the unbudgeted Stage-2 MaxSAT.
fn solve_budgeted(
    solver: &mut Solver,
    assumptions: &[Lit],
    claimed: &AtomicBool,
    slice: u64,
) -> Option<SatResult> {
    loop {
        if claimed.load(Ordering::Relaxed) {
            return None;
        }
        solver.set_conflict_budget(Some(slice));
        match solver.solve_with(assumptions) {
            SatResult::Unknown => continue,
            verdict => {
                solver.set_conflict_budget(None);
                return Some(verdict);
            }
        }
    }
}

/// What a winning racer hands back to [`optimize_portfolio`].
struct RaceWin {
    outcome: DesignOutcome,
    stats: crate::encoder::EncodingStats,
    solver_calls: usize,
    search: Stats,
}

/// The probe assumptions for deadline `d`: the selector plus the
/// out-of-cone occupancy prunes (see
/// [`Encoding::deadline_probe_assumptions`]); empty only for an empty
/// schedule, where the base formula is the whole probe.
fn deadline_assumption(enc: &Encoding, inst: &Instance, d: usize) -> Vec<Lit> {
    enc.deadline_probe_assumptions(inst, d)
}

/// Claims the race and finishes Stage 2 on the warm solver; `None` if the
/// other racer already claimed. The winning racer emits the
/// `portfolio.outcome` event: which `strategy` claimed the verdict first
/// (that *is* the why — the portfolio takes whoever proves the optimal
/// deadline earliest), how many `probes` it spent, and what it found.
fn claim_and_finish(
    mut enc: Encoding,
    inst: &Instance,
    best: Option<usize>,
    mut calls: usize,
    claimed: &AtomicBool,
    strategy: &'static str,
    obs: &Obs,
) -> Option<RaceWin> {
    if claimed
        .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
        .is_err()
    {
        return None;
    }
    let stats = enc.stats;
    let Some(d) = best else {
        obs.event(
            "portfolio.outcome",
            &[
                ("strategy", strategy.into()),
                ("feasible", false.into()),
                ("probes", calls.into()),
            ],
        );
        return Some(RaceWin {
            outcome: DesignOutcome::Infeasible,
            stats,
            solver_calls: calls,
            search: *enc.solver.stats(),
        });
    };
    obs.event(
        "portfolio.outcome",
        &[
            ("strategy", strategy.into()),
            ("feasible", true.into()),
            ("deadline", d.into()),
            ("probes", calls.into()),
        ],
    );
    let pin = deadline_assumption(&enc, inst, d);
    let (result, stage2_calls) = minimize_borders(&mut enc, inst, &pin, obs);
    calls += stage2_calls;
    let (plan, border_cost) = match result {
        Stage2::Solved(plan, cost) => (plan, cost),
        // The racers use conflict budgets only during probing; Stage 2 runs
        // unbudgeted and without an interrupt.
        Stage2::Unsat | Stage2::Interrupted => {
            unreachable!("the probed deadline was satisfiable")
        }
    };
    Some(RaceWin {
        outcome: DesignOutcome::Solved {
            plan,
            costs: vec![d as u64 + 1, border_cost],
        },
        stats,
        solver_calls: calls,
        search: *enc.solver.stats(),
    })
}

/// Racer 1: incremental walk-up from the completion lower bound — the
/// first satisfiable deadline is the optimum (feasibility is monotone).
fn race_walk_up(
    inst: &Instance,
    config: &EncoderConfig,
    claimed: &AtomicBool,
    task: &etcs_obs::Span,
    obs: &Obs,
) -> Option<RaceWin> {
    let span = task.child_with("race", &[("strategy", "walk_up".into())]);
    let mut enc = encode(inst, config, &TaskKind::OptimizeIncremental);
    enc.solver.set_obs(obs.clone());
    let mut calls = 0usize;
    let max_deadline = inst.t_max - 1;
    let lower = inst.completion_lower_bound().min(max_deadline);
    let mut best = None;
    let mut yielded = false;
    for d in lower..=max_deadline {
        calls += 1;
        let assumptions = deadline_assumption(&enc, inst, d);
        match solve_budgeted(&mut enc.solver, &assumptions, claimed, RACE_SLICE) {
            Some(SatResult::Sat(_)) => {
                best = Some(d);
                break;
            }
            Some(SatResult::Unsat { .. }) => {}
            Some(SatResult::Unknown) => unreachable!("filtered by solve_budgeted"),
            None => {
                yielded = true;
                break;
            }
        }
    }
    let win = if yielded {
        None
    } else {
        claim_and_finish(enc, inst, best, calls, claimed, "walk_up", obs)
    };
    span.close_with(&[("probes", calls.into()), ("won", win.is_some().into())]);
    win
}

/// Racer 2: binary search over the deadline selectors. One confirming
/// probe at the horizon end decides feasibility; afterwards the invariant
/// is `feasible(hi) ∧ ∀d<lo: infeasible(d)`, so `lo == hi` is the optimum.
fn race_binary(
    inst: &Instance,
    config: &EncoderConfig,
    claimed: &AtomicBool,
    task: &etcs_obs::Span,
    obs: &Obs,
) -> Option<RaceWin> {
    let span = task.child_with("race", &[("strategy", "binary".into())]);
    let mut enc = encode(inst, config, &TaskKind::OptimizeIncremental);
    enc.solver.set_obs(obs.clone());
    let mut calls = 0usize;
    let max_deadline = inst.t_max - 1;
    let lower = inst.completion_lower_bound().min(max_deadline);

    let finish = |enc: Encoding, best, calls: usize, yielded: bool| {
        let win = if yielded {
            None
        } else {
            claim_and_finish(enc, inst, best, calls, claimed, "binary", obs)
        };
        span.close_with(&[("probes", calls.into()), ("won", win.is_some().into())]);
        win
    };

    calls += 1;
    let top = deadline_assumption(&enc, inst, max_deadline);
    let feasible = match solve_budgeted(&mut enc.solver, &top, claimed, RACE_SLICE) {
        Some(SatResult::Sat(_)) => true,
        Some(SatResult::Unsat { .. }) => false,
        Some(SatResult::Unknown) => unreachable!("filtered by solve_budgeted"),
        None => return finish(enc, None, calls, true),
    };
    let best = if feasible {
        let (mut lo, mut hi) = (lower, max_deadline);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            calls += 1;
            let assumptions = deadline_assumption(&enc, inst, mid);
            match solve_budgeted(&mut enc.solver, &assumptions, claimed, RACE_SLICE) {
                Some(SatResult::Sat(_)) => hi = mid,
                Some(SatResult::Unsat { .. }) => lo = mid + 1,
                Some(SatResult::Unknown) => unreachable!("filtered by solve_budgeted"),
                None => return finish(enc, None, calls, true),
            }
        }
        Some(lo)
    } else {
        None
    };
    finish(enc, best, calls, false)
}

/// [`optimize_incremental`] as a two-strategy **portfolio**: one thread
/// walks the deadline up from the lower bound (cheap when the optimum is
/// close to it), one binary-searches the selector range (few probes when
/// it is not). Each runs on its own persistent solver in conflict-budget
/// slices of [`RACE_SLICE`], polling a shared claim flag between slices;
/// the first racer to prove the optimal deadline claims the race and runs
/// the border MaxSAT on its warm solver. Optima are bit-identical to
/// [`optimize`] / [`optimize_incremental`].
///
/// # Errors
///
/// Returns [`NetworkError`] if the scenario is malformed.
pub fn optimize_portfolio(
    scenario: &Scenario,
    config: &EncoderConfig,
) -> Result<(DesignOutcome, TaskReport), NetworkError> {
    optimize_portfolio_obs(scenario, config, &Obs::disabled())
}

/// [`optimize_portfolio`] with observability: one `task.optimize_portfolio`
/// span wrapping a `race` child span per strategy (fields: `strategy`,
/// close fields `probes`/`won`) and a `portfolio.outcome` point event
/// naming the winning strategy, its probe count, and the verdict it
/// claimed. The winner's Stage 2 runs under the usual `stage2` span.
///
/// # Errors
///
/// Returns [`NetworkError`] if the scenario is malformed.
pub fn optimize_portfolio_obs(
    scenario: &Scenario,
    config: &EncoderConfig,
    obs: &Obs,
) -> Result<(DesignOutcome, TaskReport), NetworkError> {
    let start = Instant::now();
    let task = obs.span_with(
        "task.optimize_portfolio",
        &[("scenario", scenario.name.as_str().into())],
    );
    let open = scenario.without_arrivals();
    let inst = Instance::new(&open)?;
    let claimed = AtomicBool::new(false);
    let win = thread::scope(|s| {
        let walk = s.spawn(|| race_walk_up(&inst, config, &claimed, &task, obs));
        let binary = s.spawn(|| race_binary(&inst, config, &claimed, &task, obs));
        let w = walk.join().expect("walk-up racer panicked");
        let b = binary.join().expect("binary racer panicked");
        w.or(b)
    })
    .expect("exactly one racer claims the race");
    match &win.outcome {
        DesignOutcome::Solved { costs, .. } => task.close_with(&[
            ("feasible", true.into()),
            ("deadline", (costs[0] - 1).into()),
            ("borders", costs[1].into()),
            ("solver_calls", win.solver_calls.into()),
        ]),
        DesignOutcome::Infeasible => task.close_with(&[("feasible", false.into())]),
    }
    Ok((
        win.outcome,
        TaskReport {
            stats: win.stats,
            runtime: start.elapsed(),
            solver_calls: win.solver_calls,
            search: win.search,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{optimize, verify};
    use etcs_network::fixtures;

    fn costs(outcome: &DesignOutcome) -> Option<&[u64]> {
        match outcome {
            DesignOutcome::Solved { costs, .. } => Some(costs),
            DesignOutcome::Infeasible => None,
        }
    }

    #[test]
    fn portfolio_matches_scratch_on_running_example() {
        let scenario = fixtures::running_example();
        let config = EncoderConfig::default();
        let (scratch, _) = optimize(&scenario, &config).expect("well-formed");
        let (portfolio, report) = optimize_portfolio(&scenario, &config).expect("well-formed");
        assert_eq!(
            costs(&scratch).expect("solves"),
            costs(&portfolio).expect("solves"),
            "portfolio must return bit-identical optima"
        );
        assert!(report.solver_calls >= 1);
    }

    #[test]
    fn optimize_all_matches_sequential_results() {
        let scenarios = vec![fixtures::running_example(), fixtures::simple_layout()];
        let config = EncoderConfig::default();
        let sequential: Vec<_> = scenarios
            .iter()
            .map(|sc| optimize(sc, &config).expect("well-formed").0)
            .collect();
        for mode in [
            OptimizeMode::Scratch,
            OptimizeMode::Incremental,
            OptimizeMode::Portfolio,
        ] {
            let batch = optimize_all(&scenarios, &config, mode);
            assert_eq!(batch.len(), scenarios.len());
            for (seq, par) in sequential.iter().zip(&batch) {
                let par = par.as_ref().expect("well-formed");
                assert_eq!(costs(seq), costs(&par.0), "{mode:?} diverged");
            }
        }
    }

    #[test]
    fn verify_all_matches_sequential_verdicts() {
        let jobs = vec![
            (fixtures::running_example(), VssLayout::pure_ttd()),
            (fixtures::simple_layout(), VssLayout::pure_ttd()),
        ];
        let config = EncoderConfig::default();
        let batch = verify_all(&jobs, &config);
        for ((scenario, layout), result) in jobs.iter().zip(&batch) {
            let (outcome, _) = result.as_ref().expect("well-formed");
            let (seq, _) = verify(scenario, layout, &config).expect("well-formed");
            assert_eq!(seq.is_feasible(), outcome.is_feasible());
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let scenarios = vec![fixtures::running_example(), fixtures::simple_layout()];
        let config = EncoderConfig::default();
        let one = optimize_all_with_threads(&scenarios, &config, OptimizeMode::Incremental, 1);
        let many = optimize_all_with_threads(&scenarios, &config, OptimizeMode::Incremental, 8);
        for (a, b) in one.iter().zip(&many) {
            let a = a.as_ref().expect("well-formed");
            let b = b.as_ref().expect("well-formed");
            assert_eq!(costs(&a.0), costs(&b.0));
        }
    }
}
