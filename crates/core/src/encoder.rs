//! The SAT encoding of Section III of the paper.
//!
//! Variables (Section III-A):
//! * `border_v` — one per candidate node (TTD borders are constants),
//! * `occupies[tr][t][e]` — allocated only inside the train's time–space
//!   cone (a sound pruning; everything outside is provably 0),
//! * `visited[tr][t]` / `done[tr][t]` — completion tracking.
//!
//! Constraints (Section III-B):
//! 1. *Shape*: at every step a present train occupies exactly one chain of
//!    `l*` segments (chain-selector Tseitin encoding; plain exactly-one for
//!    single-segment trains).
//! 2. *Movement*: every occupied segment must be within `v*` hops of an
//!    occupied segment in the next step (and symmetrically backwards).
//! 3. *Separation*: two trains in the same TTD force an active VSS border
//!    on the chain between them; sharing a segment is a hard conflict.
//! 4. *Collision*: a train moving `e → f` forbids every other train from
//!    the segments on any `≤ v*`-hop path between them at both steps
//!    (paper-literal: including the endpoints, which also rules out
//!    immediate re-occupation; configurable).

// Index-coupled loops over parallel tables are intentional here.
#![allow(clippy::needless_range_loop)]

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

use etcs_network::{EdgeId, NodeId, NodeKind, VssLayout};
use etcs_sat::{
    CnfSink, DratProof, Lit, Objective, PortfolioConfig, PreprocessConfig, PreprocessStats, Solver,
    Var,
};

use crate::instance::{ExitPolicy, Instance};
use crate::trace::{EncodingTrace, TracedSolver};

/// How the built encoding's solver executes each (incremental) solve call.
///
/// This is a property of the *solving* side, not of the formula: verdicts
/// and optimal objective values are identical across modes, so every task
/// loop accepts any mode. Witness plans may differ between modes (several
/// optimal plans usually exist), and [`SolveMode::Portfolio`] is not
/// DRAT-certifiable — the `*_certified` task variants reject it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SolveMode {
    /// One sequential CDCL search (the default; required for certification).
    #[default]
    Single,
    /// An in-process clause-sharing portfolio of `n` diversified workers
    /// racing each solve call, first finisher cancelling the siblings (see
    /// `etcs_sat::parallel`). Values below 2 behave like
    /// [`SolveMode::Single`].
    Portfolio(usize),
}

/// Tunable encoder behaviour; defaults reproduce the paper's formulation.
#[derive(Clone, Copy, Debug)]
pub struct EncoderConfig {
    /// Prune occupancy variables that cannot reach the train's goal in the
    /// remaining time (sound; mandatory for the Nordlandsbanen scale).
    pub prune_to_goal: bool,
    /// Exclude the move's endpoints from the collision constraint, allowing
    /// a train to enter a segment in the same step another train leaves it.
    /// The paper's formulation keeps the endpoints (conservative).
    pub allow_immediate_reoccupation: bool,
    /// Also require every newly occupied segment to be within reach of the
    /// previous position (physically implied; strengthens propagation).
    pub symmetric_movement: bool,
    /// Mirror the emitted formula plus full provenance (variable labels,
    /// constraint groups, gates, objective references) into
    /// [`Encoding::trace`] so the `etcs-lint` audit can inspect it. Costs
    /// memory and time proportional to the encoding; off by default.
    pub trace: bool,
    /// Install a DRAT proof sink on the solver before the first clause so
    /// UNSAT verdicts can be certified against the traced formula (see
    /// [`Encoding::proof`]). Off by default.
    pub proof: bool,
    /// Run the certified SAT preprocessor ([`Encoding::preprocess`]) before
    /// the first solve: subsumption, self-subsuming resolution,
    /// failed-literal probing and bounded variable elimination, with all
    /// encoder-owned literals frozen. Verdicts, optima and reconstructed
    /// models are unchanged; only solve time is. Off by default.
    pub preprocess: bool,
    /// How each solve call on the built encoding executes (sequential or
    /// clause-sharing portfolio). Verdict- and optimum-preserving; see
    /// [`SolveMode`].
    pub solve_mode: SolveMode,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig {
            prune_to_goal: true,
            allow_immediate_reoccupation: false,
            symmetric_movement: true,
            trace: false,
            proof: false,
            preprocess: false,
            solve_mode: SolveMode::Single,
        }
    }
}

impl EncoderConfig {
    /// Returns a copy with [`solve_mode`](Self::solve_mode) replaced —
    /// convenience for sweeping one scenario across solve configurations
    /// (the `etcs-corpus` benchmark wiring).
    pub fn with_solve_mode(self, solve_mode: SolveMode) -> Self {
        EncoderConfig { solve_mode, ..self }
    }

    /// Returns a copy with [`preprocess`](Self::preprocess) set.
    pub fn with_preprocess(self, preprocess: bool) -> Self {
        EncoderConfig { preprocess, ..self }
    }
}

/// Which of the encoder's *deferrable* constraint families to emit.
///
/// The eager core — train shape chains, movement/speed, completion
/// tracking and the task goals — is always emitted: dropping any of it
/// changes what a "plan" even is. The three pairwise-interaction families
/// below are the ones a lazy refinement loop (`etcs-lazy`) can instead add
/// on demand, one violated concrete instance at a time, following Engels &
/// Wille's lazy constraint selection:
///
/// * [`shared`](Self::shared) — two trains must never occupy the same
///   segment (the `e == f` case of the separation constraint);
/// * [`separation`](Self::separation) — two trains inside one TTD force an
///   active VSS border on the chain between them;
/// * [`collision`](Self::collision) — a moving train's swept path is
///   exclusive against every other train at both end steps (trains cannot
///   pass through one another).
///
/// With a family disabled its constraint group is still *declared* (under
/// [`EncoderConfig::trace`]) but left empty, so the `etcs-lint` audit sees
/// — and, unless given a matching `LazyProfile` allowlist — flags exactly
/// which families the relaxation dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConstraintFamilies {
    /// Emit shared-segment mutual exclusion eagerly.
    pub shared: bool,
    /// Emit same-TTD VSS separation (border-between clauses) eagerly.
    pub separation: bool,
    /// Emit the no-passing sweep constraints eagerly.
    pub collision: bool,
}

impl ConstraintFamilies {
    /// Every family eager — the paper's monolithic encoding.
    pub const ALL: ConstraintFamilies = ConstraintFamilies {
        shared: true,
        separation: true,
        collision: true,
    };

    /// Only the eager core; all three pairwise families deferred.
    pub const CORE_ONLY: ConstraintFamilies = ConstraintFamilies {
        shared: false,
        separation: false,
        collision: false,
    };

    /// `true` when nothing is deferred (the relaxation is the full
    /// encoding).
    pub fn is_all(&self) -> bool {
        *self == ConstraintFamilies::ALL
    }

    /// Names of the constraint groups this selection leaves (fully or
    /// partially) relaxed — the allowlist a lint profile needs to accept
    /// the relaxed formula.
    pub fn relaxed_groups(&self) -> Vec<&'static str> {
        let mut groups = Vec::new();
        if !self.shared || !self.separation {
            groups.push("separation");
        }
        if !self.collision {
            groups.push("collision");
        }
        groups
    }
}

impl Default for ConstraintFamilies {
    fn default() -> Self {
        ConstraintFamilies::ALL
    }
}

/// Which task-specific constraints to add.
#[derive(Clone, Debug)]
pub enum TaskKind {
    /// Fixed VSS layout, arrival deadlines enforced.
    Verify(VssLayout),
    /// Free layout, arrival deadlines enforced.
    Generate,
    /// Free layout, deadlines dropped; completion objective added.
    Optimize,
    /// Free layout, deadlines dropped; one guarded-deadline selector per
    /// candidate completion step (see [`Encoding::step_selectors`]) so a
    /// single persistent solver can probe every deadline via
    /// `solve_with(&[sel_d])` instead of re-encoding per probe. No step
    /// objective is built — the selector search replaces it.
    OptimizeIncremental,
    /// Like [`TaskKind::Verify`], but every train's arrival constraint is
    /// guarded by a selector literal (see [`Encoding::deadline_selectors`])
    /// so unsat cores can pinpoint which deadlines conflict.
    Diagnose(VssLayout),
}

/// Size statistics of a built encoding.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EncodingStats {
    /// Border variables (the candidate nodes).
    pub border_vars: usize,
    /// Allocated occupancy variables (after cone pruning).
    pub occupies_vars: usize,
    /// The paper's nominal count: `|Trains| · t_max · |E| + |V|`.
    pub nominal_vars: usize,
    /// Total solver variables (including Tseitin auxiliaries).
    pub solver_vars: usize,
    /// Clauses in the solver after encoding.
    pub clauses: usize,
}

/// Variable tables of a built encoding.
#[derive(Debug)]
pub struct VarMap {
    /// `border[v]` — `Some` for candidate nodes.
    pub border: Vec<Option<Var>>,
    /// `occ[tr][t][e]` — `Some` inside the cone.
    pub occ: Vec<Vec<Vec<Option<Var>>>>,
    /// `visited[tr][t]` — train has reached its destination by `t`
    /// (`None` before departure).
    pub visited: Vec<Vec<Option<Lit>>>,
    /// `done[tr][t]` — train has completed (left or parked).
    pub done: Vec<Vec<Option<Lit>>>,
}

impl VarMap {
    /// Occupancy literal, `None` outside the cone (provably false).
    pub fn occ_lit(&self, tr: usize, t: usize, e: EdgeId) -> Option<Lit> {
        self.occ[tr][t][e.index()].map(Var::positive)
    }
}

/// A fully built SAT encoding, ready for the design tasks.
#[derive(Debug)]
pub struct Encoding {
    /// The loaded solver.
    pub solver: Solver,
    /// Variable tables for decoding.
    pub vars: VarMap,
    /// Size statistics.
    pub stats: EncodingStats,
    /// `min Σ border_v` objective (layout generation; secondary objective of
    /// optimisation).
    pub border_objective: Objective,
    /// `min Σ_t ¬done^t` objective (only for [`TaskKind::Optimize`]).
    ///
    /// Kept for the ablation study; [`Encoding::all_done`] enables the much
    /// faster monotone binary search the tasks use by default.
    pub step_objective: Option<Objective>,
    /// Cost offset of `step_objective`: steps before the last departure can
    /// never be all-done and are counted as a constant.
    pub step_cost_offset: u64,
    /// `all_done[t]` — literal true iff every train is done at step `t`
    /// (`None` before the last departure). Because every `done` chain is
    /// monotone, `Σ_t ¬done^t` equals the first `t` with `all_done[t]`,
    /// so the optimum can be found by searching on these assumptions.
    pub all_done: Vec<Option<Lit>>,
    /// For [`TaskKind::Diagnose`]: one selector literal per train, in
    /// schedule order; assuming a selector enforces that train's arrival
    /// deadline. Empty for the other tasks.
    pub deadline_selectors: Vec<Lit>,
    /// For [`TaskKind::OptimizeIncremental`]: `step_selectors[d]` is a
    /// selector literal whose assumption forces every train to reach its
    /// goal by step `d` — exactly the per-train goal the from-scratch
    /// optimisation loop asserts when probing deadline `d`, so both paths
    /// find the same optimum. Allocated for
    /// `d ∈ [completion_lower_bound, t_max)` (earlier deadlines are
    /// provably infeasible); `None` elsewhere and for the other tasks.
    pub step_selectors: Vec<Option<Lit>>,
    /// The formula mirror + provenance (only with [`EncoderConfig::trace`]).
    pub trace: Option<EncodingTrace>,
    /// Shared handle to the DRAT proof the solver appends to (only with
    /// [`EncoderConfig::proof`]). After an UNSAT solve, check it against
    /// `trace.formula.clauses()` — the mirror is the proof's axiom set.
    pub proof: Option<Arc<Mutex<DratProof>>>,
}

impl Encoding {
    /// Assumptions that probe deadline `d` on a [`TaskKind::OptimizeIncremental`]
    /// encoding: the selector `sel_d` plus `¬occ[tr,t,e]` for every
    /// occupancy variable outside the deadline-`d` time–space cone (the
    /// goal-side test of [`Instance::active_edges`]). The from-scratch loop
    /// never allocates those variables in its per-probe encoding; passing
    /// their negations as assumptions gives the persistent solver the same
    /// propagation-level pruning without permanently bloating the formula —
    /// each probe retracts them with its selector.
    ///
    /// Sound because every pruned literal is implied by the deadline the
    /// selector enforces: a plan meeting deadline `d` cannot occupy a
    /// segment from which the goal is no longer reachable in time.
    ///
    /// Empty only when the schedule is empty (no selector was allocated);
    /// callers then probe the unguarded base formula.
    pub fn deadline_probe_assumptions(&self, inst: &Instance, d: usize) -> Vec<Lit> {
        let mut assumptions: Vec<Lit> = self
            .step_selectors
            .get(d)
            .copied()
            .flatten()
            .into_iter()
            .collect();
        if assumptions.is_empty() {
            return assumptions;
        }
        for (tr, spec) in inst.trains.iter().enumerate() {
            let slack = (spec.length - 1) as u32;
            for t in spec.dep_step..inst.t_max {
                let reach = spec
                    .speed
                    .saturating_mul(d.saturating_sub(t) as u32)
                    .saturating_add(slack);
                for (e, var) in self.vars.occ[tr][t].iter().enumerate() {
                    let Some(v) = var else { continue };
                    let g = inst.dist_to_set(EdgeId::from_index(e), &spec.goal_edges);
                    if !matches!(g, Some(x) if x <= reach) {
                        assumptions.push(!v.positive());
                    }
                }
            }
        }
        assumptions
    }

    /// Runs the certified SAT preprocessor over the loaded formula, with
    /// every encoder-owned literal frozen first: border and occupancy
    /// variables, completion tracking (`visited`/`done`/`all_done`),
    /// deadline and step selectors, and both objectives' literals. These
    /// are exactly the variables later consulted by decoding, probed as
    /// assumptions, pinned as unit clauses, referenced by MaxSAT totalizer
    /// clauses, or mentioned by lazy refinement clauses — so only internal
    /// Tseitin auxiliaries are elimination candidates, which is what makes
    /// the pass safe under the eager, incremental, lazy and served loops.
    ///
    /// Verdicts, optima and decoded plans are unchanged (models are
    /// reconstructed exactly; DRAT proofs still check against the traced
    /// axioms); only solve time is affected.
    pub fn preprocess(&mut self, cfg: &PreprocessConfig) -> PreprocessStats {
        for v in self.vars.border.iter().flatten() {
            self.solver.freeze_var(*v);
        }
        for per_train in &self.vars.occ {
            for per_step in per_train {
                for v in per_step.iter().flatten() {
                    self.solver.freeze_var(*v);
                }
            }
        }
        for per_train in self.vars.visited.iter().chain(self.vars.done.iter()) {
            for l in per_train.iter().flatten() {
                self.solver.freeze_lit(*l);
            }
        }
        for l in self.all_done.iter().flatten() {
            self.solver.freeze_lit(*l);
        }
        for &l in &self.deadline_selectors {
            self.solver.freeze_lit(l);
        }
        for l in self.step_selectors.iter().flatten() {
            self.solver.freeze_lit(*l);
        }
        for &(l, _) in self.border_objective.terms() {
            self.solver.freeze_lit(l);
        }
        if let Some(obj) = &self.step_objective {
            for &(l, _) in obj.terms() {
                self.solver.freeze_lit(l);
            }
        }
        self.solver.preprocess(cfg)
    }

    /// (Re-)applies [`EncoderConfig::solve_mode`] to the loaded solver:
    /// installs the clause-sharing portfolio for
    /// [`SolveMode::Portfolio`], removes it for [`SolveMode::Single`].
    /// [`encode`] already calls this, so it is only needed when a caller
    /// changes its mind about the mode after building (the certified task
    /// variants use it to force sequential solving).
    ///
    /// A proof-logging solver ignores an installed portfolio (it falls back
    /// to the sequential search), so this is safe in any order relative to
    /// [`EncoderConfig::proof`].
    pub fn apply_solve_mode(&mut self, config: &EncoderConfig) {
        match config.solve_mode {
            SolveMode::Single => self.solver.set_portfolio(None),
            SolveMode::Portfolio(n) => self
                .solver
                .set_portfolio(Some(PortfolioConfig::with_threads(n))),
        }
    }
}

/// Builds the encoding for an instance and task (every constraint family
/// eager, the paper's monolithic formulation).
pub fn encode(inst: &Instance, config: &EncoderConfig, task: &TaskKind) -> Encoding {
    encode_with(inst, config, task, ConstraintFamilies::ALL)
}

/// [`encode`] with an explicit eager/lazy split: families disabled in
/// `families` are *not* emitted — their constraint groups are declared but
/// left empty — producing a sound relaxation of the full encoding (every
/// model of the full encoding satisfies the relaxation). The `etcs-lazy`
/// refinement loop re-adds violated instances of the deferred families as
/// plain clauses on [`Encoding::solver`].
pub fn encode_with(
    inst: &Instance,
    config: &EncoderConfig,
    task: &TaskKind,
    families: ConstraintFamilies,
) -> Encoding {
    Encoder::new(inst, config, task, families).build()
}

struct Encoder<'a> {
    inst: &'a Instance,
    config: &'a EncoderConfig,
    task: &'a TaskKind,
    families: ConstraintFamilies,
    solver: TracedSolver,
    border: Vec<Option<Var>>,
    occ: Vec<Vec<Vec<Option<Var>>>>,
    visited: Vec<Vec<Option<Lit>>>,
    done: Vec<Vec<Option<Lit>>>,
    active: Vec<Vec<Vec<EdgeId>>>,
    /// Memoised `paths(e, f, v)` results.
    path_cache: HashMap<(EdgeId, EdgeId, u32), Vec<EdgeId>>,
    /// Memoised `between(e, f)` border-literal lists; `None` = the pair is
    /// already separated by a forced TTD border.
    between_cache: HashMap<(EdgeId, EdgeId), Option<Vec<Lit>>>,
    /// Chains of each needed length.
    chain_cache: HashMap<usize, Vec<Vec<EdgeId>>>,
}

impl<'a> Encoder<'a> {
    fn new(
        inst: &'a Instance,
        config: &'a EncoderConfig,
        task: &'a TaskKind,
        families: ConstraintFamilies,
    ) -> Self {
        Encoder {
            inst,
            config,
            task,
            families,
            solver: TracedSolver::new(config.trace, config.proof),
            border: Vec::new(),
            occ: Vec::new(),
            visited: Vec::new(),
            done: Vec::new(),
            active: Vec::new(),
            path_cache: HashMap::new(),
            between_cache: HashMap::new(),
            chain_cache: HashMap::new(),
        }
    }

    fn build(mut self) -> Encoding {
        self.alloc_border_vars();
        self.alloc_occupancy_vars();
        let occupies_vars = self
            .occ
            .iter()
            .flatten()
            .flatten()
            .filter(|v| v.is_some())
            .count();

        for tr in 0..self.inst.trains.len() {
            self.encode_shape(tr);
            self.encode_movement(tr);
            self.encode_completion(tr);
        }
        self.encode_separation();
        self.encode_collision();
        let deadline_selectors = self.encode_task_goals();
        let step_selectors = if matches!(self.task, TaskKind::OptimizeIncremental) {
            self.build_step_selectors()
        } else {
            Vec::new()
        };
        self.seed_decision_order();

        let border_objective =
            Objective::count_of(self.border.iter().filter_map(|v| v.map(Var::positive)));
        self.solver
            .mark_objective(self.border.iter().filter_map(|v| v.map(Var::positive)));
        let (step_objective, step_cost_offset, all_done) =
            if matches!(self.task, TaskKind::Optimize) {
                self.build_step_objective()
            } else {
                (None, 0, Vec::new())
            };

        let (solver, trace, proof) = self.solver.finish();
        let stats = EncodingStats {
            border_vars: self.border.iter().filter(|v| v.is_some()).count(),
            occupies_vars,
            nominal_vars: self.inst.nominal_var_count(),
            solver_vars: solver.num_vars(),
            clauses: solver.num_clauses(),
        };
        let mut enc = Encoding {
            solver,
            vars: VarMap {
                border: self.border,
                occ: self.occ,
                visited: self.visited,
                done: self.done,
            },
            stats,
            border_objective,
            step_objective,
            step_cost_offset,
            all_done,
            deadline_selectors,
            step_selectors,
            trace,
            proof,
        };
        enc.apply_solve_mode(self.config);
        enc
    }

    // ------------------------------------------------------------------
    // Variables
    // ------------------------------------------------------------------

    fn alloc_border_vars(&mut self) {
        let net = &self.inst.net;
        self.border = vec![None; net.num_nodes()];
        for n in net.border_candidates() {
            let v = CnfSink::new_var(&mut self.solver);
            self.solver
                .tag_var(v, || format!("border[node={}]", n.index()));
            self.border[n.index()] = Some(v);
        }
        if let TaskKind::Verify(layout) | TaskKind::Diagnose(layout) = self.task {
            if !net.border_candidates().is_empty() {
                self.solver.begin_group(|| "border-fix".to_owned());
            }
            for n in net.border_candidates() {
                let v = self.border[n.index()].expect("candidate has a variable");
                if layout.borders().contains(&n) {
                    self.solver.assert_true(v.positive());
                } else {
                    self.solver.assert_false(v.positive());
                }
            }
        }
    }

    fn alloc_occupancy_vars(&mut self) {
        let num_edges = self.inst.net.num_edges();
        for tr in &self.inst.trains {
            // Deadline-based cone pruning would hard-wire the deadlines the
            // Diagnose task wants to treat as optional assumptions.
            let relaxed;
            let tr = if matches!(self.task, TaskKind::Diagnose(_)) {
                relaxed = crate::instance::TrainSpec {
                    deadline_step: None,
                    ..tr.clone()
                };
                &relaxed
            } else {
                tr
            };
            let mut per_train = Vec::with_capacity(self.inst.t_max);
            let mut active_train = Vec::with_capacity(self.inst.t_max);
            for t in 0..self.inst.t_max {
                let active = self.inst.active_edges(tr, t, self.config.prune_to_goal);
                let mut row: Vec<Option<Var>> = vec![None; num_edges];
                for &e in &active {
                    let v = CnfSink::new_var(&mut self.solver);
                    let name = &tr.name;
                    self.solver
                        .tag_var(v, || format!("occ[{name},t={t},seg={}]", e.index()));
                    row[e.index()] = Some(v);
                }
                per_train.push(row);
                active_train.push(active);
            }
            self.occ.push(per_train);
            self.active.push(active_train);
        }
    }

    fn occ_lit(&self, tr: usize, t: usize, e: EdgeId) -> Option<Lit> {
        self.occ[tr][t][e.index()].map(Var::positive)
    }

    /// Literal of a candidate border node; `None` when the node is a forced
    /// TTD border (constant true).
    fn border_lit(&self, n: NodeId) -> Option<Lit> {
        self.border[n.index()].map(Var::positive)
    }

    // ------------------------------------------------------------------
    // Constraint 1: shape (exactly one chain of length l*)
    // ------------------------------------------------------------------

    fn encode_shape(&mut self, tr: usize) {
        let spec = &self.inst.trains[tr];
        let length = spec.length;
        if spec.dep_step >= self.inst.t_max {
            return;
        }
        {
            let name = &self.inst.trains[tr].name;
            self.solver.begin_group(|| format!("shape[{name}]"));
        }
        if !self.chain_cache.contains_key(&length) {
            let chains = self.inst.net.chains(length);
            self.chain_cache.insert(length, chains);
        }
        for t in self.inst.trains[tr].dep_step..self.inst.t_max {
            if length == 1 {
                self.encode_shape_single(tr, t);
            } else {
                self.encode_shape_chains(tr, t);
            }
        }
    }

    /// Length-1 trains: the occupancy variables are the chain selectors.
    fn encode_shape_single(&mut self, tr: usize, t: usize) {
        let spec = &self.inst.trains[tr];
        let dep = spec.dep_step;
        let lits: Vec<Lit> = self.active[tr][t]
            .iter()
            .filter_map(|&e| self.occ_lit(tr, t, e))
            .collect();
        etcs_sat::card::at_most_one_sequential(&mut self.solver, &lits);
        // At departure the at-least side sharpens to the origin edges (the
        // train must start at its origin); emitting the weaker full-row
        // clause alongside would be immediately self-subsumed.
        let at_least: Vec<Lit> = if t == dep {
            self.inst.trains[tr]
                .origin_edges
                .clone()
                .iter()
                .filter_map(|&e| self.occ_lit(tr, t, e))
                .collect()
        } else {
            lits.clone()
        };
        self.presence_clause(tr, t, &at_least, &lits);
    }

    /// Longer trains: one selector per candidate chain.
    fn encode_shape_chains(&mut self, tr: usize, t: usize) {
        let spec = &self.inst.trains[tr];
        let length = spec.length;
        let dep = spec.dep_step;
        let origin_edges = spec.origin_edges.clone();
        let active_row: Vec<bool> = {
            let mut row = vec![false; self.inst.net.num_edges()];
            for &e in &self.active[tr][t] {
                row[e.index()] = true;
            }
            row
        };
        let chains: Vec<Vec<EdgeId>> = self.chain_cache[&length]
            .iter()
            .filter(|c| c.iter().all(|e| active_row[e.index()]))
            .filter(|c| t != dep || c.iter().any(|e| origin_edges.contains(e)))
            .cloned()
            .collect();

        let mut selectors: Vec<Lit> = Vec::with_capacity(chains.len());
        let mut covering: HashMap<EdgeId, Vec<Lit>> = HashMap::new();
        for chain in &chains {
            let sel = CnfSink::new_var(&mut self.solver).positive();
            selectors.push(sel);
            for &e in chain {
                let occ = self.occ_lit(tr, t, e).expect("chain edges are active");
                self.solver.implies(sel, occ);
                covering.entry(e).or_default().push(sel);
            }
        }
        // Occupied edges must be covered by the selected chain. For Park
        // trains, an edge every candidate chain covers needs no clause: the
        // presence clause over all selectors subsumes it.
        let park = self.inst.trains[tr].exit == ExitPolicy::Park;
        for &e in &self.active[tr][t] {
            let cov = covering.get(&e).map(|v| v.as_slice()).unwrap_or(&[]);
            if park && cov.len() == selectors.len() {
                continue;
            }
            let occ = self.occ_lit(tr, t, e).expect("active edge has a variable");
            let mut clause = vec![!occ];
            clause.extend_from_slice(cov);
            self.solver.add_clause(clause);
        }
        etcs_sat::card::at_most_one_sequential(&mut self.solver, &selectors);
        self.presence_clause(tr, t, &selectors, &selectors);
    }

    /// "Present unless done": Park trains are always present after
    /// departure; Leave trains may be done instead. Also ties `done` to
    /// absence for Leave trains. `at_least` is the at-least-one side (a
    /// subset of `all` — sharpened to the origin edges at departure); the
    /// done-exclusivity side always ranges over `all`.
    fn presence_clause(&mut self, tr: usize, t: usize, at_least: &[Lit], all: &[Lit]) {
        let spec = &self.inst.trains[tr];
        match spec.exit {
            ExitPolicy::Park => {
                self.solver.add_clause(at_least.iter().copied());
            }
            ExitPolicy::Leave => {
                // done[t] is allocated later in encode_completion; allocate
                // eagerly here via the done table.
                let done = self.done_lit_or_alloc(tr, t);
                let mut clause = vec![done];
                clause.extend_from_slice(at_least);
                self.solver.add_clause(clause);
                for &sel in all {
                    self.solver.add_clause([!done, !sel]);
                }
            }
        }
    }

    /// Done literal for a Leave train, allocating the variable on first use.
    fn done_lit_or_alloc(&mut self, tr: usize, t: usize) -> Lit {
        if self.done.len() <= tr {
            self.done.resize(self.inst.trains.len(), Vec::new());
            self.visited.resize(self.inst.trains.len(), Vec::new());
        }
        if self.done[tr].is_empty() {
            self.done[tr] = vec![None; self.inst.t_max];
            self.visited[tr] = vec![None; self.inst.t_max];
        }
        if let Some(l) = self.done[tr][t] {
            return l;
        }
        let l = CnfSink::new_var(&mut self.solver).positive();
        {
            let name = &self.inst.trains[tr].name;
            self.solver
                .tag_var(l.var(), || format!("done[{name},t={t}]"));
        }
        self.done[tr][t] = Some(l);
        l
    }

    // ------------------------------------------------------------------
    // Constraint 2: movement
    // ------------------------------------------------------------------

    fn encode_movement(&mut self, tr: usize) {
        let spec = &self.inst.trains[tr];
        let speed = spec.speed;
        let dep = spec.dep_step;
        let leave = spec.exit == ExitPolicy::Leave;
        let single = spec.length == 1;
        if dep >= self.inst.t_max.saturating_sub(1) {
            return;
        }
        {
            let name = &self.inst.trains[tr].name;
            self.solver.begin_group(|| format!("movement[{name}]"));
        }
        for t in dep..self.inst.t_max.saturating_sub(1) {
            let current = self.active[tr][t].clone();
            let next = self.active[tr][t + 1].clone();
            for &e in &current {
                let occ_e = self.occ_lit(tr, t, e).expect("active");
                let reach: Vec<Lit> = next
                    .iter()
                    .filter_map(|&f| {
                        (self.inst.dist(e, f)? <= speed)
                            .then(|| self.occ_lit(tr, t + 1, f))
                            .flatten()
                    })
                    .collect();
                // When every next-step position is reachable from `e`, the
                // presence clause at t+1 subsumes this one — skip it.
                if single && reach.len() == next.len() {
                    continue;
                }
                let mut clause = vec![!occ_e];
                if leave {
                    clause.push(self.done_lit_or_alloc(tr, t + 1));
                }
                clause.extend(reach);
                self.solver.add_clause(clause);
            }
            if self.config.symmetric_movement {
                for &f in &next {
                    let occ_f = self.occ_lit(tr, t + 1, f).expect("active");
                    let back: Vec<Lit> = current
                        .iter()
                        .filter_map(|&e| {
                            (self.inst.dist(e, f)? <= speed)
                                .then(|| self.occ_lit(tr, t, e))
                                .flatten()
                        })
                        .collect();
                    // Same subsumption, against the presence clause at t —
                    // but only for Park trains: the Leave presence clause
                    // carries a `done` literal this clause does not.
                    if single && !leave && back.len() == current.len() {
                        continue;
                    }
                    let mut clause = vec![!occ_f];
                    clause.extend(back);
                    self.solver.add_clause(clause);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Constraint 3: VSS separation inside a TTD
    // ------------------------------------------------------------------

    fn encode_separation(&mut self) {
        let num_trains = self.inst.trains.len();
        if num_trains < 2 {
            return;
        }
        self.solver.begin_group(|| "separation".to_owned());
        if !self.families.shared && !self.families.separation {
            return; // deferred to the lazy loop; the group stays declared
        }
        for t in 0..self.inst.t_max {
            for i in 0..num_trains {
                for j in (i + 1)..num_trains {
                    let ei: Vec<EdgeId> = self.active[i][t].clone();
                    let ej: Vec<EdgeId> = self.active[j][t].clone();
                    for &e in &ei {
                        for &f in &ej {
                            self.encode_separation_pair(i, j, t, e, f);
                        }
                    }
                }
            }
        }
    }

    fn encode_separation_pair(&mut self, i: usize, j: usize, t: usize, e: EdgeId, f: EdgeId) {
        let (Some(occ_i), Some(occ_j)) = (self.occ_lit(i, t, e), self.occ_lit(j, t, f)) else {
            return;
        };
        if e == f {
            if self.families.shared {
                self.solver.add_clause([!occ_i, !occ_j]);
            }
            return;
        }
        if !self.families.separation {
            return; // deferred to the lazy loop
        }
        if self.inst.net.segment(e).ttd != self.inst.net.segment(f).ttd {
            return; // separated by a TTD border by construction
        }
        let key = if e < f { (e, f) } else { (f, e) };
        if !self.between_cache.contains_key(&key) {
            let nodes = self
                .inst
                .net
                .between(key.0, key.1)
                .expect("same-TTD edges are connected");
            let mut lits = Vec::with_capacity(nodes.len());
            let mut forced = false;
            for n in nodes {
                if self.inst.net.node_kind(n) == NodeKind::TtdBorder {
                    forced = true;
                    break;
                }
                if let Some(l) = self.border_lit(n) {
                    lits.push(l);
                }
            }
            self.between_cache
                .insert(key, if forced { None } else { Some(lits) });
        }
        match &self.between_cache[&key] {
            None => {} // a forced border already separates the pair
            Some(borders) => {
                let mut clause = vec![!occ_i, !occ_j];
                clause.extend_from_slice(borders);
                self.solver.add_clause(clause);
            }
        }
    }

    // ------------------------------------------------------------------
    // Constraint 4: no passing through one another
    // ------------------------------------------------------------------

    /// The constraint is factored through *sweep* variables:
    /// `sweep[tr][t][g]` ⇐ "tr moves `e → f` across `g` during `t → t+1`"
    /// (one ternary clause per move and path segment), and
    /// `sweep[tr][t][g]` ⇒ no other train on `g` at `t` or `t+1`
    /// (two binary clauses per other train). This is equisatisfiable with
    /// the paper's flat formulation but an order of magnitude smaller.
    fn encode_collision(&mut self) {
        let num_trains = self.inst.trains.len();
        if num_trains < 2 {
            return; // nothing to collide with
        }
        self.solver.begin_group(|| "collision".to_owned());
        if !self.families.collision {
            return; // deferred to the lazy loop; the group stays declared
        }
        for mover in 0..num_trains {
            let speed = self.inst.trains[mover].speed;
            for t in self.inst.trains[mover].dep_step..self.inst.t_max.saturating_sub(1) {
                // Sweep variables for this (mover, t), lazily allocated.
                // BTreeMap: the map is iterated below to emit clauses, and
                // clause order must be deterministic for result caching.
                let mut sweep: BTreeMap<EdgeId, Lit> = BTreeMap::new();
                let current = self.active[mover][t].clone();
                let next = self.active[mover][t + 1].clone();
                for &e in &current {
                    for &f in &next {
                        if e == f {
                            continue;
                        }
                        match self.inst.dist(e, f) {
                            Some(d) if d >= 1 && d <= speed => {}
                            _ => continue,
                        }
                        self.encode_collision_move(mover, t, e, f, speed, &mut sweep);
                    }
                }
                // Swept segments are exclusive against every other train.
                for (&g, &s) in &sweep {
                    for other in 0..num_trains {
                        if other == mover {
                            continue;
                        }
                        for step in [t, t + 1] {
                            if let Some(occ_g) = self.occ_lit(other, step, g) {
                                self.solver.add_clause([!s, !occ_g]);
                            }
                        }
                    }
                }
            }
        }
    }

    fn encode_collision_move(
        &mut self,
        mover: usize,
        t: usize,
        e: EdgeId,
        f: EdgeId,
        speed: u32,
        sweep: &mut BTreeMap<EdgeId, Lit>,
    ) {
        let key = (e, f, speed);
        if !self.path_cache.contains_key(&key) {
            let mut path = self.inst.net.path_edges(e, f, speed);
            if self.config.allow_immediate_reoccupation {
                path.retain(|&g| g != e && g != f);
            }
            self.path_cache.insert(key, path);
        }
        let occ_e = self.occ_lit(mover, t, e).expect("active");
        let occ_f = self.occ_lit(mover, t + 1, f).expect("active");
        let path = self.path_cache[&key].clone();
        for g in path {
            // A sweep variable only earns its keep if some other train could
            // be on `g` around the move; otherwise the exclusivity side
            // would never materialise and the ternary clauses dangle.
            let contested = (0..self.inst.trains.len()).any(|other| {
                other != mover
                    && (self.occ[other][t][g.index()].is_some()
                        || self.occ[other][t + 1][g.index()].is_some())
            });
            if !contested {
                continue;
            }
            let s = match sweep.get(&g) {
                Some(&s) => s,
                None => {
                    let s = CnfSink::new_var(&mut self.solver).positive();
                    self.solver.tag_var(s.var(), || {
                        format!("sweep[train={mover},t={t},seg={}]", g.index())
                    });
                    sweep.insert(g, s);
                    s
                }
            };
            self.solver.add_clause([!occ_e, !occ_f, s]);
        }
    }

    // ------------------------------------------------------------------
    // Completion: visited / done machinery and Park freezing
    // ------------------------------------------------------------------

    /// `true` if the movement constraint alone pins train `tr` on edge `e`
    /// at step `t`: `e` stays active at `t + 1` and is the only position
    /// the train can reach from it within `speed`.
    fn pinned_in_place(&self, tr: usize, t: usize, e: EdgeId, speed: u32) -> bool {
        self.occ_lit(tr, t + 1, e).is_some()
            && self.active[tr][t + 1]
                .iter()
                .all(|&f| f == e || !matches!(self.inst.dist(e, f), Some(d) if d <= speed))
    }

    /// `true` if step `t` emits at least one Park freeze clause for `tr`.
    fn step_needs_freeze(&self, tr: usize, t: usize, speed: u32) -> bool {
        self.active[tr][t]
            .iter()
            .any(|&e| !self.pinned_in_place(tr, t, e, speed))
    }

    fn encode_completion(&mut self, tr: usize) {
        let spec = self.inst.trains[tr].clone();
        let dep = spec.dep_step;
        if self.visited.len() <= tr || self.visited[tr].is_empty() {
            // Ensure tables exist even for Park trains (done_lit_or_alloc
            // only ran for Leave trains).
            if self.done.len() < self.inst.trains.len() {
                self.done.resize(self.inst.trains.len(), Vec::new());
                self.visited.resize(self.inst.trains.len(), Vec::new());
            }
            if self.done[tr].is_empty() {
                self.done[tr] = vec![None; self.inst.t_max];
                self.visited[tr] = vec![None; self.inst.t_max];
            }
        }
        self.solver
            .begin_group(|| format!("completion[{}]", spec.name));

        // The visited chain only needs to reach the last step any other
        // constraint reads: the task-goal step, plus (Park) the freeze
        // clauses at t_max - 2 and (Optimize) the per-step objective at
        // every step. Gates past that point would dangle.
        let final_step = self.inst.t_max - 1;
        let goal_step = match self.task {
            TaskKind::Optimize | TaskKind::OptimizeIncremental => final_step,
            _ => spec.deadline_step.unwrap_or(final_step),
        }
        .clamp(dep, final_step);
        let last_visited = match spec.exit {
            ExitPolicy::Park => {
                // Extend the chain past the goal step only while freeze
                // clauses still reference it: at a step where the movement
                // constraint alone pins every active edge in place, no
                // freeze clause is emitted and a gate there would dangle.
                (goal_step..final_step)
                    .rev()
                    .find(|&t| self.step_needs_freeze(tr, t, spec.speed))
                    .unwrap_or(goal_step)
            }
            ExitPolicy::Leave => goal_step,
        };

        // visited[t] ↔ goal occupied at t ∨ visited[t-1]
        let mut prev: Option<Lit> = None;
        for t in dep..=last_visited {
            let mut inputs: Vec<Lit> = spec
                .goal_edges
                .iter()
                .filter_map(|&g| self.occ_lit(tr, t, g))
                .collect();
            if let Some(p) = prev {
                inputs.push(p);
            }
            let v = self.solver.or_gate(&inputs);
            {
                let name = &spec.name;
                self.solver
                    .tag_var(v.var(), || format!("visited[{name},t={t}]"));
            }
            self.visited[tr][t] = Some(v);
            prev = Some(v);
        }

        match spec.exit {
            ExitPolicy::Park => {
                // done ≡ visited; once visited, the train freezes in place.
                for t in dep..=last_visited {
                    self.done[tr][t] = self.visited[tr][t];
                }
                for t in dep..=last_visited.min(final_step.saturating_sub(1)) {
                    let vis = self.visited[tr][t].expect("allocated above");
                    for &e in &self.active[tr][t].clone() {
                        let occ_now = self.occ_lit(tr, t, e).expect("active");
                        if self.pinned_in_place(tr, t, e, spec.speed) {
                            // The movement clause already forces the train
                            // to stay on `e`; the freeze clause would be
                            // subsumed by it.
                            continue;
                        }
                        match self.occ_lit(tr, t + 1, e) {
                            Some(occ_next) => {
                                self.solver.add_clause([!vis, !occ_now, occ_next]);
                            }
                            None => {
                                // Frozen position must stay representable.
                                self.solver.add_clause([!vis, !occ_now]);
                            }
                        }
                    }
                }
            }
            ExitPolicy::Leave => {
                // Monotonicity, no-done-at-departure, exit only from goal.
                let d0 = self.done_lit_or_alloc(tr, dep);
                self.solver.assert_false(d0);
                for t in dep..self.inst.t_max - 1 {
                    let d_now = self.done_lit_or_alloc(tr, t);
                    let d_next = self.done_lit_or_alloc(tr, t + 1);
                    self.solver.implies(d_now, d_next);
                    // Onset requires having just been at the goal — unless
                    // the whole cone at `t` lies inside the goal station, in
                    // which case the presence clause at `t` already implies
                    // it (and would subsume this clause).
                    let at_goal_anyway = self.active[tr][t]
                        .iter()
                        .all(|e| spec.goal_edges.contains(e));
                    if at_goal_anyway {
                        continue;
                    }
                    let mut clause = vec![!d_next, d_now];
                    clause.extend(
                        spec.goal_edges
                            .iter()
                            .filter_map(|&g| self.occ_lit(tr, t, g)),
                    );
                    self.solver.add_clause(clause);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Task goals: deadlines or reach-goal-eventually
    // ------------------------------------------------------------------

    fn encode_task_goals(&mut self) -> Vec<Lit> {
        let enforce_deadlines = !matches!(
            self.task,
            TaskKind::Optimize | TaskKind::OptimizeIncremental
        );
        let diagnose = matches!(self.task, TaskKind::Diagnose(_));
        let mut selectors = Vec::new();
        if !self.inst.trains.is_empty() {
            self.solver.begin_group(|| "task-goal".to_owned());
        }
        for tr in 0..self.inst.trains.len() {
            let spec = self.inst.trains[tr].clone();
            let final_step = self.inst.t_max - 1;
            let goal_step = if enforce_deadlines {
                spec.deadline_step.unwrap_or(final_step)
            } else {
                final_step
            };
            let vis = self.visited[tr][goal_step.max(spec.dep_step).min(final_step)]
                .expect("visited allocated for all steps after departure");
            if diagnose {
                // Guarded arrival: assuming the selector enforces it, so an
                // unsat core over the selectors names the clashing trains.
                let sel = CnfSink::new_var(&mut self.solver).positive();
                {
                    let name = &self.inst.trains[tr].name;
                    self.solver
                        .tag_var(sel.var(), || format!("deadline-sel[{name}]"));
                }
                self.solver.implies(sel, vis);
                selectors.push(sel);
            } else {
                self.solver.assert_true(vis);
            }

            // Intermediate stops: visited some time before their deadline.
            for (stop_edges, stop_deadline) in &spec.stops {
                let last = if enforce_deadlines {
                    stop_deadline.unwrap_or(final_step)
                } else {
                    final_step
                };
                let mut clause = Vec::new();
                for t in spec.dep_step..=last.min(final_step) {
                    for &g in stop_edges {
                        if let Some(l) = self.occ_lit(tr, t, g) {
                            clause.push(l);
                        }
                    }
                }
                self.solver.add_clause(clause);
            }
        }
        selectors
    }

    /// One guarded-deadline selector per candidate completion step:
    /// `sel_d → visited[tr][d]` for every train (clamped to the train's
    /// departure and the horizon end, exactly like the hard goal the
    /// from-scratch probe asserts — *not* `done`, whose Leave-train onset
    /// lags `visited` by one step). Feasibility is monotone in `d` because
    /// the `visited` chains are, so the selectors support both walk-up and
    /// binary search on one persistent solver.
    ///
    fn build_step_selectors(&mut self) -> Vec<Option<Lit>> {
        let mut sels: Vec<Option<Lit>> = vec![None; self.inst.t_max];
        if self.inst.trains.is_empty() {
            return sels; // nothing to guard; avoid unconstrained selectors
        }
        let final_step = self.inst.t_max - 1;
        let lower = self.inst.completion_lower_bound().min(final_step);
        self.solver.begin_group(|| "step-selectors".to_owned());
        for d in lower..=final_step {
            let sel = CnfSink::new_var(&mut self.solver).positive();
            self.solver
                .tag_var(sel.var(), || format!("deadline-sel[d={d}]"));
            for tr in 0..self.inst.trains.len() {
                let dep = self.inst.trains[tr].dep_step;
                let vis = self.visited[tr][d.clamp(dep, final_step)]
                    .expect("visited allocated for all steps after departure");
                self.solver.implies(sel, vis);
            }
            sels[d] = Some(sel);
        }
        sels
    }

    // ------------------------------------------------------------------
    // Optimisation objective: number of not-all-done steps
    // ------------------------------------------------------------------

    /// Seeds the solver's branching order: VSS borders first (they shape
    /// everything else), then occupancy in increasing time order so the
    /// search extends plans chronologically. VSIDS adapts from there.
    fn seed_decision_order(&mut self) {
        // Borders first, and initially *active*: a liberal layout makes the
        // scheduling sub-problem as easy as possible; the objectives prune
        // borders afterwards. (Only meaningful when the layout is free.)
        for v in self.border.iter().flatten() {
            self.solver.boost_activity(*v, 2.0);
            self.solver.set_phase(*v, true);
        }
        for tr in 0..self.inst.trains.len() {
            for t in 0..self.inst.t_max {
                let boost = 1.0 / (t as f64 + 2.0);
                for v in self.occ[tr][t].iter().flatten() {
                    self.solver.boost_activity(*v, boost);
                }
            }
        }
    }

    fn build_step_objective(&mut self) -> (Option<Objective>, u64, Vec<Option<Lit>>) {
        let max_dep = self
            .inst
            .trains
            .iter()
            .map(|t| t.dep_step)
            .max()
            .unwrap_or(0);
        let mut cost_lits: Vec<Lit> = Vec::new();
        let mut all_done: Vec<Option<Lit>> = vec![None; self.inst.t_max];
        self.solver.begin_group(|| "step-objective".to_owned());
        for t in max_dep..self.inst.t_max {
            let done_lits: Vec<Lit> = (0..self.inst.trains.len())
                .map(|tr| self.done[tr][t].expect("done allocated after departure"))
                .collect();
            let gate = self.solver.and_gate(&done_lits);
            self.solver
                .tag_var(gate.var(), || format!("all-done[t={t}]"));
            all_done[t] = Some(gate);
            cost_lits.push(!gate);
        }
        self.solver.mark_objective(cost_lits.iter().copied());
        // Steps strictly before the last departure can never be all-done.
        (
            Some(Objective::count_of(cost_lits)),
            max_dep as u64,
            all_done,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etcs_network::fixtures;

    #[test]
    fn encoding_builds_for_running_example() {
        let inst = Instance::new(&fixtures::running_example()).expect("valid");
        let enc = encode(&inst, &EncoderConfig::default(), &TaskKind::Generate);
        assert!(enc.stats.border_vars > 0);
        assert!(enc.stats.occupies_vars > 0);
        assert!(enc.stats.clauses > 0);
        assert!(enc.stats.solver_vars >= enc.stats.border_vars + enc.stats.occupies_vars);
        assert!(enc.step_objective.is_none());
    }

    #[test]
    fn optimize_encoding_has_step_objective() {
        let scenario = fixtures::running_example().without_arrivals();
        let inst = Instance::new(&scenario).expect("valid");
        let enc = encode(&inst, &EncoderConfig::default(), &TaskKind::Optimize);
        let obj = enc.step_objective.expect("optimize builds the objective");
        assert!(!obj.is_empty());
        assert_eq!(enc.step_cost_offset, 2, "latest departure is step 2");
    }

    #[test]
    fn pruning_reduces_occupancy_vars() {
        let inst = Instance::new(&fixtures::running_example()).expect("valid");
        let pruned = encode(&inst, &EncoderConfig::default(), &TaskKind::Generate);
        let unpruned = encode(
            &inst,
            &EncoderConfig {
                prune_to_goal: false,
                ..EncoderConfig::default()
            },
            &TaskKind::Generate,
        );
        assert!(pruned.stats.occupies_vars < unpruned.stats.occupies_vars);
        assert!(pruned.stats.occupies_vars <= pruned.stats.nominal_vars);
    }

    #[test]
    fn traced_encodings_are_lint_clean() {
        let inst = Instance::new(&fixtures::running_example()).expect("valid");
        let config = EncoderConfig {
            trace: true,
            ..EncoderConfig::default()
        };
        for task in [
            TaskKind::Generate,
            TaskKind::Verify(etcs_network::VssLayout::pure_ttd()),
            TaskKind::Diagnose(etcs_network::VssLayout::pure_ttd()),
        ] {
            let enc = encode(&inst, &config, &task);
            let trace = enc.trace.expect("tracing on");
            assert_eq!(trace.formula.num_vars(), enc.solver.num_vars());
            // The solver simplifies at level 0 (drops satisfied clauses,
            // moves units to the trail), so the mirror records at least as
            // many clauses as stay live in the solver.
            assert!(trace.formula.num_clauses() >= enc.solver.num_clauses());
            let findings = trace.lint();
            assert!(
                findings.is_empty(),
                "clean {task:?} encoding must have zero findings:\n{}",
                etcs_lint::render_report(&findings)
            );
        }
    }

    #[test]
    fn traced_optimize_encoding_is_lint_clean() {
        let scenario = fixtures::running_example().without_arrivals();
        let inst = Instance::new(&scenario).expect("valid");
        let config = EncoderConfig {
            trace: true,
            ..EncoderConfig::default()
        };
        for task in [TaskKind::Optimize, TaskKind::OptimizeIncremental] {
            let enc = encode(&inst, &config, &task);
            let findings = enc.trace.expect("tracing on").lint();
            assert!(
                findings.is_empty(),
                "clean {task:?} encoding must have zero findings:\n{}",
                etcs_lint::render_report(&findings)
            );
        }
    }

    #[test]
    fn incremental_encoding_has_selectors_from_the_lower_bound() {
        let scenario = fixtures::running_example().without_arrivals();
        let inst = Instance::new(&scenario).expect("valid");
        let enc = encode(
            &inst,
            &EncoderConfig::default(),
            &TaskKind::OptimizeIncremental,
        );
        let lower = inst.completion_lower_bound().min(inst.t_max - 1);
        assert_eq!(enc.step_selectors.len(), inst.t_max);
        for (d, sel) in enc.step_selectors.iter().enumerate() {
            assert_eq!(sel.is_some(), d >= lower, "selector coverage at d={d}");
        }
        assert!(
            enc.step_objective.is_none(),
            "the selector search replaces the cardinality objective"
        );
        // The other tasks allocate no step selectors.
        let plain = encode(&inst, &EncoderConfig::default(), &TaskKind::Optimize);
        assert!(plain.step_selectors.is_empty());
    }

    #[test]
    fn relaxed_families_shrink_the_encoding() {
        let inst = Instance::new(&fixtures::running_example()).expect("valid");
        let full = encode(&inst, &EncoderConfig::default(), &TaskKind::Generate);
        let relaxed = encode_with(
            &inst,
            &EncoderConfig::default(),
            &TaskKind::Generate,
            ConstraintFamilies::CORE_ONLY,
        );
        assert!(
            relaxed.stats.clauses < full.stats.clauses,
            "deferring three families must drop clauses: {} vs {}",
            relaxed.stats.clauses,
            full.stats.clauses
        );
        // No sweep variables either.
        assert!(relaxed.stats.solver_vars < full.stats.solver_vars);
    }

    #[test]
    fn relaxed_groups_name_the_deferred_families() {
        assert!(ConstraintFamilies::ALL.relaxed_groups().is_empty());
        assert!(ConstraintFamilies::ALL.is_all());
        assert_eq!(
            ConstraintFamilies::CORE_ONLY.relaxed_groups(),
            vec!["separation", "collision"]
        );
        let partial = ConstraintFamilies {
            shared: true,
            separation: true,
            collision: false,
        };
        assert_eq!(partial.relaxed_groups(), vec!["collision"]);
    }

    #[test]
    fn relaxed_encoding_lints_clean_only_with_a_profile() {
        let inst = Instance::new(&fixtures::running_example()).expect("valid");
        let config = EncoderConfig {
            trace: true,
            ..EncoderConfig::default()
        };
        let families = ConstraintFamilies::CORE_ONLY;
        let enc = encode_with(&inst, &config, &TaskKind::Generate, families);
        let trace = enc.trace.expect("tracing on");
        let findings = trace.lint();
        assert!(
            findings
                .iter()
                .filter(|f| f.kind == etcs_lint::LintKind::EmptyGroup)
                .count()
                >= 2,
            "the plain audit must flag the deferred groups:\n{}",
            etcs_lint::render_report(&findings)
        );
        let mut profile = etcs_lint::LazyProfile::new();
        for group in families.relaxed_groups() {
            profile = profile.allow_group(group);
        }
        let filtered = trace.lint_with(&profile);
        assert!(
            filtered.is_empty(),
            "the declared relaxation must lint clean:\n{}",
            etcs_lint::render_report(&filtered)
        );
    }

    #[test]
    fn untraced_encoding_carries_no_trace() {
        let inst = Instance::new(&fixtures::running_example()).expect("valid");
        let enc = encode(&inst, &EncoderConfig::default(), &TaskKind::Generate);
        assert!(enc.trace.is_none() && enc.proof.is_none());
    }

    #[test]
    fn verify_fixes_borders() {
        use etcs_network::VssLayout;
        let inst = Instance::new(&fixtures::running_example()).expect("valid");
        let enc = encode(
            &inst,
            &EncoderConfig::default(),
            &TaskKind::Verify(VssLayout::pure_ttd()),
        );
        // All border vars are fixed at level 0: solving cannot flip any.
        // (Just a smoke check that encoding is well-formed.)
        assert!(enc.stats.border_vars > 0);
    }
}

#[cfg(test)]
mod shape_tests {
    use super::*;
    use crate::tasks::verify;
    use etcs_network::{
        fixtures, KmPerHour, Meters, NetworkBuilder, Scenario, Schedule, Seconds, Train, TrainRun,
    };

    /// A straight 4-segment line with one long (3-segment) train.
    fn long_train_scenario() -> Scenario {
        let mut b = NetworkBuilder::new();
        let a = b.node();
        let c = b.node();
        let t = b.track(a, c, Meters::from_km(2.0), "main");
        b.ttd("TTD1", [t]);
        let st = b.station("A", [t], true);
        let network = b.build().expect("valid");
        let schedule = Schedule::new(vec![TrainRun::new(
            Train::new("Long", Meters(1400), KmPerHour(60)),
            st,
            st,
            Seconds::ZERO,
            None,
        )]);
        Scenario {
            name: "long-train".into(),
            network,
            schedule,
            r_s: Meters(500),
            r_t: Seconds(30),
            horizon: Seconds(120),
        }
    }

    #[test]
    fn long_trains_occupy_contiguous_chains() {
        let scenario = long_train_scenario();
        let inst = Instance::new(&scenario).expect("valid");
        assert_eq!(inst.trains[0].length, 3);
        let (outcome, _) = verify(
            &scenario,
            &etcs_network::VssLayout::pure_ttd(),
            &EncoderConfig::default(),
        )
        .expect("well-formed");
        let plan = outcome.plan().expect("one train on an empty line fits");
        for pos in &plan.plans[0].positions {
            if pos.is_empty() {
                continue;
            }
            assert_eq!(pos.len(), 3, "chain length must equal l*");
            // Contiguity: sorted segment indices are consecutive on a line.
            let mut ix: Vec<usize> = pos.iter().map(|e| e.index()).collect();
            ix.sort_unstable();
            for w in ix.windows(2) {
                assert_eq!(w[1] - w[0], 1, "chain must be contiguous: {ix:?}");
            }
        }
    }

    #[test]
    fn all_config_variants_agree_on_running_example_verdicts() {
        let scenario = fixtures::running_example();
        let variants = [
            EncoderConfig::default(),
            EncoderConfig {
                prune_to_goal: false,
                ..EncoderConfig::default()
            },
            EncoderConfig {
                symmetric_movement: false,
                ..EncoderConfig::default()
            },
        ];
        for config in variants {
            let (v, _) = verify(&scenario, &etcs_network::VssLayout::pure_ttd(), &config)
                .expect("well-formed");
            assert!(!v.is_feasible(), "verdict must not depend on {config:?}");
        }
    }

    #[test]
    fn relaxed_reoccupation_is_weaker() {
        // Everything feasible under the paper-literal rule stays feasible
        // when immediate re-occupation is allowed.
        let scenario = fixtures::running_example();
        let inst = Instance::new(&scenario).expect("valid");
        let strict = EncoderConfig::default();
        let relaxed = EncoderConfig {
            allow_immediate_reoccupation: true,
            ..strict
        };
        let full = etcs_network::VssLayout::full(&inst.net);
        let (a, _) = verify(&scenario, &full, &strict).expect("well-formed");
        assert!(a.is_feasible());
        let (b, _) = verify(&scenario, &full, &relaxed).expect("well-formed");
        assert!(b.is_feasible(), "relaxation must not lose solutions");
    }

    #[test]
    fn diagnose_task_exposes_one_selector_per_train() {
        let scenario = fixtures::running_example();
        let inst = Instance::new(&scenario).expect("valid");
        let enc = encode(
            &inst,
            &EncoderConfig::default(),
            &TaskKind::Diagnose(etcs_network::VssLayout::pure_ttd()),
        );
        assert_eq!(enc.deadline_selectors.len(), inst.trains.len());
        let enc = encode(&inst, &EncoderConfig::default(), &TaskKind::Generate);
        assert!(enc.deadline_selectors.is_empty());
    }
}
