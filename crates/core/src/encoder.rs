//! The SAT encoding of Section III of the paper.
//!
//! Variables (Section III-A):
//! * `border_v` — one per candidate node (TTD borders are constants),
//! * `occupies[tr][t][e]` — allocated only inside the train's time–space
//!   cone (a sound pruning; everything outside is provably 0),
//! * `visited[tr][t]` / `done[tr][t]` — completion tracking.
//!
//! Constraints (Section III-B):
//! 1. *Shape*: at every step a present train occupies exactly one chain of
//!    `l*` segments (chain-selector Tseitin encoding; plain exactly-one for
//!    single-segment trains).
//! 2. *Movement*: every occupied segment must be within `v*` hops of an
//!    occupied segment in the next step (and symmetrically backwards).
//! 3. *Separation*: two trains in the same TTD force an active VSS border
//!    on the chain between them; sharing a segment is a hard conflict.
//! 4. *Collision*: a train moving `e → f` forbids every other train from
//!    the segments on any `≤ v*`-hop path between them at both steps
//!    (paper-literal: including the endpoints, which also rules out
//!    immediate re-occupation; configurable).

// Index-coupled loops over parallel tables are intentional here.
#![allow(clippy::needless_range_loop)]

use std::collections::HashMap;

use etcs_sat::{CnfSink, Lit, Objective, Solver, Var};
use etcs_network::{EdgeId, NodeId, NodeKind, VssLayout};

use crate::instance::{ExitPolicy, Instance};

/// Tunable encoder behaviour; defaults reproduce the paper's formulation.
#[derive(Clone, Copy, Debug)]
pub struct EncoderConfig {
    /// Prune occupancy variables that cannot reach the train's goal in the
    /// remaining time (sound; mandatory for the Nordlandsbanen scale).
    pub prune_to_goal: bool,
    /// Exclude the move's endpoints from the collision constraint, allowing
    /// a train to enter a segment in the same step another train leaves it.
    /// The paper's formulation keeps the endpoints (conservative).
    pub allow_immediate_reoccupation: bool,
    /// Also require every newly occupied segment to be within reach of the
    /// previous position (physically implied; strengthens propagation).
    pub symmetric_movement: bool,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig {
            prune_to_goal: true,
            allow_immediate_reoccupation: false,
            symmetric_movement: true,
        }
    }
}

/// Which task-specific constraints to add.
#[derive(Clone, Debug)]
pub enum TaskKind {
    /// Fixed VSS layout, arrival deadlines enforced.
    Verify(VssLayout),
    /// Free layout, arrival deadlines enforced.
    Generate,
    /// Free layout, deadlines dropped; completion objective added.
    Optimize,
    /// Like [`TaskKind::Verify`], but every train's arrival constraint is
    /// guarded by a selector literal (see [`Encoding::deadline_selectors`])
    /// so unsat cores can pinpoint which deadlines conflict.
    Diagnose(VssLayout),
}

/// Size statistics of a built encoding.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EncodingStats {
    /// Border variables (the candidate nodes).
    pub border_vars: usize,
    /// Allocated occupancy variables (after cone pruning).
    pub occupies_vars: usize,
    /// The paper's nominal count: `|Trains| · t_max · |E| + |V|`.
    pub nominal_vars: usize,
    /// Total solver variables (including Tseitin auxiliaries).
    pub solver_vars: usize,
    /// Clauses in the solver after encoding.
    pub clauses: usize,
}

/// Variable tables of a built encoding.
#[derive(Debug)]
pub struct VarMap {
    /// `border[v]` — `Some` for candidate nodes.
    pub border: Vec<Option<Var>>,
    /// `occ[tr][t][e]` — `Some` inside the cone.
    pub occ: Vec<Vec<Vec<Option<Var>>>>,
    /// `visited[tr][t]` — train has reached its destination by `t`
    /// (`None` before departure).
    pub visited: Vec<Vec<Option<Lit>>>,
    /// `done[tr][t]` — train has completed (left or parked).
    pub done: Vec<Vec<Option<Lit>>>,
}

impl VarMap {
    /// Occupancy literal, `None` outside the cone (provably false).
    pub fn occ_lit(&self, tr: usize, t: usize, e: EdgeId) -> Option<Lit> {
        self.occ[tr][t][e.index()].map(Var::positive)
    }
}

/// A fully built SAT encoding, ready for the design tasks.
#[derive(Debug)]
pub struct Encoding {
    /// The loaded solver.
    pub solver: Solver,
    /// Variable tables for decoding.
    pub vars: VarMap,
    /// Size statistics.
    pub stats: EncodingStats,
    /// `min Σ border_v` objective (layout generation; secondary objective of
    /// optimisation).
    pub border_objective: Objective,
    /// `min Σ_t ¬done^t` objective (only for [`TaskKind::Optimize`]).
    ///
    /// Kept for the ablation study; [`Encoding::all_done`] enables the much
    /// faster monotone binary search the tasks use by default.
    pub step_objective: Option<Objective>,
    /// Cost offset of `step_objective`: steps before the last departure can
    /// never be all-done and are counted as a constant.
    pub step_cost_offset: u64,
    /// `all_done[t]` — literal true iff every train is done at step `t`
    /// (`None` before the last departure). Because every `done` chain is
    /// monotone, `Σ_t ¬done^t` equals the first `t` with `all_done[t]`,
    /// so the optimum can be found by searching on these assumptions.
    pub all_done: Vec<Option<Lit>>,
    /// For [`TaskKind::Diagnose`]: one selector literal per train, in
    /// schedule order; assuming a selector enforces that train's arrival
    /// deadline. Empty for the other tasks.
    pub deadline_selectors: Vec<Lit>,
}

/// Builds the encoding for an instance and task.
pub fn encode(inst: &Instance, config: &EncoderConfig, task: &TaskKind) -> Encoding {
    Encoder::new(inst, config, task).build()
}

struct Encoder<'a> {
    inst: &'a Instance,
    config: &'a EncoderConfig,
    task: &'a TaskKind,
    solver: Solver,
    border: Vec<Option<Var>>,
    occ: Vec<Vec<Vec<Option<Var>>>>,
    visited: Vec<Vec<Option<Lit>>>,
    done: Vec<Vec<Option<Lit>>>,
    active: Vec<Vec<Vec<EdgeId>>>,
    /// Memoised `paths(e, f, v)` results.
    path_cache: HashMap<(EdgeId, EdgeId, u32), Vec<EdgeId>>,
    /// Memoised `between(e, f)` border-literal lists; `None` = the pair is
    /// already separated by a forced TTD border.
    between_cache: HashMap<(EdgeId, EdgeId), Option<Vec<Lit>>>,
    /// Chains of each needed length.
    chain_cache: HashMap<usize, Vec<Vec<EdgeId>>>,
}

impl<'a> Encoder<'a> {
    fn new(inst: &'a Instance, config: &'a EncoderConfig, task: &'a TaskKind) -> Self {
        Encoder {
            inst,
            config,
            task,
            solver: Solver::new(),
            border: Vec::new(),
            occ: Vec::new(),
            visited: Vec::new(),
            done: Vec::new(),
            active: Vec::new(),
            path_cache: HashMap::new(),
            between_cache: HashMap::new(),
            chain_cache: HashMap::new(),
        }
    }

    fn build(mut self) -> Encoding {
        self.alloc_border_vars();
        self.alloc_occupancy_vars();
        let occupies_vars = self
            .occ
            .iter()
            .flatten()
            .flatten()
            .filter(|v| v.is_some())
            .count();

        for tr in 0..self.inst.trains.len() {
            self.encode_shape(tr);
            self.encode_movement(tr);
            self.encode_completion(tr);
        }
        self.encode_separation();
        self.encode_collision();
        let deadline_selectors = self.encode_task_goals();
        self.seed_decision_order();

        let border_objective = Objective::count_of(
            self.border
                .iter()
                .filter_map(|v| v.map(Var::positive)),
        );
        let (step_objective, step_cost_offset, all_done) =
            if matches!(self.task, TaskKind::Optimize) {
                self.build_step_objective()
            } else {
                (None, 0, Vec::new())
            };

        let stats = EncodingStats {
            border_vars: self.border.iter().filter(|v| v.is_some()).count(),
            occupies_vars,
            nominal_vars: self.inst.nominal_var_count(),
            solver_vars: self.solver.num_vars(),
            clauses: self.solver.num_clauses(),
        };
        Encoding {
            solver: self.solver,
            vars: VarMap {
                border: self.border,
                occ: self.occ,
                visited: self.visited,
                done: self.done,
            },
            stats,
            border_objective,
            step_objective,
            step_cost_offset,
            all_done,
            deadline_selectors,
        }
    }

    // ------------------------------------------------------------------
    // Variables
    // ------------------------------------------------------------------

    fn alloc_border_vars(&mut self) {
        let net = &self.inst.net;
        self.border = vec![None; net.num_nodes()];
        for n in net.border_candidates() {
            let v = CnfSink::new_var(&mut self.solver);
            self.border[n.index()] = Some(v);
        }
        if let TaskKind::Verify(layout) | TaskKind::Diagnose(layout) = self.task {
            for n in net.border_candidates() {
                let v = self.border[n.index()].expect("candidate has a variable");
                if layout.borders().contains(&n) {
                    self.solver.assert_true(v.positive());
                } else {
                    self.solver.assert_false(v.positive());
                }
            }
        }
    }

    fn alloc_occupancy_vars(&mut self) {
        let num_edges = self.inst.net.num_edges();
        for tr in &self.inst.trains {
            // Deadline-based cone pruning would hard-wire the deadlines the
            // Diagnose task wants to treat as optional assumptions.
            let relaxed;
            let tr = if matches!(self.task, TaskKind::Diagnose(_)) {
                relaxed = crate::instance::TrainSpec {
                    deadline_step: None,
                    ..tr.clone()
                };
                &relaxed
            } else {
                tr
            };
            let mut per_train = Vec::with_capacity(self.inst.t_max);
            let mut active_train = Vec::with_capacity(self.inst.t_max);
            for t in 0..self.inst.t_max {
                let active = self.inst.active_edges(tr, t, self.config.prune_to_goal);
                let mut row: Vec<Option<Var>> = vec![None; num_edges];
                for &e in &active {
                    row[e.index()] = Some(CnfSink::new_var(&mut self.solver));
                }
                per_train.push(row);
                active_train.push(active);
            }
            self.occ.push(per_train);
            self.active.push(active_train);
        }
    }

    fn occ_lit(&self, tr: usize, t: usize, e: EdgeId) -> Option<Lit> {
        self.occ[tr][t][e.index()].map(Var::positive)
    }

    /// Literal of a candidate border node; `None` when the node is a forced
    /// TTD border (constant true).
    fn border_lit(&self, n: NodeId) -> Option<Lit> {
        self.border[n.index()].map(Var::positive)
    }

    // ------------------------------------------------------------------
    // Constraint 1: shape (exactly one chain of length l*)
    // ------------------------------------------------------------------

    fn encode_shape(&mut self, tr: usize) {
        let spec = &self.inst.trains[tr];
        let length = spec.length;
        if !self.chain_cache.contains_key(&length) {
            let chains = self.inst.net.chains(length);
            self.chain_cache.insert(length, chains);
        }
        for t in spec.dep_step..self.inst.t_max {
            if length == 1 {
                self.encode_shape_single(tr, t);
            } else {
                self.encode_shape_chains(tr, t);
            }
        }
    }

    /// Length-1 trains: the occupancy variables are the chain selectors.
    fn encode_shape_single(&mut self, tr: usize, t: usize) {
        let spec = &self.inst.trains[tr];
        let lits: Vec<Lit> = self.active[tr][t]
            .iter()
            .filter_map(|&e| self.occ_lit(tr, t, e))
            .collect();
        etcs_sat::card::at_most_one_sequential(&mut self.solver, &lits);
        self.presence_clause(tr, t, &lits);
        if t == spec.dep_step {
            // The departure chain must touch the origin station.
            let origin: Vec<Lit> = spec
                .origin_edges
                .clone()
                .iter()
                .filter_map(|&e| self.occ_lit(tr, t, e))
                .collect();
            self.solver.add_clause(origin);
        }
    }

    /// Longer trains: one selector per candidate chain.
    fn encode_shape_chains(&mut self, tr: usize, t: usize) {
        let spec = &self.inst.trains[tr];
        let length = spec.length;
        let dep = spec.dep_step;
        let origin_edges = spec.origin_edges.clone();
        let active_row: Vec<bool> = {
            let mut row = vec![false; self.inst.net.num_edges()];
            for &e in &self.active[tr][t] {
                row[e.index()] = true;
            }
            row
        };
        let chains: Vec<Vec<EdgeId>> = self.chain_cache[&length]
            .iter()
            .filter(|c| c.iter().all(|e| active_row[e.index()]))
            .filter(|c| t != dep || c.iter().any(|e| origin_edges.contains(e)))
            .cloned()
            .collect();

        let mut selectors: Vec<Lit> = Vec::with_capacity(chains.len());
        let mut covering: HashMap<EdgeId, Vec<Lit>> = HashMap::new();
        for chain in &chains {
            let sel = CnfSink::new_var(&mut self.solver).positive();
            selectors.push(sel);
            for &e in chain {
                let occ = self.occ_lit(tr, t, e).expect("chain edges are active");
                self.solver.implies(sel, occ);
                covering.entry(e).or_default().push(sel);
            }
        }
        // Occupied edges must be covered by the selected chain.
        for &e in &self.active[tr][t] {
            let occ = self.occ_lit(tr, t, e).expect("active edge has a variable");
            let mut clause = vec![!occ];
            clause.extend(covering.get(&e).map(|v| v.as_slice()).unwrap_or(&[]));
            self.solver.add_clause(clause);
        }
        etcs_sat::card::at_most_one_sequential(&mut self.solver, &selectors);
        self.presence_clause(tr, t, &selectors);
    }

    /// "Present unless done": Park trains are always present after
    /// departure; Leave trains may be done instead. Also ties `done` to
    /// absence for Leave trains.
    fn presence_clause(&mut self, tr: usize, t: usize, selectors: &[Lit]) {
        let spec = &self.inst.trains[tr];
        match spec.exit {
            ExitPolicy::Park => {
                self.solver.add_clause(selectors.iter().copied());
            }
            ExitPolicy::Leave => {
                // done[t] is allocated later in encode_completion; allocate
                // eagerly here via the done table.
                let done = self.done_lit_or_alloc(tr, t);
                let mut clause = vec![done];
                clause.extend_from_slice(selectors);
                self.solver.add_clause(clause);
                for &sel in selectors {
                    self.solver.add_clause([!done, !sel]);
                }
            }
        }
    }

    /// Done literal for a Leave train, allocating the variable on first use.
    fn done_lit_or_alloc(&mut self, tr: usize, t: usize) -> Lit {
        if self.done.len() <= tr {
            self.done.resize(self.inst.trains.len(), Vec::new());
            self.visited
                .resize(self.inst.trains.len(), Vec::new());
        }
        if self.done[tr].is_empty() {
            self.done[tr] = vec![None; self.inst.t_max];
            self.visited[tr] = vec![None; self.inst.t_max];
        }
        if let Some(l) = self.done[tr][t] {
            return l;
        }
        let l = CnfSink::new_var(&mut self.solver).positive();
        self.done[tr][t] = Some(l);
        l
    }

    // ------------------------------------------------------------------
    // Constraint 2: movement
    // ------------------------------------------------------------------

    fn encode_movement(&mut self, tr: usize) {
        let spec = &self.inst.trains[tr];
        let speed = spec.speed;
        let dep = spec.dep_step;
        let leave = spec.exit == ExitPolicy::Leave;
        for t in dep..self.inst.t_max.saturating_sub(1) {
            let current = self.active[tr][t].clone();
            let next = self.active[tr][t + 1].clone();
            for &e in &current {
                let occ_e = self.occ_lit(tr, t, e).expect("active");
                let mut clause = vec![!occ_e];
                if leave {
                    clause.push(self.done_lit_or_alloc(tr, t + 1));
                }
                clause.extend(next.iter().filter_map(|&f| {
                    (self.inst.dist(e, f)? <= speed)
                        .then(|| self.occ_lit(tr, t + 1, f))
                        .flatten()
                }));
                self.solver.add_clause(clause);
            }
            if self.config.symmetric_movement {
                for &f in &next {
                    let occ_f = self.occ_lit(tr, t + 1, f).expect("active");
                    let mut clause = vec![!occ_f];
                    clause.extend(current.iter().filter_map(|&e| {
                        (self.inst.dist(e, f)? <= speed)
                            .then(|| self.occ_lit(tr, t, e))
                            .flatten()
                    }));
                    self.solver.add_clause(clause);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Constraint 3: VSS separation inside a TTD
    // ------------------------------------------------------------------

    fn encode_separation(&mut self) {
        let num_trains = self.inst.trains.len();
        for t in 0..self.inst.t_max {
            for i in 0..num_trains {
                for j in (i + 1)..num_trains {
                    let ei: Vec<EdgeId> = self.active[i][t].clone();
                    let ej: Vec<EdgeId> = self.active[j][t].clone();
                    for &e in &ei {
                        for &f in &ej {
                            self.encode_separation_pair(i, j, t, e, f);
                        }
                    }
                }
            }
        }
    }

    fn encode_separation_pair(&mut self, i: usize, j: usize, t: usize, e: EdgeId, f: EdgeId) {
        let (Some(occ_i), Some(occ_j)) = (self.occ_lit(i, t, e), self.occ_lit(j, t, f)) else {
            return;
        };
        if e == f {
            self.solver.add_clause([!occ_i, !occ_j]);
            return;
        }
        if self.inst.net.segment(e).ttd != self.inst.net.segment(f).ttd {
            return; // separated by a TTD border by construction
        }
        let key = if e < f { (e, f) } else { (f, e) };
        if !self.between_cache.contains_key(&key) {
            let nodes = self
                .inst
                .net
                .between(key.0, key.1)
                .expect("same-TTD edges are connected");
            let mut lits = Vec::with_capacity(nodes.len());
            let mut forced = false;
            for n in nodes {
                if self.inst.net.node_kind(n) == NodeKind::TtdBorder {
                    forced = true;
                    break;
                }
                if let Some(l) = self.border_lit(n) {
                    lits.push(l);
                }
            }
            self.between_cache
                .insert(key, if forced { None } else { Some(lits) });
        }
        match &self.between_cache[&key] {
            None => {} // a forced border already separates the pair
            Some(borders) => {
                let mut clause = vec![!occ_i, !occ_j];
                clause.extend_from_slice(borders);
                self.solver.add_clause(clause);
            }
        }
    }

    // ------------------------------------------------------------------
    // Constraint 4: no passing through one another
    // ------------------------------------------------------------------

    /// The constraint is factored through *sweep* variables:
    /// `sweep[tr][t][g]` ⇐ "tr moves `e → f` across `g` during `t → t+1`"
    /// (one ternary clause per move and path segment), and
    /// `sweep[tr][t][g]` ⇒ no other train on `g` at `t` or `t+1`
    /// (two binary clauses per other train). This is equisatisfiable with
    /// the paper's flat formulation but an order of magnitude smaller.
    fn encode_collision(&mut self) {
        let num_trains = self.inst.trains.len();
        for mover in 0..num_trains {
            let speed = self.inst.trains[mover].speed;
            for t in self.inst.trains[mover].dep_step..self.inst.t_max.saturating_sub(1) {
                // Sweep variables for this (mover, t), lazily allocated.
                let mut sweep: HashMap<EdgeId, Lit> = HashMap::new();
                let current = self.active[mover][t].clone();
                let next = self.active[mover][t + 1].clone();
                for &e in &current {
                    for &f in &next {
                        if e == f {
                            continue;
                        }
                        match self.inst.dist(e, f) {
                            Some(d) if d >= 1 && d <= speed => {}
                            _ => continue,
                        }
                        self.encode_collision_move(mover, t, e, f, speed, &mut sweep);
                    }
                }
                // Swept segments are exclusive against every other train.
                for (&g, &s) in &sweep {
                    for other in 0..num_trains {
                        if other == mover {
                            continue;
                        }
                        for step in [t, t + 1] {
                            if let Some(occ_g) = self.occ_lit(other, step, g) {
                                self.solver.add_clause([!s, !occ_g]);
                            }
                        }
                    }
                }
            }
        }
    }

    fn encode_collision_move(
        &mut self,
        mover: usize,
        t: usize,
        e: EdgeId,
        f: EdgeId,
        speed: u32,
        sweep: &mut HashMap<EdgeId, Lit>,
    ) {
        let key = (e, f, speed);
        if !self.path_cache.contains_key(&key) {
            let mut path = self.inst.net.path_edges(e, f, speed);
            if self.config.allow_immediate_reoccupation {
                path.retain(|&g| g != e && g != f);
            }
            self.path_cache.insert(key, path);
        }
        let occ_e = self.occ_lit(mover, t, e).expect("active");
        let occ_f = self.occ_lit(mover, t + 1, f).expect("active");
        let path = self.path_cache[&key].clone();
        for g in path {
            let s = *sweep
                .entry(g)
                .or_insert_with(|| CnfSink::new_var(&mut self.solver).positive());
            self.solver.add_clause([!occ_e, !occ_f, s]);
        }
    }

    // ------------------------------------------------------------------
    // Completion: visited / done machinery and Park freezing
    // ------------------------------------------------------------------

    fn encode_completion(&mut self, tr: usize) {
        let spec = self.inst.trains[tr].clone();
        let dep = spec.dep_step;
        if self.visited.len() <= tr || self.visited[tr].is_empty() {
            // Ensure tables exist even for Park trains (done_lit_or_alloc
            // only ran for Leave trains).
            if self.done.len() < self.inst.trains.len() {
                self.done.resize(self.inst.trains.len(), Vec::new());
                self.visited.resize(self.inst.trains.len(), Vec::new());
            }
            if self.done[tr].is_empty() {
                self.done[tr] = vec![None; self.inst.t_max];
                self.visited[tr] = vec![None; self.inst.t_max];
            }
        }

        // visited[t] ↔ goal occupied at t ∨ visited[t-1]
        let mut prev: Option<Lit> = None;
        for t in dep..self.inst.t_max {
            let mut inputs: Vec<Lit> = spec
                .goal_edges
                .iter()
                .filter_map(|&g| self.occ_lit(tr, t, g))
                .collect();
            if let Some(p) = prev {
                inputs.push(p);
            }
            let v = self.solver.or_gate(&inputs);
            self.visited[tr][t] = Some(v);
            prev = Some(v);
        }

        match spec.exit {
            ExitPolicy::Park => {
                // done ≡ visited; once visited, the train freezes in place.
                for t in dep..self.inst.t_max {
                    self.done[tr][t] = self.visited[tr][t];
                }
                for t in dep..self.inst.t_max - 1 {
                    let vis = self.visited[tr][t].expect("allocated above");
                    for &e in &self.active[tr][t].clone() {
                        let occ_now = self.occ_lit(tr, t, e).expect("active");
                        match self.occ_lit(tr, t + 1, e) {
                            Some(occ_next) => {
                                self.solver.add_clause([!vis, !occ_now, occ_next]);
                            }
                            None => {
                                // Frozen position must stay representable.
                                self.solver.add_clause([!vis, !occ_now]);
                            }
                        }
                    }
                }
            }
            ExitPolicy::Leave => {
                // Monotonicity, no-done-at-departure, exit only from goal.
                let d0 = self.done_lit_or_alloc(tr, dep);
                self.solver.assert_false(d0);
                for t in dep..self.inst.t_max - 1 {
                    let d_now = self.done_lit_or_alloc(tr, t);
                    let d_next = self.done_lit_or_alloc(tr, t + 1);
                    self.solver.implies(d_now, d_next);
                    // Onset requires having just been at the goal.
                    let mut clause = vec![!d_next, d_now];
                    clause.extend(
                        spec.goal_edges
                            .iter()
                            .filter_map(|&g| self.occ_lit(tr, t, g)),
                    );
                    self.solver.add_clause(clause);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Task goals: deadlines or reach-goal-eventually
    // ------------------------------------------------------------------

    fn encode_task_goals(&mut self) -> Vec<Lit> {
        let enforce_deadlines = !matches!(self.task, TaskKind::Optimize);
        let diagnose = matches!(self.task, TaskKind::Diagnose(_));
        let mut selectors = Vec::new();
        for tr in 0..self.inst.trains.len() {
            let spec = self.inst.trains[tr].clone();
            let final_step = self.inst.t_max - 1;
            let goal_step = if enforce_deadlines {
                spec.deadline_step.unwrap_or(final_step)
            } else {
                final_step
            };
            let vis = self.visited[tr][goal_step.max(spec.dep_step).min(final_step)]
                .expect("visited allocated for all steps after departure");
            if diagnose {
                // Guarded arrival: assuming the selector enforces it, so an
                // unsat core over the selectors names the clashing trains.
                let sel = CnfSink::new_var(&mut self.solver).positive();
                self.solver.implies(sel, vis);
                selectors.push(sel);
            } else {
                self.solver.assert_true(vis);
            }

            // Intermediate stops: visited some time before their deadline.
            for (stop_edges, stop_deadline) in &spec.stops {
                let last = if enforce_deadlines {
                    stop_deadline.unwrap_or(final_step)
                } else {
                    final_step
                };
                let mut clause = Vec::new();
                for t in spec.dep_step..=last.min(final_step) {
                    for &g in stop_edges {
                        if let Some(l) = self.occ_lit(tr, t, g) {
                            clause.push(l);
                        }
                    }
                }
                self.solver.add_clause(clause);
            }
        }
        selectors
    }

    // ------------------------------------------------------------------
    // Optimisation objective: number of not-all-done steps
    // ------------------------------------------------------------------

    /// Seeds the solver's branching order: VSS borders first (they shape
    /// everything else), then occupancy in increasing time order so the
    /// search extends plans chronologically. VSIDS adapts from there.
    fn seed_decision_order(&mut self) {
        // Borders first, and initially *active*: a liberal layout makes the
        // scheduling sub-problem as easy as possible; the objectives prune
        // borders afterwards. (Only meaningful when the layout is free.)
        for v in self.border.iter().flatten() {
            self.solver.boost_activity(*v, 2.0);
            self.solver.set_phase(*v, true);
        }
        for tr in 0..self.inst.trains.len() {
            for t in 0..self.inst.t_max {
                let boost = 1.0 / (t as f64 + 2.0);
                for v in self.occ[tr][t].iter().flatten() {
                    self.solver.boost_activity(*v, boost);
                }
            }
        }
    }

    fn build_step_objective(&mut self) -> (Option<Objective>, u64, Vec<Option<Lit>>) {
        let max_dep = self
            .inst
            .trains
            .iter()
            .map(|t| t.dep_step)
            .max()
            .unwrap_or(0);
        let mut cost_lits: Vec<Lit> = Vec::new();
        let mut all_done: Vec<Option<Lit>> = vec![None; self.inst.t_max];
        for t in max_dep..self.inst.t_max {
            let done_lits: Vec<Lit> = (0..self.inst.trains.len())
                .map(|tr| self.done[tr][t].expect("done allocated after departure"))
                .collect();
            let gate = self.solver.and_gate(&done_lits);
            all_done[t] = Some(gate);
            cost_lits.push(!gate);
        }
        // Steps strictly before the last departure can never be all-done.
        (Some(Objective::count_of(cost_lits)), max_dep as u64, all_done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etcs_network::fixtures;

    #[test]
    fn encoding_builds_for_running_example() {
        let inst = Instance::new(&fixtures::running_example()).expect("valid");
        let enc = encode(&inst, &EncoderConfig::default(), &TaskKind::Generate);
        assert!(enc.stats.border_vars > 0);
        assert!(enc.stats.occupies_vars > 0);
        assert!(enc.stats.clauses > 0);
        assert!(enc.stats.solver_vars >= enc.stats.border_vars + enc.stats.occupies_vars);
        assert!(enc.step_objective.is_none());
    }

    #[test]
    fn optimize_encoding_has_step_objective() {
        let scenario = fixtures::running_example().without_arrivals();
        let inst = Instance::new(&scenario).expect("valid");
        let enc = encode(&inst, &EncoderConfig::default(), &TaskKind::Optimize);
        let obj = enc.step_objective.expect("optimize builds the objective");
        assert!(!obj.is_empty());
        assert_eq!(enc.step_cost_offset, 2, "latest departure is step 2");
    }

    #[test]
    fn pruning_reduces_occupancy_vars() {
        let inst = Instance::new(&fixtures::running_example()).expect("valid");
        let pruned = encode(&inst, &EncoderConfig::default(), &TaskKind::Generate);
        let unpruned = encode(
            &inst,
            &EncoderConfig {
                prune_to_goal: false,
                ..EncoderConfig::default()
            },
            &TaskKind::Generate,
        );
        assert!(pruned.stats.occupies_vars < unpruned.stats.occupies_vars);
        assert!(pruned.stats.occupies_vars <= pruned.stats.nominal_vars);
    }

    #[test]
    fn verify_fixes_borders() {
        use etcs_network::VssLayout;
        let inst = Instance::new(&fixtures::running_example()).expect("valid");
        let enc = encode(
            &inst,
            &EncoderConfig::default(),
            &TaskKind::Verify(VssLayout::pure_ttd()),
        );
        // All border vars are fixed at level 0: solving cannot flip any.
        // (Just a smoke check that encoding is well-formed.)
        assert!(enc.stats.border_vars > 0);
    }
}

#[cfg(test)]
mod shape_tests {
    use super::*;
    use crate::tasks::verify;
    use etcs_network::{
        fixtures, KmPerHour, Meters, NetworkBuilder, Scenario, Schedule, Seconds, Train, TrainRun,
    };

    /// A straight 4-segment line with one long (3-segment) train.
    fn long_train_scenario() -> Scenario {
        let mut b = NetworkBuilder::new();
        let a = b.node();
        let c = b.node();
        let t = b.track(a, c, Meters::from_km(2.0), "main");
        b.ttd("TTD1", [t]);
        let st = b.station("A", [t], true);
        let network = b.build().expect("valid");
        let schedule = Schedule::new(vec![TrainRun::new(
            Train::new("Long", Meters(1400), KmPerHour(60)),
            st,
            st,
            Seconds::ZERO,
            None,
        )]);
        Scenario {
            name: "long-train".into(),
            network,
            schedule,
            r_s: Meters(500),
            r_t: Seconds(30),
            horizon: Seconds(120),
        }
    }

    #[test]
    fn long_trains_occupy_contiguous_chains() {
        let scenario = long_train_scenario();
        let inst = Instance::new(&scenario).expect("valid");
        assert_eq!(inst.trains[0].length, 3);
        let (outcome, _) = verify(
            &scenario,
            &etcs_network::VssLayout::pure_ttd(),
            &EncoderConfig::default(),
        )
        .expect("well-formed");
        let plan = outcome.plan().expect("one train on an empty line fits");
        for pos in &plan.plans[0].positions {
            if pos.is_empty() {
                continue;
            }
            assert_eq!(pos.len(), 3, "chain length must equal l*");
            // Contiguity: sorted segment indices are consecutive on a line.
            let mut ix: Vec<usize> = pos.iter().map(|e| e.index()).collect();
            ix.sort_unstable();
            for w in ix.windows(2) {
                assert_eq!(w[1] - w[0], 1, "chain must be contiguous: {ix:?}");
            }
        }
    }

    #[test]
    fn all_config_variants_agree_on_running_example_verdicts() {
        let scenario = fixtures::running_example();
        let variants = [
            EncoderConfig::default(),
            EncoderConfig {
                prune_to_goal: false,
                ..EncoderConfig::default()
            },
            EncoderConfig {
                symmetric_movement: false,
                ..EncoderConfig::default()
            },
        ];
        for config in variants {
            let (v, _) = verify(
                &scenario,
                &etcs_network::VssLayout::pure_ttd(),
                &config,
            )
            .expect("well-formed");
            assert!(!v.is_feasible(), "verdict must not depend on {config:?}");
        }
    }

    #[test]
    fn relaxed_reoccupation_is_weaker() {
        // Everything feasible under the paper-literal rule stays feasible
        // when immediate re-occupation is allowed.
        let scenario = fixtures::running_example();
        let inst = Instance::new(&scenario).expect("valid");
        let strict = EncoderConfig::default();
        let relaxed = EncoderConfig {
            allow_immediate_reoccupation: true,
            ..strict
        };
        let full = etcs_network::VssLayout::full(&inst.net);
        let (a, _) = verify(&scenario, &full, &strict).expect("well-formed");
        assert!(a.is_feasible());
        let (b, _) = verify(&scenario, &full, &relaxed).expect("well-formed");
        assert!(b.is_feasible(), "relaxation must not lose solutions");
    }

    #[test]
    fn diagnose_task_exposes_one_selector_per_train() {
        let scenario = fixtures::running_example();
        let inst = Instance::new(&scenario).expect("valid");
        let enc = encode(
            &inst,
            &EncoderConfig::default(),
            &TaskKind::Diagnose(etcs_network::VssLayout::pure_ttd()),
        );
        assert_eq!(enc.deadline_selectors.len(), inst.trains.len());
        let enc = encode(&inst, &EncoderConfig::default(), &TaskKind::Generate);
        assert!(enc.deadline_selectors.is_empty());
    }
}
