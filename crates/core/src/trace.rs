//! Encoding trace: a [`Formula`] mirror of everything the encoder emits,
//! plus [`Provenance`] for the lint subsystem and optional DRAT proof
//! logging for certification.
//!
//! The encoder builds against [`TracedSolver`], which forwards every
//! variable allocation and clause to the wrapped [`Solver`] and — when
//! tracing is on — mirrors them into an [`EncodingTrace`]. The mirror is
//! index-aligned with the solver (same variable order, same clause order),
//! so the traced formula *is* the axiom set of any DRAT proof the solver
//! emits, and lint findings can be mapped straight back to solver
//! variables.

use std::sync::{Arc, Mutex};

use etcs_lint::{Finding, Provenance};
use etcs_sat::{CnfSink, DratProof, Formula, Lit, Solver, Var};

/// The inspectable mirror of a built encoding.
#[derive(Debug, Default)]
pub struct EncodingTrace {
    /// The exact clause list loaded into the solver, in emission order.
    pub formula: Formula,
    /// Variable, clause-group, objective and gate origin metadata.
    pub provenance: Provenance,
}

impl EncodingTrace {
    /// Audits the traced formula with full encoder provenance.
    pub fn lint(&self) -> Vec<Finding> {
        etcs_lint::audit(&self.formula, Some(&self.provenance))
    }

    /// [`lint`](Self::lint) for lazily relaxed encodings: group
    /// under-constrained findings (`empty-group` / `dead-group`) whose
    /// group the `profile` allowlists are suppressed. Build the profile
    /// from the relaxation itself via
    /// [`ConstraintFamilies::relaxed_groups`](crate::ConstraintFamilies::relaxed_groups).
    pub fn lint_with(&self, profile: &etcs_lint::LazyProfile) -> Vec<Finding> {
        etcs_lint::audit_with_profile(&self.formula, Some(&self.provenance), profile)
    }
}

/// Solver wrapper the encoder builds against.
///
/// Forwards to the wrapped [`Solver`]; optionally mirrors into an
/// [`EncodingTrace`] and/or installs a DRAT [`ProofSink`]
/// (`etcs_sat::ProofSink`) before the first clause so UNSAT verdicts can
/// be certified against the traced formula.
#[derive(Debug)]
pub(crate) struct TracedSolver {
    solver: Solver,
    proof: Option<Arc<Mutex<DratProof>>>,
    trace: Option<EncodingTrace>,
    group: Option<usize>,
    var_context: Option<String>,
}

impl TracedSolver {
    /// Creates a fresh solver; `trace` enables the formula mirror,
    /// `proof` installs a DRAT sink (kept alive via the returned handle
    /// in [`TracedSolver::finish`]).
    pub fn new(trace: bool, proof: bool) -> Self {
        let mut solver = Solver::new();
        let proof = proof.then(|| {
            let sink = Arc::new(Mutex::new(DratProof::new()));
            solver.set_proof_sink(Box::new(Arc::clone(&sink)));
            sink
        });
        TracedSolver {
            solver,
            proof,
            trace: trace.then(EncodingTrace::default),
            group: None,
            var_context: None,
        }
    }

    /// Declares a constraint group; subsequent clauses are tagged with it
    /// and untagged variables inherit it as allocation context. No-op when
    /// tracing is off (the label closure is never evaluated).
    pub fn begin_group(&mut self, name: impl FnOnce() -> String) {
        if let Some(tr) = &mut self.trace {
            let name = name();
            self.var_context = Some(name.clone());
            self.group = Some(tr.provenance.declare_group(name));
        }
    }

    /// Tags a variable's origin (lazily; no-op when tracing is off).
    pub fn tag_var(&mut self, v: Var, label: impl FnOnce() -> String) {
        if let Some(tr) = &mut self.trace {
            tr.provenance.tag_var(v, label());
        }
    }

    /// Marks literals as objective-referenced (exempt from the
    /// unconstrained-variable lint).
    pub fn mark_objective(&mut self, lits: impl IntoIterator<Item = Lit>) {
        if let Some(tr) = &mut self.trace {
            for l in lits {
                tr.provenance.mark_objective_var(l.var());
            }
        }
    }

    /// Adds a clause (iterator form, mirroring [`Solver::add_clause`]).
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        if self.trace.is_some() {
            let v: Vec<Lit> = lits.into_iter().collect();
            self.add_clause_from(&v);
        } else {
            self.solver.add_clause(lits);
        }
    }

    pub fn boost_activity(&mut self, v: Var, amount: f64) {
        self.solver.boost_activity(v, amount);
    }

    pub fn set_phase(&mut self, v: Var, phase: bool) {
        self.solver.set_phase(v, phase);
    }

    /// Dismantles the wrapper into the solver, the trace and the proof
    /// handle.
    #[allow(clippy::type_complexity)]
    pub fn finish(self) -> (Solver, Option<EncodingTrace>, Option<Arc<Mutex<DratProof>>>) {
        (self.solver, self.trace, self.proof)
    }
}

impl CnfSink for TracedSolver {
    fn new_var(&mut self) -> Var {
        let v = Solver::new_var(&mut self.solver);
        if let Some(tr) = &mut self.trace {
            let mirrored = tr.formula.new_var();
            debug_assert_eq!(v, mirrored, "solver and mirror must stay index-aligned");
            let label = match &self.var_context {
                Some(ctx) => format!("aux[{ctx}]"),
                None => "aux".to_owned(),
            };
            tr.provenance.tag_var(v, label);
        }
        v
    }

    fn add_clause_from(&mut self, lits: &[Lit]) {
        self.solver.add_clause(lits.iter().copied());
        if let Some(tr) = &mut self.trace {
            let idx = tr.formula.num_clauses();
            tr.formula.add_clause_from(lits);
            if let Some(g) = self.group {
                tr.provenance.tag_clause(idx, g);
            }
        }
    }

    // Gate construction is overridden (same emitted clauses as the default
    // implementations) so the trace records gate extents for the
    // unreferenced-gate lint.

    fn and_gate(&mut self, inputs: &[Lit]) -> Lit {
        let start = self.trace.as_ref().map(|t| t.formula.num_clauses());
        let y = self.new_var().positive();
        for &i in inputs {
            self.add_clause_from(&[!y, i]);
        }
        let mut clause: Vec<Lit> = inputs.iter().map(|&i| !i).collect();
        clause.push(y);
        self.add_clause_from(&clause);
        if let Some(start) = start {
            let tr = self.trace.as_mut().expect("trace checked above");
            let end = tr.formula.num_clauses();
            tr.provenance.tag_gate(y.var(), start..end);
        }
        y
    }

    fn or_gate(&mut self, inputs: &[Lit]) -> Lit {
        let start = self.trace.as_ref().map(|t| t.formula.num_clauses());
        let y = self.new_var().positive();
        for &i in inputs {
            self.add_clause_from(&[y, !i]);
        }
        let mut clause: Vec<Lit> = inputs.to_vec();
        clause.push(!y);
        self.add_clause_from(&clause);
        if let Some(start) = start {
            let tr = self.trace.as_mut().expect("trace checked above");
            let end = tr.formula.num_clauses();
            tr.provenance.tag_gate(y.var(), start..end);
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etcs_sat::SatResult;

    #[test]
    fn mirror_stays_index_aligned() {
        let mut ts = TracedSolver::new(true, false);
        ts.begin_group(|| "g".to_owned());
        let a = CnfSink::new_var(&mut ts).positive();
        let b = CnfSink::new_var(&mut ts).positive();
        ts.add_clause([a, b]);
        let y = ts.or_gate(&[a, b]);
        ts.add_clause([!y, a]);
        let (solver, trace, proof) = ts.finish();
        assert!(proof.is_none());
        let trace = trace.expect("tracing was on");
        assert_eq!(trace.formula.num_vars(), solver.num_vars());
        assert_eq!(trace.formula.num_clauses(), solver.num_clauses());
        assert_eq!(trace.provenance.gates().len(), 1);
        assert_eq!(trace.provenance.clause_group(0), Some(0));
    }

    #[test]
    fn proof_certifies_against_the_mirror() {
        let mut ts = TracedSolver::new(true, true);
        let a = CnfSink::new_var(&mut ts).positive();
        ts.add_clause([a]);
        ts.add_clause([!a]);
        let (mut solver, trace, proof) = ts.finish();
        assert!(matches!(solver.solve(), SatResult::Unsat { .. }));
        let trace = trace.expect("tracing was on");
        let proof = proof.expect("proof logging was on");
        etcs_sat::check_drat(
            trace.formula.clauses(),
            &proof.lock().expect("proof lock"),
            &[],
        )
        .expect("mirror is the axiom set");
    }

    #[test]
    fn untraced_wrapper_is_transparent() {
        let mut ts = TracedSolver::new(false, false);
        ts.begin_group(|| unreachable!("label must not be evaluated untraced"));
        let a = CnfSink::new_var(&mut ts).positive();
        ts.tag_var(a.var(), || unreachable!());
        ts.add_clause([a]);
        let (mut solver, trace, proof) = ts.finish();
        assert!(trace.is_none() && proof.is_none());
        assert!(solver.solve().is_sat());
    }
}
