//! Interactive layout exploration: verify many candidate VSS layouts
//! against one schedule without re-encoding.
//!
//! The scenario is encoded once with *free* border variables
//! ([`TaskKind::Generate`]); each candidate layout is then checked by
//! passing the border assignment as solver *assumptions*. Learnt clauses
//! carry over between queries, so sweeping dozens of layouts (e.g. in a
//! design-space exploration GUI, or the `ablation` bench) costs a fraction
//! of independent [`crate::verify`] calls.

use etcs_network::{NetworkError, NodeId, Scenario, VssLayout};
use etcs_sat::{Lit, SatResult};

use crate::decode::SolvedPlan;
use crate::encoder::{encode, EncoderConfig, Encoding, EncodingStats, TaskKind};
use crate::instance::Instance;

/// Incrementally verifies VSS layouts against a fixed scenario.
///
/// # Examples
///
/// ```
/// use etcs_core::{EncoderConfig, LayoutExplorer};
/// use etcs_network::{fixtures, VssLayout};
///
/// let scenario = fixtures::running_example();
/// let mut explorer = LayoutExplorer::new(&scenario, &EncoderConfig::default())?;
/// assert!(!explorer.admits(&VssLayout::pure_ttd()));
/// let full = VssLayout::full(explorer.net());
/// assert!(explorer.admits(&full));
/// # Ok::<(), etcs_network::NetworkError>(())
/// ```
#[derive(Debug)]
pub struct LayoutExplorer {
    inst: Instance,
    enc: Encoding,
    candidates: Vec<NodeId>,
}

impl LayoutExplorer {
    /// Encodes the scenario once, with free border variables.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] if the scenario is malformed.
    pub fn new(scenario: &Scenario, config: &EncoderConfig) -> Result<Self, NetworkError> {
        let inst = Instance::new(scenario)?;
        let enc = encode(&inst, config, &TaskKind::Generate);
        let candidates = inst.net.border_candidates();
        Ok(LayoutExplorer {
            inst,
            enc,
            candidates,
        })
    }

    /// The discretised network (e.g. for building candidate layouts).
    pub fn net(&self) -> &etcs_network::DiscreteNet {
        &self.inst.net
    }

    /// Encoding size statistics of the underlying instance.
    pub fn stats(&self) -> EncodingStats {
        self.enc.stats
    }

    /// Assumption literals pinning the border variables to `layout`.
    fn layout_assumptions(&self, layout: &VssLayout) -> Vec<Lit> {
        self.candidates
            .iter()
            .map(|&n| {
                let var = self.enc.vars.border[n.index()].expect("candidate has a variable");
                var.lit(layout.borders().contains(&n))
            })
            .collect()
    }

    /// Does the schedule work on `layout`? (Incremental [`crate::verify`].)
    pub fn admits(&mut self, layout: &VssLayout) -> bool {
        self.check(layout).is_some()
    }

    /// Like [`LayoutExplorer::admits`] but returns the witness plan.
    pub fn check(&mut self, layout: &VssLayout) -> Option<SolvedPlan> {
        let assumptions = self.layout_assumptions(layout);
        match self.enc.solver.solve_with(&assumptions) {
            SatResult::Sat(model) => {
                let mut plan = SolvedPlan::decode(&self.inst, &self.enc.vars, &model);
                plan.layout = layout.clone();
                Some(plan)
            }
            SatResult::Unsat { .. } => None,
            SatResult::Unknown => unreachable!("no conflict budget configured"),
        }
    }

    /// Which of a layout's borders are *load-bearing*: removing the border
    /// alone makes the schedule infeasible. Non-essential borders are
    /// candidates for saving axle-counter-free subdivisions.
    ///
    /// Returns `None` if the layout does not admit the schedule at all.
    pub fn essential_borders(&mut self, layout: &VssLayout) -> Option<Vec<NodeId>> {
        if !self.admits(layout) {
            return None;
        }
        let mut essential = Vec::new();
        for &b in layout.borders().clone().iter() {
            let mut without = layout.clone();
            without.remove_border(b);
            if !self.admits(&without) {
                essential.push(b);
            }
        }
        Some(essential)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etcs_network::fixtures;

    fn explorer() -> LayoutExplorer {
        LayoutExplorer::new(&fixtures::running_example(), &EncoderConfig::default())
            .expect("valid scenario")
    }

    #[test]
    fn agrees_with_monolithic_verify() {
        let scenario = fixtures::running_example();
        let mut ex = explorer();
        let layouts = [
            VssLayout::pure_ttd(),
            VssLayout::full(ex.net()),
            VssLayout::with_borders([ex.net().border_candidates()[0]]),
        ];
        for layout in layouts {
            let (mono, _) =
                crate::verify(&scenario, &layout, &EncoderConfig::default()).expect("ok");
            assert_eq!(
                ex.admits(&layout),
                mono.is_feasible(),
                "explorer disagrees with verify on {layout}"
            );
        }
    }

    #[test]
    fn witness_plan_uses_the_queried_layout() {
        let mut ex = explorer();
        let full = VssLayout::full(ex.net());
        let plan = ex.check(&full).expect("admits");
        assert_eq!(plan.layout, full);
    }

    #[test]
    fn sweeping_single_border_layouts() {
        // Exactly the layouts whose single border repairs the running
        // example admit the schedule; at least one does (generation found
        // a 1-border repair).
        let mut ex = explorer();
        let candidates = ex.net().border_candidates();
        let admitted: Vec<_> = candidates
            .iter()
            .filter(|&&n| ex.admits(&VssLayout::with_borders([n])))
            .collect();
        assert!(!admitted.is_empty());
        assert!(admitted.len() < candidates.len());
    }

    #[test]
    fn essential_borders_of_the_generated_layout() {
        let scenario = fixtures::running_example();
        let (outcome, _) = crate::generate(&scenario, &EncoderConfig::default()).expect("ok");
        let layout = outcome.plan().expect("feasible").layout.clone();
        let mut ex = explorer();
        let essential = ex.essential_borders(&layout).expect("layout admits");
        // The minimal layout has exactly one border, and it is essential.
        assert_eq!(essential.len(), layout.num_borders());
    }

    #[test]
    fn essential_borders_of_infeasible_layout_is_none() {
        let mut ex = explorer();
        assert_eq!(ex.essential_borders(&VssLayout::pure_ttd()), None);
    }

    #[test]
    fn full_layout_has_mostly_inessential_borders() {
        let mut ex = explorer();
        let full = VssLayout::full(ex.net());
        let essential = ex.essential_borders(&full).expect("admits");
        assert!(essential.len() < full.num_borders());
    }
}
