//! Certified task runners: verdicts that do not trust the solver.
//!
//! [`verify_certified`], [`generate_certified`], [`optimize_certified`] and
//! [`diagnose_certified`] run the same pipelines as their plain
//! counterparts, but build the encoding through the tracing path (an
//! [`EncodingTrace`] mirror of exactly what the encoder emitted), lint it
//! with [`etcs_lint`] before solving, log a DRAT proof while solving, and
//! validate the verdict independently:
//!
//! * **Feasible / solved** — the witness model is re-evaluated clause by
//!   clause against the traced formula, not against the solver's internal
//!   state.
//! * **Infeasible** — the DRAT proof is replayed by the backward checker
//!   [`etcs_sat::check_drat`] with the traced formula as axiom set; for
//!   assumption-based verdicts (diagnosis cores) the negated failed core
//!   is the checked target.
//!
//! Optimality claims (minimal borders, minimal completion time) are *not*
//! independently certified: the MaxSAT loop introduces cardinality-counter
//! clauses outside the traced axiom set. The certified surface is the
//! feasibility verdict of the returned solution and every UNSAT answer met
//! on the way (the deadline probes of [`optimize_certified`]).

use std::fmt;
use std::time::Instant;

use etcs_lint::{has_errors, Finding};
use etcs_network::{NetworkError, Scenario, TrainId, VssLayout};
use etcs_sat::{
    check_drat, maxsat, CheckOutcome, Lit, PreprocessConfig, ProofError, SatResult, Strategy,
};

use crate::decode::SolvedPlan;
use crate::diagnose::Diagnosis;
use crate::encoder::{encode, EncoderConfig, EncodingStats, SolveMode, TaskKind};
use crate::instance::Instance;
use crate::tasks::{DesignOutcome, TaskReport, VerifyOutcome};
use crate::trace::EncodingTrace;

/// Evidence accompanying a certified verdict.
#[derive(Debug)]
pub struct Certification {
    /// Lint findings on the traced encoding (warnings and infos; a finding
    /// of [`etcs_lint::Severity::Error`] aborts before solving instead).
    pub findings: Vec<Finding>,
    /// The traced encoding all evidence refers to: the exact clause list
    /// handed to the solver plus variable/clause provenance.
    pub trace: EncodingTrace,
    /// How the verdict was validated.
    pub verdict: CertifiedVerdict,
    /// UNSAT deadline probes certified along the way (only
    /// [`optimize_certified`] produces these).
    pub certified_unsat_probes: usize,
}

/// How a certified verdict was independently validated.
#[derive(Clone, Copy, Debug)]
pub enum CertifiedVerdict {
    /// A witness model satisfied every clause of the traced formula.
    ModelChecked,
    /// A DRAT proof of unsatisfiability passed the backward checker.
    ProofChecked(CheckOutcome),
}

/// Failure modes of the certified runners.
#[derive(Debug)]
pub enum CertifyError {
    /// The scenario itself is malformed.
    Network(NetworkError),
    /// The lint pass found error-severity findings; the formula was not
    /// handed to the solver.
    MalformedEncoding(Vec<Finding>),
    /// The solver's witness model violates the traced formula — a solver
    /// or mirror defect.
    BadWitness,
    /// The solver's DRAT proof failed independent validation.
    Proof(ProofError),
    /// The caller asked for [`SolveMode::Portfolio`]: a portfolio verdict
    /// cannot be DRAT-certified (imported clauses have no derivation in the
    /// local proof log), so the certified runners refuse it outright rather
    /// than silently downgrading to sequential solving.
    PortfolioUncertified(usize),
}

impl fmt::Display for CertifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertifyError::Network(e) => write!(f, "malformed scenario: {e}"),
            CertifyError::MalformedEncoding(findings) => write!(
                f,
                "encoding rejected by lint:\n{}",
                etcs_lint::render_report(findings)
            ),
            CertifyError::BadWitness => {
                write!(f, "witness model does not satisfy the traced formula")
            }
            CertifyError::Proof(e) => write!(f, "DRAT proof rejected: {e}"),
            CertifyError::PortfolioUncertified(n) => write!(
                f,
                "certified tasks require SolveMode::Single: a {n}-worker \
                 clause-sharing portfolio cannot be DRAT-certified"
            ),
        }
    }
}

impl std::error::Error for CertifyError {}

impl From<NetworkError> for CertifyError {
    fn from(e: NetworkError) -> Self {
        CertifyError::Network(e)
    }
}

impl From<ProofError> for CertifyError {
    fn from(e: ProofError) -> Self {
        CertifyError::Proof(e)
    }
}

/// Lints a traced encoding, refusing to solve on error-severity findings.
fn lint_gate(trace: &EncodingTrace) -> Result<Vec<Finding>, CertifyError> {
    let findings = trace.lint();
    if has_errors(&findings) {
        return Err(CertifyError::MalformedEncoding(findings));
    }
    Ok(findings)
}

/// Forces tracing and proof logging on, whatever the caller's config says.
/// Rejects [`SolveMode::Portfolio`] — the certification boundary: imported
/// clauses carry no derivation in the local DRAT log, so a portfolio verdict
/// is not certifiable and silently racing (or silently downgrading) would
/// misrepresent what the certificate covers.
fn certified_config(config: &EncoderConfig) -> Result<EncoderConfig, CertifyError> {
    if let SolveMode::Portfolio(n) = config.solve_mode {
        return Err(CertifyError::PortfolioUncertified(n));
    }
    let mut cfg = *config;
    cfg.trace = true;
    cfg.proof = true;
    Ok(cfg)
}

/// [`crate::verify`] with a certified verdict.
///
/// # Errors
///
/// Returns [`CertifyError`] if the scenario is malformed, the encoding
/// fails the lint gate, or the solver's evidence fails validation.
///
/// # Examples
///
/// ```
/// use etcs_core::{verify_certified, CertifiedVerdict, EncoderConfig};
/// use etcs_network::{fixtures, VssLayout};
///
/// let scenario = fixtures::running_example();
/// let (outcome, _, cert) =
///     verify_certified(&scenario, &VssLayout::pure_ttd(), &EncoderConfig::default())?;
/// assert!(!outcome.is_feasible());
/// // The deadlock verdict is backed by a checker-validated DRAT proof.
/// assert!(matches!(cert.verdict, CertifiedVerdict::ProofChecked(_)));
/// # Ok::<(), etcs_core::CertifyError>(())
/// ```
pub fn verify_certified(
    scenario: &Scenario,
    layout: &VssLayout,
    config: &EncoderConfig,
) -> Result<(VerifyOutcome, TaskReport, Certification), CertifyError> {
    let start = Instant::now();
    let inst = Instance::new(scenario)?;
    let mut enc = encode(
        &inst,
        &certified_config(config)?,
        &TaskKind::Verify(layout.clone()),
    );
    let stats = enc.stats;
    let trace = enc.trace.take().expect("tracing enabled");
    let proof = enc.proof.take().expect("proof logging enabled");
    let findings = lint_gate(&trace)?;
    if config.preprocess {
        // The proof sink stays installed on the solver, so every
        // preprocessing derivation lands in the certificate and UNSAT
        // verdicts still check against the traced axioms; SAT models are
        // reconstructed to satisfy the original formula.
        enc.preprocess(&PreprocessConfig::default());
    }
    let (outcome, verdict) = match enc.solver.solve() {
        SatResult::Sat(model) => {
            if !trace.formula.eval(&model) {
                return Err(CertifyError::BadWitness);
            }
            let mut plan = SolvedPlan::decode(&inst, &enc.vars, &model);
            plan.layout = layout.clone();
            (
                VerifyOutcome::Feasible(plan),
                CertifiedVerdict::ModelChecked,
            )
        }
        SatResult::Unsat { .. } => {
            let check = check_drat(
                trace.formula.clauses(),
                &proof.lock().expect("proof lock"),
                &[],
            )?;
            (
                VerifyOutcome::Infeasible,
                CertifiedVerdict::ProofChecked(check),
            )
        }
        SatResult::Unknown => unreachable!("no conflict budget configured"),
    };
    Ok((
        outcome,
        TaskReport {
            stats,
            runtime: start.elapsed(),
            solver_calls: 1,
            search: *enc.solver.stats(),
        },
        Certification {
            findings,
            trace,
            verdict,
            certified_unsat_probes: 0,
        },
    ))
}

/// [`crate::generate`] with a certified verdict.
///
/// The returned layout's feasibility is model-checked; an infeasibility
/// verdict is proof-checked (the MaxSAT loop answers "unsatisfiable" from
/// its very first solve, before any counter clause exists, so the proof is
/// valid against the traced axioms). Border *minimality* is reported as in
/// [`crate::generate`] but not independently certified.
///
/// # Errors
///
/// Returns [`CertifyError`] if the scenario is malformed, the encoding
/// fails the lint gate, or the solver's evidence fails validation.
pub fn generate_certified(
    scenario: &Scenario,
    config: &EncoderConfig,
) -> Result<(DesignOutcome, TaskReport, Certification), CertifyError> {
    let start = Instant::now();
    let inst = Instance::new(scenario)?;
    let mut enc = encode(&inst, &certified_config(config)?, &TaskKind::Generate);
    let stats = enc.stats;
    let trace = enc.trace.take().expect("tracing enabled");
    let proof = enc.proof.take().expect("proof logging enabled");
    let findings = lint_gate(&trace)?;
    if config.preprocess {
        enc.preprocess(&PreprocessConfig::default());
    }
    let objective = enc.border_objective.clone();
    let (outcome, verdict, calls) =
        match maxsat::minimize(&mut enc.solver, &objective, &[], Strategy::LinearSatUnsat) {
            maxsat::OptimizeOutcome::Optimal(r) => {
                if !trace.formula.eval(&r.model) {
                    return Err(CertifyError::BadWitness);
                }
                (
                    DesignOutcome::Solved {
                        plan: SolvedPlan::decode(&inst, &enc.vars, &r.model),
                        costs: vec![r.cost],
                    },
                    CertifiedVerdict::ModelChecked,
                    r.solver_calls,
                )
            }
            maxsat::OptimizeOutcome::Unsat => {
                let check = check_drat(
                    trace.formula.clauses(),
                    &proof.lock().expect("proof lock"),
                    &[],
                )?;
                (
                    DesignOutcome::Infeasible,
                    CertifiedVerdict::ProofChecked(check),
                    1,
                )
            }
            maxsat::OptimizeOutcome::Unknown { .. } => {
                unreachable!("no conflict budget configured")
            }
        };
    Ok((
        outcome,
        TaskReport {
            stats,
            runtime: start.elapsed(),
            solver_calls: calls,
            search: *enc.solver.stats(),
        },
        Certification {
            findings,
            trace,
            verdict,
            certified_unsat_probes: 0,
        },
    ))
}

/// [`crate::optimize`] with a certified verdict.
///
/// Every UNSAT deadline probe of the shrinking-horizon search is certified
/// with its own DRAT proof (their count is reported in
/// [`Certification::certified_unsat_probes`]); the final solution is
/// model-checked against the stage-2 traced formula.
///
/// This is the **explicit per-probe fallback** to the incremental loop of
/// [`crate::optimize_incremental`]: certification deliberately re-encodes
/// every probe from scratch. A DRAT refutation is checked against a fixed
/// axiom set, and each deadline needs its *own* axiom set (the probe's
/// traced formula) — on a shared incremental solver the probes' proofs
/// would interleave in one log, and the Stage-2 MaxSAT counter clauses
/// fall outside the traced axioms entirely. Re-encoding keeps every
/// certificate self-contained at the cost of the cross-probe clause reuse
/// the plain incremental path exploits.
///
/// # Errors
///
/// Returns [`CertifyError`] if the scenario is malformed, any probe
/// encoding fails the lint gate, or the solver's evidence fails validation.
pub fn optimize_certified(
    scenario: &Scenario,
    config: &EncoderConfig,
) -> Result<(DesignOutcome, TaskReport, Certification), CertifyError> {
    let start = Instant::now();
    let open = scenario.without_arrivals();
    let mut inst = Instance::new(&open)?;
    let cfg = certified_config(config)?;
    let mut calls = 0usize;
    let mut probes = 0usize;
    let mut search = etcs_sat::Stats::default();

    // Stage 1 — shrinking-horizon search (see `optimize` for rationale),
    // with every UNSAT probe certified on the spot.
    let max_deadline = inst.t_max - 1;
    let lower = inst.completion_lower_bound().min(max_deadline);
    let mut best_deadline = None;
    let mut last_infeasible: Option<(EncodingStats, Vec<Finding>, EncodingTrace, CheckOutcome)> =
        None;
    for d in lower..=max_deadline {
        inst.set_uniform_deadline(d);
        let mut enc = encode(&inst, &cfg, &TaskKind::Generate);
        let trace = enc.trace.take().expect("tracing enabled");
        let proof = enc.proof.take().expect("proof logging enabled");
        let findings = lint_gate(&trace)?;
        if cfg.preprocess {
            enc.preprocess(&PreprocessConfig::default());
        }
        calls += 1;
        let verdict = enc.solver.solve();
        search += enc.solver.stats();
        match verdict {
            SatResult::Sat(model) => {
                if !trace.formula.eval(&model) {
                    return Err(CertifyError::BadWitness);
                }
                best_deadline = Some(d);
                break;
            }
            SatResult::Unsat { .. } => {
                let check = check_drat(
                    trace.formula.clauses(),
                    &proof.lock().expect("proof lock"),
                    &[],
                )?;
                probes += 1;
                last_infeasible = Some((enc.stats, findings, trace, check));
            }
            SatResult::Unknown => unreachable!("no conflict budget configured"),
        }
    }
    let Some(best_deadline) = best_deadline else {
        let (stats, findings, trace, check) = last_infeasible.expect("at least one probe runs");
        return Ok((
            DesignOutcome::Infeasible,
            TaskReport {
                stats,
                runtime: start.elapsed(),
                solver_calls: calls,
                search,
            },
            Certification {
                findings,
                trace,
                verdict: CertifiedVerdict::ProofChecked(check),
                certified_unsat_probes: probes,
            },
        ));
    };

    // Stage 2 — minimise borders at the optimal completion.
    inst.set_uniform_deadline(best_deadline);
    let mut enc = encode(&inst, &cfg, &TaskKind::Generate);
    let stats = enc.stats;
    let trace = enc.trace.take().expect("tracing enabled");
    let findings = lint_gate(&trace)?;
    if cfg.preprocess {
        enc.preprocess(&PreprocessConfig::default());
    }
    let border_obj = enc.border_objective.clone();
    let (plan, border_cost) =
        match maxsat::minimize(&mut enc.solver, &border_obj, &[], Strategy::LinearSatUnsat) {
            maxsat::OptimizeOutcome::Optimal(r) => {
                if !trace.formula.eval(&r.model) {
                    return Err(CertifyError::BadWitness);
                }
                calls += r.solver_calls;
                (SolvedPlan::decode(&inst, &enc.vars, &r.model), r.cost)
            }
            maxsat::OptimizeOutcome::Unsat => {
                unreachable!("the probed deadline was satisfiable")
            }
            maxsat::OptimizeOutcome::Unknown { .. } => {
                unreachable!("no conflict budget configured")
            }
        };
    search += enc.solver.stats();
    Ok((
        DesignOutcome::Solved {
            plan,
            costs: vec![best_deadline as u64 + 1, border_cost],
        },
        TaskReport {
            stats,
            runtime: start.elapsed(),
            solver_calls: calls,
            search,
        },
        Certification {
            findings,
            trace,
            verdict: CertifiedVerdict::ModelChecked,
            certified_unsat_probes: probes,
        },
    ))
}

/// [`crate::diagnose`] with a certified verdict.
///
/// Structural deadlocks are certified by a proof of the empty clause;
/// deadline conflicts by a proof of the negated failed core (the lemma
/// `¬sel₁ ∨ … ∨ ¬selₙ` over the deadline selector literals). The traced
/// provenance labels the selectors (`deadline-sel[…]`) so the certificate
/// can be read without decoding variable indices.
///
/// # Errors
///
/// Returns [`CertifyError`] if the scenario is malformed, the encoding
/// fails the lint gate, or the solver's evidence fails validation.
pub fn diagnose_certified(
    scenario: &Scenario,
    layout: &VssLayout,
    config: &EncoderConfig,
) -> Result<(Diagnosis, Certification), CertifyError> {
    let inst = Instance::new(scenario)?;
    let mut enc = encode(
        &inst,
        &certified_config(config)?,
        &TaskKind::Diagnose(layout.clone()),
    );
    let trace = enc.trace.take().expect("tracing enabled");
    let proof = enc.proof.take().expect("proof logging enabled");
    let findings = lint_gate(&trace)?;
    if config.preprocess {
        enc.preprocess(&PreprocessConfig::default());
    }
    let selectors = enc.deadline_selectors.clone();

    // All deadlines on: the plain verification question.
    let core = match enc.solver.solve_with(&selectors) {
        SatResult::Sat(model) => {
            if !trace.formula.eval(&model) {
                return Err(CertifyError::BadWitness);
            }
            return Ok((
                Diagnosis::Feasible,
                Certification {
                    findings,
                    trace,
                    verdict: CertifiedVerdict::ModelChecked,
                    certified_unsat_probes: 0,
                },
            ));
        }
        SatResult::Unsat { core } => core,
        SatResult::Unknown => unreachable!("no conflict budget configured"),
    };
    if core.is_empty() {
        let check = check_drat(
            trace.formula.clauses(),
            &proof.lock().expect("proof lock"),
            &[],
        )?;
        return Ok((
            Diagnosis::Structural,
            Certification {
                findings,
                trace,
                verdict: CertifiedVerdict::ProofChecked(check),
                certified_unsat_probes: 0,
            },
        ));
    }

    // Shrink to a minimal conflict set, exactly as `diagnose` does.
    let mut minimal: Vec<Lit> = core;
    let mut i = 0;
    while i < minimal.len() {
        let mut candidate = minimal.clone();
        candidate.remove(i);
        match enc.solver.solve_with(&candidate) {
            SatResult::Unsat { core } => {
                minimal = core;
                i = 0;
            }
            SatResult::Sat(_) => i += 1,
            SatResult::Unknown => unreachable!("no conflict budget configured"),
        }
        if minimal.is_empty() {
            let check = check_drat(
                trace.formula.clauses(),
                &proof.lock().expect("proof lock"),
                &[],
            )?;
            return Ok((
                Diagnosis::Structural,
                Certification {
                    findings,
                    trace,
                    verdict: CertifiedVerdict::ProofChecked(check),
                    certified_unsat_probes: 0,
                },
            ));
        }
    }

    // One confirming solve so the core lemma is RUP with respect to the
    // *final* clause set: the intervening satisfiable probes may have
    // reduced the learnt database, and the checker validates the target
    // against what is active at the end of the proof.
    let confirmed = match enc.solver.solve_with(&minimal) {
        SatResult::Unsat { core } => core,
        _ => unreachable!("the minimal core was just unsatisfiable"),
    };
    let target: Vec<Lit> = confirmed.iter().map(|&l| !l).collect();
    let check = check_drat(
        trace.formula.clauses(),
        &proof.lock().expect("proof lock"),
        &target,
    )?;

    let mut trains: Vec<TrainId> = confirmed
        .iter()
        .filter_map(|l| selectors.iter().position(|s| s == l))
        .map(TrainId::from_index)
        .collect();
    trains.sort();
    trains.dedup();
    let names = trains
        .iter()
        .map(|t| inst.trains[t.index()].name.clone())
        .collect();
    Ok((
        Diagnosis::Conflict { trains, names },
        Certification {
            findings,
            trace,
            verdict: CertifiedVerdict::ProofChecked(check),
            certified_unsat_probes: 0,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use etcs_lint::LintKind;
    use etcs_network::fixtures;
    use etcs_sat::{CnfSink, DratProof, ProofStep, Var};

    fn config() -> EncoderConfig {
        EncoderConfig::default()
    }

    #[test]
    fn pure_ttd_infeasibility_is_proof_checked() {
        let scenario = fixtures::running_example();
        let (outcome, report, cert) =
            verify_certified(&scenario, &VssLayout::pure_ttd(), &config()).expect("certified");
        assert!(!outcome.is_feasible(), "paper: pure TTD deadlocks");
        assert!(
            cert.findings.is_empty(),
            "clean encoder output must lint clean: {:?}",
            cert.findings
        );
        let CertifiedVerdict::ProofChecked(check) = cert.verdict else {
            panic!("UNSAT verdicts must be proof-checked");
        };
        assert!(check.lemmas > 0 && check.checked_lemmas > 0);
        assert!(report.stats.clauses > 0);
    }

    #[test]
    fn full_layout_feasibility_is_model_checked() {
        let scenario = fixtures::running_example();
        let inst = Instance::new(&scenario).expect("valid");
        let full = VssLayout::full(&inst.net);
        let (outcome, _, cert) = verify_certified(&scenario, &full, &config()).expect("certified");
        assert!(outcome.is_feasible());
        assert!(matches!(cert.verdict, CertifiedVerdict::ModelChecked));
        assert!(cert.findings.is_empty());
    }

    #[test]
    fn forged_proof_is_rejected() {
        // Re-run the UNSAT verification by hand, then swap in a forged
        // proof claiming the empty clause outright. The checker must refuse
        // it: the encoding is not refutable by unit propagation alone.
        let scenario = fixtures::running_example();
        let inst = Instance::new(&scenario).expect("valid");
        let cfg = certified_config(&config()).expect("sequential mode certifies");
        let mut enc = encode(&inst, &cfg, &TaskKind::Verify(VssLayout::pure_ttd()));
        let trace = enc.trace.take().expect("traced");
        let proof = enc.proof.take().expect("proof logged");
        assert!(matches!(enc.solver.solve(), SatResult::Unsat { .. }));
        check_drat(
            trace.formula.clauses(),
            &proof.lock().expect("proof lock"),
            &[],
        )
        .expect("the genuine proof passes");
        assert!(
            proof.lock().expect("proof lock").len() > 1,
            "the refutation required search"
        );

        let mut forged = DratProof::new();
        forged.push(ProofStep::Add(Vec::new()));
        assert!(
            check_drat(trace.formula.clauses(), &forged, &[]).is_err(),
            "a bare empty-clause claim must be rejected"
        );
    }

    #[test]
    fn seeded_defects_are_flagged_with_provenance() {
        let scenario = fixtures::running_example();
        let inst = Instance::new(&scenario).expect("valid");
        let mut cfg = config();
        cfg.trace = true;
        let mut enc = encode(&inst, &cfg, &TaskKind::Generate);
        let mut trace = enc.trace.take().expect("traced");
        assert!(
            trace.lint().is_empty(),
            "clean encoder output must lint clean"
        );

        // Seed an unconstrained variable …
        let ghost = trace.formula.new_var();
        trace.provenance.tag_var(ghost, "occ[Ghost,t=0,seg=0]");
        // … and a tautological clause in its own constraint group.
        let g = trace.provenance.declare_group("seeded-defects");
        let idx = trace.formula.num_clauses();
        let v = Var::from_index(0).positive();
        trace.formula.add_clause_from(&[v, !v]);
        trace.provenance.tag_clause(idx, g);

        let findings = trace.lint();
        let unconstrained = findings
            .iter()
            .find(|f| f.kind == LintKind::UnconstrainedVar)
            .expect("the ghost variable must be flagged");
        assert_eq!(unconstrained.var, Some(ghost));
        assert!(unconstrained.message.contains("occ[Ghost,t=0,seg=0]"));
        let taut = findings
            .iter()
            .find(|f| f.kind == LintKind::TautologicalClause)
            .expect("the tautology must be flagged");
        assert_eq!(taut.clause, Some(idx));
        assert_eq!(taut.group, Some(g));
    }

    #[test]
    fn certified_generation_model_checks_the_optimum() {
        let scenario = fixtures::running_example();
        let (outcome, _, cert) = generate_certified(&scenario, &config()).expect("certified");
        let DesignOutcome::Solved { costs, .. } = outcome else {
            panic!("paper: generation succeeds");
        };
        assert!(costs[0] >= 1);
        assert!(matches!(cert.verdict, CertifiedVerdict::ModelChecked));
        assert!(cert.findings.is_empty());
    }

    #[test]
    fn certified_generation_proves_infeasibility() {
        // No VSS layout lets the follower overtake on a single track, so
        // generation is infeasible — and says so with a checked proof.
        let scenario = crate::diagnose::follower_scenario();
        let (outcome, _, cert) = generate_certified(&scenario, &config()).expect("certified");
        assert!(matches!(outcome, DesignOutcome::Infeasible));
        assert!(matches!(cert.verdict, CertifiedVerdict::ProofChecked(_)));
    }

    #[test]
    fn certified_optimization_matches_plain() {
        let scenario = fixtures::running_example();
        let (outcome, _, cert) = optimize_certified(&scenario, &config()).expect("certified");
        let DesignOutcome::Solved { costs, .. } = outcome else {
            panic!("paper: optimisation succeeds");
        };
        let (plain, _) = crate::tasks::optimize(&scenario, &config()).expect("ok");
        let DesignOutcome::Solved {
            costs: plain_costs, ..
        } = plain
        else {
            panic!("plain optimisation succeeds");
        };
        assert_eq!(costs, plain_costs);
        assert!(matches!(cert.verdict, CertifiedVerdict::ModelChecked));
        assert!(cert.findings.is_empty());
    }

    #[test]
    fn certified_diagnosis_certifies_structural_deadlock() {
        let scenario = fixtures::running_example();
        let (d, cert) =
            diagnose_certified(&scenario, &VssLayout::pure_ttd(), &config()).expect("certified");
        assert_eq!(d, Diagnosis::Structural);
        let CertifiedVerdict::ProofChecked(check) = cert.verdict else {
            panic!("structural deadlock must be proof-checked");
        };
        assert!(check.lemmas > 0);
    }

    #[test]
    fn certified_diagnosis_certifies_conflict_core() {
        let scenario = crate::diagnose::follower_scenario();
        let (d, cert) =
            diagnose_certified(&scenario, &VssLayout::pure_ttd(), &config()).expect("certified");
        let Diagnosis::Conflict { names, .. } = d else {
            panic!("expected a conflict, got {d:?}");
        };
        assert_eq!(
            names,
            vec!["Slow leader".to_owned(), "Tight follower".to_owned()]
        );
        assert!(matches!(cert.verdict, CertifiedVerdict::ProofChecked(_)));
        // The certificate's provenance names the selector of every
        // conflicting train, so the core is readable without the decoder.
        let labels: Vec<&str> = (0..cert.trace.formula.num_vars())
            .filter_map(|i| cert.trace.provenance.var_label(Var::from_index(i)))
            .filter(|l| l.starts_with("deadline-sel["))
            .collect();
        for name in &names {
            assert!(
                labels.iter().any(|l| l.contains(name.as_str())),
                "selector for {name} must carry provenance: {labels:?}"
            );
        }
    }

    #[test]
    fn portfolio_mode_is_rejected_by_every_certified_runner() {
        // The certification boundary: clause-sharing portfolio verdicts are
        // not DRAT-certifiable, and the certified runners must say so with a
        // typed error instead of silently solving sequentially.
        let scenario = fixtures::running_example();
        let cfg = EncoderConfig {
            solve_mode: SolveMode::Portfolio(4),
            ..config()
        };
        let layout = VssLayout::pure_ttd();
        assert!(matches!(
            verify_certified(&scenario, &layout, &cfg),
            Err(CertifyError::PortfolioUncertified(4))
        ));
        assert!(matches!(
            generate_certified(&scenario, &cfg),
            Err(CertifyError::PortfolioUncertified(4))
        ));
        assert!(matches!(
            optimize_certified(&scenario, &cfg),
            Err(CertifyError::PortfolioUncertified(4))
        ));
        let err = diagnose_certified(&scenario, &layout, &cfg).unwrap_err();
        assert!(matches!(err, CertifyError::PortfolioUncertified(4)));
        assert!(err.to_string().contains("SolveMode::Single"));
    }
}
