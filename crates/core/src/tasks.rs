//! The three design tasks of Section II-B / III-C:
//! [`verify`], [`generate`] and [`optimize`] — plus
//! [`optimize_incremental`], the same optimisation run on one persistent
//! incremental solver.
//!
//! Every task also has an `*_obs` variant taking an [`Obs`] handle; the
//! plain entry points delegate with [`Obs::disabled`], so observability is
//! strictly opt-in and free when off. The span vocabulary (stable, asserted
//! by `tests/obs_trace.rs` and the CI smoke step):
//!
//! * `task.verify` / `task.generate` / `task.optimize` /
//!   `task.optimize_incremental` — one root span per task call;
//! * `encode` — child span per encoding built;
//! * `probe` — child span per Stage-1 deadline probe (fields: `deadline`,
//!   `sat`, `conflicts`);
//! * `stage2` — the border-minimisation MaxSAT loop;
//! * `sat.solve` — emitted by the solver itself (see `etcs-sat`).
//!
//! Counters `probes` and `conflicts` accumulate in the handle's metrics
//! registry alongside the events.

use std::fmt;
use std::time::{Duration, Instant};

use etcs_network::{NetworkError, Scenario, VssLayout};
use etcs_obs::Obs;
use etcs_sat::{
    maxsat, Interrupt, InterruptReason, Lit, PreprocessConfig, SatResult, Stats, Strategy,
};

use crate::decode::SolvedPlan;
use crate::encoder::{encode, EncoderConfig, Encoding, EncodingStats, TaskKind};
use crate::instance::Instance;

/// Shared outcome data of every task.
#[derive(Debug)]
pub struct TaskReport {
    /// Encoding size statistics (the paper's "Var." column and friends).
    pub stats: EncodingStats,
    /// Wall-clock time spent encoding and solving.
    pub runtime: Duration,
    /// Total solver invocations (1 for verification; the optimisation loop
    /// makes several).
    pub solver_calls: usize,
    /// CDCL search statistics accumulated over every solver the task used
    /// (one per probe for the from-scratch loop, a single one for the
    /// incremental loop — compare `search.reused_learnts` between them).
    pub search: Stats,
}

/// Result of [`verify`].
#[derive(Debug)]
pub enum VerifyOutcome {
    /// The schedule works on the given layout; here is a witness plan.
    Feasible(SolvedPlan),
    /// The schedule cannot be executed on the given layout.
    Infeasible,
}

impl VerifyOutcome {
    /// `true` for [`VerifyOutcome::Feasible`].
    pub fn is_feasible(&self) -> bool {
        matches!(self, VerifyOutcome::Feasible(_))
    }

    /// The witness plan if feasible.
    pub fn plan(&self) -> Option<&SolvedPlan> {
        match self {
            VerifyOutcome::Feasible(p) => Some(p),
            VerifyOutcome::Infeasible => None,
        }
    }
}

/// Result of [`generate`] / [`optimize`].
#[derive(Debug)]
pub enum DesignOutcome {
    /// A layout (and plan) was found; for generation the layout has a
    /// provably minimal number of VSS borders, for optimisation the plan
    /// has provably minimal completion time (then minimal borders).
    Solved {
        /// Decoded layout and train movements.
        plan: SolvedPlan,
        /// Proven optimal objective costs, in lexicographic order.
        costs: Vec<u64>,
    },
    /// No VSS layout makes the schedule work within the horizon.
    Infeasible,
}

impl DesignOutcome {
    /// The solved plan, if any.
    pub fn plan(&self) -> Option<&SolvedPlan> {
        match self {
            DesignOutcome::Solved { plan, .. } => Some(plan),
            DesignOutcome::Infeasible => None,
        }
    }
}

/// Error from the `*_cancellable` task variants: either the scenario was
/// malformed, or the task's [`Interrupt`] token fired mid-solve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TaskError {
    /// The scenario is malformed (see [`NetworkError`]).
    Network(NetworkError),
    /// The task's [`Interrupt`] token was triggered.
    Cancelled,
    /// The task's armed wall-clock deadline expired.
    DeadlineExceeded,
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::Network(e) => write!(f, "{e}"),
            TaskError::Cancelled => write!(f, "task cancelled"),
            TaskError::DeadlineExceeded => write!(f, "task deadline exceeded"),
        }
    }
}

impl std::error::Error for TaskError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TaskError::Network(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetworkError> for TaskError {
    fn from(e: NetworkError) -> Self {
        TaskError::Network(e)
    }
}

/// Maps a fired [`Interrupt`] to the matching [`TaskError`]. Only called
/// after a solver returned `Unknown` on an interrupt-equipped, budget-free
/// solve, so the token must have fired.
pub(crate) fn interrupt_error(interrupt: &Interrupt) -> TaskError {
    match interrupt.probe() {
        Some(InterruptReason::Cancelled) => TaskError::Cancelled,
        Some(InterruptReason::DeadlineExceeded) => TaskError::DeadlineExceeded,
        None => unreachable!("solver returned Unknown with neither budget nor interrupt fired"),
    }
}

/// Outcome of [`minimize_borders`].
#[derive(Debug)]
pub enum Stage2 {
    /// An optimal model was found and decoded.
    Solved(SolvedPlan, u64),
    /// The hard constraints plus assumptions are unsatisfiable.
    Unsat,
    /// The solver's [`Interrupt`] fired mid-loop.
    Interrupted,
}

/// Stage-2 border minimisation on an existing encoding: runs the MaxSAT
/// loop for `min Σ border_v` on `enc`'s solver (keeping `assumptions`
/// active throughout) and decodes an optimal model.
///
/// Returns `(Stage2::Solved(plan, cost), solver_calls)`, or `Stage2::Unsat`
/// when the hard constraints plus assumptions are unsatisfiable. The
/// objective is temporarily detached from the encoding instead of cloned
/// (the old per-call `border_objective.clone()`), and restored before
/// returning.
///
/// Public so refinement loops built on top of the encoder (`etcs-lazy`)
/// can rerun the border MaxSAT after adding clauses: the bounds are passed
/// as assumptions only, so the solver stays reusable afterwards.
pub fn minimize_borders(
    enc: &mut Encoding,
    inst: &Instance,
    assumptions: &[Lit],
    obs: &Obs,
) -> (Stage2, usize) {
    let span = obs.span_with("stage2", &[("assumptions", assumptions.len().into())]);
    let conflicts_before = enc.solver.stats().conflicts;
    let objective = std::mem::take(&mut enc.border_objective);
    let result = maxsat::minimize(
        &mut enc.solver,
        &objective,
        assumptions,
        Strategy::LinearSatUnsat,
    );
    enc.border_objective = objective;
    let conflicts = enc.solver.stats().conflicts - conflicts_before;
    obs.counter_add("conflicts", conflicts);
    match result {
        maxsat::OptimizeOutcome::Optimal(r) => {
            span.close_with(&[
                ("feasible", true.into()),
                ("borders", r.cost.into()),
                ("solver_calls", r.solver_calls.into()),
                ("conflicts", conflicts.into()),
            ]);
            (
                Stage2::Solved(SolvedPlan::decode(inst, &enc.vars, &r.model), r.cost),
                r.solver_calls,
            )
        }
        maxsat::OptimizeOutcome::Unsat => {
            span.close_with(&[("feasible", false.into()), ("conflicts", conflicts.into())]);
            (Stage2::Unsat, 1)
        }
        maxsat::OptimizeOutcome::Unknown { .. } => {
            // Only reachable with an interrupt installed on the solver —
            // the task loops never configure a conflict budget.
            span.close_with(&[
                ("interrupted", true.into()),
                ("conflicts", conflicts.into()),
            ]);
            (Stage2::Interrupted, 1)
        }
    }
}

/// Task 1 — *Verification of train schedules on ETCS Level 3 layouts*:
/// does `scenario`'s schedule (with its arrival deadlines) work on the
/// given TTD/VSS `layout`?
///
/// # Errors
///
/// Returns [`NetworkError`] if the scenario is malformed.
///
/// # Examples
///
/// ```
/// use etcs_core::{verify, EncoderConfig};
/// use etcs_network::{fixtures, VssLayout};
///
/// let scenario = fixtures::running_example();
/// // The paper's headline: pure TTD operation cannot realise Fig. 1b.
/// let (outcome, _report) =
///     verify(&scenario, &VssLayout::pure_ttd(), &EncoderConfig::default())?;
/// assert!(!outcome.is_feasible());
/// # Ok::<(), etcs_network::NetworkError>(())
/// ```
pub fn verify(
    scenario: &Scenario,
    layout: &VssLayout,
    config: &EncoderConfig,
) -> Result<(VerifyOutcome, TaskReport), NetworkError> {
    verify_obs(scenario, layout, config, &Obs::disabled())
}

/// [`verify`] with observability: one `task.verify` span wrapping an
/// `encode` child span and the solver's own `sat.solve` span.
///
/// # Errors
///
/// Returns [`NetworkError`] if the scenario is malformed.
pub fn verify_obs(
    scenario: &Scenario,
    layout: &VssLayout,
    config: &EncoderConfig,
    obs: &Obs,
) -> Result<(VerifyOutcome, TaskReport), NetworkError> {
    match verify_cancellable(scenario, layout, config, &Interrupt::none(), obs) {
        Ok(r) => Ok(r),
        Err(TaskError::Network(e)) => Err(e),
        Err(other) => unreachable!("no interrupt installed: {other:?}"),
    }
}

/// [`verify_obs`] with cooperative cancellation: `interrupt` is installed
/// on the solver, which polls it at restart boundaries. A fired token
/// surfaces as [`TaskError::Cancelled`] / [`TaskError::DeadlineExceeded`];
/// the partially-solved state is discarded.
///
/// # Errors
///
/// Returns [`TaskError::Network`] if the scenario is malformed, or the
/// interrupt-mapped error if the token fired mid-solve.
pub fn verify_cancellable(
    scenario: &Scenario,
    layout: &VssLayout,
    config: &EncoderConfig,
    interrupt: &Interrupt,
    obs: &Obs,
) -> Result<(VerifyOutcome, TaskReport), TaskError> {
    let start = Instant::now();
    let task = obs.span_with(
        "task.verify",
        &[("scenario", scenario.name.as_str().into())],
    );
    let inst = Instance::new(scenario)?;
    let enc_span = task.child("encode");
    let mut enc = encode(&inst, config, &TaskKind::Verify(layout.clone()));
    enc_span.close_with(&[
        ("vars", enc.stats.solver_vars.into()),
        ("clauses", enc.stats.clauses.into()),
    ]);
    enc.solver.set_obs(obs.clone());
    enc.solver.set_interrupt(interrupt.clone());
    if config.preprocess {
        enc.preprocess(&PreprocessConfig::default());
    }
    let stats = enc.stats;
    let outcome = match enc.solver.solve() {
        SatResult::Sat(model) => {
            let mut plan = SolvedPlan::decode(&inst, &enc.vars, &model);
            // The verification layout is an input, not a solver choice.
            plan.layout = layout.clone();
            VerifyOutcome::Feasible(plan)
        }
        SatResult::Unsat { .. } => VerifyOutcome::Infeasible,
        SatResult::Unknown => {
            task.close_with(&[("interrupted", true.into())]);
            return Err(interrupt_error(interrupt));
        }
    };
    let search = *enc.solver.stats();
    obs.counter_add("conflicts", search.conflicts);
    task.close_with(&[
        ("feasible", outcome.is_feasible().into()),
        ("conflicts", search.conflicts.into()),
    ]);
    Ok((
        outcome,
        TaskReport {
            stats,
            runtime: start.elapsed(),
            solver_calls: 1,
            search,
        },
    ))
}

/// Task 2 — *Generation of VSS layouts*: find virtual borders that make the
/// schedule (with its deadlines) executable, minimising the number of
/// borders (`min Σ border_v`).
///
/// # Errors
///
/// Returns [`NetworkError`] if the scenario is malformed.
pub fn generate(
    scenario: &Scenario,
    config: &EncoderConfig,
) -> Result<(DesignOutcome, TaskReport), NetworkError> {
    generate_obs(scenario, config, &Obs::disabled())
}

/// [`generate`] with observability: one `task.generate` span wrapping an
/// `encode` child and the `stage2` border-minimisation span.
///
/// # Errors
///
/// Returns [`NetworkError`] if the scenario is malformed.
pub fn generate_obs(
    scenario: &Scenario,
    config: &EncoderConfig,
    obs: &Obs,
) -> Result<(DesignOutcome, TaskReport), NetworkError> {
    match generate_cancellable(scenario, config, &Interrupt::none(), obs) {
        Ok(r) => Ok(r),
        Err(TaskError::Network(e)) => Err(e),
        Err(other) => unreachable!("no interrupt installed: {other:?}"),
    }
}

/// [`generate_obs`] with cooperative cancellation (see
/// [`verify_cancellable`] for the contract).
///
/// # Errors
///
/// Returns [`TaskError::Network`] if the scenario is malformed, or the
/// interrupt-mapped error if the token fired mid-solve.
pub fn generate_cancellable(
    scenario: &Scenario,
    config: &EncoderConfig,
    interrupt: &Interrupt,
    obs: &Obs,
) -> Result<(DesignOutcome, TaskReport), TaskError> {
    let start = Instant::now();
    let task = obs.span_with(
        "task.generate",
        &[("scenario", scenario.name.as_str().into())],
    );
    let inst = Instance::new(scenario)?;
    let enc_span = task.child("encode");
    let mut enc = encode(&inst, config, &TaskKind::Generate);
    enc_span.close_with(&[
        ("vars", enc.stats.solver_vars.into()),
        ("clauses", enc.stats.clauses.into()),
    ]);
    enc.solver.set_obs(obs.clone());
    enc.solver.set_interrupt(interrupt.clone());
    if config.preprocess {
        enc.preprocess(&PreprocessConfig::default());
    }
    let stats = enc.stats;
    let (result, calls) = minimize_borders(&mut enc, &inst, &[], obs);
    let outcome = match result {
        Stage2::Solved(plan, cost) => DesignOutcome::Solved {
            plan,
            costs: vec![cost],
        },
        Stage2::Unsat => DesignOutcome::Infeasible,
        Stage2::Interrupted => {
            task.close_with(&[("interrupted", true.into())]);
            return Err(interrupt_error(interrupt));
        }
    };
    match &outcome {
        DesignOutcome::Solved { costs, .. } => task.close_with(&[
            ("feasible", true.into()),
            ("borders", costs[0].into()),
            ("solver_calls", calls.into()),
        ]),
        DesignOutcome::Infeasible => task.close_with(&[("feasible", false.into())]),
    }
    Ok((
        outcome,
        TaskReport {
            stats,
            runtime: start.elapsed(),
            solver_calls: calls,
            search: *enc.solver.stats(),
        },
    ))
}

/// Task 3 — *Schedule optimisation using the potential of VSS*: drop the
/// arrival deadlines, choose a VSS layout and train movements minimising
/// the number of time steps until all trains are done
/// (`min Σ_t ¬done^t`), then the number of borders.
///
/// The returned primary cost is the optimal completion time in steps
/// (including the constant offset for the steps before the last departure).
///
/// This is the *from-scratch* loop: every deadline probe builds a fresh
/// cone-pruned encoding and discards the solver afterwards. See
/// [`optimize_incremental`] for the same search on one persistent solver.
///
/// # Errors
///
/// Returns [`NetworkError`] if the scenario is malformed.
pub fn optimize(
    scenario: &Scenario,
    config: &EncoderConfig,
) -> Result<(DesignOutcome, TaskReport), NetworkError> {
    optimize_obs(scenario, config, &Obs::disabled())
}

/// [`optimize`] with observability: one `task.optimize` span wrapping a
/// `probe` child span per Stage-1 deadline candidate (each with its own
/// `encode` child and `sat.solve`) and the `stage2` span. The `probes` and
/// `conflicts` counters accumulate in `obs`'s metrics registry, and the
/// span-close fields mirror the returned [`TaskReport`] — that agreement is
/// asserted by `tests/obs_trace.rs`.
///
/// # Errors
///
/// Returns [`NetworkError`] if the scenario is malformed.
pub fn optimize_obs(
    scenario: &Scenario,
    config: &EncoderConfig,
    obs: &Obs,
) -> Result<(DesignOutcome, TaskReport), NetworkError> {
    match optimize_cancellable(scenario, config, &Interrupt::none(), obs) {
        Ok(r) => Ok(r),
        Err(TaskError::Network(e)) => Err(e),
        Err(other) => unreachable!("no interrupt installed: {other:?}"),
    }
}

/// [`optimize_obs`] with cooperative cancellation: every Stage-1 probe
/// solver and the Stage-2 MaxSAT loop carry the token, so a trigger or an
/// expired deadline aborts the loop at the next solver poll (see
/// [`verify_cancellable`] for the contract).
///
/// # Errors
///
/// Returns [`TaskError::Network`] if the scenario is malformed, or the
/// interrupt-mapped error if the token fired mid-solve.
pub fn optimize_cancellable(
    scenario: &Scenario,
    config: &EncoderConfig,
    interrupt: &Interrupt,
    obs: &Obs,
) -> Result<(DesignOutcome, TaskReport), TaskError> {
    let start = Instant::now();
    let task = obs.span_with(
        "task.optimize",
        &[("scenario", scenario.name.as_str().into())],
    );
    let open = scenario.without_arrivals();
    let mut inst = Instance::new(&open)?;
    let mut calls = 0usize;
    let mut search = Stats::default();

    // Stage 1 — shrinking-horizon search for the smallest common arrival
    // deadline D. A deadline tightens every train's time–space cone, so
    // each probe is a small instance; this dominates the monolithic
    // `Σ_t ¬done^t` cardinality objective by orders of magnitude (the
    // `ablation` bench quantifies this).
    //
    // Walk up from the lower bound: every probe keeps the cones tight (a
    // loose deadline is what makes the instance hard), and the first SAT
    // answer is the optimum.
    let max_deadline = inst.t_max - 1;
    let lower = inst.completion_lower_bound().min(max_deadline);
    let mut found: Option<(usize, Encoding)> = None;
    let mut last_stats = EncodingStats::default();
    for d in lower..=max_deadline {
        calls += 1;
        inst.set_uniform_deadline(d);
        let probe = task.child_with("probe", &[("deadline", d.into())]);
        let enc_span = probe.child("encode");
        let mut enc = encode(&inst, config, &TaskKind::Generate);
        enc_span.close_with(&[
            ("vars", enc.stats.solver_vars.into()),
            ("clauses", enc.stats.clauses.into()),
        ]);
        enc.solver.set_obs(obs.clone());
        enc.solver.set_interrupt(interrupt.clone());
        if config.preprocess {
            enc.preprocess(&PreprocessConfig::default());
        }
        last_stats = enc.stats;
        let verdict = enc.solver.solve();
        let sat = matches!(verdict, SatResult::Sat(_));
        let conflicts = enc.solver.stats().conflicts;
        obs.counter_add("probes", 1);
        obs.counter_add("conflicts", conflicts);
        probe.close_with(&[
            ("deadline", d.into()),
            ("sat", sat.into()),
            ("conflicts", conflicts.into()),
        ]);
        if matches!(verdict, SatResult::Unknown) {
            task.close_with(&[("interrupted", true.into())]);
            return Err(interrupt_error(interrupt));
        }
        if sat {
            found = Some((d, enc));
            break;
        }
        search += enc.solver.stats();
    }
    let Some((best_deadline, mut enc)) = found else {
        task.close_with(&[("feasible", false.into()), ("probes", calls.into())]);
        return Ok((
            DesignOutcome::Infeasible,
            TaskReport {
                stats: last_stats,
                runtime: start.elapsed(),
                solver_calls: calls,
                search,
            },
        ));
    };

    // Stage 2 — minimise borders at the optimal completion, reusing the
    // successful probe's encoding (its solver already holds a model and
    // learnt clauses for exactly this deadline — no third re-encode).
    let stats = enc.stats;
    let (result, stage2_calls) = minimize_borders(&mut enc, &inst, &[], obs);
    calls += stage2_calls;
    search += enc.solver.stats();
    let (plan, border_cost) = match result {
        Stage2::Solved(plan, cost) => (plan, cost),
        Stage2::Unsat => unreachable!("the probed deadline was satisfiable"),
        Stage2::Interrupted => {
            task.close_with(&[("interrupted", true.into())]);
            return Err(interrupt_error(interrupt));
        }
    };

    task.close_with(&[
        ("feasible", true.into()),
        ("deadline", best_deadline.into()),
        ("borders", border_cost.into()),
        ("probes", (calls - stage2_calls).into()),
        ("solver_calls", calls.into()),
        ("conflicts", search.conflicts.into()),
    ]);

    // Completion in steps: the last arrival step plus one.
    let outcome = DesignOutcome::Solved {
        plan,
        costs: vec![best_deadline as u64 + 1, border_cost],
    };
    Ok((
        outcome,
        TaskReport {
            stats,
            runtime: start.elapsed(),
            solver_calls: calls,
            search,
        },
    ))
}

/// [`optimize`] on **one persistent incremental solver**: the full horizon
/// is encoded once ([`TaskKind::OptimizeIncremental`]), every candidate
/// deadline `d` is probed as `solve_with(&[sel_d])` — learnt clauses,
/// VSIDS activity and saved phases carry across probes — and the Stage-2
/// border MaxSAT runs on the same warm solver with the optimal selector
/// pinned as an assumption, eliminating every re-encode.
///
/// Returns the same optima as [`optimize`] (identical deadline and border
/// count; the witness plans may differ). The certified variant
/// ([`crate::optimize_certified`]) intentionally keeps the from-scratch
/// loop — see its docs for why proof logging forces that fallback.
///
/// # Errors
///
/// Returns [`NetworkError`] if the scenario is malformed.
pub fn optimize_incremental(
    scenario: &Scenario,
    config: &EncoderConfig,
) -> Result<(DesignOutcome, TaskReport), NetworkError> {
    optimize_incremental_obs(scenario, config, &Obs::disabled())
}

/// [`optimize_incremental`] with observability: one
/// `task.optimize_incremental` span wrapping a single `encode` child, a
/// `probe` child per candidate deadline (fields: `deadline`, `sat`,
/// `conflicts` — the *delta* on the persistent solver), and the `stage2`
/// span on the same warm solver.
///
/// # Errors
///
/// Returns [`NetworkError`] if the scenario is malformed.
pub fn optimize_incremental_obs(
    scenario: &Scenario,
    config: &EncoderConfig,
    obs: &Obs,
) -> Result<(DesignOutcome, TaskReport), NetworkError> {
    match optimize_incremental_cancellable(scenario, config, &Interrupt::none(), obs) {
        Ok(r) => Ok(r),
        Err(TaskError::Network(e)) => Err(e),
        Err(other) => unreachable!("no interrupt installed: {other:?}"),
    }
}

/// [`optimize_incremental_obs`] with cooperative cancellation: the single
/// persistent solver carries the token across every probe and the Stage-2
/// loop (see [`verify_cancellable`] for the contract).
///
/// # Errors
///
/// Returns [`TaskError::Network`] if the scenario is malformed, or the
/// interrupt-mapped error if the token fired mid-solve.
pub fn optimize_incremental_cancellable(
    scenario: &Scenario,
    config: &EncoderConfig,
    interrupt: &Interrupt,
    obs: &Obs,
) -> Result<(DesignOutcome, TaskReport), TaskError> {
    let start = Instant::now();
    let task = obs.span_with(
        "task.optimize_incremental",
        &[("scenario", scenario.name.as_str().into())],
    );
    let open = scenario.without_arrivals();
    let inst = Instance::new(&open)?;
    let enc_span = task.child("encode");
    let mut enc = encode(&inst, config, &TaskKind::OptimizeIncremental);
    enc_span.close_with(&[
        ("vars", enc.stats.solver_vars.into()),
        ("clauses", enc.stats.clauses.into()),
    ]);
    enc.solver.set_obs(obs.clone());
    enc.solver.set_interrupt(interrupt.clone());
    if config.preprocess {
        enc.preprocess(&PreprocessConfig::default());
    }
    let stats = enc.stats;
    let mut calls = 0usize;

    let max_deadline = inst.t_max - 1;
    let lower = inst.completion_lower_bound().min(max_deadline);
    let mut best_deadline = None;
    for d in lower..=max_deadline {
        calls += 1;
        // Selector plus out-of-cone pruning literals; empty (an unguarded
        // probe of the base formula) only with an empty schedule.
        let assumptions = enc.deadline_probe_assumptions(&inst, d);
        let probe = task.child_with("probe", &[("deadline", d.into())]);
        let conflicts_before = enc.solver.stats().conflicts;
        let verdict = enc.solver.solve_with(&assumptions);
        let conflicts = enc.solver.stats().conflicts - conflicts_before;
        obs.counter_add("probes", 1);
        obs.counter_add("conflicts", conflicts);
        probe.close_with(&[
            ("deadline", d.into()),
            ("sat", matches!(verdict, SatResult::Sat(_)).into()),
            ("conflicts", conflicts.into()),
        ]);
        match verdict {
            SatResult::Sat(_) => {
                best_deadline = Some(d);
                break;
            }
            SatResult::Unsat { .. } => {
                // The refutation proved the formula entails ¬sel_d; assert
                // it so the selector dies at level 0 — clauses learnt under
                // the failed assumption are satisfied outright and phase
                // saving can no longer branch back into a dead deadline.
                if let Some(&sel) = enc.step_selectors.get(d).and_then(|s| s.as_ref()) {
                    enc.solver.add_clause([!sel]);
                }
            }
            SatResult::Unknown => {
                task.close_with(&[("interrupted", true.into())]);
                return Err(interrupt_error(interrupt));
            }
        }
    }
    let Some(best_deadline) = best_deadline else {
        let search = *enc.solver.stats();
        task.close_with(&[("feasible", false.into()), ("probes", calls.into())]);
        return Ok((
            DesignOutcome::Infeasible,
            TaskReport {
                stats,
                runtime: start.elapsed(),
                solver_calls: calls,
                search,
            },
        ));
    };

    // Stage 2 — border MaxSAT on the same solver, the optimum committed as
    // unit clauses (the same pin `optimize_lazy` uses): the deadline is
    // final, so asserting the selector and its cone-pruning literals at
    // level 0 beats re-propagating thousands of assumption literals on
    // every descent call of the border MaxSAT — the solver is never probed
    // at another deadline after this point.
    for &lit in &enc.deadline_probe_assumptions(&inst, best_deadline) {
        enc.solver.add_clause([lit]);
    }
    let (result, stage2_calls) = minimize_borders(&mut enc, &inst, &[], obs);
    calls += stage2_calls;
    let (plan, border_cost) = match result {
        Stage2::Solved(plan, cost) => (plan, cost),
        Stage2::Unsat => unreachable!("the probed deadline was satisfiable"),
        Stage2::Interrupted => {
            task.close_with(&[("interrupted", true.into())]);
            return Err(interrupt_error(interrupt));
        }
    };
    let search = *enc.solver.stats();

    task.close_with(&[
        ("feasible", true.into()),
        ("deadline", best_deadline.into()),
        ("borders", border_cost.into()),
        ("probes", (calls - stage2_calls).into()),
        ("solver_calls", calls.into()),
        ("conflicts", search.conflicts.into()),
    ]);

    let outcome = DesignOutcome::Solved {
        plan,
        costs: vec![best_deadline as u64 + 1, border_cost],
    };
    Ok((
        outcome,
        TaskReport {
            stats,
            runtime: start.elapsed(),
            solver_calls: calls,
            search,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use etcs_network::fixtures;

    #[test]
    fn running_example_verification_is_unsat_on_pure_ttd() {
        let scenario = fixtures::running_example();
        let (outcome, report) =
            verify(&scenario, &VssLayout::pure_ttd(), &EncoderConfig::default())
                .expect("well-formed");
        assert!(!outcome.is_feasible(), "paper: pure TTD deadlocks");
        assert!(report.stats.clauses > 0);
        assert_eq!(report.search.solve_calls, 1);
    }

    #[test]
    fn running_example_generation_finds_a_layout() {
        let scenario = fixtures::running_example();
        let (outcome, _) = generate(&scenario, &EncoderConfig::default()).expect("well-formed");
        match outcome {
            DesignOutcome::Solved { plan, costs } => {
                assert!(costs[0] >= 1, "at least one virtual border is needed");
                let inst = Instance::new(&scenario).expect("valid");
                let sections = plan.section_count(&inst);
                assert!(sections > 4, "more sections than pure TTD");
            }
            DesignOutcome::Infeasible => panic!("paper: generation succeeds"),
        }
    }

    #[test]
    fn generated_layout_verifies() {
        let scenario = fixtures::running_example();
        let (outcome, _) = generate(&scenario, &EncoderConfig::default()).expect("well-formed");
        let plan = outcome.plan().expect("feasible");
        let (check, _) =
            verify(&scenario, &plan.layout, &EncoderConfig::default()).expect("well-formed");
        assert!(
            check.is_feasible(),
            "the generated layout must pass verification"
        );
    }

    #[test]
    fn running_example_optimization_beats_generation() {
        let scenario = fixtures::running_example();
        let (gen_outcome, _) = generate(&scenario, &EncoderConfig::default()).expect("well-formed");
        let (opt_outcome, _) = optimize(&scenario, &EncoderConfig::default()).expect("well-formed");
        let inst = Instance::new(&scenario).expect("valid");
        let gen_steps = gen_outcome
            .plan()
            .expect("feasible")
            .completion_steps(&inst);
        match opt_outcome {
            DesignOutcome::Solved { costs, plan } => {
                let opt_steps = costs[0] as usize;
                assert!(
                    opt_steps <= gen_steps,
                    "optimisation ({opt_steps}) must not be worse than generation ({gen_steps})"
                );
                assert!(plan.section_count(&inst) >= 4);
            }
            DesignOutcome::Infeasible => panic!("paper: optimisation succeeds"),
        }
    }

    #[test]
    fn incremental_optimization_matches_scratch_on_running_example() {
        let scenario = fixtures::running_example();
        let config = EncoderConfig::default();
        let (scratch, _) = optimize(&scenario, &config).expect("well-formed");
        let (incremental, report) = optimize_incremental(&scenario, &config).expect("well-formed");
        match (scratch, incremental) {
            (DesignOutcome::Solved { costs: a, .. }, DesignOutcome::Solved { costs: b, plan }) => {
                assert_eq!(a, b, "bit-identical optima (deadline, borders)");
                let inst = Instance::new(&scenario).expect("valid");
                assert!(plan.section_count(&inst) >= 4);
            }
            other => panic!("both paths must solve: {other:?}"),
        }
        // One persistent solver: a single encoding, several solve calls,
        // learnt clauses carried between them.
        assert!(report.search.solve_calls as usize >= report.solver_calls);
        if report.search.conflicts > 0 && report.solver_calls > 1 {
            assert!(
                report.search.reused_learnts > 0,
                "probes must inherit earlier probes' lemmas"
            );
        }
    }

    #[test]
    fn full_vss_layout_makes_running_example_feasible() {
        let scenario = fixtures::running_example();
        let inst = Instance::new(&scenario).expect("valid");
        let full = VssLayout::full(&inst.net);
        let (outcome, _) =
            verify(&scenario, &full, &EncoderConfig::default()).expect("well-formed");
        assert!(
            outcome.is_feasible(),
            "the finest layout subsumes the generated one"
        );
    }
}
