//! The three design tasks of Section II-B / III-C:
//! [`verify`], [`generate`] and [`optimize`].

use std::time::{Duration, Instant};

use etcs_network::{NetworkError, Scenario, VssLayout};
use etcs_sat::{maxsat, SatResult, Strategy};

use crate::decode::SolvedPlan;
use crate::encoder::{encode, EncoderConfig, EncodingStats, TaskKind};
use crate::instance::Instance;

/// Shared outcome data of every task.
#[derive(Debug)]
pub struct TaskReport {
    /// Encoding size statistics (the paper's "Var." column and friends).
    pub stats: EncodingStats,
    /// Wall-clock time spent encoding and solving.
    pub runtime: Duration,
    /// Total solver invocations (1 for verification; the optimisation loop
    /// makes several).
    pub solver_calls: usize,
}

/// Result of [`verify`].
#[derive(Debug)]
pub enum VerifyOutcome {
    /// The schedule works on the given layout; here is a witness plan.
    Feasible(SolvedPlan),
    /// The schedule cannot be executed on the given layout.
    Infeasible,
}

impl VerifyOutcome {
    /// `true` for [`VerifyOutcome::Feasible`].
    pub fn is_feasible(&self) -> bool {
        matches!(self, VerifyOutcome::Feasible(_))
    }

    /// The witness plan if feasible.
    pub fn plan(&self) -> Option<&SolvedPlan> {
        match self {
            VerifyOutcome::Feasible(p) => Some(p),
            VerifyOutcome::Infeasible => None,
        }
    }
}

/// Result of [`generate`] / [`optimize`].
#[derive(Debug)]
pub enum DesignOutcome {
    /// A layout (and plan) was found; for generation the layout has a
    /// provably minimal number of VSS borders, for optimisation the plan
    /// has provably minimal completion time (then minimal borders).
    Solved {
        /// Decoded layout and train movements.
        plan: SolvedPlan,
        /// Proven optimal objective costs, in lexicographic order.
        costs: Vec<u64>,
    },
    /// No VSS layout makes the schedule work within the horizon.
    Infeasible,
}

impl DesignOutcome {
    /// The solved plan, if any.
    pub fn plan(&self) -> Option<&SolvedPlan> {
        match self {
            DesignOutcome::Solved { plan, .. } => Some(plan),
            DesignOutcome::Infeasible => None,
        }
    }
}

/// Task 1 — *Verification of train schedules on ETCS Level 3 layouts*:
/// does `scenario`'s schedule (with its arrival deadlines) work on the
/// given TTD/VSS `layout`?
///
/// # Errors
///
/// Returns [`NetworkError`] if the scenario is malformed.
///
/// # Examples
///
/// ```
/// use etcs_core::{verify, EncoderConfig};
/// use etcs_network::{fixtures, VssLayout};
///
/// let scenario = fixtures::running_example();
/// // The paper's headline: pure TTD operation cannot realise Fig. 1b.
/// let (outcome, _report) =
///     verify(&scenario, &VssLayout::pure_ttd(), &EncoderConfig::default())?;
/// assert!(!outcome.is_feasible());
/// # Ok::<(), etcs_network::NetworkError>(())
/// ```
pub fn verify(
    scenario: &Scenario,
    layout: &VssLayout,
    config: &EncoderConfig,
) -> Result<(VerifyOutcome, TaskReport), NetworkError> {
    let start = Instant::now();
    let inst = Instance::new(scenario)?;
    let mut enc = encode(&inst, config, &TaskKind::Verify(layout.clone()));
    let stats = enc.stats;
    let outcome = match enc.solver.solve() {
        SatResult::Sat(model) => {
            let mut plan = SolvedPlan::decode(&inst, &enc.vars, &model);
            // The verification layout is an input, not a solver choice.
            plan.layout = layout.clone();
            VerifyOutcome::Feasible(plan)
        }
        SatResult::Unsat { .. } => VerifyOutcome::Infeasible,
        SatResult::Unknown => unreachable!("no conflict budget configured"),
    };
    Ok((
        outcome,
        TaskReport {
            stats,
            runtime: start.elapsed(),
            solver_calls: 1,
        },
    ))
}

/// Task 2 — *Generation of VSS layouts*: find virtual borders that make the
/// schedule (with its deadlines) executable, minimising the number of
/// borders (`min Σ border_v`).
///
/// # Errors
///
/// Returns [`NetworkError`] if the scenario is malformed.
pub fn generate(
    scenario: &Scenario,
    config: &EncoderConfig,
) -> Result<(DesignOutcome, TaskReport), NetworkError> {
    let start = Instant::now();
    let inst = Instance::new(scenario)?;
    let mut enc = encode(&inst, config, &TaskKind::Generate);
    let stats = enc.stats;
    let objective = enc.border_objective.clone();
    let (outcome, calls) =
        match maxsat::minimize(&mut enc.solver, &objective, &[], Strategy::LinearSatUnsat) {
            maxsat::OptimizeOutcome::Optimal(r) => (
                DesignOutcome::Solved {
                    plan: SolvedPlan::decode(&inst, &enc.vars, &r.model),
                    costs: vec![r.cost],
                },
                r.solver_calls,
            ),
            maxsat::OptimizeOutcome::Unsat => (DesignOutcome::Infeasible, 1),
            maxsat::OptimizeOutcome::Unknown { .. } => {
                unreachable!("no conflict budget configured")
            }
        };
    Ok((
        outcome,
        TaskReport {
            stats,
            runtime: start.elapsed(),
            solver_calls: calls,
        },
    ))
}

/// Task 3 — *Schedule optimisation using the potential of VSS*: drop the
/// arrival deadlines, choose a VSS layout and train movements minimising
/// the number of time steps until all trains are done
/// (`min Σ_t ¬done^t`), then the number of borders.
///
/// The returned primary cost is the optimal completion time in steps
/// (including the constant offset for the steps before the last departure).
///
/// # Errors
///
/// Returns [`NetworkError`] if the scenario is malformed.
pub fn optimize(
    scenario: &Scenario,
    config: &EncoderConfig,
) -> Result<(DesignOutcome, TaskReport), NetworkError> {
    let start = Instant::now();
    let open = scenario.without_arrivals();
    let mut inst = Instance::new(&open)?;
    let mut calls = 0usize;

    // Stage 1 — shrinking-horizon search for the smallest common arrival
    // deadline D. A deadline tightens every train's time–space cone, so
    // each probe is a small instance; this dominates the monolithic
    // `Σ_t ¬done^t` cardinality objective by orders of magnitude (the
    // `ablation` bench quantifies this).
    let lower = inst
        .trains
        .iter()
        .map(|tr| inst.earliest_arrival(tr).unwrap_or(inst.t_max - 1))
        .max()
        .unwrap_or(0);
    let probe = |inst: &mut Instance, d: usize| -> (bool, EncodingStats) {
        inst.set_uniform_deadline(d);
        let mut enc = encode(inst, config, &TaskKind::Generate);
        let sat = matches!(enc.solver.solve(), SatResult::Sat(_));
        (sat, enc.stats)
    };

    // Walk up from the lower bound: every probe keeps the cones tight (a
    // loose deadline is what makes the instance hard), and the first SAT
    // answer is the optimum.
    let max_deadline = inst.t_max - 1;
    let mut best_deadline = None;
    let mut last_stats = EncodingStats::default();
    for d in lower.min(max_deadline)..=max_deadline {
        calls += 1;
        let (sat, stats) = probe(&mut inst, d);
        last_stats = stats;
        if sat {
            best_deadline = Some(d);
            break;
        }
    }
    let Some(best_deadline) = best_deadline else {
        return Ok((
            DesignOutcome::Infeasible,
            TaskReport {
                stats: last_stats,
                runtime: start.elapsed(),
                solver_calls: calls,
            },
        ));
    };

    // Stage 2 — minimise borders at the optimal completion.
    inst.set_uniform_deadline(best_deadline);
    let mut enc = encode(&inst, config, &TaskKind::Generate);
    let stats = enc.stats;
    let border_obj = enc.border_objective.clone();
    let (plan, border_cost) =
        match maxsat::minimize(&mut enc.solver, &border_obj, &[], Strategy::LinearSatUnsat) {
            maxsat::OptimizeOutcome::Optimal(r) => {
                calls += r.solver_calls;
                (SolvedPlan::decode(&inst, &enc.vars, &r.model), r.cost)
            }
            maxsat::OptimizeOutcome::Unsat => {
                unreachable!("the probed deadline was satisfiable")
            }
            maxsat::OptimizeOutcome::Unknown { .. } => {
                unreachable!("no conflict budget configured")
            }
        };

    // Completion in steps: the last arrival step plus one.
    let outcome = DesignOutcome::Solved {
        plan,
        costs: vec![best_deadline as u64 + 1, border_cost],
    };
    Ok((
        outcome,
        TaskReport {
            stats,
            runtime: start.elapsed(),
            solver_calls: calls,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use etcs_network::fixtures;

    #[test]
    fn running_example_verification_is_unsat_on_pure_ttd() {
        let scenario = fixtures::running_example();
        let (outcome, report) =
            verify(&scenario, &VssLayout::pure_ttd(), &EncoderConfig::default())
                .expect("well-formed");
        assert!(!outcome.is_feasible(), "paper: pure TTD deadlocks");
        assert!(report.stats.clauses > 0);
    }

    #[test]
    fn running_example_generation_finds_a_layout() {
        let scenario = fixtures::running_example();
        let (outcome, _) = generate(&scenario, &EncoderConfig::default()).expect("well-formed");
        match outcome {
            DesignOutcome::Solved { plan, costs } => {
                assert!(costs[0] >= 1, "at least one virtual border is needed");
                let inst = Instance::new(&scenario).expect("valid");
                let sections = plan.section_count(&inst);
                assert!(sections > 4, "more sections than pure TTD");
            }
            DesignOutcome::Infeasible => panic!("paper: generation succeeds"),
        }
    }

    #[test]
    fn generated_layout_verifies() {
        let scenario = fixtures::running_example();
        let (outcome, _) = generate(&scenario, &EncoderConfig::default()).expect("well-formed");
        let plan = outcome.plan().expect("feasible");
        let (check, _) =
            verify(&scenario, &plan.layout, &EncoderConfig::default()).expect("well-formed");
        assert!(
            check.is_feasible(),
            "the generated layout must pass verification"
        );
    }

    #[test]
    fn running_example_optimization_beats_generation() {
        let scenario = fixtures::running_example();
        let (gen_outcome, _) = generate(&scenario, &EncoderConfig::default()).expect("well-formed");
        let (opt_outcome, _) = optimize(&scenario, &EncoderConfig::default()).expect("well-formed");
        let inst = Instance::new(&scenario).expect("valid");
        let gen_steps = gen_outcome
            .plan()
            .expect("feasible")
            .completion_steps(&inst);
        match opt_outcome {
            DesignOutcome::Solved { costs, plan } => {
                let opt_steps = costs[0] as usize;
                assert!(
                    opt_steps <= gen_steps,
                    "optimisation ({opt_steps}) must not be worse than generation ({gen_steps})"
                );
                assert!(plan.section_count(&inst) >= 4);
            }
            DesignOutcome::Infeasible => panic!("paper: optimisation succeeds"),
        }
    }

    #[test]
    fn full_vss_layout_makes_running_example_feasible() {
        let scenario = fixtures::running_example();
        let inst = Instance::new(&scenario).expect("valid");
        let full = VssLayout::full(&inst.net);
        let (outcome, _) =
            verify(&scenario, &full, &EncoderConfig::default()).expect("well-formed");
        assert!(
            outcome.is_feasible(),
            "the finest layout subsumes the generated one"
        );
    }
}
