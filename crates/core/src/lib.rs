//! # etcs-core — the paper's primary contribution
//!
//! Automatic design and verification for ETCS Level 3 (Wille, Peham,
//! Przigoda & Przigoda, DATE 2021): a SAT encoding of railway scenarios
//! over virtual subsections, and the three design tasks built on it:
//!
//! * [`verify`] — does a schedule work on a given TTD/VSS layout?
//! * [`generate`] — find a minimal set of VSS borders making it work.
//! * [`optimize`] — find layout *and* movements minimising completion time.
//!
//! ## Quick start
//!
//! ```
//! use etcs_core::{verify, generate, EncoderConfig};
//! use etcs_network::{fixtures, VssLayout};
//!
//! let scenario = fixtures::running_example();
//! let config = EncoderConfig::default();
//!
//! // Pure-TTD operation deadlocks (the paper's Example 2) …
//! let (outcome, _) = verify(&scenario, &VssLayout::pure_ttd(), &config)?;
//! assert!(!outcome.is_feasible());
//!
//! // … but a few virtual borders fix it.
//! let (designed, _) = generate(&scenario, &config)?;
//! assert!(designed.plan().is_some());
//! # Ok::<(), etcs_network::NetworkError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod certify;
mod decode;
mod diagnose;
mod encoder;
mod explorer;
mod fingerprint;
mod instance;
mod objectives;
mod parallel;
mod tasks;
mod trace;
mod tradeoff;

pub use certify::{
    diagnose_certified, generate_certified, optimize_certified, verify_certified, Certification,
    CertifiedVerdict, CertifyError,
};
pub use decode::{SolvedPlan, TrainPlan};
pub use diagnose::{diagnose, diagnose_cancellable, Diagnosis};
pub use encoder::{
    encode, encode_with, ConstraintFamilies, EncoderConfig, Encoding, EncodingStats, SolveMode,
    TaskKind, VarMap,
};
pub use explorer::LayoutExplorer;
pub use fingerprint::{cache_key, sub_fingerprints, SubFingerprints, CACHE_KEY_VERSION};
pub use instance::{ExitPolicy, Instance, TrainSpec};
pub use objectives::optimize_arrivals;
pub use parallel::{
    optimize_all, optimize_all_obs, optimize_all_with_threads, optimize_portfolio,
    optimize_portfolio_obs, verify_all, verify_all_obs, verify_all_with_threads, OptimizeMode,
};
pub use tasks::{
    generate, generate_cancellable, generate_obs, minimize_borders, optimize, optimize_cancellable,
    optimize_incremental, optimize_incremental_cancellable, optimize_incremental_obs, optimize_obs,
    verify, verify_cancellable, verify_obs, DesignOutcome, Stage2, TaskError, TaskReport,
    VerifyOutcome,
};
pub use trace::EncodingTrace;
pub use tradeoff::{border_tradeoff, optimize_with_budget, TradeoffPoint};
