//! Border-budget trade-off analysis: how fast can the traffic run with at
//! most `K` virtual borders?
//!
//! Every VSS border is free of trackside hardware but still carries
//! engineering cost (supervision limits, braking-curve management), so
//! designers want the *Pareto front* between layout size and schedule
//! quality. This module runs the shrinking-horizon optimisation under a
//! border-count cap, and sweeps the cap to produce the full curve.

use std::time::Instant;

use etcs_network::{NetworkError, Scenario};
use etcs_sat::{CnfSink, SatResult, Totalizer};

use crate::decode::SolvedPlan;
use crate::encoder::{encode, EncoderConfig, EncodingStats, TaskKind};
use crate::instance::Instance;
use crate::tasks::{DesignOutcome, TaskReport};

/// Like [`crate::optimize`] but with at most `max_borders` virtual borders.
///
/// Returns costs `[completion_steps, borders_used]`; `borders_used` is the
/// count in the returned plan (≤ `max_borders`), not separately minimised.
///
/// # Errors
///
/// Returns [`NetworkError`] if the scenario is malformed.
///
/// # Examples
///
/// ```
/// use etcs_core::{optimize_with_budget, DesignOutcome, EncoderConfig};
/// use etcs_network::fixtures;
///
/// let scenario = fixtures::running_example();
/// // Budget 0 = pure TTD: the running example cannot complete at all.
/// let (outcome, _) = optimize_with_budget(&scenario, &EncoderConfig::default(), 0)?;
/// assert!(matches!(outcome, DesignOutcome::Infeasible));
/// # Ok::<(), etcs_network::NetworkError>(())
/// ```
pub fn optimize_with_budget(
    scenario: &Scenario,
    config: &EncoderConfig,
    max_borders: usize,
) -> Result<(DesignOutcome, TaskReport), NetworkError> {
    let start = Instant::now();
    let open = scenario.without_arrivals();
    let mut inst = Instance::new(&open)?;
    let mut calls = 0usize;

    let max_deadline = inst.t_max - 1;
    let lower = inst.completion_lower_bound().min(max_deadline);

    let probe =
        |inst: &mut Instance, d: usize| -> (Option<SolvedPlan>, EncodingStats, etcs_sat::Stats) {
            inst.set_uniform_deadline(d);
            let mut enc = encode(inst, config, &TaskKind::Generate);
            // Cap the border count.
            let border_lits: Vec<_> = enc
                .vars
                .border
                .iter()
                .filter_map(|v| v.map(etcs_sat::Var::positive))
                .collect();
            if max_borders < border_lits.len() {
                if max_borders == 0 {
                    for l in &border_lits {
                        enc.solver.assert_false(*l);
                    }
                } else {
                    let tot = Totalizer::build(&mut enc.solver, border_lits);
                    if let Some(bound) = tot.at_most(max_borders) {
                        enc.solver.assert_true(bound);
                    }
                }
            }
            let plan = match enc.solver.solve() {
                SatResult::Sat(model) => Some(SolvedPlan::decode(inst, &enc.vars, &model)),
                SatResult::Unsat { .. } => None,
                SatResult::Unknown => unreachable!("no conflict budget configured"),
            };
            (plan, enc.stats, *enc.solver.stats())
        };

    let mut last_stats = EncodingStats::default();
    let mut search = etcs_sat::Stats::default();
    for d in lower..=max_deadline {
        calls += 1;
        let (plan, stats, probe_search) = probe(&mut inst, d);
        last_stats = stats;
        search += &probe_search;
        if let Some(plan) = plan {
            let borders = plan.layout.num_borders() as u64;
            return Ok((
                DesignOutcome::Solved {
                    plan,
                    costs: vec![d as u64 + 1, borders],
                },
                TaskReport {
                    stats: last_stats,
                    runtime: start.elapsed(),
                    solver_calls: calls,
                    search,
                },
            ));
        }
    }
    Ok((
        DesignOutcome::Infeasible,
        TaskReport {
            stats: last_stats,
            runtime: start.elapsed(),
            solver_calls: calls,
            search,
        },
    ))
}

/// One point of the border/completion Pareto front.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TradeoffPoint {
    /// Border budget this point was computed with.
    pub max_borders: usize,
    /// Optimal completion steps under that budget (`None` = infeasible).
    pub completion_steps: Option<usize>,
}

/// Sweeps border budgets `0..=max_budget` and reports the optimal
/// completion time for each — the designer's cost/benefit curve for
/// ETCS Level 3 deployment.
///
/// The curve is monotone: more borders never hurt. The sweep stops early
/// once an extra border no longer improves completion (the remaining
/// points would repeat the same value).
///
/// # Errors
///
/// Returns [`NetworkError`] if the scenario is malformed.
pub fn border_tradeoff(
    scenario: &Scenario,
    config: &EncoderConfig,
    max_budget: usize,
) -> Result<Vec<TradeoffPoint>, NetworkError> {
    let mut curve = Vec::new();
    let mut unconstrained: Option<usize> = None;
    for budget in 0..=max_budget {
        let (outcome, _) = optimize_with_budget(scenario, config, budget)?;
        let steps = match outcome {
            DesignOutcome::Solved { costs, .. } => Some(costs[0] as usize),
            DesignOutcome::Infeasible => None,
        };
        curve.push(TradeoffPoint {
            max_borders: budget,
            completion_steps: steps,
        });
        // Converged once the unconstrained optimum is reached.
        if let Some(steps) = steps {
            let unconstrained = *unconstrained.get_or_insert_with(|| {
                crate::optimize(scenario, config)
                    .ok()
                    .and_then(|(o, _)| match o {
                        DesignOutcome::Solved { costs, .. } => Some(costs[0] as usize),
                        DesignOutcome::Infeasible => None,
                    })
                    .unwrap_or(0)
            });
            if steps <= unconstrained {
                break;
            }
        }
    }
    Ok(curve)
}

#[cfg(test)]
mod tests {
    use super::*;
    use etcs_network::fixtures;

    fn config() -> EncoderConfig {
        EncoderConfig::default()
    }

    #[test]
    fn zero_budget_equals_pure_ttd() {
        let scenario = fixtures::running_example();
        let (outcome, _) = optimize_with_budget(&scenario, &config(), 0).expect("ok");
        assert!(matches!(outcome, DesignOutcome::Infeasible));
    }

    #[test]
    fn large_budget_matches_unconstrained_optimum() {
        let scenario = fixtures::running_example();
        let inst = Instance::new(&scenario).expect("valid");
        let budget = inst.net.border_candidates().len();
        let (capped, _) = optimize_with_budget(&scenario, &config(), budget).expect("ok");
        let (free, _) = crate::optimize(&scenario, &config()).expect("ok");
        let (DesignOutcome::Solved { costs: a, .. }, DesignOutcome::Solved { costs: b, .. }) =
            (capped, free)
        else {
            panic!("both feasible");
        };
        assert_eq!(a[0], b[0], "full budget reaches the unconstrained optimum");
    }

    #[test]
    fn budget_respects_the_cap() {
        let scenario = fixtures::running_example();
        for budget in 1..=3usize {
            let (outcome, _) = optimize_with_budget(&scenario, &config(), budget).expect("ok");
            if let DesignOutcome::Solved { plan, costs } = outcome {
                assert!(plan.layout.num_borders() <= budget);
                assert_eq!(costs[1] as usize, plan.layout.num_borders());
            }
        }
    }

    #[test]
    fn tradeoff_curve_is_monotone() {
        let scenario = fixtures::running_example();
        let curve = border_tradeoff(&scenario, &config(), 5).expect("ok");
        assert!(!curve.is_empty());
        assert_eq!(curve[0].completion_steps, None, "budget 0 infeasible");
        let mut best = usize::MAX;
        for p in &curve {
            if let Some(s) = p.completion_steps {
                assert!(s <= best, "more borders must not slow completion");
                best = s;
            }
        }
        // With enough borders the schedule completes.
        assert!(curve.iter().any(|p| p.completion_steps.is_some()));
    }
}
