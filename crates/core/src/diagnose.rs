//! Infeasibility diagnosis: *why* does a schedule fail on a layout?
//!
//! When [`crate::verify`] answers "infeasible", designers want to know
//! which part of the timetable is to blame. This module re-encodes the
//! verification instance with every train's arrival deadline guarded by an
//! assumption literal; the solver's unsat core then names a subset of
//! trains whose deadlines are jointly unachievable, which is subsequently
//! shrunk to a *minimal* conflict set (deleting any member makes the rest
//! feasible).

use etcs_network::{NetworkError, Scenario, TrainId, VssLayout};
use etcs_sat::{Interrupt, Lit, SatResult};

use crate::encoder::{encode, EncoderConfig, TaskKind};
use crate::instance::Instance;
use crate::tasks::{interrupt_error, TaskError};

/// Result of [`diagnose`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Diagnosis {
    /// The schedule works on the layout — nothing to diagnose.
    Feasible,
    /// A minimal set of trains whose arrival deadlines conflict on this
    /// layout: removing (or relaxing) any one of them makes the remaining
    /// deadlines achievable.
    Conflict {
        /// Train ids (schedule order) of the minimal conflict set.
        trains: Vec<TrainId>,
        /// Their display names, for reporting.
        names: Vec<String>,
    },
    /// The instance is infeasible even with every arrival deadline
    /// dropped — the conflict is structural (departures alone deadlock).
    Structural,
}

impl Diagnosis {
    /// `true` if a (non-structural) deadline conflict was isolated.
    pub fn is_conflict(&self) -> bool {
        matches!(self, Diagnosis::Conflict { .. })
    }
}

/// Diagnoses why `scenario`'s schedule fails on `layout`.
///
/// Returns [`Diagnosis::Feasible`] when it does not fail.
///
/// # Errors
///
/// Returns [`NetworkError`] if the scenario is malformed.
///
/// # Examples
///
/// ```
/// use etcs_core::{diagnose, Diagnosis, EncoderConfig};
/// use etcs_network::{fixtures, VssLayout};
///
/// let scenario = fixtures::running_example();
/// let diagnosis = diagnose(&scenario, &VssLayout::pure_ttd(), &EncoderConfig::default())?;
/// // The running example deadlocks *structurally* on pure TTDs — exactly
/// // the paper's Example 2: once all four trains have departed, no train
/// // can move, regardless of any arrival deadline.
/// assert_eq!(diagnosis, Diagnosis::Structural);
/// # Ok::<(), etcs_network::NetworkError>(())
/// ```
pub fn diagnose(
    scenario: &Scenario,
    layout: &VssLayout,
    config: &EncoderConfig,
) -> Result<Diagnosis, NetworkError> {
    match diagnose_cancellable(scenario, layout, config, &Interrupt::none()) {
        Ok(d) => Ok(d),
        Err(TaskError::Network(e)) => Err(e),
        Err(other) => unreachable!("no interrupt installed: {other:?}"),
    }
}

/// [`diagnose`] with cooperative cancellation: `interrupt` is installed on
/// the solver driving the core-shrinking loop, so a trigger or an expired
/// deadline aborts between (or inside) shrink probes.
///
/// # Errors
///
/// Returns [`TaskError::Network`] if the scenario is malformed, or the
/// interrupt-mapped error if the token fired mid-solve.
pub fn diagnose_cancellable(
    scenario: &Scenario,
    layout: &VssLayout,
    config: &EncoderConfig,
    interrupt: &Interrupt,
) -> Result<Diagnosis, TaskError> {
    let inst = Instance::new(scenario)?;
    let mut enc = encode(&inst, config, &TaskKind::Diagnose(layout.clone()));
    enc.solver.set_interrupt(interrupt.clone());
    let selectors = enc.deadline_selectors.clone();

    // All deadlines on: the plain verification question.
    let core = match enc.solver.solve_with(&selectors) {
        SatResult::Sat(_) => return Ok(Diagnosis::Feasible),
        SatResult::Unsat { core } => core,
        SatResult::Unknown => return Err(interrupt_error(interrupt)),
    };
    if core.is_empty() {
        // Unsatisfiable without any assumption: departures/stops alone
        // cannot be scheduled.
        return Ok(Diagnosis::Structural);
    }

    // Shrink the core to a minimal conflict set: drop one member at a
    // time; if the rest is still unsatisfiable, the member was redundant.
    let mut minimal: Vec<Lit> = core;
    let mut i = 0;
    while i < minimal.len() {
        let mut candidate = minimal.clone();
        candidate.remove(i);
        match enc.solver.solve_with(&candidate) {
            SatResult::Unsat { core } => {
                // Still conflicting; adopt the (possibly even smaller)
                // refreshed core and restart scanning.
                minimal = core;
                i = 0;
            }
            SatResult::Sat(_) => i += 1,
            SatResult::Unknown => return Err(interrupt_error(interrupt)),
        }
        if minimal.is_empty() {
            return Ok(Diagnosis::Structural);
        }
    }

    let mut trains: Vec<TrainId> = minimal
        .iter()
        .filter_map(|l| selectors.iter().position(|s| s == l))
        .map(TrainId::from_index)
        .collect();
    trains.sort();
    trains.dedup();
    let names = trains
        .iter()
        .map(|t| inst.trains[t.index()].name.clone())
        .collect();
    Ok(Diagnosis::Conflict { trains, names })
}

/// A single-track line where a slow leader makes a tight follower deadline
/// unachievable — a genuine deadline conflict, not a structural deadlock.
/// Shared with the certification tests.
#[cfg(test)]
pub(crate) fn follower_scenario() -> Scenario {
    use etcs_network::{KmPerHour, Meters, NetworkBuilder, Schedule, Seconds, Train, TrainRun};
    let km = Meters::from_km;
    let mut b = NetworkBuilder::new();
    let a_end = b.node();
    let a_end2 = b.node();
    let p1 = b.node();
    let p2 = b.node();
    let b_end = b.node();
    let sta_a = b.track(a_end, p1, km(0.5), "A1");
    let sta_a2 = b.track(a_end2, p1, km(0.5), "A2");
    let link = b.track(p1, p2, km(2.0), "link");
    let sta_b = b.track(p2, b_end, km(0.5), "B");
    b.ttd("TTD-A1", [sta_a]);
    b.ttd("TTD-A2", [sta_a2]);
    b.ttd("TTD-L", [link]);
    b.ttd("TTD-B", [sta_b]);
    let st_a = b.station("A", [sta_a, sta_a2], true);
    let st_b = b.station("B", [sta_b], true);
    let network = b.build().expect("valid");
    let schedule = Schedule::new(vec![
        TrainRun::new(
            Train::new("Slow leader", Meters(200), KmPerHour(60)),
            st_a,
            st_b,
            Seconds::ZERO,
            // Tight enough that the leader cannot yield to the follower.
            Some(Seconds(210)),
        ),
        TrainRun::new(
            Train::new("Tight follower", Meters(200), KmPerHour(120)),
            st_a,
            st_b,
            Seconds(60),
            Some(Seconds(150)),
        ),
    ]);
    Scenario {
        name: "Follower".into(),
        network,
        schedule,
        r_s: km(0.5),
        r_t: Seconds(30),
        horizon: Seconds(600),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etcs_network::fixtures;

    fn config() -> EncoderConfig {
        EncoderConfig::default()
    }

    #[test]
    fn feasible_layout_diagnoses_feasible() {
        let scenario = fixtures::running_example();
        let inst = Instance::new(&scenario).expect("valid");
        let full = VssLayout::full(&inst.net);
        let d = diagnose(&scenario, &full, &config()).expect("ok");
        assert_eq!(d, Diagnosis::Feasible);
    }

    #[test]
    fn running_example_deadlock_is_structural() {
        // The paper's Example 2: after all four trains depart, all four
        // TTDs are blocked — no deadline relaxation can help.
        let scenario = fixtures::running_example();
        let d = diagnose(&scenario, &VssLayout::pure_ttd(), &config()).expect("ok");
        assert_eq!(d, Diagnosis::Structural);
    }

    #[test]
    fn tight_follower_deadline_is_a_minimal_conflict() {
        let scenario = follower_scenario();
        let d = diagnose(&scenario, &VssLayout::pure_ttd(), &config()).expect("ok");
        let Diagnosis::Conflict { trains, names } = d else {
            panic!("expected a conflict, got {d:?}");
        };
        // Neither train can yield: the minimal conflict is the pair, and
        // relaxing either one's deadline repairs the schedule.
        assert_eq!(
            names,
            vec!["Slow leader".to_owned(), "Tight follower".to_owned()]
        );
        assert_eq!(trains.len(), 2);
        for drop in &trains {
            let mut relaxed_one = scenario.clone();
            relaxed_one.schedule = etcs_network::Schedule::new(
                scenario
                    .schedule
                    .iter()
                    .map(|(id, run)| {
                        let mut run = run.clone();
                        if id == *drop {
                            run.arrival = None;
                        }
                        run
                    })
                    .collect(),
            );
            let (one, _) =
                crate::verify(&relaxed_one, &VssLayout::pure_ttd(), &config()).expect("ok");
            assert!(one.is_feasible(), "dropping either member must repair");
        }
        // Relaxing the diagnosed deadline repairs the schedule.
        let mut relaxed = scenario.clone();
        relaxed.schedule = etcs_network::Schedule::new(
            scenario
                .schedule
                .iter()
                .map(|(id, run)| {
                    let mut run = run.clone();
                    if trains.contains(&id) {
                        run.arrival = None;
                    }
                    run
                })
                .collect(),
        );
        let (outcome, _) = crate::verify(&relaxed, &VssLayout::pure_ttd(), &config()).expect("ok");
        assert!(outcome.is_feasible());
    }

    #[test]
    fn vss_does_not_enable_overtaking() {
        // Even the finest VSS layout cannot let the follower overtake on a
        // single track: the pair stays a conflict.
        let scenario = follower_scenario();
        let inst = Instance::new(&scenario).expect("valid");
        let d = diagnose(&scenario, &VssLayout::full(&inst.net), &config()).expect("ok");
        assert!(d.is_conflict());
    }

    #[test]
    fn relaxed_follower_is_feasible_diagnosis() {
        let mut scenario = follower_scenario();
        scenario.schedule = etcs_network::Schedule::new(
            scenario
                .schedule
                .runs()
                .iter()
                .enumerate()
                .map(|(i, run)| {
                    let mut run = run.clone();
                    if i == 1 {
                        run.arrival = None;
                    }
                    run
                })
                .collect(),
        );
        let d = diagnose(&scenario, &VssLayout::pure_ttd(), &config()).expect("ok");
        assert_eq!(d, Diagnosis::Feasible);
    }
}
