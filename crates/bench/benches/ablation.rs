//! Ablation study of the design choices documented in DESIGN.md:
//!
//! * time–space cone pruning on/off,
//! * symmetric (backward) movement constraint on/off,
//! * paper-literal collision endpoints vs. relaxed immediate re-occupation,
//! * MaxSAT search strategy (linear SAT–UNSAT vs. binary) for the border
//!   objective,
//! * monolithic `Σ_t ¬done^t` cardinality objective vs. the
//!   shrinking-horizon search the tasks use by default.

use etcs_bench::harness::Criterion;
use etcs_bench::{criterion_group, criterion_main};
use etcs_core::{encode, generate, optimize, EncoderConfig, Instance, TaskKind};
use etcs_network::fixtures;
use etcs_sat::{maxsat, Strategy};

fn ablation(c: &mut Criterion) {
    let scenario = fixtures::running_example();

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);

    for (name, config) in [
        ("default", EncoderConfig::default()),
        (
            "no_goal_pruning",
            EncoderConfig {
                prune_to_goal: false,
                ..EncoderConfig::default()
            },
        ),
        (
            "no_symmetric_movement",
            EncoderConfig {
                symmetric_movement: false,
                ..EncoderConfig::default()
            },
        ),
        (
            "allow_immediate_reoccupation",
            EncoderConfig {
                allow_immediate_reoccupation: true,
                ..EncoderConfig::default()
            },
        ),
    ] {
        group.bench_function(format!("generation/{name}"), |b| {
            b.iter(|| {
                let (outcome, _) = generate(&scenario, &config).expect("well-formed");
                assert!(outcome.plan().is_some());
            })
        });
        group.bench_function(format!("optimization/{name}"), |b| {
            b.iter(|| {
                let (outcome, _) = optimize(&scenario, &config).expect("well-formed");
                assert!(outcome.plan().is_some());
            })
        });
    }

    // Border-objective search strategy.
    let default = EncoderConfig::default();
    for (name, strategy) in [
        ("linear", Strategy::LinearSatUnsat),
        ("binary", Strategy::BinarySearch),
    ] {
        group.bench_function(format!("border_objective/{name}"), |b| {
            b.iter(|| {
                let inst = Instance::new(&scenario).expect("valid");
                let mut enc = encode(&inst, &default, &TaskKind::Generate);
                let obj = enc.border_objective.clone();
                let outcome = maxsat::minimize(&mut enc.solver, &obj, &[], strategy);
                assert!(outcome.optimal().is_some());
            })
        });
    }

    // Step objective: the paper-literal cardinality formulation versus the
    // shrinking-horizon search used by `optimize` (the latter dominates —
    // on the larger case studies by orders of magnitude).
    group.bench_function("step_objective/cardinality", |b| {
        b.iter(|| {
            let open = scenario.without_arrivals();
            let inst = Instance::new(&open).expect("valid");
            let mut enc = encode(&inst, &default, &TaskKind::Optimize);
            let obj = enc.step_objective.clone().expect("optimize builds it");
            let outcome = maxsat::minimize(&mut enc.solver, &obj, &[], Strategy::LinearSatUnsat);
            assert!(outcome.optimal().is_some());
        })
    });
    group.bench_function("step_objective/shrinking_horizon", |b| {
        b.iter(|| {
            let (outcome, _) = optimize(&scenario, &default).expect("well-formed");
            assert!(outcome.plan().is_some());
        })
    });

    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
