//! Criterion benchmarks regenerating the paper's Table I: every case study
//! × every design task. The companion binary (`cargo run -p etcs-bench
//! --bin table1`) prints the table itself; this bench measures the
//! runtimes under Criterion's statistics.

use std::time::Duration;

use etcs_bench::harness::Criterion;
use etcs_bench::{criterion_group, criterion_main};
use etcs_core::{generate, optimize, verify, EncoderConfig};
use etcs_network::{fixtures, Scenario, VssLayout};

fn config() -> EncoderConfig {
    EncoderConfig::default()
}

fn bench_scenario(c: &mut Criterion, scenario: &Scenario, slow: bool) {
    let mut group = c.benchmark_group(format!("table1/{}", scenario.name));
    group.sample_size(10);
    if slow {
        group.measurement_time(Duration::from_secs(40));
        group.warm_up_time(Duration::from_secs(1));
    }
    group.bench_function("verification", |b| {
        b.iter(|| {
            let (outcome, _) =
                verify(scenario, &VssLayout::pure_ttd(), &config()).expect("well-formed");
            assert!(!outcome.is_feasible());
        })
    });
    group.bench_function("generation", |b| {
        b.iter(|| {
            let (outcome, _) = generate(scenario, &config()).expect("well-formed");
            assert!(outcome.plan().is_some());
        })
    });
    group.bench_function("optimization", |b| {
        b.iter(|| {
            let (outcome, _) = optimize(scenario, &config()).expect("well-formed");
            assert!(outcome.plan().is_some());
        })
    });
    group.finish();
}

fn table1(c: &mut Criterion) {
    bench_scenario(c, &fixtures::running_example(), false);
    bench_scenario(c, &fixtures::simple_layout(), true);
    bench_scenario(c, &fixtures::complex_layout(), true);
    bench_scenario(c, &fixtures::nordlandsbanen(), true);
}

criterion_group!(benches, table1);
criterion_main!(benches);
