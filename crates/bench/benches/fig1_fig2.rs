//! Regenerates the paper's Fig. 1 / Fig. 2 story on the running example and
//! benchmarks each piece:
//!
//! * Fig. 1a + 1b — the network and schedule exist as a fixture; the
//!   verification task proves the schedule infeasible on pure TTDs.
//! * Fig. 1a's VSS enrichment — layout generation produces the minimal
//!   virtual-border repair (5 sections, as the paper reports).
//! * Fig. 2a + 2b — schedule optimisation produces a richer layout and an
//!   improved schedule with strictly earlier arrivals.
//!
//! The decoded "figures" (layouts and arrival tables) are printed once
//! before measurement so a bench run doubles as figure regeneration.

use etcs_bench::harness::Criterion;
use etcs_bench::{criterion_group, criterion_main};
use etcs_core::{generate, optimize, verify, DesignOutcome, EncoderConfig, Instance};
use etcs_network::{fixtures, VssLayout};

fn config() -> EncoderConfig {
    EncoderConfig::default()
}

fn print_story() {
    let scenario = fixtures::running_example();
    let inst = Instance::new(&scenario).expect("valid");
    println!("── Fig. 1: schedule on pure TTD ──");
    let (v, _) = verify(&scenario, &VssLayout::pure_ttd(), &config()).expect("ok");
    println!(
        "verification: {}",
        if v.is_feasible() {
            "feasible"
        } else {
            "infeasible (paper: deadlock)"
        }
    );

    println!("── Fig. 1a enriched: generated VSS layout ──");
    let (g, _) = generate(&scenario, &config()).expect("ok");
    if let DesignOutcome::Solved { plan, costs } = &g {
        println!(
            "{} border(s), {} sections, arrivals: {:?}",
            costs[0],
            plan.section_count(&inst),
            plan.arrival_steps(&inst)
        );
    }

    println!("── Fig. 2: optimised layout and schedule ──");
    let (o, _) = optimize(&scenario, &config()).expect("ok");
    if let DesignOutcome::Solved { plan, costs } = &o {
        let open = Instance::new(&scenario.without_arrivals()).expect("valid");
        println!(
            "{} steps, {} border(s), {} sections, arrivals: {:?}",
            costs[0],
            costs[1],
            plan.section_count(&open),
            plan.arrival_steps(&open)
        );
    }
}

fn fig1_fig2(c: &mut Criterion) {
    print_story();
    let scenario = fixtures::running_example();
    let inst = Instance::new(&scenario).expect("valid");

    let mut group = c.benchmark_group("fig1_fig2");
    group.sample_size(20);
    group.bench_function("fig1_verification_pure_ttd", |b| {
        b.iter(|| verify(&scenario, &VssLayout::pure_ttd(), &config()).expect("ok"))
    });
    group.bench_function("fig1_verification_full_vss", |b| {
        let full = VssLayout::full(&inst.net);
        b.iter(|| verify(&scenario, &full, &config()).expect("ok"))
    });
    group.bench_function("fig1a_generation", |b| {
        b.iter(|| generate(&scenario, &config()).expect("ok"))
    });
    group.bench_function("fig2_optimization", |b| {
        b.iter(|| optimize(&scenario, &config()).expect("ok"))
    });
    group.finish();
}

criterion_group!(benches, fig1_fig2);
criterion_main!(benches);
