//! Scaling study (beyond the paper's four fixed case studies): how the
//! three design tasks scale with network length, traffic density and the
//! discretisation resolutions, on synthesised single-track lines.

use std::time::Duration;

use etcs_bench::harness::{BenchmarkId, Criterion};
use etcs_bench::{criterion_group, criterion_main};
use etcs_core::{generate, optimize, verify, EncoderConfig};
use etcs_network::generator::{single_track_line, LineConfig};
use etcs_network::{Meters, Seconds, VssLayout};

fn config() -> EncoderConfig {
    EncoderConfig::default()
}

fn base() -> LineConfig {
    LineConfig {
        stations: 4,
        loop_every: 2,
        link_m: 1000,
        trains_per_direction: 1,
        headway: Seconds::from_minutes(2),
        r_s: Meters(500),
        r_t: Seconds(30),
        horizon: Seconds::from_minutes(12),
        seed: 7,
        ..LineConfig::default()
    }
}

fn scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(10));

    // Network length: more stations at constant traffic.
    for stations in [3usize, 5, 7, 9] {
        let scenario = single_track_line(&LineConfig {
            stations,
            horizon: Seconds::from_minutes(8 + 4 * stations as u64),
            ..base()
        });
        group.bench_with_input(
            BenchmarkId::new("stations/verify", stations),
            &scenario,
            |b, s| b.iter(|| verify(s, &VssLayout::pure_ttd(), &config()).expect("well-formed")),
        );
        group.bench_with_input(
            BenchmarkId::new("stations/optimize", stations),
            &scenario,
            |b, s| b.iter(|| optimize(s, &config()).expect("well-formed")),
        );
    }

    // Traffic density: more trains on a fixed line.
    for trains in [1usize, 2, 3] {
        let scenario = single_track_line(&LineConfig {
            trains_per_direction: trains,
            stations: 5,
            horizon: Seconds::from_minutes(25),
            ..base()
        });
        group.bench_with_input(
            BenchmarkId::new("trains/generate", trains * 2),
            &scenario,
            |b, s| b.iter(|| generate(s, &config()).expect("well-formed")),
        );
    }

    // Spatial resolution: finer grids on a fixed line.
    for rs_m in [1000u64, 500, 250] {
        let scenario = single_track_line(&LineConfig {
            r_s: Meters(rs_m),
            stations: 4,
            ..base()
        });
        group.bench_with_input(
            BenchmarkId::new("resolution/optimize", rs_m),
            &scenario,
            |b, s| b.iter(|| optimize(s, &config()).expect("well-formed")),
        );
    }

    group.finish();
}

criterion_group!(benches, scaling);
criterion_main!(benches);
