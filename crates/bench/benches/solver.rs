//! Micro-benchmarks for the SAT substrate (`etcs-sat`), standing in for
//! the Z3 engine the paper used: random 3-SAT around the phase transition,
//! pigeonhole UNSAT proofs, cardinality encodings and MaxSAT optimisation.

use etcs_bench::harness::{BatchSize, Criterion};
use etcs_bench::{criterion_group, criterion_main};
use etcs_sat::{maxsat, CnfSink, Lit, Objective, Solver, Strategy, Totalizer, Var};

/// Deterministic xorshift stream for reproducible instances.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn random_3sat(num_vars: usize, num_clauses: usize, seed: u64) -> Solver {
    let mut rng = Rng(seed | 1);
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..num_vars).map(|_| CnfSink::new_var(&mut s)).collect();
    for _ in 0..num_clauses {
        let clause: Vec<Lit> = (0..3)
            .map(|_| {
                let v = vars[(rng.next() % num_vars as u64) as usize];
                v.lit(rng.next().is_multiple_of(2))
            })
            .collect();
        s.add_clause(clause);
    }
    s
}

fn pigeonhole(n: usize) -> Solver {
    let mut s = Solver::new();
    let p: Vec<Vec<Lit>> = (0..n)
        .map(|_| {
            (0..n - 1)
                .map(|_| CnfSink::new_var(&mut s).positive())
                .collect()
        })
        .collect();
    for row in &p {
        s.add_clause(row.iter().copied());
    }
    #[allow(clippy::needless_range_loop)]
    for h in 0..n - 1 {
        for i in 0..n {
            for j in (i + 1)..n {
                s.add_clause([!p[i][h], !p[j][h]]);
            }
        }
    }
    s
}

fn solver_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver");
    group.sample_size(10);

    group.bench_function("random3sat_sat_100v_380c", |b| {
        b.iter_batched(
            || random_3sat(100, 380, 0xDEAD),
            |mut s| s.solve(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("random3sat_hard_120v_511c", |b| {
        // Clause ratio 4.26: the hardest region.
        b.iter_batched(
            || random_3sat(120, 511, 0xBEEF),
            |mut s| s.solve(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("pigeonhole_8_unsat", |b| {
        b.iter_batched(
            || pigeonhole(8),
            |mut s| {
                let r = s.solve();
                assert!(r.is_unsat());
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("totalizer_build_200", |b| {
        b.iter_batched(
            || {
                let mut s = Solver::new();
                let lits: Vec<Lit> = (0..200)
                    .map(|_| CnfSink::new_var(&mut s).positive())
                    .collect();
                (s, lits)
            },
            |(mut s, lits)| Totalizer::build(&mut s, lits),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("maxsat_linear_60v", |b| {
        b.iter_batched(
            || {
                let mut s = random_3sat(60, 180, 0xCAFE);
                let obj = Objective::count_of((0..30).map(|i| Var::from_index(i).positive()));
                (s.solve().is_sat().then_some(()), s, obj)
            },
            |(_, mut s, obj)| maxsat::minimize(&mut s, &obj, &[], Strategy::LinearSatUnsat),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, solver_benches);
criterion_main!(benches);
