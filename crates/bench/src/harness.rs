//! A minimal, dependency-free benchmark harness with a Criterion-shaped API.
//!
//! The workspace builds fully offline, so the `criterion` crate is not
//! available. This module provides the small slice of its surface the bench
//! targets use — [`Criterion`], [`BenchmarkGroup`], [`Bencher`],
//! [`BenchmarkId`], [`BatchSize`], [`criterion_group!`], [`criterion_main!`] —
//! so each bench file only swaps its `use criterion::…` line.
//!
//! Measurement model: after a warm-up period, each benchmark runs
//! `sample_size` timed samples (bounded by `measurement_time`) and reports
//! min / median / mean per-iteration wall-clock time to stdout. No statistics
//! beyond that — these numbers position runtimes against the paper's
//! Table I magnitudes, they are not micro-benchmark grade.

use std::fmt;
use std::time::{Duration, Instant};

/// How batched inputs are grouped per timing sample (API compatibility only;
/// every batch size runs one setup per measured routine call).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state: setup cost is negligible next to the routine.
    #[default]
    SmallInput,
    /// Larger per-iteration state.
    LargeInput,
    /// Each sample gets exactly one input.
    PerIteration,
}

/// A two-part benchmark identifier, `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing driver handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    /// Total routine time and iteration count accumulated for this sample.
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(out);
    }

    /// Times `routine` on a fresh input from `setup`; setup time is excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        let out = routine(input);
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(out);
    }
}

/// A named group of benchmarks sharing sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Bounds the total time spent collecting samples for one benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the untimed warm-up period before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark under this group's configuration.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let samples = run_samples(
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
        self.criterion.report(&full, &samples);
        self
    }

    /// Runs one parameterised benchmark; the input is passed by reference.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<(String, Summary)>,
}

#[derive(Clone, Copy, Debug)]
struct Summary {
    min: Duration,
    median: Duration,
    mean: Duration,
    samples: usize,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_millis(500),
        }
    }

    /// Runs one benchmark with default sampling configuration.
    pub fn bench_function(&mut self, id: impl fmt::Display, mut f: impl FnMut(&mut Bencher)) {
        let samples = run_samples(
            10,
            Duration::from_millis(500),
            Duration::from_secs(5),
            &mut f,
        );
        self.report(&id.to_string(), &samples);
    }

    fn report(&mut self, name: &str, samples: &[Duration]) {
        let summary = summarize(samples);
        let name = name.trim_end_matches('/');
        println!(
            "bench {:<48} min {:>12}  median {:>12}  mean {:>12}  ({} samples)",
            name,
            fmt_duration(summary.min),
            fmt_duration(summary.median),
            fmt_duration(summary.mean),
            summary.samples,
        );
        self.results.push((name.to_string(), summary));
    }
}

fn run_samples(
    sample_size: usize,
    warm_up: Duration,
    budget: Duration,
    f: &mut impl FnMut(&mut Bencher),
) -> Vec<Duration> {
    // Warm-up: run untimed until the warm-up budget elapses (at least once).
    let warm_start = Instant::now();
    loop {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if warm_start.elapsed() >= warm_up {
            break;
        }
    }

    let mut samples = Vec::with_capacity(sample_size);
    let start = Instant::now();
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if b.iters > 0 {
            samples.push(b.elapsed / b.iters as u32);
        }
        // Respect the measurement budget, but always keep >= 1 sample.
        if start.elapsed() >= budget && !samples.is_empty() {
            break;
        }
    }
    if samples.is_empty() {
        samples.push(Duration::ZERO);
    }
    samples
}

fn summarize(samples: &[Duration]) -> Summary {
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let total: Duration = sorted.iter().sum();
    Summary {
        min,
        median,
        mean: total / sorted.len() as u32,
        samples: sorted.len(),
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::harness::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_report() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("unit");
            g.sample_size(3)
                .warm_up_time(Duration::ZERO)
                .measurement_time(Duration::from_millis(50));
            let mut runs = 0u32;
            g.bench_function("spin", |b| b.iter(|| runs += 1));
            g.bench_with_input(BenchmarkId::new("param", 7), &7usize, |b, &n| {
                b.iter_batched(|| vec![0u8; n], |v| v.len(), BatchSize::SmallInput)
            });
            g.finish();
            assert!(runs >= 3, "warm-up plus samples must run the routine");
        }
        assert_eq!(c.results.len(), 2);
        assert_eq!(c.results[0].0, "unit/spin");
        assert_eq!(c.results[1].0, "unit/param/7");
    }

    #[test]
    fn benchmark_id_renders_slash_separated() {
        assert_eq!(
            BenchmarkId::new("stations/verify", 4).to_string(),
            "stations/verify/4"
        );
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(4)), "4.00 s");
    }
}
