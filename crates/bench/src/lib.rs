//! Harness regenerating the evaluation artefacts of the paper:
//! Table I (all four case studies × three design tasks) and the Fig. 1/2
//! running-example story.

pub mod harness;

use std::fmt;
use std::time::Duration;

use etcs_core::{generate, optimize, verify, DesignOutcome, EncoderConfig, Instance};
use etcs_network::{Scenario, VssLayout};

/// The design task of a Table I row.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Task {
    /// Schedule verification on the pure-TTD layout.
    Verification,
    /// VSS layout generation (minimal borders).
    Generation,
    /// Schedule optimisation (minimal completion, then borders).
    Optimization,
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Task::Verification => "Verification",
            Task::Generation => "Generation",
            Task::Optimization => "Optimization",
        };
        write!(f, "{name}")
    }
}

/// One row of Table I.
#[derive(Clone, Debug)]
pub struct Row {
    /// The design task.
    pub task: Task,
    /// The paper's nominal variable count (`|Trains|·t_max·|E| + |V|`).
    pub nominal_vars: usize,
    /// Variables actually allocated after cone pruning.
    pub active_vars: usize,
    /// Was the instance satisfiable?
    pub sat: bool,
    /// Total TTD+VSS sections of the (resulting) layout.
    pub sections: usize,
    /// Time steps needed to complete the schedule (`None` for UNSAT rows).
    pub time_steps: Option<usize>,
    /// Wall-clock runtime of the whole task.
    pub runtime: Duration,
}

/// Runs the three Table I rows for one scenario.
///
/// # Panics
///
/// Panics if the scenario fails validation — the bundled fixtures never do.
pub fn run_scenario(scenario: &Scenario, config: &EncoderConfig) -> Vec<Row> {
    let inst = Instance::new(scenario).expect("bundled scenarios are valid");
    let pure = VssLayout::pure_ttd();
    let mut rows = Vec::with_capacity(3);

    let (outcome, report) = verify(scenario, &pure, config).expect("valid scenario");
    rows.push(Row {
        task: Task::Verification,
        nominal_vars: report.stats.nominal_vars,
        active_vars: report.stats.solver_vars,
        sat: outcome.is_feasible(),
        sections: pure.section_count(&inst.net),
        time_steps: outcome.plan().map(|p| p.completion_steps(&inst)),
        runtime: report.runtime,
    });

    let (outcome, report) = generate(scenario, config).expect("valid scenario");
    rows.push(Row {
        task: Task::Generation,
        nominal_vars: report.stats.nominal_vars,
        active_vars: report.stats.solver_vars,
        sat: outcome.plan().is_some(),
        sections: outcome
            .plan()
            .map(|p| p.section_count(&inst))
            .unwrap_or_else(|| pure.section_count(&inst.net)),
        time_steps: outcome.plan().map(|p| p.completion_steps(&inst)),
        runtime: report.runtime,
    });

    let (outcome, report) = optimize(scenario, config).expect("valid scenario");
    let open_inst = Instance::new(&scenario.without_arrivals()).expect("valid scenario");
    let steps = match &outcome {
        DesignOutcome::Solved { costs, .. } => Some(costs[0] as usize),
        DesignOutcome::Infeasible => None,
    };
    rows.push(Row {
        task: Task::Optimization,
        nominal_vars: report.stats.nominal_vars,
        active_vars: report.stats.solver_vars,
        sat: outcome.plan().is_some(),
        sections: outcome
            .plan()
            .map(|p| p.section_count(&open_inst))
            .unwrap_or_else(|| pure.section_count(&inst.net)),
        time_steps: steps,
        runtime: report.runtime,
    });

    rows
}

/// Formats rows in the paper's Table I layout.
pub fn render_table(scenario: &Scenario, rows: &[Row]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} (r_t = {}, r_s = {} km)",
        scenario.name,
        scenario.r_t,
        scenario.r_s.as_km()
    );
    let _ = writeln!(
        out,
        "{:<14} {:>8} {:>8} {:>5} {:>8} {:>11} {:>12}",
        "Task", "Var.", "Active", "Sat.", "TTD/VSS", "Time Steps", "Runtime [s]"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<14} {:>8} {:>8} {:>5} {:>8} {:>11} {:>12.2}",
            r.task.to_string(),
            r.nominal_vars,
            r.active_vars,
            if r.sat { "Yes" } else { "No" },
            r.sections,
            r.time_steps
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".into()),
            r.runtime.as_secs_f64()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use etcs_network::fixtures;

    #[test]
    fn running_example_rows_match_paper_shape() {
        let scenario = fixtures::running_example();
        let rows = run_scenario(&scenario, &EncoderConfig::default());
        assert_eq!(rows.len(), 3);
        assert!(!rows[0].sat, "verification on pure TTD is UNSAT");
        assert!(rows[1].sat, "generation succeeds");
        assert!(rows[2].sat, "optimisation succeeds");
        assert!(rows[1].sections > rows[0].sections);
        assert!(rows[2].time_steps <= rows[1].time_steps);
        assert!(rows[2].sections >= rows[1].sections);
    }

    #[test]
    fn render_contains_all_rows() {
        let scenario = fixtures::running_example();
        let rows = run_scenario(&scenario, &EncoderConfig::default());
        let table = render_table(&scenario, &rows);
        assert!(table.contains("Verification"));
        assert!(table.contains("Generation"));
        assert!(table.contains("Optimization"));
        assert!(table.contains("Running Example"));
    }
}

#[cfg(test)]
mod harness_tests {
    use super::*;
    use etcs_network::generator::{single_track_line, LineConfig};

    #[test]
    fn rows_on_a_generated_scenario() {
        // The harness works on arbitrary scenarios, not just the fixtures.
        let mut scenario = single_track_line(&LineConfig::default());
        // Give the runs deadlines so verification/generation are defined.
        let runs = scenario
            .schedule
            .runs()
            .iter()
            .map(|r| etcs_network::TrainRun {
                arrival: Some(scenario.horizon),
                ..r.clone()
            })
            .collect();
        scenario.schedule = etcs_network::Schedule::new(runs);
        let rows = run_scenario(&scenario, &EncoderConfig::default());
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.nominal_vars > 0);
            assert!(r.sections >= 1);
        }
        // Generation/optimization verdicts agree when the schedule's only
        // deadline is the horizon itself.
        assert_eq!(rows[1].sat, rows[2].sat);
    }

    #[test]
    fn task_display_names() {
        assert_eq!(Task::Verification.to_string(), "Verification");
        assert_eq!(Task::Generation.to_string(), "Generation");
        assert_eq!(Task::Optimization.to_string(), "Optimization");
    }
}
