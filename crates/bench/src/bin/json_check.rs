//! Validates that JSON artifacts parse with the workspace's own parser.
//!
//! ```sh
//! cargo run --release -p etcs-bench --bin json_check -- BENCH_*.json
//! ```
//!
//! Every checked-in `BENCH_*.json` must round-trip through
//! `etcs_obs::json::parse` — the same dependency-free parser the trace
//! smoke tests use — so a malformed artifact (truncated write, stray
//! trailing comma, NaN formatted as `NaN`) fails CI instead of breaking
//! downstream tooling. Exits non-zero on the first unreadable or
//! unparseable file; requires at least one argument so an empty glob
//! cannot silently pass.

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("json_check: no files given (empty glob?)");
        return ExitCode::FAILURE;
    }
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("json_check: {path}: {err}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(err) = etcs_obs::json::parse(&text) {
            eprintln!("json_check: {path}: invalid JSON: {err}");
            return ExitCode::FAILURE;
        }
        println!("json_check: {path}: ok");
    }
    ExitCode::SUCCESS
}
