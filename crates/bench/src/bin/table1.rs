//! Regenerates the paper's Table I.
//!
//! Usage: `table1 [running|simple|complex|nordlandsbanen|all]…`
//! (default: all).

use etcs_bench::{render_table, run_scenario};
use etcs_core::EncoderConfig;
use etcs_network::fixtures;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() {
        vec!["all"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    let config = EncoderConfig::default();
    for scenario in fixtures::all() {
        let key = match scenario.name.as_str() {
            "Running Example" => "running",
            "Simple Layout" => "simple",
            "Complex Layout" => "complex",
            "Nordlandsbanen" => "nordlandsbanen",
            other => other,
        };
        if !wanted.contains(&"all") && !wanted.contains(&key) {
            continue;
        }
        let rows = run_scenario(&scenario, &config);
        println!("{}", render_table(&scenario, &rows));
    }
}
