//! Head-to-head harness for the lazy (CEGAR) task loops against the eager
//! encoder: same optima, how much less work?
//!
//! Writes machine-readable results to `BENCH_lazy.json`. The headline
//! metric is the geometric-mean optimisation speedup on benchmark-scale
//! instances of the two regimes where most interaction families stay
//! dormant: `convoy_line` (a four-train convoy running one way down a
//! ten-station line — conflicts live in a narrow space-time band trailing
//! the convoy) and `branched_line` (two arms merging onto a shared trunk —
//! conflicts cluster at the junction). Full mode also runs the small
//! shipped fixtures, where the picture honestly inverts: on dense
//! instances (`Running Example`, `Complex Layout`, the tight `Convoy`)
//! nearly every family activates and the lazy loop *loses* to eager by up
//! to ~3× — the artifact records both regimes.
//!
//! Usage: `bench_lazy [--smoke] [--out <path>] [--trace <path>]`
//!
//! `--smoke` restricts to the two headline fixtures (what `ci/check.sh`
//! runs in release mode). `--trace` re-runs the last fixture
//! (`branched_line`, whose loop always refines) with observability on,
//! writes the JSONL stream to the given path, and cross-checks the
//! `lazy.round` / `lazy.refine` spans against the run's own counters —
//! the timed runs stay untraced.

use std::fmt::Write as _;
use std::time::Instant;

use etcs_core::{generate, optimize_incremental, verify, DesignOutcome, EncoderConfig};
use etcs_lazy::{
    generate_lazy, optimize_lazy, optimize_lazy_obs, verify_lazy, LazyConfig, SelectionStrategy,
};
use etcs_network::generator::{branched_line, single_track_line, BranchConfig, LineConfig};
use etcs_network::{fixtures, parse_scenario, Scenario, Schedule, VssLayout};
use etcs_obs::{json, Obs};

/// One eager-vs-lazy optimisation comparison, flattened for JSON.
struct Row {
    eager_wall_ms: f64,
    lazy_wall_ms: f64,
    speedup: f64,
    eager_clauses: usize,
    lazy_clauses: usize,
    clauses_added: usize,
    rounds: usize,
    deadline_steps: Option<u64>,
    borders: Option<u64>,
}

fn costs_of(outcome: &DesignOutcome) -> (Option<u64>, Option<u64>) {
    match outcome {
        DesignOutcome::Solved { costs, .. } => (costs.first().copied(), costs.get(1).copied()),
        DesignOutcome::Infeasible => (None, None),
    }
}

fn compare_optimize(scenario: &Scenario, config: &EncoderConfig, lazy: &LazyConfig) -> Row {
    let t = Instant::now();
    let (eager_outcome, eager_report) =
        optimize_incremental(scenario, config).expect("well-formed");
    let eager_wall_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let (lazy_outcome, lazy_report) = optimize_lazy(scenario, config, lazy).expect("well-formed");
    let lazy_wall_ms = t.elapsed().as_secs_f64() * 1e3;

    let eager_costs = costs_of(&eager_outcome);
    let lazy_costs = costs_of(&lazy_outcome);
    assert_eq!(
        eager_costs, lazy_costs,
        "lazy optimisation diverged from eager on {}",
        scenario.name
    );
    Row {
        eager_wall_ms,
        lazy_wall_ms,
        speedup: eager_wall_ms / lazy_wall_ms.max(1e-9),
        eager_clauses: eager_report.stats.clauses,
        lazy_clauses: lazy_report.report.stats.clauses,
        clauses_added: lazy_report.clauses_added,
        rounds: lazy_report.rounds,
        deadline_steps: eager_costs.0,
        borders: eager_costs.1,
    }
}

/// Generation head-to-head: eager `generate` vs the CEGAR `generate_lazy`
/// loop, pinning the same minimal border count. This is the generation
/// regime the optimisation rows cannot see — stage 1 (deadline search) is
/// absent, so the comparison isolates the border-MaxSAT interaction with
/// lazy separation.
fn compare_generate(scenario: &Scenario, config: &EncoderConfig, lazy: &LazyConfig) -> Row {
    let t = Instant::now();
    let (eager_outcome, eager_report) = generate(scenario, config).expect("well-formed");
    let eager_wall_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let (lazy_outcome, lazy_report) = generate_lazy(scenario, config, lazy).expect("well-formed");
    let lazy_wall_ms = t.elapsed().as_secs_f64() * 1e3;

    let eager_costs = costs_of(&eager_outcome);
    let lazy_costs = costs_of(&lazy_outcome);
    assert_eq!(
        eager_costs, lazy_costs,
        "lazy generation diverged from eager on {}",
        scenario.name
    );
    Row {
        eager_wall_ms,
        lazy_wall_ms,
        speedup: eager_wall_ms / lazy_wall_ms.max(1e-9),
        eager_clauses: eager_report.stats.clauses,
        lazy_clauses: lazy_report.report.stats.clauses,
        clauses_added: lazy_report.clauses_added,
        rounds: lazy_report.rounds,
        deadline_steps: None,
        borders: eager_costs.0,
    }
}

/// Verification head-to-head on the full VSS layout (always feasible, so
/// the lazy loop has real violations to refine).
fn compare_verify(scenario: &Scenario, config: &EncoderConfig, lazy: &LazyConfig) -> (f64, f64) {
    let inst = etcs_core::Instance::new(scenario).expect("valid");
    let layout = VssLayout::full(&inst.net);
    let t = Instant::now();
    let (eager, _) = verify(scenario, &layout, config).expect("well-formed");
    let eager_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let (relaxed, _) = verify_lazy(scenario, &layout, config, lazy).expect("well-formed");
    let lazy_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        eager.is_feasible(),
        relaxed.is_feasible(),
        "lazy verification diverged from eager on {}",
        scenario.name
    );
    (eager_ms, lazy_ms)
}

/// Re-runs the last fixture traced and pins the lazy span vocabulary:
/// every line parses, `lazy.round` spans nest under the task span and
/// agree with the report's round counter, and the refine spans sum to the
/// clauses-added figure.
fn traced_cross_check(scenario: &Scenario, config: &EncoderConfig, lazy: &LazyConfig, path: &str) {
    let obs = Obs::jsonl(path).expect("create trace file");
    let (outcome, report) = optimize_lazy_obs(scenario, config, lazy, &obs).expect("well-formed");
    obs.flush_metrics();
    obs.flush();
    assert!(matches!(outcome, DesignOutcome::Solved { .. }));

    let text = std::fs::read_to_string(path).expect("trace readable");
    let events: Vec<json::Json> = text
        .lines()
        .map(|line| json::parse(line).expect("every trace line is valid JSON"))
        .collect();
    let str_of = |e: &json::Json, key: &str| {
        e.get(key)
            .and_then(json::Json::as_str)
            .map(str::to_owned)
            .unwrap_or_default()
    };
    let task_close = events
        .iter()
        .find(|e| str_of(e, "name") == "task.optimize_lazy" && str_of(e, "kind") == "span_close")
        .expect("trace contains the task.optimize_lazy close");
    let task_id = task_close.get("span").and_then(json::Json::as_f64);
    let rounds = events
        .iter()
        .filter(|e| {
            str_of(e, "name") == "lazy.round"
                && str_of(e, "kind") == "span_close"
                && e.get("parent").and_then(json::Json::as_f64) == task_id
        })
        .count();
    assert_eq!(rounds, report.rounds, "round span count vs LazyReport");
    let refined: f64 = events
        .iter()
        .filter(|e| str_of(e, "name") == "lazy.refine" && str_of(e, "kind") == "span_close")
        .filter_map(|e| {
            e.get("fields")
                .and_then(|f| f.get("clauses"))
                .and_then(json::Json::as_f64)
        })
        .sum();
    assert_eq!(
        refined as usize, report.clauses_added,
        "refine span clause total vs LazyReport"
    );
    eprintln!(
        "   trace: {} events, {rounds} rounds, {} clauses -> {path}",
        events.len(),
        report.clauses_added
    );
}

fn branch_line() -> Scenario {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scenarios/branch_line.rail"
    );
    let text = std::fs::read_to_string(path).expect("branch_line.rail ships with the repo");
    parse_scenario(&text).expect("sample scenario parses")
}

/// The convoy-regime headline fixture: a four-train convoy (the eastbound
/// half of a generated bidirectional line schedule) chasing down a
/// ten-station single-track line, on a horizon with slack. Same-direction
/// trains conflict only in the band trailing the leader, so the eager
/// encoder's all-pairs × all-steps separation mass is almost entirely
/// dormant — the regime the lazy loop is built for.
fn convoy_line() -> Scenario {
    let mut scenario = single_track_line(&LineConfig {
        stations: 10,
        loop_every: 2,
        trains_per_direction: 4,
        horizon: etcs_network::Seconds::from_minutes(45),
        ..LineConfig::default()
    });
    let runs = scenario
        .schedule
        .runs()
        .iter()
        .filter(|r| r.train.name.starts_with("East"))
        .cloned()
        .collect();
    scenario.schedule = Schedule::new(runs);
    scenario.name = "convoy_line".to_owned();
    scenario
}

/// The branched-regime headline fixture: two four-station arms of two
/// trains each merging onto a shared six-station trunk. Cross-arm pairs
/// can only ever conflict around the junction and trunk, so most
/// separation families never activate.
fn branched() -> Scenario {
    let mut scenario = branched_line(&BranchConfig {
        arm_stations: 4,
        trunk_stations: 6,
        trains_per_arm: 2,
        horizon: etcs_network::Seconds::from_minutes(40),
        ..BranchConfig::default()
    });
    scenario.name = "branched_line".to_owned();
    scenario
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_lazy.json".to_owned());
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let config = EncoderConfig::default();
    let lazy = LazyConfig::with_strategy(SelectionStrategy::AllViolated);

    const HEADLINE: [&str; 2] = ["convoy_line", "branched_line"];
    let fixtures: Vec<Scenario> = if smoke {
        vec![convoy_line(), branched()]
    } else {
        vec![
            fixtures::running_example(),
            fixtures::simple_layout(),
            fixtures::complex_layout(),
            branch_line(),
            fixtures::convoy(),
            convoy_line(),
            branched(),
        ]
    };

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"lazy\",");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(out, "  \"strategy\": \"{}\",", lazy.strategy.name());
    let _ = writeln!(out, "  \"fixtures\": [");
    let mut headline_speedups = Vec::new();
    for (i, scenario) in fixtures.iter().enumerate() {
        eprintln!("== {} ==", scenario.name);
        let row = compare_optimize(scenario, &config, &lazy);
        let gen_row = compare_generate(scenario, &config, &lazy);
        let (verify_eager_ms, verify_lazy_ms) = compare_verify(scenario, &config, &lazy);
        eprintln!(
            "   optimize: eager {:.1} ms | lazy {:.1} ms ({:.2}x) | {} rounds, {} of {} eager clauses",
            row.eager_wall_ms,
            row.lazy_wall_ms,
            row.speedup,
            row.rounds,
            row.lazy_clauses + row.clauses_added,
            row.eager_clauses,
        );
        eprintln!(
            "   generate: eager {:.1} ms | lazy {:.1} ms ({:.2}x) | {} rounds",
            gen_row.eager_wall_ms, gen_row.lazy_wall_ms, gen_row.speedup, gen_row.rounds,
        );
        if HEADLINE.contains(&scenario.name.as_str()) {
            headline_speedups.push(row.speedup);
        }
        if i + 1 == fixtures.len() {
            if let Some(path) = &trace_path {
                traced_cross_check(scenario, &config, &lazy, path);
            }
        }
        let opt = |v: Option<u64>| v.map_or("null".to_owned(), |x| x.to_string());
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", scenario.name);
        let _ = writeln!(
            out,
            "      \"optimize\": {{\"eager_wall_ms\": {:.2}, \"lazy_wall_ms\": {:.2}, \
             \"speedup\": {:.2}, \"eager_clauses\": {}, \"lazy_clauses\": {}, \
             \"clauses_added\": {}, \"rounds\": {}, \"deadline_steps\": {}, \"borders\": {}}},",
            row.eager_wall_ms,
            row.lazy_wall_ms,
            row.speedup,
            row.eager_clauses,
            row.lazy_clauses,
            row.clauses_added,
            row.rounds,
            opt(row.deadline_steps),
            opt(row.borders),
        );
        let _ = writeln!(
            out,
            "      \"generate\": {{\"eager_wall_ms\": {:.2}, \"lazy_wall_ms\": {:.2}, \
             \"speedup\": {:.2}, \"eager_clauses\": {}, \"lazy_clauses\": {}, \
             \"clauses_added\": {}, \"rounds\": {}, \"borders\": {}}},",
            gen_row.eager_wall_ms,
            gen_row.lazy_wall_ms,
            gen_row.speedup,
            gen_row.eager_clauses,
            gen_row.lazy_clauses,
            gen_row.clauses_added,
            gen_row.rounds,
            opt(gen_row.borders),
        );
        let _ = writeln!(
            out,
            "      \"verify_full_layout\": {{\"eager_wall_ms\": {verify_eager_ms:.2}, \
             \"lazy_wall_ms\": {verify_lazy_ms:.2}}}"
        );
        let _ = write!(out, "    }}");
        out.push_str(if i + 1 < fixtures.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(out, "  ],");

    // The headline: geometric mean of the optimisation speedups on the
    // interaction-dense fixtures. The checked-in artifact must show >= 1.5.
    let geomean = (headline_speedups.iter().map(|s| s.ln()).sum::<f64>()
        / headline_speedups.len().max(1) as f64)
        .exp();
    eprintln!(
        "== headline geomean speedup ({}): {geomean:.2}x ==",
        HEADLINE.join(" + ")
    );
    let names: Vec<String> = HEADLINE.iter().map(|n| format!("\"{n}\"")).collect();
    let _ = writeln!(out, "  \"headline\": {{");
    let _ = writeln!(out, "    \"fixtures\": [{}],", names.join(", "));
    let _ = writeln!(out, "    \"geomean_speedup\": {geomean:.2}");
    let _ = writeln!(out, "  }}");
    out.push_str("}\n");

    std::fs::write(&out_path, &out).expect("write benchmark results");
    eprintln!("wrote {out_path}");
}
