//! Corpus distribution sweep: every instance of a versioned corpus
//! manifest, optimised under every solve configuration.
//!
//! Writes machine-readable results to `BENCH_corpus.json`. Unlike the
//! fixture benches (one row per hand-picked scenario), this harness
//! reports *distributions*: per family × solve mode it aggregates p50 /
//! p90 / max wall time and clause mass over all of the family's
//! instances, plus verdict counts. Every instance is also a differential
//! check — all four configurations must agree on verdict and proven
//! optima, and the harness asserts it before writing the artifact.
//!
//! Usage: `bench_corpus [--smoke] [--out <path>] [--emit-exemplars]`
//!
//! `--smoke` sweeps [`Manifest::smoke`] (every family at Small — what
//! `ci/check.sh` runs in release mode); the default sweeps
//! [`Manifest::standard`], the 55-instance corpus behind the checked-in
//! artifact. `--emit-exemplars` instead (re)generates the checked-in
//! `scenarios/corpus/*.rail` exemplar files from their specs and exits —
//! run it after bumping [`Manifest::FORMAT_VERSION`].

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use etcs_corpus::{exemplar_path, exemplar_rail, exemplars, Family, Manifest, SolveSetup};

/// One (instance × setup) measurement.
struct Sample {
    wall_ms: f64,
    clauses: usize,
    verdict: &'static str,
}

/// Percentile over a sorted slice: `v[floor(q * (n-1))]`. With this index
/// rule `p50 <= p90 <= max` holds by construction on any input.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    sorted[(q * (sorted.len() - 1) as f64).floor() as usize]
}

fn dist_json(values: &mut [f64]) -> String {
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    format!(
        "{{\"p50\": {:.2}, \"p90\": {:.2}, \"max\": {:.2}}}",
        percentile(values, 0.5),
        percentile(values, 0.9),
        values[values.len() - 1]
    )
}

fn emit_exemplars() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    for spec in exemplars() {
        let path = format!("{root}/{}", exemplar_path(&spec));
        std::fs::create_dir_all(
            std::path::Path::new(&path)
                .parent()
                .expect("exemplar paths have a parent"),
        )
        .expect("create scenarios/corpus");
        std::fs::write(&path, exemplar_rail(&spec)).expect("write exemplar");
        eprintln!("wrote {}", exemplar_path(&spec));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--emit-exemplars") {
        emit_exemplars();
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_corpus.json".to_owned());

    let manifest = if smoke {
        Manifest::smoke()
    } else {
        Manifest::standard()
    };
    let specs = manifest.specs();
    eprintln!(
        "== corpus \"{}\" v{}: {} instances, {} families x {} solve modes ==",
        manifest.label,
        manifest.version,
        specs.len(),
        manifest.families().len(),
        SolveSetup::ALL.len()
    );

    // family -> setup -> samples, in manifest order.
    let mut samples: BTreeMap<Family, BTreeMap<&'static str, Vec<Sample>>> = BTreeMap::new();
    let mut agreements = 0usize;
    for (i, spec) in specs.iter().enumerate() {
        let scenario = spec.build();
        let mut baseline: Option<(String, Option<Vec<u64>>)> = None;
        for setup in SolveSetup::ALL {
            let t = Instant::now();
            let outcome = setup.optimize(&scenario).expect("valid corpus instance");
            let wall_ms = t.elapsed().as_secs_f64() * 1e3;
            // The differential gate: every configuration must report the
            // same verdict and the same proven optima on every instance.
            let key = (
                outcome.verdict().to_owned(),
                outcome.costs().map(<[u64]>::to_vec),
            );
            match &baseline {
                None => baseline = Some(key),
                Some(b) => assert_eq!(
                    &key,
                    b,
                    "{} diverged on {}",
                    setup.name(),
                    spec.canonical_name()
                ),
            }
            samples
                .entry(spec.family)
                .or_default()
                .entry(setup.name())
                .or_default()
                .push(Sample {
                    wall_ms,
                    clauses: outcome.clauses,
                    verdict: if outcome.costs().is_some() {
                        "solved"
                    } else {
                        "infeasible"
                    },
                });
        }
        agreements += 1;
        eprintln!("  [{}/{}] {} ok", i + 1, specs.len(), spec.canonical_name());
    }

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"corpus\",");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "standard" }
    );
    let _ = writeln!(out, "  \"format_version\": {},", manifest.version);
    let _ = writeln!(out, "  \"manifest\": {{");
    let _ = writeln!(out, "    \"label\": \"{}\",", manifest.label);
    let _ = writeln!(out, "    \"total_instances\": {},", manifest.total());
    let _ = writeln!(out, "    \"entries\": [");
    for (i, e) in manifest.entries.iter().enumerate() {
        let _ = write!(
            out,
            "      {{\"family\": \"{}\", \"size\": \"{}\", \"count\": {}, \"base_seed\": {}}}",
            e.family.name(),
            e.size.name(),
            e.count,
            e.base_seed
        );
        out.push_str(if i + 1 < manifest.entries.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let _ = writeln!(out, "    ]");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"families\": [");
    let mut ordering_ok = true;
    for (fi, (family, by_setup)) in samples.iter().enumerate() {
        let instances = by_setup.values().next().map_or(0, Vec::len);
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"family\": \"{}\",", family.name());
        let _ = writeln!(out, "      \"instances\": {instances},");
        let _ = writeln!(out, "      \"modes\": [");
        for (si, setup) in SolveSetup::ALL.into_iter().enumerate() {
            let rows = &by_setup[setup.name()];
            let mut wall: Vec<f64> = rows.iter().map(|s| s.wall_ms).collect();
            let mut clauses: Vec<f64> = rows.iter().map(|s| s.clauses as f64).collect();
            let solved = rows.iter().filter(|s| s.verdict == "solved").count();
            let wall_json = dist_json(&mut wall);
            let clause_json = dist_json(&mut clauses);
            ordering_ok &= percentile(&wall, 0.5) <= percentile(&wall, 0.9)
                && percentile(&wall, 0.9) <= wall[wall.len() - 1];
            let _ = write!(
                out,
                "        {{\"mode\": \"{}\", \"wall_ms\": {}, \"clauses\": {}, \
                 \"verdicts\": {{\"solved\": {}, \"infeasible\": {}}}}}",
                setup.name(),
                wall_json,
                clause_json,
                solved,
                rows.len() - solved
            );
            out.push_str(if si + 1 < SolveSetup::ALL.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        let _ = writeln!(out, "      ]");
        let _ = write!(out, "    }}");
        out.push_str(if fi + 1 < samples.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"ordering_ok\": {ordering_ok},");
    let _ = writeln!(out, "  \"differential\": {{");
    let _ = writeln!(out, "    \"instances\": {},", specs.len());
    let _ = writeln!(out, "    \"agreements\": {agreements},");
    let _ = writeln!(out, "    \"modes\": {}", SolveSetup::ALL.len());
    let _ = writeln!(out, "  }}");
    out.push_str("}\n");

    assert!(ordering_ok, "percentile ordering violated");
    assert_eq!(agreements, specs.len(), "differential gate incomplete");
    std::fs::write(&out_path, &out).expect("write benchmark results");
    eprintln!("wrote {out_path}");
}
