//! Wall-clock speedup curves for the in-process clause-sharing portfolio
//! (`SolveMode::Portfolio`): the same optimisation task run at 1, 2 and 4
//! racing threads on the benchmark-scale line regimes.
//!
//! Writes machine-readable results to `BENCH_parallel.json`. For every
//! regime the harness runs `optimize_incremental` once per thread count,
//! asserts the optima are bit-identical across counts (speed may change,
//! answers may not), and records the wall clock, the speedup over the
//! 1-thread run, and the clause traffic of the races (exported / imported /
//! kept after the LBD filter and structural lints). The host's
//! `available_parallelism` is recorded alongside: on a single-core box any
//! speedup is purely algorithmic (diversified searches finishing in fewer
//! conflicts plus shared lemmas), while the raw thread-racing gain only
//! shows up once real cores back the workers.
//!
//! Usage: `bench_parallel [--smoke] [--out <path>] [--trace <path>]
//! [--threads <a,b,c>]`
//!
//! `--smoke` restricts to the fast fixtures at 1 and 2 threads and asserts
//! that the 2-thread race actually moved clauses (≥ 1 import candidate) —
//! this is what `ci/check.sh` runs in release mode. `--trace` additionally
//! writes the `portfolio.*` events of every race to a JSONL file so the
//! span vocabulary can be checked by grep.

use std::fmt::Write as _;
use std::time::Instant;

use etcs_core::{optimize_incremental_obs, DesignOutcome, EncoderConfig, SolveMode};
use etcs_network::generator::{branched_line, single_track_line, BranchConfig, LineConfig};
use etcs_network::{fixtures, Scenario, Seconds};
use etcs_obs::Obs;

struct Regime {
    name: &'static str,
    scenario: Scenario,
}

fn regimes(smoke: bool) -> Vec<Regime> {
    if smoke {
        return vec![
            Regime {
                name: "running_example",
                scenario: fixtures::running_example(),
            },
            Regime {
                name: "convoy",
                scenario: fixtures::convoy(),
            },
        ];
    }
    vec![
        Regime {
            name: "convoy_line",
            scenario: single_track_line(&LineConfig {
                stations: 8,
                loop_every: 2,
                trains_per_direction: 4,
                horizon: Seconds::from_minutes(40),
                seed: 11,
                ..LineConfig::default()
            }),
        },
        Regime {
            name: "branched_line",
            scenario: branched_line(&BranchConfig {
                arm_stations: 3,
                trunk_stations: 4,
                trains_per_arm: 4,
                headway: Seconds(60),
                r_t: Seconds(15),
                horizon: Seconds::from_minutes(30),
                seed: 11,
                ..BranchConfig::default()
            }),
        },
    ]
}

/// One measured race: wall clock plus the pooled clause-traffic counters
/// summed over every `portfolio.share`/`portfolio.import` event of the run.
struct Measurement {
    threads: usize,
    wall_s: f64,
    costs: Option<Vec<u64>>,
    solver_calls: usize,
    conflicts: u64,
    exported: u64,
    imported: u64,
    kept: u64,
    lint_rejected: u64,
}

fn measure(scenario: &Scenario, threads: usize, trace: &mut Option<String>) -> Measurement {
    let config = EncoderConfig {
        solve_mode: if threads >= 2 {
            SolveMode::Portfolio(threads)
        } else {
            SolveMode::Single
        },
        ..EncoderConfig::default()
    };
    let (obs, sink) = Obs::memory();
    let start = Instant::now();
    let (outcome, report) =
        optimize_incremental_obs(scenario, &config, &obs).expect("generated scenarios are valid");
    let wall_s = start.elapsed().as_secs_f64();

    let costs = match outcome {
        DesignOutcome::Solved { costs, .. } => Some(costs),
        DesignOutcome::Infeasible => None,
    };
    let (mut exported, mut imported, mut kept, mut lint_rejected) = (0u64, 0u64, 0u64, 0u64);
    for event in sink.events() {
        match event.name {
            "portfolio.share" => exported += event.field_u64("exported").unwrap_or(0),
            "portfolio.import" => {
                imported += event.field_u64("imported").unwrap_or(0);
                kept += event.field_u64("kept").unwrap_or(0);
                lint_rejected += event.field_u64("lint_rejected").unwrap_or(0);
            }
            // No counters to sum, but the winner event still belongs in the
            // trace (ci greps the full portfolio vocabulary).
            "portfolio.winner" => {}
            _ => continue,
        }
        if let Some(out) = trace.as_mut() {
            let mut line = format!("{{\"name\":\"{}\"", event.name);
            for key in [
                "threads",
                "exported",
                "imported",
                "kept",
                "lbd_filtered",
                "lint_rejected",
                "worker",
                "worker_conflicts",
            ] {
                if let Some(v) = event.field_u64(key) {
                    let _ = write!(line, ",\"{key}\":{v}");
                }
            }
            line.push_str("}\n");
            out.push_str(&line);
        }
    }
    Measurement {
        threads,
        wall_s,
        costs,
        solver_calls: report.solver_calls,
        conflicts: report.search.conflicts,
        exported,
        imported,
        kept,
        lint_rejected,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let arg_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_parallel.json".to_owned());
    let trace_path = arg_value("--trace");
    let mut trace = trace_path.as_ref().map(|_| String::new());

    let thread_counts: Vec<usize> = match arg_value("--threads") {
        Some(list) => list
            .split(',')
            .map(|t| t.parse().expect("--threads wants a comma-separated list"))
            .collect(),
        None if smoke => vec![1, 2],
        None => vec![1, 2, 4],
    };
    let thread_counts: &[usize] = &thread_counts;
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"parallel\",");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(out, "  \"available_parallelism\": {cores},");
    let _ = writeln!(out, "  \"regimes\": [");

    let regimes = regimes(smoke);
    let mut best_speedup = 0.0f64;
    for (ri, regime) in regimes.iter().enumerate() {
        eprintln!("== {} ==", regime.name);
        let runs: Vec<Measurement> = thread_counts
            .iter()
            .map(|&threads| {
                let m = measure(&regime.scenario, threads, &mut trace);
                eprintln!(
                    "  {} threads: {:.2}s, {} conflicts, {} exported / {} kept",
                    m.threads, m.wall_s, m.conflicts, m.exported, m.kept
                );
                m
            })
            .collect();

        let base = &runs[0];
        for m in &runs[1..] {
            assert_eq!(
                base.costs, m.costs,
                "{}: optimum diverged at {} threads",
                regime.name, m.threads
            );
            // The CI gate: on the smoke fixtures the races are long enough
            // that a race which moved no clauses means sharing is broken.
            // (Full-mode regimes are allowed quiet races on easy probes.)
            if smoke {
                assert!(
                    m.imported >= 1,
                    "{}: the {}-thread race never pulled a clause from the pool",
                    regime.name,
                    m.threads
                );
            }
        }
        let speedup_at_max = base.wall_s / runs.last().expect("runs nonempty").wall_s.max(1e-9);
        best_speedup = best_speedup.max(speedup_at_max);

        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"regime\": \"{}\",", regime.name);
        let _ = writeln!(out, "      \"scenario\": \"{}\",", regime.scenario.name);
        let _ = writeln!(out, "      \"runs\": [");
        for (i, m) in runs.iter().enumerate() {
            let _ = writeln!(out, "        {{");
            let _ = writeln!(out, "          \"threads\": {},", m.threads);
            let _ = writeln!(out, "          \"wall_ms\": {:.2},", m.wall_s * 1e3);
            let _ = writeln!(
                out,
                "          \"speedup_vs_1\": {:.3},",
                base.wall_s / m.wall_s.max(1e-9)
            );
            let _ = writeln!(out, "          \"solver_calls\": {},", m.solver_calls);
            let _ = writeln!(out, "          \"conflicts\": {},", m.conflicts);
            let _ = writeln!(out, "          \"exported\": {},", m.exported);
            let _ = writeln!(out, "          \"imported\": {},", m.imported);
            let _ = writeln!(out, "          \"kept\": {},", m.kept);
            let _ = writeln!(out, "          \"lint_rejected\": {}", m.lint_rejected);
            let _ = write!(out, "        }}");
            out.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
        }
        let _ = writeln!(out, "      ],");
        let _ = writeln!(out, "      \"speedup_at_max_threads\": {speedup_at_max:.3}");
        let _ = write!(out, "    }}");
        out.push_str(if ri + 1 < regimes.len() { ",\n" } else { "\n" });
    }
    // The headline gate: ≥1.5× wall clock at the top thread count on at
    // least one regime. Racing workers burn a core each, so the gate is
    // only physical when the host has a core per worker — on fewer cores
    // the workers time-slice one CPU and wall clock *must* lose; there the
    // algorithmic signal (fewer caller conflicts to the same optimum,
    // clauses kept from the pool) is recorded instead and the gate is
    // marked skipped rather than silently passed.
    let max_threads = thread_counts.iter().copied().max().unwrap_or(1);
    let gate = if smoke {
        "not applicable (smoke)".to_owned()
    } else if cores >= max_threads {
        assert!(
            best_speedup >= 1.5,
            "no regime reached 1.5x at {max_threads} threads on a \
             {cores}-core host (best {best_speedup:.2}x)"
        );
        format!("passed ({best_speedup:.2}x at {max_threads} threads)")
    } else {
        eprintln!(
            "note: {max_threads} racing threads on {cores} core(s) \
             time-slice one CPU; skipping the wall-clock speedup gate"
        );
        format!("skipped ({cores} core(s) for {max_threads} threads)")
    };
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"best_speedup\": {best_speedup:.3},");
    let _ = writeln!(out, "  \"speedup_gate\": \"{gate}\"");
    out.push_str("}\n");

    std::fs::write(&out_path, &out).expect("write benchmark results");
    eprintln!("wrote {out_path} (best speedup {best_speedup:.2}x)");
    if let (Some(path), Some(content)) = (trace_path, trace) {
        std::fs::write(&path, content).expect("write portfolio trace");
        eprintln!("wrote {path}");
    }
}
