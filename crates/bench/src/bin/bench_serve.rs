//! Throughput harness for the `etcs-serve` job service: jobs/second at
//! 1, 2 and 4 workers, warm cache vs. cold, under two job mixes.
//!
//! Writes machine-readable results to `BENCH_serve.json`. Two profiles run
//! back to back:
//!
//! * **`mixed`** — the original duplicate-heavy batch (every fixture ×
//!   every job kind × several copies). It exercises the cache and the
//!   single-flight path, but its runtime is dominated by one huge solve,
//!   so it cannot measure pool scaling.
//! * **`scaling`** — many *independent* medium jobs (generated line
//!   scenarios, one per seed, so every cache key is distinct). No job
//!   dominates and nothing deduplicates, so cold throughput here is the
//!   pool-scaling measurement.
//!
//! For every worker count each batch runs twice on one service instance —
//! the first pass populates the content-addressed result cache, the second
//! is answered from it — and the harness asserts that every warm payload
//! digest matches its cold counterpart (the cache's bit-identical
//! guarantee, measured rather than assumed). The host's
//! `available_parallelism` is recorded; scaling assertions only apply when
//! real cores back the workers (on a 1-core container every worker count
//! time-slices the same CPU and cold throughput is flat by physics).
//!
//! Usage: `bench_serve [--smoke] [--mix mixed|scaling|both] [--out <path>]`
//!
//! `--smoke` restricts to small batches over the fast fixtures (seconds,
//! not minutes) — this is what `ci/check.sh` runs in release mode.

use std::fmt::Write as _;
use std::time::Instant;

use etcs_network::generator::{single_track_line, LineConfig};
use etcs_network::{fixtures, Seconds};
use etcs_serve::{JobKind, JobRequest, JobResponse, ServeConfig, Service};

fn mixed_batch(smoke: bool) -> Vec<JobRequest> {
    let scenarios = if smoke {
        vec![fixtures::running_example(), fixtures::simple_layout()]
    } else {
        vec![
            fixtures::running_example(),
            fixtures::simple_layout(),
            fixtures::complex_layout(),
            fixtures::convoy(),
        ]
    };
    let copies = if smoke { 3 } else { 4 };
    let mut jobs = Vec::new();
    for copy in 0..copies {
        for (si, scenario) in scenarios.iter().enumerate() {
            for kind in JobKind::ALL {
                jobs.push(JobRequest::new(
                    format!("{}-s{si}-c{copy}", kind.name()),
                    kind,
                    scenario.clone(),
                ));
            }
        }
    }
    jobs
}

/// Many independent medium solves, so every job misses the cache and no
/// single solve dominates the batch. The seed stream only draws link
/// lengths, which quantise to the spatial resolution and can collide
/// between seeds — the per-job headway makes every schedule (and therefore
/// every cache key) provably distinct.
fn scaling_batch(smoke: bool) -> Vec<JobRequest> {
    let count = if smoke { 6 } else { 16 };
    (0..count)
        .map(|seed| {
            let scenario = single_track_line(&LineConfig {
                stations: 4,
                loop_every: 2,
                trains_per_direction: 2,
                headway: Seconds(90 + 15 * seed as u64),
                horizon: Seconds::from_minutes(18),
                seed: 1000 + seed as u64,
                ..LineConfig::default()
            });
            JobRequest::new(
                format!("scaling-{seed}"),
                JobKind::OptimizeIncremental,
                scenario,
            )
        })
        .collect()
}

fn digests(responses: &[JobResponse]) -> Vec<u128> {
    responses
        .iter()
        .map(|r| {
            r.outcome
                .payload()
                .unwrap_or_else(|| panic!("job {} failed: {:?}", r.id, r.outcome))
                .digest()
        })
        .collect()
}

/// Runs one profile over all worker counts, appending its JSON object to
/// `out`. Returns the cold jobs/s curve.
fn run_profile(name: &str, jobs: &[JobRequest], unique_keys: bool, out: &mut String) -> Vec<f64> {
    let worker_counts = [1usize, 2, 4];
    let _ = writeln!(out, "    {{");
    let _ = writeln!(out, "      \"profile\": \"{name}\",");
    let _ = writeln!(out, "      \"jobs\": {},", jobs.len());
    let _ = writeln!(out, "      \"runs\": [");

    let mut curve = Vec::new();
    let mut reference: Option<Vec<u128>> = None;
    for (i, &workers) in worker_counts.iter().enumerate() {
        let service = Service::new(ServeConfig {
            workers,
            queue_capacity: jobs.len() + 1,
            cache_capacity: jobs.len(),
            ..ServeConfig::default()
        });

        let t_cold = Instant::now();
        let cold = service.run_batch(jobs.to_vec());
        let cold_s = t_cold.elapsed().as_secs_f64();

        let t_warm = Instant::now();
        let warm = service.run_batch(jobs.to_vec());
        let warm_s = t_warm.elapsed().as_secs_f64();

        let cold_digests = digests(&cold);
        let warm_digests = digests(&warm);
        assert_eq!(
            cold_digests, warm_digests,
            "warm cache must be bit-identical to the cold pass ({name}, {workers} workers)"
        );
        match &reference {
            None => reference = Some(cold_digests),
            Some(reference) => assert_eq!(
                reference, &cold_digests,
                "worker count changed a result ({name}, {workers} workers)"
            ),
        }
        if unique_keys {
            let cold_hits = cold.iter().filter(|r| r.cache_hit).count();
            assert_eq!(
                cold_hits, 0,
                "scaling batch must be duplicate-free ({workers} workers)"
            );
        }
        let warm_hits = warm.iter().filter(|r| r.cache_hit).count();
        assert!(
            warm_hits == jobs.len(),
            "every warm-pass job must hit the cache ({warm_hits}/{})",
            jobs.len()
        );
        let cache = service.cache_stats().expect("cache enabled");

        let cold_jps = jobs.len() as f64 / cold_s.max(1e-9);
        let warm_jps = jobs.len() as f64 / warm_s.max(1e-9);
        curve.push(cold_jps);
        eprintln!(
            "== {name}, {workers} workers: cold {cold_jps:.2} jobs/s, warm {warm_jps:.1} jobs/s \
             ({} hits / {} misses) ==",
            cache.hits, cache.misses
        );

        let _ = writeln!(out, "        {{");
        let _ = writeln!(out, "          \"workers\": {workers},");
        let _ = writeln!(out, "          \"cold_wall_ms\": {:.2},", cold_s * 1e3);
        let _ = writeln!(out, "          \"cold_jobs_per_s\": {cold_jps:.2},");
        let _ = writeln!(out, "          \"warm_wall_ms\": {:.2},", warm_s * 1e3);
        let _ = writeln!(out, "          \"warm_jobs_per_s\": {warm_jps:.2},");
        let _ = writeln!(out, "          \"cache_hits\": {},", cache.hits);
        let _ = writeln!(out, "          \"cache_misses\": {}", cache.misses);
        let _ = write!(out, "        }}");
        out.push_str(if i + 1 < worker_counts.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let _ = writeln!(out, "      ]");
    let _ = write!(out, "    }}");
    curve
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let arg_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_serve.json".to_owned());
    let mix = arg_value("--mix").unwrap_or_else(|| "both".to_owned());
    let (run_mixed, run_scaling) = match mix.as_str() {
        "mixed" => (true, false),
        "scaling" => (false, true),
        "both" => (true, true),
        other => {
            eprintln!("bench_serve: unknown --mix {other:?} (want mixed|scaling|both)");
            std::process::exit(2);
        }
    };
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"serve\",");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(out, "  \"available_parallelism\": {cores},");
    let _ = writeln!(out, "  \"profiles\": [");

    let mut scaling_curve = None;
    if run_mixed {
        run_profile("mixed", &mixed_batch(smoke), false, &mut out);
        out.push_str(if run_scaling { ",\n" } else { "\n" });
    }
    if run_scaling {
        scaling_curve = Some(run_profile(
            "scaling",
            &scaling_batch(smoke),
            true,
            &mut out,
        ));
        out.push('\n');
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");

    // Pool scaling is only physically measurable when the host has a core
    // per worker; with fewer cores the workers time-slice one CPU and the
    // curve is legitimately flat.
    if let Some(curve) = scaling_curve {
        if cores >= 4 {
            assert!(
                curve.windows(2).all(|w| w[1] > w[0]),
                "cold jobs/s must strictly increase with workers on a \
                 {cores}-core host: {curve:?}"
            );
        } else {
            eprintln!(
                "note: only {cores} core(s) available; skipping the strict \
                 scaling assertion (curve: {curve:?})"
            );
        }
    }

    std::fs::write(&out_path, &out).expect("write benchmark results");
    eprintln!("wrote {out_path}");
}
