//! Throughput harness for the `etcs-serve` job service: jobs/second at
//! 1, 2 and 4 workers, warm cache vs. cold.
//!
//! Writes machine-readable results to `BENCH_serve.json`. For every worker
//! count the same mixed-kind batch is run twice on one service instance —
//! the first pass populates the content-addressed result cache, the second
//! is answered from it — and the harness asserts that every warm payload
//! digest matches its cold counterpart (the cache's bit-identical
//! guarantee, measured rather than assumed).
//!
//! Usage: `bench_serve [--smoke] [--out <path>]`
//!
//! `--smoke` restricts to a small batch over the fast fixtures (seconds,
//! not minutes) — this is what `ci/check.sh` runs in release mode.

use std::fmt::Write as _;
use std::time::Instant;

use etcs_network::fixtures;
use etcs_serve::{JobKind, JobRequest, JobResponse, ServeConfig, Service};

fn batch(smoke: bool) -> Vec<JobRequest> {
    let scenarios = if smoke {
        vec![fixtures::running_example(), fixtures::simple_layout()]
    } else {
        vec![
            fixtures::running_example(),
            fixtures::simple_layout(),
            fixtures::complex_layout(),
            fixtures::convoy(),
        ]
    };
    let copies = if smoke { 3 } else { 4 };
    let mut jobs = Vec::new();
    for copy in 0..copies {
        for (si, scenario) in scenarios.iter().enumerate() {
            for kind in JobKind::ALL {
                jobs.push(JobRequest::new(
                    format!("{}-s{si}-c{copy}", kind.name()),
                    kind,
                    scenario.clone(),
                ));
            }
        }
    }
    jobs
}

fn digests(responses: &[JobResponse]) -> Vec<u128> {
    responses
        .iter()
        .map(|r| {
            r.outcome
                .payload()
                .unwrap_or_else(|| panic!("job {} failed: {:?}", r.id, r.outcome))
                .digest()
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_owned());

    let jobs = batch(smoke);
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"serve\",");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(out, "  \"jobs\": {},", jobs.len());
    let _ = writeln!(out, "  \"runs\": [");

    let worker_counts = [1usize, 2, 4];
    let mut reference: Option<Vec<u128>> = None;
    for (i, &workers) in worker_counts.iter().enumerate() {
        let service = Service::new(ServeConfig {
            workers,
            queue_capacity: jobs.len() + 1,
            cache_capacity: jobs.len(),
            ..ServeConfig::default()
        });

        let t_cold = Instant::now();
        let cold = service.run_batch(jobs.clone());
        let cold_s = t_cold.elapsed().as_secs_f64();

        let t_warm = Instant::now();
        let warm = service.run_batch(jobs.clone());
        let warm_s = t_warm.elapsed().as_secs_f64();

        let cold_digests = digests(&cold);
        let warm_digests = digests(&warm);
        assert_eq!(
            cold_digests, warm_digests,
            "warm cache must be bit-identical to the cold pass ({workers} workers)"
        );
        match &reference {
            None => reference = Some(cold_digests),
            Some(reference) => assert_eq!(
                reference, &cold_digests,
                "worker count changed a result ({workers} workers)"
            ),
        }
        let warm_hits = warm.iter().filter(|r| r.cache_hit).count();
        assert!(
            warm_hits == jobs.len(),
            "every warm-pass job must hit the cache ({warm_hits}/{})",
            jobs.len()
        );
        let cache = service.cache_stats().expect("cache enabled");

        let cold_jps = jobs.len() as f64 / cold_s.max(1e-9);
        let warm_jps = jobs.len() as f64 / warm_s.max(1e-9);
        eprintln!(
            "== {workers} workers: cold {cold_jps:.1} jobs/s, warm {warm_jps:.1} jobs/s \
             ({} hits / {} misses) ==",
            cache.hits, cache.misses
        );

        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"workers\": {workers},");
        let _ = writeln!(out, "      \"cold_wall_ms\": {:.2},", cold_s * 1e3);
        let _ = writeln!(out, "      \"cold_jobs_per_s\": {cold_jps:.2},");
        let _ = writeln!(out, "      \"warm_wall_ms\": {:.2},", warm_s * 1e3);
        let _ = writeln!(out, "      \"warm_jobs_per_s\": {warm_jps:.2},");
        let _ = writeln!(out, "      \"cache_hits\": {},", cache.hits);
        let _ = writeln!(out, "      \"cache_misses\": {}", cache.misses);
        let _ = write!(out, "    }}");
        out.push_str(if i + 1 < worker_counts.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");

    std::fs::write(&out_path, &out).expect("write benchmark results");
    eprintln!("wrote {out_path}");
}
