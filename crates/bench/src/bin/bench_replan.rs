//! Online-replanning sweep: warm-started streaming sessions vs cold
//! re-solves over deterministic delta traces across corpus families.
//!
//! Writes machine-readable results to `BENCH_replan.json`. Every corpus
//! family contributes one Small instance driven through a fixed trace of
//! scenario deltas (deadline edits that preserve the scenario core, plus
//! a close/reopen excursion that invalidates and then restores it); each
//! tick is solved twice:
//!
//! * **warm** — one [`etcs_replan::ReplanSession`] carried across the
//!   whole trace, reusing cached solver cores where the delta allows;
//! * **cold** — a fresh [`etcs_core::optimize_incremental`] of the same
//!   patched scenario, as a baseline dispatcher would.
//!
//! Every tick is also a differential check — warm and cold must agree on
//! verdict and proven optima — and the harness asserts the aggregate
//! conflict count of the warm path undercuts the cold path before writing
//! the artifact (the whole point of warm starts).
//!
//! Usage: `bench_replan [--smoke] [--out <path>]`
//!
//! `--smoke` sweeps two families with a short trace (what `ci/check.sh`
//! runs in release mode); the default sweeps all five families behind the
//! checked-in artifact.

use std::fmt::Write as _;
use std::time::Instant;

use etcs_core::{optimize_incremental, DesignOutcome, EncoderConfig};
use etcs_corpus::{Family, InstanceSpec, SizeClass};
use etcs_network::{fixtures, Scenario};
use etcs_replan::{ReplanConfig, ReplanSession, ScenarioDelta};

/// One tick measured both ways.
struct TickSample {
    /// The delta class that preceded the tick (`baseline` for the first).
    kind: &'static str,
    warm_wall_ms: f64,
    warm_conflicts: u64,
    warm_hit: bool,
    cold_wall_ms: f64,
    cold_conflicts: u64,
}

/// The deterministic trace for one scenario: `(kind, deltas-before-tick)`.
/// Deadline edits pin two trains to the horizon (always satisfiable on a
/// solvable instance) and then free one again; the topology excursion
/// closes the first cleanly-closable track and reopens it.
fn trace_for(scenario: &Scenario, smoke: bool) -> Vec<(&'static str, Vec<ScenarioDelta>)> {
    let trains: Vec<String> = scenario
        .schedule
        .runs()
        .iter()
        .map(|r| r.train.name.clone())
        .collect();
    let horizon = scenario.horizon;
    let mut trace: Vec<(&'static str, Vec<ScenarioDelta>)> = vec![("baseline", vec![])];
    for train in trains.iter().take(2) {
        trace.push((
            "deadline",
            vec![ScenarioDelta::Deadline {
                train: train.clone(),
                arrival: Some(horizon),
            }],
        ));
    }
    trace.push((
        "deadline",
        vec![ScenarioDelta::Deadline {
            train: trains[0].clone(),
            arrival: None,
        }],
    ));
    if !smoke {
        // Close/reopen: a cold fallback, then an LRU re-hit of the
        // original core. Which track closes cleanly is scenario-specific,
        // so the session decides at run time (see `run_trace`).
        trace.push((
            "topology",
            vec![ScenarioDelta::Close {
                track: String::new(),
            }],
        ));
        trace.push((
            "topology",
            vec![ScenarioDelta::Reopen {
                track: String::new(),
            }],
        ));
    }
    trace
}

fn cold_solve(scenario: &Scenario) -> (Option<Vec<u64>>, u64, f64) {
    let t = Instant::now();
    let (outcome, report) =
        optimize_incremental(scenario, &EncoderConfig::default()).expect("valid instance");
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    let costs = match outcome {
        DesignOutcome::Solved { costs, .. } => Some(costs),
        DesignOutcome::Infeasible => None,
    };
    (costs, report.search.conflicts, wall_ms)
}

fn run_trace(scenario: Scenario, smoke: bool) -> (Vec<TickSample>, etcs_replan::ReplanStats) {
    let trace = trace_for(&scenario, smoke);
    let mut session =
        ReplanSession::new(scenario, ReplanConfig::default()).expect("valid corpus instance");
    // Resolved lazily once the session knows which track closes cleanly.
    let mut closed_track: Option<String> = None;
    let mut samples = Vec::new();
    for (kind, deltas) in trace {
        let mut skip_tick = false;
        for delta in deltas {
            let delta = match delta {
                ScenarioDelta::Close { .. } => {
                    let names: Vec<String> = session
                        .current()
                        .network
                        .tracks()
                        .iter()
                        .map(|t| t.name.clone())
                        .collect();
                    match names.into_iter().find(|name| {
                        session
                            .apply(&ScenarioDelta::Close {
                                track: name.clone(),
                            })
                            .is_ok()
                    }) {
                        Some(name) => {
                            closed_track = Some(name);
                            continue; // already applied by the probe
                        }
                        None => {
                            skip_tick = true;
                            continue; // nothing closes cleanly here
                        }
                    }
                }
                ScenarioDelta::Reopen { .. } => match closed_track.take() {
                    Some(track) => ScenarioDelta::Reopen { track },
                    None => {
                        skip_tick = true;
                        continue;
                    }
                },
                other => other,
            };
            session.apply(&delta).expect("trace deltas are valid");
        }
        if skip_tick {
            continue;
        }
        let t = Instant::now();
        let report = session.tick();
        let warm_wall_ms = t.elapsed().as_secs_f64() * 1e3;
        assert!(!report.stale, "un-budgeted ticks never go stale");
        let (cold_costs, cold_conflicts, cold_wall_ms) = cold_solve(session.current());
        // The differential gate: the warm session must report exactly the
        // cold verdict and optima for the patched scenario.
        assert_eq!(
            report.feasible,
            cold_costs.is_some(),
            "verdict diverged on a {kind} tick"
        );
        if let Some(costs) = &cold_costs {
            assert_eq!(&report.costs, costs, "optima diverged on a {kind} tick");
        }
        samples.push(TickSample {
            kind,
            warm_wall_ms,
            warm_conflicts: report.conflicts,
            warm_hit: report.warm,
            cold_wall_ms,
            cold_conflicts,
        });
    }
    (samples, session.stats())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_replan.json".to_owned());

    let families: &[Family] = if smoke {
        &[Family::GridLadder, Family::ConvoyChain]
    } else {
        &Family::ALL
    };
    // The running example leads the sweep: it is the one scenario with a
    // cleanly-closable parallel track, so it exercises the close/reopen
    // excursion (cold fallback, then an LRU re-hit of the cached core);
    // the corpus Smalls reject closures (every track is load-bearing) and
    // contribute the deadline-delta regime.
    let mut scenarios: Vec<Scenario> = vec![fixtures::running_example()];
    scenarios.extend(
        families
            .iter()
            .map(|&family| InstanceSpec::new(family, SizeClass::Small, 0).build()),
    );
    eprintln!(
        "== replan sweep: {} scenarios, warm session vs cold re-solve per tick ==",
        scenarios.len()
    );

    let mut rows = String::new();
    let (mut total_ticks, mut total_agree) = (0u64, 0u64);
    let (mut total_warm_conflicts, mut total_cold_conflicts) = (0u64, 0u64);
    let (mut total_warm_ms, mut total_cold_ms) = (0f64, 0f64);
    let count = scenarios.len();
    for (i, scenario) in scenarios.into_iter().enumerate() {
        let name = scenario.name.clone();
        let trains = scenario.schedule.runs().len();
        let (samples, stats) = run_trace(scenario, smoke);
        let _ = writeln!(rows, "    {{");
        let _ = writeln!(rows, "      \"scenario\": \"{name}\",");
        let _ = writeln!(rows, "      \"trains\": {trains},");
        let _ = writeln!(rows, "      \"ticks\": {},", samples.len());
        let _ = writeln!(
            rows,
            "      \"session\": {{\"warm_hits\": {}, \"cold_fallbacks\": {}, \
             \"deadline_misses\": {}, \"deltas\": {}}},",
            stats.warm_hits, stats.cold_fallbacks, stats.deadline_misses, stats.deltas
        );
        let _ = writeln!(rows, "      \"by_kind\": [");
        let kinds = ["baseline", "deadline", "topology"];
        let present: Vec<&str> = kinds
            .into_iter()
            .filter(|k| samples.iter().any(|s| s.kind == *k))
            .collect();
        for (ki, kind) in present.iter().enumerate() {
            let of_kind: Vec<&TickSample> = samples.iter().filter(|s| s.kind == *kind).collect();
            let warm_ms: f64 = of_kind.iter().map(|s| s.warm_wall_ms).sum();
            let cold_ms: f64 = of_kind.iter().map(|s| s.cold_wall_ms).sum();
            let warm_conflicts: u64 = of_kind.iter().map(|s| s.warm_conflicts).sum();
            let cold_conflicts: u64 = of_kind.iter().map(|s| s.cold_conflicts).sum();
            let warm_hits = of_kind.iter().filter(|s| s.warm_hit).count();
            let _ = write!(
                rows,
                "        {{\"kind\": \"{kind}\", \"ticks\": {}, \"warm_hits\": {warm_hits}, \
                 \"warm\": {{\"wall_ms\": {warm_ms:.2}, \"conflicts\": {warm_conflicts}}}, \
                 \"cold\": {{\"wall_ms\": {cold_ms:.2}, \"conflicts\": {cold_conflicts}}}}}",
                of_kind.len()
            );
            rows.push_str(if ki + 1 < present.len() { ",\n" } else { "\n" });
        }
        let _ = writeln!(rows, "      ]");
        let _ = write!(rows, "    }}");
        rows.push_str(if i + 1 < count { ",\n" } else { "\n" });
        total_ticks += samples.len() as u64;
        total_agree += samples.len() as u64;
        total_warm_conflicts += samples.iter().map(|s| s.warm_conflicts).sum::<u64>();
        total_cold_conflicts += samples.iter().map(|s| s.cold_conflicts).sum::<u64>();
        total_warm_ms += samples.iter().map(|s| s.warm_wall_ms).sum::<f64>();
        total_cold_ms += samples.iter().map(|s| s.cold_wall_ms).sum::<f64>();
        eprintln!(
            "  [{}/{}] {name}: {} ticks, warm {} vs cold {} conflicts",
            i + 1,
            count,
            samples.len(),
            samples.iter().map(|s| s.warm_conflicts).sum::<u64>(),
            samples.iter().map(|s| s.cold_conflicts).sum::<u64>(),
        );
    }

    // The acceptance gate: across the sweep, the warm sessions must beat
    // cold re-solving on total conflicts (each trace has warm ticks whose
    // learnt state the cold path rebuilds from nothing every time).
    let warm_wins = total_warm_conflicts < total_cold_conflicts;
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"replan\",");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "standard" }
    );
    let _ = writeln!(out, "  \"scenarios\": [");
    out.push_str(&rows);
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"totals\": {{");
    let _ = writeln!(out, "    \"ticks\": {total_ticks},");
    let _ = writeln!(out, "    \"agreements\": {total_agree},");
    let _ = writeln!(
        out,
        "    \"warm\": {{\"wall_ms\": {total_warm_ms:.2}, \"conflicts\": {total_warm_conflicts}}},"
    );
    let _ = writeln!(
        out,
        "    \"cold\": {{\"wall_ms\": {total_cold_ms:.2}, \"conflicts\": {total_cold_conflicts}}}"
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"warm_wins\": {warm_wins}");
    out.push_str("}\n");

    assert!(
        warm_wins,
        "warm sessions did not beat cold re-solves: {total_warm_conflicts} vs {total_cold_conflicts} conflicts"
    );
    std::fs::write(&out_path, &out).expect("write benchmark results");
    eprintln!("wrote {out_path}");
}
