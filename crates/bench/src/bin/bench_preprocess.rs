//! Harness for the certified CNF preprocessor: how much formula does it
//! remove, and what does that do to end-to-end solve time?
//!
//! Writes machine-readable results to `BENCH_preprocess.json`. Each fixture
//! row records the per-technique reduction statistics of one preprocessing
//! pass over the `OptimizeIncremental` encoding (clauses/literals before
//! and after, subsumed, strengthened, failed literals, eliminated
//! variables) and the wall-clock delta of the full incremental optimisation
//! with `EncoderConfig::preprocess` off versus on — asserting the optima
//! are bit-identical, which is the preprocessor's contract.
//!
//! Usage: `bench_preprocess [--smoke] [--out <path>] [--trace <path>]`
//!
//! `--smoke` restricts to the two generated regimes (`convoy_line`,
//! `branched_line` — what `ci/check.sh` runs in release mode). `--trace`
//! re-runs the last fixture's preprocessing with observability on, writes
//! the JSONL stream to the given path, and cross-checks the
//! `sat.preprocess` span fields against the returned stats — the timed
//! runs stay untraced.

use std::fmt::Write as _;
use std::time::Instant;

use etcs_core::{encode, optimize_incremental, DesignOutcome, EncoderConfig, Instance, TaskKind};
use etcs_network::generator::{branched_line, single_track_line, BranchConfig, LineConfig};
use etcs_network::{fixtures, parse_scenario, Scenario, Schedule};
use etcs_obs::{json, Obs};
use etcs_sat::{PreprocessConfig, PreprocessStats};

/// One fixture's measurements, flattened for JSON.
struct Row {
    stats: PreprocessStats,
    preprocess_ms: f64,
    off_wall_ms: f64,
    on_wall_ms: f64,
    deadline_steps: Option<u64>,
    borders: Option<u64>,
}

fn costs_of(outcome: &DesignOutcome) -> (Option<u64>, Option<u64>) {
    match outcome {
        DesignOutcome::Solved { costs, .. } => (costs.first().copied(), costs.get(1).copied()),
        DesignOutcome::Infeasible => (None, None),
    }
}

/// Runs one preprocessing pass over the fixture's incremental-optimisation
/// encoding (for the reduction stats), then the full task with the
/// preprocessor off and on (for the solve delta), pinning equal optima.
fn measure(scenario: &Scenario, obs: &Obs) -> Row {
    let inst = Instance::new(scenario).expect("valid scenario");
    let config = EncoderConfig::default();
    let mut enc = encode(&inst, &config, &TaskKind::OptimizeIncremental);
    enc.solver.set_obs(obs.clone());
    let t = Instant::now();
    let stats = enc.preprocess(&PreprocessConfig::default());
    let preprocess_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let (off_outcome, _) = optimize_incremental(scenario, &config).expect("well-formed");
    let off_wall_ms = t.elapsed().as_secs_f64() * 1e3;

    let on_config = EncoderConfig {
        preprocess: true,
        ..config
    };
    let t = Instant::now();
    let (on_outcome, _) = optimize_incremental(scenario, &on_config).expect("well-formed");
    let on_wall_ms = t.elapsed().as_secs_f64() * 1e3;

    let off_costs = costs_of(&off_outcome);
    let on_costs = costs_of(&on_outcome);
    assert_eq!(
        off_costs, on_costs,
        "preprocessing changed the optimum on {}",
        scenario.name
    );
    Row {
        stats,
        preprocess_ms,
        off_wall_ms,
        on_wall_ms,
        deadline_steps: off_costs.0,
        borders: off_costs.1,
    }
}

/// Re-runs the last fixture's preprocessing traced and pins the
/// `sat.preprocess` span vocabulary: the close event must carry the same
/// before/after clause counts the pass returned.
fn traced_cross_check(scenario: &Scenario, path: &str) {
    let obs = Obs::jsonl(path).expect("create trace file");
    let row = measure(scenario, &obs);
    obs.flush();

    let text = std::fs::read_to_string(path).expect("trace readable");
    let events: Vec<json::Json> = text
        .lines()
        .map(|line| json::parse(line).expect("every trace line is valid JSON"))
        .collect();
    let str_of = |e: &json::Json, key: &str| {
        e.get(key)
            .and_then(json::Json::as_str)
            .map(str::to_owned)
            .unwrap_or_default()
    };
    let close = events
        .iter()
        .find(|e| str_of(e, "name") == "sat.preprocess" && str_of(e, "kind") == "span_close")
        .expect("trace contains the sat.preprocess close");
    let field = |key: &str| {
        close
            .get("fields")
            .and_then(|f| f.get(key))
            .and_then(json::Json::as_f64)
            .map(|v| v as usize)
    };
    assert_eq!(
        field("clauses_before"),
        Some(row.stats.clauses_before),
        "span clauses_before vs PreprocessStats"
    );
    assert_eq!(
        field("clauses_after"),
        Some(row.stats.clauses_after),
        "span clauses_after vs PreprocessStats"
    );
    eprintln!(
        "   trace: {} events, {} -> {} clauses -> {path}",
        events.len(),
        row.stats.clauses_before,
        row.stats.clauses_after
    );
}

fn branch_line() -> Scenario {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scenarios/branch_line.rail"
    );
    let text = std::fs::read_to_string(path).expect("branch_line.rail ships with the repo");
    parse_scenario(&text).expect("sample scenario parses")
}

/// The convoy-regime fixture (same construction as `bench_lazy`): a
/// four-train convoy chasing down a ten-station single-track line.
fn convoy_line() -> Scenario {
    let mut scenario = single_track_line(&LineConfig {
        stations: 10,
        loop_every: 2,
        trains_per_direction: 4,
        horizon: etcs_network::Seconds::from_minutes(45),
        ..LineConfig::default()
    });
    let runs = scenario
        .schedule
        .runs()
        .iter()
        .filter(|r| r.train.name.starts_with("East"))
        .cloned()
        .collect();
    scenario.schedule = Schedule::new(runs);
    scenario.name = "convoy_line".to_owned();
    scenario
}

/// The branched-regime fixture (same construction as `bench_lazy`): two
/// four-station arms merging onto a shared six-station trunk.
fn branched() -> Scenario {
    let mut scenario = branched_line(&BranchConfig {
        arm_stations: 4,
        trunk_stations: 6,
        trains_per_arm: 2,
        horizon: etcs_network::Seconds::from_minutes(40),
        ..BranchConfig::default()
    });
    scenario.name = "branched_line".to_owned();
    scenario
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_preprocess.json".to_owned());
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let fixtures: Vec<Scenario> = if smoke {
        vec![convoy_line(), branched()]
    } else {
        vec![
            fixtures::running_example(),
            fixtures::convoy(),
            branch_line(),
            convoy_line(),
            branched(),
        ]
    };

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"preprocess\",");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(out, "  \"fixtures\": [");
    let mut reductions = Vec::new();
    for (i, scenario) in fixtures.iter().enumerate() {
        eprintln!("== {} ==", scenario.name);
        let row = measure(scenario, &Obs::disabled());
        let st = &row.stats;
        let reduction = st.clauses_removed() as f64 / (st.clauses_before.max(1)) as f64;
        reductions.push(reduction);
        eprintln!(
            "   reduce: {} -> {} clauses (-{:.1}%) in {:.1} ms | {} subsumed, {} strengthened \
             lits, {} failed lits, {} vars eliminated",
            st.clauses_before,
            st.clauses_after,
            reduction * 100.0,
            row.preprocess_ms,
            st.subsumed_removed,
            st.strengthened_literals,
            st.failed_literals,
            st.eliminated_vars,
        );
        eprintln!(
            "   solve:  off {:.1} ms | on {:.1} ms ({:.2}x)",
            row.off_wall_ms,
            row.on_wall_ms,
            row.off_wall_ms / row.on_wall_ms.max(1e-9),
        );
        if i + 1 == fixtures.len() {
            if let Some(path) = &trace_path {
                traced_cross_check(scenario, path);
            }
        }
        let opt = |v: Option<u64>| v.map_or("null".to_owned(), |x| x.to_string());
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", scenario.name);
        let _ = writeln!(
            out,
            "      \"reduction\": {{\"clauses_before\": {}, \"clauses_after\": {}, \
             \"literals_before\": {}, \"literals_after\": {}, \"ratio\": {:.4}, \
             \"rounds\": {}, \"preprocess_ms\": {:.2}}},",
            st.clauses_before,
            st.clauses_after,
            st.literals_before,
            st.literals_after,
            reduction,
            st.rounds,
            row.preprocess_ms,
        );
        let _ = writeln!(
            out,
            "      \"techniques\": {{\"tautologies\": {}, \"duplicates\": {}, \
             \"satisfied\": {}, \"subsumed\": {}, \"strengthened_literals\": {}, \
             \"failed_literals\": {}, \"eliminated_vars\": {}, \"eliminated_clauses\": {}, \
             \"resolvents_added\": {}}},",
            st.tautologies_removed,
            st.duplicates_removed,
            st.satisfied_removed,
            st.subsumed_removed,
            st.strengthened_literals,
            st.failed_literals,
            st.eliminated_vars,
            st.eliminated_clauses,
            st.resolvents_added,
        );
        let _ = writeln!(
            out,
            "      \"optimize_incremental\": {{\"off_wall_ms\": {:.2}, \"on_wall_ms\": {:.2}, \
             \"speedup\": {:.2}, \"deadline_steps\": {}, \"borders\": {}}}",
            row.off_wall_ms,
            row.on_wall_ms,
            row.off_wall_ms / row.on_wall_ms.max(1e-9),
            opt(row.deadline_steps),
            opt(row.borders),
        );
        let _ = write!(out, "    }}");
        out.push_str(if i + 1 < fixtures.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(out, "  ],");

    // The headline: geometric mean of the per-fixture clause-reduction
    // fractions. The CI smoke asserts this is strictly positive — a
    // preprocessor that removes nothing is a regression.
    let geomean = (reductions.iter().map(|r| r.max(1e-12).ln()).sum::<f64>()
        / reductions.len().max(1) as f64)
        .exp();
    eprintln!(
        "== headline geomean clause reduction: {:.1}% ==",
        geomean * 100.0
    );
    let _ = writeln!(out, "  \"headline\": {{");
    let _ = writeln!(out, "    \"geomean_clause_reduction\": {geomean:.4}");
    let _ = writeln!(out, "  }}");
    out.push_str("}\n");

    std::fs::write(&out_path, &out).expect("write benchmark results");
    eprintln!("wrote {out_path}");
}
