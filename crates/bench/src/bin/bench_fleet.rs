//! Throughput harness for the `etcs-fleet` distributed serve fleet:
//! jobs/second as a function of shard count, cold cache vs. warm, over a
//! batch of independent medium solves (generated line scenarios shipped
//! inline as `rail:` specs, one per seed, so every routing fingerprint is
//! distinct and no job deduplicates).
//!
//! Every run is gated on correctness, not just timed:
//!
//! * every fleet digest must be bit-identical to direct in-process
//!   execution of the same request (the fleet's core guarantee);
//! * the warm pass must be answered entirely from the shards' caches;
//! * the shards' recorded put/hit histories must pass the dbcop-style
//!   consistency checker, with every completed entry replicated.
//!
//! Shards are in-process [`ShardServer`]s on ephemeral loopback ports, so
//! the numbers include the real wire protocol (TCP, JSONL framing, payload
//! codec) but no network latency. The host's `available_parallelism` is
//! recorded; the scaling assertion only applies when real cores back every
//! shard's workers (with fewer cores the shards time-slice the same CPUs
//! and the curve is legitimately flat).
//!
//! Usage: `bench_fleet [--smoke] [--out <path>]`
//!
//! `--smoke` restricts to shard counts 1 and 2 over a small batch
//! (seconds, not minutes) — this is what `ci/check.sh` runs.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use etcs_core::EncoderConfig;
use etcs_fleet::wire::{parse_request_line, ShardServer, ShardServerConfig};
use etcs_fleet::{check, Fleet, FleetConfig, FleetJob};
use etcs_network::generator::{single_track_line, LineConfig};
use etcs_network::{write_scenario, Seconds};
use etcs_obs::{json, Obs};
use etcs_sat::Interrupt;
use etcs_serve::{execute, JobOutcome, JobRequest, ServeConfig, Service};

const WORKERS_PER_SHARD: usize = 2;

/// Independent medium solves: one generated line scenario per seed, each
/// carried inline in its request line (`rail:` spec), each with its own
/// headway so every cache key is provably distinct.
fn request_lines(smoke: bool) -> Vec<String> {
    let count = if smoke { 6 } else { 16 };
    (0..count)
        .map(|seed| {
            let scenario = single_track_line(&LineConfig {
                stations: 4,
                loop_every: 2,
                trains_per_direction: 2,
                headway: Seconds(90 + 15 * seed as u64),
                horizon: Seconds::from_minutes(18),
                seed: 1000 + seed as u64,
                ..LineConfig::default()
            });
            format!(
                "{{\"id\": \"fleet-{seed}\", \"kind\": \"optimize_incremental\", \
                 \"scenario\": {}}}",
                json::quote(&format!("rail:{}", write_scenario(&scenario)))
            )
        })
        .collect()
}

fn parse_all(lines: &[String]) -> Vec<JobRequest> {
    lines
        .iter()
        .map(|line| parse_request_line(line, "bench", false, None).expect("bench lines are valid"))
        .collect()
}

fn fleet_jobs(lines: &[String], requests: &[JobRequest]) -> Vec<FleetJob> {
    let encoder = EncoderConfig::default();
    requests
        .iter()
        .zip(lines)
        .enumerate()
        .map(|(index, (request, line))| FleetJob {
            index,
            id: request.id.clone(),
            key: request.cache_key(&encoder),
            spec: line.clone(),
        })
        .collect()
}

fn digest_of(line: &str) -> String {
    json::parse(line)
        .ok()
        .and_then(|v| {
            v.get("payload")
                .and_then(|p| p.get("digest"))
                .and_then(|d| d.as_str())
                .map(str::to_owned)
        })
        .unwrap_or_else(|| panic!("no payload digest in: {line}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_fleet.json".to_owned());
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let shard_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };

    let lines = request_lines(smoke);
    let requests = parse_all(&lines);

    // Ground truth: direct in-process execution, no service, no wire.
    let encoder = EncoderConfig::default();
    let reference: Vec<String> = requests
        .iter()
        .map(
            |request| match execute(request, &encoder, &Interrupt::none(), &Obs::disabled()) {
                JobOutcome::Done(payload) => format!("{:032x}", payload.digest()),
                other => panic!("reference job {} did not finish: {other:?}", request.id),
            },
        )
        .collect();

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"fleet\",");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(out, "  \"available_parallelism\": {cores},");
    let _ = writeln!(out, "  \"jobs\": {},", lines.len());
    let _ = writeln!(out, "  \"workers_per_shard\": {WORKERS_PER_SHARD},");
    let _ = writeln!(out, "  \"runs\": [");

    let mut curve = Vec::new();
    for (ci, &count) in shard_counts.iter().enumerate() {
        let servers: Vec<ShardServer> = (0..count)
            .map(|i| {
                let service = Service::new(ServeConfig {
                    workers: WORKERS_PER_SHARD,
                    queue_capacity: lines.len() + 1,
                    cache_capacity: lines.len(),
                    record_history: true,
                    ..ServeConfig::default()
                });
                ShardServer::spawn(
                    "127.0.0.1:0",
                    service,
                    ShardServerConfig {
                        name: format!("s{i}"),
                        ..ShardServerConfig::default()
                    },
                    Obs::disabled(),
                )
                .expect("bind an ephemeral port")
            })
            .collect();
        let fleet = Fleet::connect(
            FleetConfig {
                shards: servers.iter().map(|s| s.addr().to_string()).collect(),
                replicas: 1,
                streams: WORKERS_PER_SHARD,
                connect_retries: 20,
                connect_delay: Duration::from_millis(50),
                ..FleetConfig::default()
            },
            Obs::disabled(),
        )
        .expect("all shards are up");

        let t_cold = Instant::now();
        let cold = fleet.run_batch(fleet_jobs(&lines, &requests), |_| {});
        let cold_s = t_cold.elapsed().as_secs_f64();

        let t_warm = Instant::now();
        let warm = fleet.run_batch(fleet_jobs(&lines, &requests), |_| {});
        let warm_s = t_warm.elapsed().as_secs_f64();

        for result in cold.iter().chain(&warm) {
            assert_eq!(
                result.status, "done",
                "job {}: {}",
                result.index, result.line
            );
            assert_eq!(
                digest_of(&result.line),
                reference[result.index],
                "fleet digests must be bit-identical to direct execution \
                 ({count} shards, job {})",
                result.index
            );
        }
        let cold_hits = cold.iter().filter(|r| r.cache_hit).count();
        assert_eq!(
            cold_hits, 0,
            "the batch must be duplicate-free ({count} shards)"
        );
        let warm_hits = warm.iter().filter(|r| r.cache_hit).count();
        assert_eq!(
            warm_hits,
            lines.len(),
            "every warm-pass job must hit a shard cache ({count} shards)"
        );

        let histories = fleet.fetch_histories().expect("all shards answer");
        let report = check(&histories).expect("fleet histories are consistent");
        assert_eq!(report.keys, lines.len());
        if count > 1 {
            assert_eq!(
                report.replicated_keys,
                lines.len(),
                "every completed entry must be replicated ({count} shards)"
            );
        }

        fleet.shutdown_shards();
        for server in servers {
            server.wait();
        }

        let cold_jps = lines.len() as f64 / cold_s.max(1e-9);
        let warm_jps = lines.len() as f64 / warm_s.max(1e-9);
        curve.push(cold_jps);
        eprintln!(
            "== {count} shard(s): cold {cold_jps:.2} jobs/s, warm {warm_jps:.1} jobs/s \
             ({} events, {} replicated keys) ==",
            report.events, report.replicated_keys
        );

        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"shards\": {count},");
        let _ = writeln!(out, "      \"cold_wall_ms\": {:.2},", cold_s * 1e3);
        let _ = writeln!(out, "      \"cold_jobs_per_s\": {cold_jps:.2},");
        let _ = writeln!(out, "      \"warm_wall_ms\": {:.2},", warm_s * 1e3);
        let _ = writeln!(out, "      \"warm_jobs_per_s\": {warm_jps:.2},");
        let _ = writeln!(out, "      \"history_events\": {},", report.events);
        let _ = writeln!(out, "      \"replicated_keys\": {}", report.replicated_keys);
        let _ = write!(out, "    }}");
        out.push_str(if ci + 1 < shard_counts.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");

    // Fleet scaling is only physically measurable when the host has a core
    // for every shard worker; below that the shards time-slice the same
    // CPUs and the cold curve is legitimately flat.
    let needed = shard_counts.last().copied().unwrap_or(1) * WORKERS_PER_SHARD;
    if cores >= needed {
        assert!(
            curve.windows(2).all(|w| w[1] > w[0]),
            "cold jobs/s must strictly increase with shard count on a \
             {cores}-core host: {curve:?}"
        );
    } else {
        eprintln!(
            "note: only {cores} core(s) for up to {needed} shard workers; skipping \
             the strict scaling assertion (curve: {curve:?})"
        );
    }

    std::fs::write(&out_path, &out).expect("write benchmark results");
    eprintln!("wrote {out_path}");
}
