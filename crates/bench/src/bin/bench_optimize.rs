//! Head-to-head harness for the optimisation loops: from-scratch vs.
//! incremental vs. portfolio, plus multi-core batch scaling.
//!
//! Writes machine-readable results to `BENCH_optimize.json` so the perf
//! trajectory of the incremental rework is tracked from run to run.
//!
//! Usage: `bench_optimize [--smoke] [--out <path>] [--trace <path>]`
//!
//! `--smoke` restricts to the running example plus a tiny batch (seconds,
//! not minutes) — this is what `ci/check.sh` runs in release mode.
//!
//! `--trace` additionally re-runs the first fixture with observability on,
//! writing a JSONL event stream to the given path, and cross-checks the
//! stream against the run's own statistics: the probe spans, conflict
//! totals and portfolio winner in the trace must agree with the figures
//! that go into the benchmark JSON. The timed runs stay untraced, so the
//! recorded wall times are unaffected. Because every event is flushed as
//! it is written, a crashed or diverging run still leaves the trace behind
//! as a replayable artifact.

use std::fmt::Write as _;
use std::time::Instant;

use etcs_core::{
    optimize, optimize_all_obs, optimize_all_with_threads, optimize_incremental, optimize_obs,
    optimize_portfolio, optimize_portfolio_obs, DesignOutcome, EncoderConfig, OptimizeMode,
    TaskReport,
};
use etcs_network::{fixtures, parse_scenario, Scenario};
use etcs_obs::{json, Obs};

/// One optimisation run, flattened for JSON.
struct RunResult {
    wall_ms: f64,
    solver_calls: usize,
    conflicts: u64,
    solve_calls: u64,
    reused_learnts: u64,
    reuse_rate: f64,
    deadline_steps: Option<u64>,
    borders: Option<u64>,
}

fn flatten(outcome: &DesignOutcome, report: &TaskReport, wall_ms: f64) -> RunResult {
    let (deadline_steps, borders) = match outcome {
        DesignOutcome::Solved { costs, .. } => (costs.first().copied(), costs.get(1).copied()),
        DesignOutcome::Infeasible => (None, None),
    };
    RunResult {
        wall_ms,
        solver_calls: report.solver_calls,
        conflicts: report.search.conflicts,
        solve_calls: report.search.solve_calls,
        reused_learnts: report.search.reused_learnts,
        reuse_rate: report.search.learnt_reuse_rate(),
        deadline_steps,
        borders,
    }
}

fn run(
    scenario: &Scenario,
    config: &EncoderConfig,
    f: impl Fn(&Scenario, &EncoderConfig) -> (DesignOutcome, TaskReport),
) -> RunResult {
    let start = Instant::now();
    let (outcome, report) = f(scenario, config);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    flatten(&outcome, &report, wall_ms)
}

fn json_run(out: &mut String, key: &str, r: &RunResult) {
    let opt = |v: Option<u64>| v.map_or("null".to_owned(), |x| x.to_string());
    let _ = write!(
        out,
        "      \"{key}\": {{\"wall_ms\": {:.2}, \"solver_calls\": {}, \"conflicts\": {}, \
         \"solve_calls\": {}, \"reused_learnts\": {}, \"reuse_rate\": {:.4}, \
         \"deadline_steps\": {}, \"borders\": {}}}",
        r.wall_ms,
        r.solver_calls,
        r.conflicts,
        r.solve_calls,
        r.reused_learnts,
        r.reuse_rate,
        opt(r.deadline_steps),
        opt(r.borders),
    );
}

/// Runs the first fixture with tracing on, writes the JSONL stream to
/// `path`, and cross-checks it against the traced run's own statistics
/// (and against the untraced benchmark row in `baseline`). Panics — and
/// leaves the trace on disk — on any disagreement.
fn traced_cross_check(
    scenario: &Scenario,
    config: &EncoderConfig,
    path: &str,
    baseline: &RunResult,
) {
    let obs = Obs::jsonl(path).expect("create trace file");
    let (outcome, report) = optimize_obs(scenario, config, &obs).expect("well-formed");
    let (p_outcome, _) = optimize_portfolio_obs(scenario, config, &obs).expect("well-formed");
    let batch = optimize_all_obs(
        std::slice::from_ref(scenario),
        config,
        OptimizeMode::Incremental,
        1,
        &obs,
    );
    obs.flush_metrics();
    obs.flush();

    let traced = flatten(&outcome, &report, 0.0);
    assert_eq!(
        (traced.deadline_steps, traced.borders),
        (baseline.deadline_steps, baseline.borders),
        "traced optimize diverged from the benchmarked run on {}",
        scenario.name
    );
    let p_traced = flatten(&p_outcome, &report, 0.0);
    assert_eq!(
        (p_traced.deadline_steps, p_traced.borders),
        (baseline.deadline_steps, baseline.borders),
        "traced portfolio diverged on {}",
        scenario.name
    );
    let (b_outcome, _) = batch[0].as_ref().expect("well-formed");
    assert_eq!(
        flatten(b_outcome, &report, 0.0).deadline_steps,
        baseline.deadline_steps,
        "traced batch diverged on {}",
        scenario.name
    );

    // Consume the sink: every line must parse, and the stream must tell
    // the same story as the Stats that went into the benchmark JSON.
    let text = std::fs::read_to_string(path).expect("trace readable");
    let events: Vec<json::Json> = text
        .lines()
        .map(|line| json::parse(line).expect("every trace line is valid JSON"))
        .collect();
    let str_of = |e: &json::Json, key: &str| {
        e.get(key)
            .and_then(json::Json::as_str)
            .map(str::to_owned)
            .unwrap_or_default()
    };
    let field_of = |e: &json::Json, key: &str| {
        e.get("fields")
            .and_then(|f| f.get(key))
            .and_then(json::Json::as_f64)
    };

    let task_close = events
        .iter()
        .find(|e| str_of(e, "name") == "task.optimize" && str_of(e, "kind") == "span_close")
        .expect("trace contains the task.optimize close");
    let task_id = task_close.get("span").and_then(json::Json::as_f64);
    let probe_closes = events
        .iter()
        .filter(|e| {
            str_of(e, "name") == "probe"
                && str_of(e, "kind") == "span_close"
                && e.get("parent").and_then(json::Json::as_f64) == task_id
        })
        .count() as f64;
    assert_eq!(
        field_of(task_close, "probes"),
        Some(probe_closes),
        "probe span count disagrees with the task's probe figure"
    );
    assert_eq!(
        field_of(task_close, "conflicts"),
        Some(report.search.conflicts as f64),
        "trace conflict total disagrees with Stats.conflicts"
    );

    let winner = events
        .iter()
        .find(|e| str_of(e, "name") == "portfolio.outcome")
        .expect("trace contains the portfolio outcome");
    let strategy = winner
        .get("fields")
        .and_then(|f| f.get("strategy"))
        .and_then(json::Json::as_str)
        .unwrap_or_default()
        .to_owned();
    assert!(
        strategy == "walk_up" || strategy == "binary",
        "unknown portfolio winner {strategy:?}"
    );
    if let Some(deadline_steps) = baseline.deadline_steps {
        assert_eq!(
            field_of(winner, "deadline"),
            Some((deadline_steps - 1) as f64),
            "portfolio winner's deadline disagrees with the benchmark row"
        );
    }
    eprintln!(
        "   trace: {} events, winner {strategy}, probes {probe_closes} -> {path}",
        events.len()
    );
}

fn branch_line() -> Scenario {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scenarios/branch_line.rail"
    );
    let text = std::fs::read_to_string(path).expect("branch_line.rail ships with the repo");
    parse_scenario(&text).expect("sample scenario parses")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_optimize.json".to_owned());
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let config = EncoderConfig::default();

    // Head-to-head fixtures. The convoy fixture is the multi-probe
    // showcase (its optimum sits strictly above the completion lower
    // bound); the paper case studies all accept an early probe. The
    // equivalence test covers Nordlandsbanen, the tracked bench stays
    // fast.
    let head_to_head: Vec<Scenario> = if smoke {
        vec![fixtures::running_example(), fixtures::convoy()]
    } else {
        vec![
            fixtures::running_example(),
            fixtures::simple_layout(),
            fixtures::complex_layout(),
            branch_line(),
            fixtures::convoy(),
        ]
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"optimize\",");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(out, "  \"cores\": {cores},");
    let _ = writeln!(out, "  \"fixtures\": [");
    for (i, scenario) in head_to_head.iter().enumerate() {
        eprintln!("== {} ==", scenario.name);
        let scratch = run(scenario, &config, |s, c| {
            optimize(s, c).expect("well-formed")
        });
        let incremental = run(scenario, &config, |s, c| {
            optimize_incremental(s, c).expect("well-formed")
        });
        let portfolio = run(scenario, &config, |s, c| {
            optimize_portfolio(s, c).expect("well-formed")
        });
        assert_eq!(
            (scratch.deadline_steps, scratch.borders),
            (incremental.deadline_steps, incremental.borders),
            "incremental diverged from scratch on {}",
            scenario.name
        );
        assert_eq!(
            (scratch.deadline_steps, scratch.borders),
            (portfolio.deadline_steps, portfolio.borders),
            "portfolio diverged from scratch on {}",
            scenario.name
        );
        let speedup = scratch.wall_ms / incremental.wall_ms.max(1e-9);
        eprintln!(
            "   scratch {:.1} ms | incremental {:.1} ms ({speedup:.2}x) | portfolio {:.1} ms",
            scratch.wall_ms, incremental.wall_ms, portfolio.wall_ms
        );
        if i == 0 {
            if let Some(path) = &trace_path {
                traced_cross_check(scenario, &config, path, &scratch);
            }
        }
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", scenario.name);
        json_run(&mut out, "scratch", &scratch);
        out.push_str(",\n");
        json_run(&mut out, "incremental", &incremental);
        out.push_str(",\n");
        json_run(&mut out, "portfolio", &portfolio);
        out.push_str(",\n");
        let _ = writeln!(
            out,
            "      \"speedup_incremental_vs_scratch\": {speedup:.2}"
        );
        let _ = write!(out, "    }}");
        out.push_str(if i + 1 < head_to_head.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let _ = writeln!(out, "  ],");

    // Batch scaling: the same scenario set solved with 1 worker vs. one
    // worker per core (incremental loop per scenario).
    let batch: Vec<Scenario> = if smoke {
        vec![fixtures::running_example(), fixtures::simple_layout()]
    } else {
        vec![
            fixtures::running_example(),
            fixtures::simple_layout(),
            fixtures::complex_layout(),
            branch_line(),
            fixtures::convoy(),
        ]
    };
    let threads_n = cores.min(batch.len()).max(2);
    eprintln!(
        "== batch: {} scenarios, 1 vs {threads_n} threads ==",
        batch.len()
    );
    let t1 = Instant::now();
    let serial = optimize_all_with_threads(&batch, &config, OptimizeMode::Incremental, 1);
    let wall_1 = t1.elapsed().as_secs_f64() * 1e3;
    let tn = Instant::now();
    let parallel = optimize_all_with_threads(&batch, &config, OptimizeMode::Incremental, threads_n);
    let wall_n = tn.elapsed().as_secs_f64() * 1e3;
    for (a, b) in serial.iter().zip(&parallel) {
        let a = a.as_ref().expect("well-formed");
        let b = b.as_ref().expect("well-formed");
        let cost = |o: &DesignOutcome| match o {
            DesignOutcome::Solved { costs, .. } => Some(costs.clone()),
            DesignOutcome::Infeasible => None,
        };
        assert_eq!(cost(&a.0), cost(&b.0), "thread count changed a result");
    }
    let speedup = wall_1 / wall_n.max(1e-9);
    eprintln!("   1 thread {wall_1:.1} ms | {threads_n} threads {wall_n:.1} ms ({speedup:.2}x)");
    let _ = writeln!(out, "  \"batch\": {{");
    let names: Vec<String> = batch.iter().map(|s| format!("\"{}\"", s.name)).collect();
    let _ = writeln!(out, "    \"scenarios\": [{}],", names.join(", "));
    let _ = writeln!(out, "    \"loop\": \"incremental\",");
    let _ = writeln!(out, "    \"threads_1_wall_ms\": {wall_1:.2},");
    let _ = writeln!(out, "    \"threads_n\": {threads_n},");
    let _ = writeln!(out, "    \"threads_n_wall_ms\": {wall_n:.2},");
    let _ = writeln!(out, "    \"speedup\": {speedup:.2}");
    let _ = writeln!(out, "  }}");
    out.push_str("}\n");

    std::fs::write(&out_path, &out).expect("write benchmark results");
    eprintln!("wrote {out_path}");
}
