//! `fleetd` — the fleet frontend over `served --listen` shards.
//!
//! Reads one JSON job request per line (the exact `served` line format,
//! from `--input FILE` or stdin), routes each job to a shard by its
//! canonical cache fingerprint, and writes one response per line (to
//! `--output FILE` or stdout) in input order — byte-identical to what a
//! single-process `served` would have produced for the same outcomes.
//!
//! ```text
//! fleetd --shard 127.0.0.1:47411 --shard 127.0.0.1:47412 \
//!        --input jobs.jsonl --output out.jsonl --replicas 1 \
//!        --check-histories --shutdown-shards
//! ```
//!
//! * `--shard ADDR` (repeatable) or `--shards A,B,…` — the shard set.
//! * `--replicas N` — copies of each completed cold solve pushed to the
//!   next-ranked shards (default 1).
//! * `--streams N` — concurrent connections per shard (default 2).
//! * `--lazy` / `--portfolio N` / `--preprocess` — the same job defaults
//!   as `served`, applied when computing routing fingerprints; start the
//!   shards with the same flags so their keys agree (routing stays
//!   correct either way — the shard's own key is authoritative).
//! * `--check-histories` — after the batch (or standalone, with no
//!   `--input` on a tty-less stdin use `--no-jobs`), fetch every shard's
//!   recorded cache history and run the dbcop-style consistency checker;
//!   a violation fails the process.
//! * `--shutdown-shards` — drain and stop the shards on the way out.
//!
//! On exit, one machine-readable summary on stderr:
//!
//! ```json
//! {"record": "fleet_stats", "jobs": 51, "done": 51, "errors": 0,
//!  "cache_hits": 40, "shards_alive": 2}
//! ```

use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::time::Duration;

use etcs_fleet::wire::parse_request_line;
use etcs_fleet::{consistency, Fleet, FleetConfig, FleetJob};
use etcs_obs::json;
use etcs_obs::Obs;

struct Args {
    shards: Vec<String>,
    input: Option<String>,
    output: Option<String>,
    trace: Option<String>,
    replicas: usize,
    streams: usize,
    lazy: bool,
    preprocess: bool,
    portfolio: Option<usize>,
    check_histories: bool,
    shutdown_shards: bool,
    no_jobs: bool,
}

const USAGE: &str = "usage: fleetd --shard ADDR [--shard ADDR …] [--shards A,B,…] \
[--input FILE] [--output FILE] [--trace FILE] [--replicas N] [--streams N] \
[--lazy] [--preprocess] [--portfolio N] [--check-histories] [--shutdown-shards] [--no-jobs]\n\
Routes served-format JSONL jobs across a fleet of `served --listen` shards\n\
by canonical cache fingerprint (rendezvous hashing), replicates completed\n\
cache entries, survives shard loss, and can audit the fleet's recorded\n\
cache histories with a dbcop-style consistency check.\n\
--no-jobs skips reading a batch entirely (for standalone --check-histories\n\
or --shutdown-shards runs).";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        shards: Vec::new(),
        input: None,
        output: None,
        trace: None,
        replicas: 1,
        streams: 2,
        lazy: false,
        preprocess: false,
        portfolio: None,
        check_histories: false,
        shutdown_shards: false,
        no_jobs: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--shard" => args.shards.push(value("--shard")?),
            "--shards" => args.shards.extend(
                value("--shards")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_owned),
            ),
            "--input" => args.input = Some(value("--input")?),
            "--output" => args.output = Some(value("--output")?),
            "--trace" => args.trace = Some(value("--trace")?),
            "--replicas" => {
                args.replicas = value("--replicas")?
                    .parse()
                    .map_err(|_| "--replicas must be an integer".to_string())?
            }
            "--streams" => {
                args.streams = value("--streams")?
                    .parse()
                    .map_err(|_| "--streams must be a positive integer".to_string())?
            }
            "--lazy" => args.lazy = true,
            "--preprocess" => args.preprocess = true,
            "--portfolio" => {
                let n: usize = value("--portfolio")?
                    .parse()
                    .map_err(|_| "--portfolio must be a positive integer".to_string())?;
                if n < 2 {
                    return Err("--portfolio needs at least 2 workers".to_string());
                }
                args.portfolio = Some(n);
            }
            "--check-histories" => args.check_histories = true,
            "--shutdown-shards" => args.shutdown_shards = true,
            "--no-jobs" => args.no_jobs = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if args.shards.is_empty() {
        return Err(format!("at least one --shard is required\n{USAGE}"));
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let obs = match &args.trace {
        Some(path) => match Obs::jsonl(path) {
            Ok(obs) => obs,
            Err(e) => {
                eprintln!("cannot open trace file {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Obs::disabled(),
    };

    let fleet = match Fleet::connect(
        FleetConfig {
            shards: args.shards.clone(),
            replicas: args.replicas,
            streams: args.streams,
            ..FleetConfig::default()
        },
        obs.clone(),
    ) {
        Ok(fleet) => fleet,
        Err(e) => {
            eprintln!("fleetd: {e}");
            return ExitCode::FAILURE;
        }
    };

    let encoder = etcs_core::EncoderConfig {
        preprocess: args.preprocess,
        ..etcs_core::EncoderConfig::default()
    };

    let mut failed = false;
    let mut jobs_total = 0usize;
    let mut jobs_done = 0usize;
    let mut jobs_errored = 0usize;
    let mut cache_hits = 0usize;

    if !args.no_jobs {
        let input: Box<dyn BufRead> = match &args.input {
            Some(path) => match std::fs::File::open(path) {
                Ok(file) => Box::new(std::io::BufReader::new(file)),
                Err(e) => {
                    eprintln!("cannot open input file {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => Box::new(std::io::BufReader::new(std::io::stdin())),
        };

        // Parse and fingerprint every line up front; malformed lines are
        // answered locally (same text a single-process `served` emits)
        // and never reach a shard.
        let mut lines: Vec<Option<String>> = Vec::new(); // slot per input line
        let mut jobs: Vec<FleetJob> = Vec::new();
        for (i, line) in input.lines().enumerate() {
            let lineno = i + 1;
            let line = match line {
                Ok(line) => line,
                Err(e) => {
                    eprintln!("read error on line {lineno}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            let index = lines.len();
            match parse_request_line(&line, &format!("line {lineno}"), args.lazy, args.portfolio) {
                Ok(request) => {
                    let key = request.cache_key(&encoder);
                    lines.push(None);
                    jobs.push(FleetJob {
                        index,
                        id: request.id,
                        spec: line,
                        key,
                    });
                }
                Err(message) => {
                    failed = true;
                    lines.push(Some(format!(
                        "{{\"id\": \"line-{lineno}\", \"status\": \"invalid\", \"reason\": {}}}",
                        json::quote(&message)
                    )));
                }
            }
        }
        jobs_total = lines.len();

        let mut output: Box<dyn Write> = match &args.output {
            Some(path) => match std::fs::File::create(path) {
                Ok(file) => Box::new(std::io::BufWriter::new(file)),
                Err(e) => {
                    eprintln!("cannot create output file {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => Box::new(std::io::BufWriter::new(std::io::stdout())),
        };

        // Ordered incremental output: emit the contiguous prefix of
        // finished slots as results land, in input order.
        let mut next = 0usize;
        let mut write_failed = false;
        {
            let mut flush_ready = |lines: &mut Vec<Option<String>>| {
                while next < lines.len() {
                    let Some(line) = lines[next].take() else {
                        break;
                    };
                    if writeln!(output, "{line}").is_err() {
                        write_failed = true;
                    }
                    next += 1;
                }
            };
            flush_ready(&mut lines);
            let results = fleet.run_batch(jobs, |result| {
                lines[result.index] = Some(result.line.clone());
                if result.failed {
                    failed = true;
                }
                match result.status.as_str() {
                    "done" => jobs_done += 1,
                    "error" => jobs_errored += 1,
                    _ => {}
                }
                if result.cache_hit {
                    cache_hits += 1;
                }
                flush_ready(&mut lines);
            });
            if results.len() + lines.iter().filter(|l| l.is_some()).count() < jobs_total {
                // Defensive: run_batch promises one result per job.
                failed = true;
            }
            flush_ready(&mut lines);
        }
        if output.flush().is_err() || write_failed {
            eprintln!("write error on output");
            return ExitCode::FAILURE;
        }
    }

    if args.check_histories {
        // Settle: replication `put`s race the end of the batch only in
        // theory (they complete before the job's result is sent), but the
        // fetch must see a quiescent fleet.
        std::thread::sleep(Duration::from_millis(50));
        match fleet.fetch_histories() {
            Ok(histories) => match consistency::check(&histories) {
                Ok(report) => {
                    eprintln!(
                        "{{\"record\": \"consistency\", \"verdict\": \"ok\", \"shards\": {}, \
                         \"events\": {}, \"keys\": {}, \"puts\": {}, \"hits\": {}, \
                         \"replicated_keys\": {}}}",
                        report.shards,
                        report.events,
                        report.keys,
                        report.puts,
                        report.hits,
                        report.replicated_keys
                    );
                }
                Err(violation) => {
                    failed = true;
                    eprintln!(
                        "{{\"record\": \"consistency\", \"verdict\": \"violation\", \
                         \"detail\": {}}}",
                        json::quote(&violation.to_string())
                    );
                }
            },
            Err(e) => {
                failed = true;
                eprintln!("fleetd: cannot fetch histories: {e}");
            }
        }
    }

    if args.shutdown_shards {
        fleet.shutdown_shards();
    }

    obs.flush_metrics();
    obs.flush();
    eprintln!(
        "{{\"record\": \"fleet_stats\", \"jobs\": {jobs_total}, \"done\": {jobs_done}, \
         \"errors\": {jobs_errored}, \"cache_hits\": {cache_hits}, \"shards_alive\": {}}}",
        fleet.alive_addrs().len()
    );

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
