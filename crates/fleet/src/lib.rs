//! # etcs-fleet — shard-aware distributed serve fleet
//!
//! The next scale step after `etcs-serve`'s single-process worker pool:
//! several `served --listen ADDR` shards behind a routing frontend, tied
//! together by three pieces:
//!
//! * a **versioned wire protocol** ([`etcs_serve::wire`], re-exported
//!   here): dependency-free JSONL over TCP with an explicit `hello`
//!   handshake carrying both the protocol version and the
//!   [`etcs_core::CACHE_KEY_VERSION`] — two processes only exchange jobs
//!   and cache entries when both agree;
//! * a **frontend** ([`Fleet`], and the `fleetd` binary): rendezvous
//!   hashing of each job's canonical [`etcs_core::cache_key`] fingerprint
//!   onto shards, replication of completed cache entries to the
//!   next-ranked shards, and crash failover that re-dispatches in-flight
//!   jobs onto survivors — never silently dropping one;
//! * a **consistency checker** ([`consistency`]): every shard records its
//!   cache put/hit history, and the checker (a library harness and
//!   `fleetd --check-histories`) verifies, dbcop-style, that no
//!   fingerprint ever maps to two distinct result digests anywhere in the
//!   fleet and no hit precedes its put.
//!
//! Because results are deterministic and content-addressed, the fleet's
//! correctness statement is sharp: a batch run through `fleetd` produces
//! **bit-identical** verdict digests to a single-process `served` run —
//! including runs where a shard is killed mid-batch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod consistency;
mod fleet;
pub mod hash;

pub use consistency::{check, ConsistencyReport, ConsistencyViolation};
pub use fleet::{Fleet, FleetConfig, FleetError, FleetJob, FleetResult};

// The wire protocol lives in `etcs-serve` (the shard side needs it too);
// re-export it so fleet users have a single crate to depend on.
pub use etcs_serve::wire;
pub use etcs_serve::{HistoryEvent, HistoryOp, ShardHistory};
