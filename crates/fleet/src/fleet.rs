//! The fleet frontend: rendezvous-hashed job routing over a set of
//! `served --listen` shards, with cache replication and crash failover.
//!
//! Every job is routed by its canonical [`etcs_core::cache_key`]
//! fingerprint: [`crate::hash::ranked`] orders the shards per key, the
//! first *alive* shard is the key's home, and the next-ranked shards are
//! its replicas. A completed cold solve is replicated (full payload, over
//! the wire codec) to [`FleetConfig::replicas`] further shards, so the
//! next frontend — or the same one after its home shard dies — finds the
//! entry warm.
//!
//! Failover: any wire error on a shard marks it dead (`fleet.shard_lost`),
//! drains its queued jobs and re-dispatches them — and the in-flight job
//! that observed the error — onto the surviving shards in rendezvous order
//! with linear backoff (`fleet.retry`). A job is never silently dropped:
//! it either completes on some shard or terminates with an explicit
//! `error` result after [`FleetConfig::max_attempts`] attempts (or when no
//! shard is left alive).
//!
//! Observability vocabulary: `fleet.forward` / `fleet.replicate` /
//! `fleet.retry` / `fleet.shard_lost` events, and the counters
//! `fleet.forwarded`, `fleet.replicated`, `fleet.retries`,
//! `fleet.shards_lost` plus a per-shard `fleet.shard.<addr>.forwarded`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use etcs_obs::Obs;
use etcs_serve::wire::{JobDone, ShardClient, WireError};
use etcs_serve::ShardHistory;

use crate::hash;

/// Tunables for a [`Fleet`].
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Shard addresses (`host:port`). Order is irrelevant to routing —
    /// rendezvous weights depend only on the address strings.
    pub shards: Vec<String>,
    /// How many *additional* shards receive a copy of each completed cold
    /// solve (0 disables replication).
    pub replicas: usize,
    /// Concurrent connections per shard (each is an independent
    /// request/response stream, so this bounds per-shard parallelism).
    pub streams: usize,
    /// Base of the linear retry backoff: attempt `n` sleeps `n × retry_base`.
    pub retry_base: Duration,
    /// Attempts before a job terminates with an `error` result.
    pub max_attempts: usize,
    /// Connection attempts per shard at startup (shards may still be
    /// binding when the frontend starts).
    pub connect_retries: usize,
    /// Delay between startup connection attempts.
    pub connect_delay: Duration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: Vec::new(),
            replicas: 1,
            streams: 2,
            retry_base: Duration::from_millis(50),
            max_attempts: 8,
            connect_retries: 40,
            connect_delay: Duration::from_millis(250),
        }
    }
}

/// Why the fleet could not be assembled or queried.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FleetError {
    /// Every configured shard is unreachable (or none were configured).
    NoShardsAlive,
    /// A wire-level failure outside the per-job retry machinery.
    Wire(WireError),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::NoShardsAlive => write!(f, "no shards alive"),
            FleetError::Wire(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<WireError> for FleetError {
    fn from(e: WireError) -> Self {
        FleetError::Wire(e)
    }
}

/// One job for [`Fleet::run_batch`], already parsed and fingerprinted by
/// the caller (invalid request lines never reach the fleet — the frontend
/// answers them locally, exactly like single-process `served`).
#[derive(Clone, Debug)]
pub struct FleetJob {
    /// Position in the caller's batch (echoed on the result).
    pub index: usize,
    /// The request id (for events and error results).
    pub id: String,
    /// The verbatim `served`-format request line.
    pub spec: String,
    /// The canonical routing fingerprint ([`etcs_core::cache_key`]).
    pub key: u128,
}

/// Terminal result of one fleet job.
#[derive(Clone, Debug)]
pub struct FleetResult {
    /// The job's batch position.
    pub index: usize,
    /// Terminal status (`done`, `invalid`, …, or the fleet-level `error`).
    pub status: String,
    /// Whether some shard answered from its cache.
    pub cache_hit: bool,
    /// The shard that answered (`None` for fleet-level errors).
    pub shard: Option<String>,
    /// The response line to emit — byte-identical to what a
    /// single-process `served` would have written for this outcome.
    pub line: String,
    /// Whether this result counts as a failure for the exit code.
    pub failed: bool,
}

struct Task {
    index: usize,
    id: String,
    spec: String,
    key: u128,
    attempts: usize,
}

struct ShardState {
    addr: String,
    alive: AtomicBool,
    queue: Mutex<VecDeque<Task>>,
    cv: Condvar,
    /// Leaked once per shard at startup: `Obs` counter names are
    /// `&'static str`, and the set of shards is fixed and small.
    forwarded_counter: &'static str,
}

/// A connected fleet frontend.
pub struct Fleet {
    shards: Vec<ShardState>,
    config: FleetConfig,
    obs: Obs,
    done: AtomicBool,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("shards", &self.config.shards)
            .field("alive", &self.alive_addrs())
            .finish()
    }
}

impl Fleet {
    /// Probes every configured shard (with startup retries — shards may
    /// still be binding) and assembles the fleet. Unreachable shards are
    /// marked dead (`fleet.shard_lost`), not fatal; at least one shard
    /// must answer.
    ///
    /// # Errors
    ///
    /// [`FleetError::NoShardsAlive`] when no shard answered its handshake.
    pub fn connect(config: FleetConfig, obs: Obs) -> Result<Fleet, FleetError> {
        let mut shards = Vec::with_capacity(config.shards.len());
        for addr in &config.shards {
            let mut alive = false;
            for attempt in 0..config.connect_retries.max(1) {
                match ShardClient::connect(addr) {
                    Ok(_probe) => {
                        alive = true;
                        break;
                    }
                    Err(WireError::VersionMismatch { .. } | WireError::Handshake { .. }) => {
                        // A reachable shard we must not talk to: retrying
                        // cannot help, and silently skipping it would mask
                        // a deployment error.
                        break;
                    }
                    Err(_) if attempt + 1 < config.connect_retries.max(1) => {
                        std::thread::sleep(config.connect_delay);
                    }
                    Err(_) => {}
                }
            }
            shards.push(ShardState {
                addr: addr.clone(),
                alive: AtomicBool::new(alive),
                queue: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
                forwarded_counter: Box::leak(
                    format!("fleet.shard.{addr}.forwarded").into_boxed_str(),
                ),
            });
        }
        let fleet = Fleet {
            shards,
            config,
            obs,
            done: AtomicBool::new(false),
        };
        for shard in &fleet.shards {
            if !shard.alive.load(Ordering::SeqCst) {
                fleet.note_shard_lost(shard, "unreachable at startup");
            }
        }
        if fleet.alive_addrs().is_empty() {
            return Err(FleetError::NoShardsAlive);
        }
        Ok(fleet)
    }

    /// Addresses of the shards currently considered alive.
    pub fn alive_addrs(&self) -> Vec<String> {
        self.shards
            .iter()
            .filter(|s| s.alive.load(Ordering::SeqCst))
            .map(|s| s.addr.clone())
            .collect()
    }

    fn addrs(&self) -> Vec<String> {
        self.shards.iter().map(|s| s.addr.clone()).collect()
    }

    fn note_shard_lost(&self, shard: &ShardState, reason: &str) {
        self.obs.event(
            "fleet.shard_lost",
            &[
                ("shard", shard.addr.clone().into()),
                ("reason", reason.to_string().into()),
            ],
        );
        self.obs.counter_add("fleet.shards_lost", 1);
    }

    /// Marks a shard dead and re-dispatches everything queued on it.
    /// Idempotent: only the transition from alive emits the event.
    fn lose_shard(&self, index: usize, reason: &str, results: &mpsc::Sender<FleetResult>) {
        let shard = &self.shards[index];
        if shard.alive.swap(false, Ordering::SeqCst) {
            self.note_shard_lost(shard, reason);
        }
        let orphans: Vec<Task> = {
            let mut queue = shard.queue.lock().expect("shard queue");
            queue.drain(..).collect()
        };
        for task in orphans {
            self.redispatch(task, results);
        }
    }

    /// Routes a task to the best alive shard in its rendezvous order, or
    /// terminates it with an explicit error result. Never drops a task.
    fn redispatch(&self, task: Task, results: &mpsc::Sender<FleetResult>) {
        if task.attempts >= self.config.max_attempts {
            self.finish_error(
                task,
                &format!("gave up after {} attempts", self.config.max_attempts),
                results,
            );
            return;
        }
        let addrs = self.addrs();
        let target = hash::ranked(task.key, &addrs)
            .into_iter()
            .find(|&i| self.shards[i].alive.load(Ordering::SeqCst));
        match target {
            None => self.finish_error(task, "no shards alive", results),
            Some(i) => {
                let shard = &self.shards[i];
                self.obs.event(
                    "fleet.forward",
                    &[
                        ("job", task.id.clone().into()),
                        ("shard", shard.addr.clone().into()),
                        ("key", format!("{:032x}", task.key).into()),
                        ("attempt", (task.attempts as u64).into()),
                    ],
                );
                self.obs.counter_add("fleet.forwarded", 1);
                self.obs.counter_add(shard.forwarded_counter, 1);
                shard.queue.lock().expect("shard queue").push_back(task);
                shard.cv.notify_one();
            }
        }
    }

    fn finish_error(&self, task: Task, reason: &str, results: &mpsc::Sender<FleetResult>) {
        let line = format!(
            "{{\"id\": {}, \"status\": \"error\", \"reason\": {}}}",
            etcs_obs::json::quote(&task.id),
            etcs_obs::json::quote(reason)
        );
        let _ = results.send(FleetResult {
            index: task.index,
            status: "error".into(),
            cache_hit: false,
            shard: None,
            line,
            failed: true,
        });
    }

    /// Blocking pop from one shard's queue; `None` once the batch is done.
    fn pop(&self, shard: &ShardState) -> Option<Task> {
        let mut queue = shard.queue.lock().expect("shard queue");
        loop {
            if let Some(task) = queue.pop_front() {
                return Some(task);
            }
            if self.done.load(Ordering::SeqCst) {
                return None;
            }
            // Timed wait: robust against wakeups racing the done flag.
            let (guard, _) = shard
                .cv
                .wait_timeout(queue, Duration::from_millis(20))
                .expect("shard queue");
            queue = guard;
        }
    }

    /// Replicates a completed cold solve to the next-ranked alive shards.
    fn replicate(&self, done: &JobDone, executed_on: usize) {
        let Some(key) = done.key else { return };
        let Some(payload) = &done.payload else { return };
        if self.config.replicas == 0 {
            return;
        }
        let addrs = self.addrs();
        let targets: Vec<usize> = hash::ranked(key, &addrs)
            .into_iter()
            .filter(|&i| i != executed_on && self.shards[i].alive.load(Ordering::SeqCst))
            .take(self.config.replicas)
            .collect();
        for i in targets {
            let shard = &self.shards[i];
            let outcome =
                ShardClient::connect(&shard.addr).and_then(|mut client| client.put(key, payload));
            match outcome {
                Ok(digest) if digest == payload.digest() => {
                    self.obs.event(
                        "fleet.replicate",
                        &[
                            ("key", format!("{key:032x}").into()),
                            ("from", self.shards[executed_on].addr.clone().into()),
                            ("to", shard.addr.clone().into()),
                        ],
                    );
                    self.obs.counter_add("fleet.replicated", 1);
                }
                Ok(digest) => {
                    // The replica decoded a different payload than we sent:
                    // surface loudly; the history checker will catch any
                    // fork this could cause.
                    self.obs.event(
                        "fleet.replicate_mismatch",
                        &[
                            ("key", format!("{key:032x}").into()),
                            ("to", shard.addr.clone().into()),
                            ("digest", format!("{digest:032x}").into()),
                        ],
                    );
                }
                Err(_) => {
                    // Replication is best-effort: a dead replica target
                    // is noted but never fails the job.
                    self.obs.event(
                        "fleet.replicate_failed",
                        &[
                            ("key", format!("{key:032x}").into()),
                            ("to", shard.addr.clone().into()),
                        ],
                    );
                }
            }
        }
    }

    /// One shard stream: a dedicated connection working that shard's queue.
    fn stream_loop(&self, shard_index: usize, results: &mpsc::Sender<FleetResult>) {
        let shard = &self.shards[shard_index];
        let mut client: Option<ShardClient> = None;
        while let Some(mut task) = self.pop(shard) {
            if !shard.alive.load(Ordering::SeqCst) {
                self.redispatch(task, results);
                continue;
            }
            if client.is_none() {
                match ShardClient::connect(&shard.addr) {
                    Ok(c) => client = Some(c),
                    Err(e) => {
                        self.lose_shard(shard_index, &e.to_string(), results);
                        task.attempts += 1;
                        self.retry(task, results);
                        continue;
                    }
                }
            }
            let connected = client.as_mut().expect("connected above");
            match connected.job(&task.spec) {
                Ok(done) => {
                    let shard_name = connected.shard().to_owned();
                    if done.status == "done" && !done.cache_hit {
                        self.replicate(&done, shard_index);
                    }
                    let _ = results.send(FleetResult {
                        index: task.index,
                        status: done.status.clone(),
                        cache_hit: done.cache_hit,
                        shard: Some(shard_name),
                        // Rejections are queue-local backpressure, not an
                        // answer — but the shard still answered, so emit
                        // its line verbatim either way.
                        failed: done.status != "done"
                            && done.status != "cancelled"
                            && done.status != "deadline_exceeded",
                        line: done.response,
                    });
                }
                Err(e) => {
                    // The connection (or the whole shard) died mid-job:
                    // the job was possibly half-executed over there, but
                    // results are deterministic and content-addressed, so
                    // re-running elsewhere is always safe.
                    client = None;
                    self.lose_shard(shard_index, &e.to_string(), results);
                    task.attempts += 1;
                    self.retry(task, results);
                }
            }
        }
    }

    fn retry(&self, task: Task, results: &mpsc::Sender<FleetResult>) {
        self.obs.event(
            "fleet.retry",
            &[
                ("job", task.id.clone().into()),
                ("attempt", (task.attempts as u64).into()),
            ],
        );
        self.obs.counter_add("fleet.retries", 1);
        // Linear backoff before the re-dispatch; run on this stream's
        // thread so the sleeping never blocks the main collector.
        std::thread::sleep(self.config.retry_base * task.attempts as u32);
        self.redispatch(task, results);
    }

    /// Runs a whole batch across the fleet and returns one result per job
    /// (in arbitrary order; use [`FleetResult::index`] to restore the
    /// caller's order). `on_result` observes each result as it lands —
    /// fleetd uses it for incremental ordered output.
    pub fn run_batch(
        &self,
        jobs: Vec<FleetJob>,
        mut on_result: impl FnMut(&FleetResult),
    ) -> Vec<FleetResult> {
        let expected = jobs.len();
        let (tx, rx) = mpsc::channel::<FleetResult>();
        self.done.store(false, Ordering::SeqCst);
        for job in jobs {
            self.redispatch(
                Task {
                    index: job.index,
                    id: job.id,
                    spec: job.spec,
                    key: job.key,
                    attempts: 0,
                },
                &tx,
            );
        }
        let mut collected = Vec::with_capacity(expected);
        std::thread::scope(|scope| {
            for shard_index in 0..self.shards.len() {
                for _ in 0..self.config.streams.max(1) {
                    let tx = tx.clone();
                    scope.spawn(move || self.stream_loop(shard_index, &tx));
                }
            }
            drop(tx);
            while collected.len() < expected {
                match rx.recv() {
                    Ok(result) => {
                        on_result(&result);
                        collected.push(result);
                    }
                    Err(_) => break, // every stream exited — can't happen before done
                }
            }
            self.done.store(true, Ordering::SeqCst);
            for shard in &self.shards {
                shard.cv.notify_all();
            }
        });
        collected
    }

    /// Fetches the recorded cache history of every alive shard.
    ///
    /// # Errors
    ///
    /// [`FleetError::NoShardsAlive`] if no shard is left, or the first
    /// wire failure while fetching.
    pub fn fetch_histories(&self) -> Result<Vec<ShardHistory>, FleetError> {
        let mut histories = Vec::new();
        for shard in &self.shards {
            if !shard.alive.load(Ordering::SeqCst) {
                continue;
            }
            let mut client = ShardClient::connect(&shard.addr)?;
            histories.push(client.histories()?);
        }
        if histories.is_empty() {
            return Err(FleetError::NoShardsAlive);
        }
        Ok(histories)
    }

    /// Sends `shutdown` to every alive shard (dead ones are skipped;
    /// errors on the way out are ignored — the shard is going away).
    pub fn shutdown_shards(&self) {
        for shard in &self.shards {
            if !shard.alive.load(Ordering::SeqCst) {
                continue;
            }
            if let Ok(mut client) = ShardClient::connect(&shard.addr) {
                let _ = client.shutdown();
            }
        }
    }
}
