//! The dbcop-style consistency checker over recorded shard histories.
//!
//! Each shard records an append-only, `seq`-ordered history of cache
//! events ([`etcs_serve::HistoryEvent`]): one **put** per payload stored
//! under its content-addressed fingerprint (by a local solve or a fleet
//! replication), one **hit** per payload served from the cache. The
//! checker consumes the histories of a whole fleet and verifies the two
//! invariants the replicated cache promises:
//!
//! 1. **Canonicality** — across *all* shards, a fingerprint is only ever
//!    bound to one result digest. Two different puts (or a put and a hit)
//!    for the same key with different digests mean the replicated cache
//!    forked: some client got a result another client would not have.
//! 2. **Freshness** — on each shard, every hit is preceded (in that
//!    shard's own recorded order, which is a linearisation of its cache's
//!    lock order) by a put of the same key, and serves exactly the digest
//!    that put bound. A hit with no prior local put is a *stale read*:
//!    the shard served a value it never visibly stored.
//!
//! Additionally the histories must all be recorded under the same
//! [`etcs_core::CACHE_KEY_VERSION`] — fingerprints from different key
//! versions are incomparable by design, so mixing them is itself a
//! violation — and each shard's `seq` numbers must be gap-free from 0
//! (a gap means events were lost, and a checker that passes on partial
//! evidence would be vacuous).
//!
//! Like dbcop, the checker is only credible because it can *fail*: the
//! test suite feeds it hand-built histories with an injected stale read
//! and an injected digest fork and asserts both are rejected.

use std::collections::HashMap;

use etcs_serve::{HistoryOp, ShardHistory};

/// A proven violation of the fleet's cache-consistency model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConsistencyViolation {
    /// One fingerprint was bound to two distinct result digests.
    DigestFork {
        /// The forked fingerprint.
        key: u128,
        /// First binding: (shard, digest).
        first: (String, u128),
        /// Conflicting binding: (shard, digest).
        second: (String, u128),
    },
    /// A shard served a hit for a key it never put first.
    StaleHit {
        /// The shard that served it.
        shard: String,
        /// Sequence number of the offending hit.
        seq: u64,
        /// The fingerprint that was never locally put.
        key: u128,
    },
    /// A hit served a different digest than the shard's own put bound.
    NonCanonicalHit {
        /// The shard that served it.
        shard: String,
        /// Sequence number of the offending hit.
        seq: u64,
        /// The fingerprint.
        key: u128,
        /// What the shard's put bound.
        put: u128,
        /// What the hit served.
        served: u128,
    },
    /// Histories recorded under different cache-key versions were mixed.
    VersionMismatch {
        /// (shard, version) of the first history.
        first: (String, String),
        /// (shard, version) of the disagreeing history.
        second: (String, String),
    },
    /// A shard's history has missing or out-of-order sequence numbers.
    SequenceGap {
        /// The shard with the broken history.
        shard: String,
        /// The expected next sequence number.
        expected: u64,
        /// The sequence number actually recorded.
        found: u64,
    },
}

impl std::fmt::Display for ConsistencyViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConsistencyViolation::DigestFork { key, first, second } => write!(
                f,
                "digest fork on key {key:032x}: {} bound {:032x}, {} bound {:032x}",
                first.0, first.1, second.0, second.1
            ),
            ConsistencyViolation::StaleHit { shard, seq, key } => write!(
                f,
                "stale hit on {shard} (seq {seq}): key {key:032x} was never put on that shard"
            ),
            ConsistencyViolation::NonCanonicalHit {
                shard,
                seq,
                key,
                put,
                served,
            } => write!(
                f,
                "non-canonical hit on {shard} (seq {seq}): key {key:032x} was put as \
                 {put:032x} but served as {served:032x}"
            ),
            ConsistencyViolation::VersionMismatch { first, second } => write!(
                f,
                "cache-key version mismatch: {} recorded under {:?}, {} under {:?}",
                first.0, first.1, second.0, second.1
            ),
            ConsistencyViolation::SequenceGap {
                shard,
                expected,
                found,
            } => write!(
                f,
                "sequence gap on {shard}: expected seq {expected}, found {found}"
            ),
        }
    }
}

impl std::error::Error for ConsistencyViolation {}

/// Summary of a passing check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConsistencyReport {
    /// Shards whose histories were checked.
    pub shards: usize,
    /// Total events across all histories.
    pub events: usize,
    /// Distinct fingerprints seen.
    pub keys: usize,
    /// Total puts.
    pub puts: usize,
    /// Total hits.
    pub hits: usize,
    /// Fingerprints put on more than one shard (i.e. actually replicated).
    pub replicated_keys: usize,
}

/// Checks a fleet's recorded histories against the consistency model.
///
/// Returns the first violation found (shards scanned in the given order,
/// each shard's events in `seq` order), or a [`ConsistencyReport`] when
/// every invariant holds.
///
/// # Errors
///
/// The first [`ConsistencyViolation`] encountered.
pub fn check(histories: &[ShardHistory]) -> Result<ConsistencyReport, ConsistencyViolation> {
    let mut report = ConsistencyReport {
        shards: histories.len(),
        ..ConsistencyReport::default()
    };
    if let Some(first) = histories.first() {
        for other in &histories[1..] {
            if other.version != first.version {
                return Err(ConsistencyViolation::VersionMismatch {
                    first: (first.shard.clone(), first.version.clone()),
                    second: (other.shard.clone(), other.version.clone()),
                });
            }
        }
    }
    // key → (first-binding shard, digest), across the whole fleet.
    let mut global: HashMap<u128, (String, u128)> = HashMap::new();
    // key → shard count, for the replication statistic.
    let mut put_shards: HashMap<u128, Vec<String>> = HashMap::new();
    for history in histories {
        // key → digest as bound on *this* shard (local visibility).
        let mut local: HashMap<u128, u128> = HashMap::new();
        for (expected_seq, event) in history.events.iter().enumerate() {
            if event.seq != expected_seq as u64 {
                return Err(ConsistencyViolation::SequenceGap {
                    shard: history.shard.clone(),
                    expected: expected_seq as u64,
                    found: event.seq,
                });
            }
            report.events += 1;
            match event.op {
                HistoryOp::Put => {
                    report.puts += 1;
                    // Canonicality is global: any two bindings of one key
                    // must agree, whichever shards recorded them.
                    match global.get(&event.key) {
                        Some((shard, digest)) if *digest != event.digest => {
                            return Err(ConsistencyViolation::DigestFork {
                                key: event.key,
                                first: (shard.clone(), *digest),
                                second: (history.shard.clone(), event.digest),
                            });
                        }
                        Some(_) => {}
                        None => {
                            global.insert(event.key, (history.shard.clone(), event.digest));
                        }
                    }
                    local.insert(event.key, event.digest);
                    let shards = put_shards.entry(event.key).or_default();
                    if !shards.contains(&history.shard) {
                        shards.push(history.shard.clone());
                    }
                }
                HistoryOp::Hit => {
                    report.hits += 1;
                    match local.get(&event.key) {
                        None => {
                            return Err(ConsistencyViolation::StaleHit {
                                shard: history.shard.clone(),
                                seq: event.seq,
                                key: event.key,
                            });
                        }
                        Some(put) if *put != event.digest => {
                            return Err(ConsistencyViolation::NonCanonicalHit {
                                shard: history.shard.clone(),
                                seq: event.seq,
                                key: event.key,
                                put: *put,
                                served: event.digest,
                            });
                        }
                        Some(_) => {}
                    }
                }
            }
        }
    }
    report.keys = put_shards.len();
    report.replicated_keys = put_shards.values().filter(|s| s.len() > 1).count();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use etcs_serve::HistoryEvent;

    fn shard(name: &str, events: Vec<(HistoryOp, u128, u128)>) -> ShardHistory {
        ShardHistory {
            shard: name.into(),
            version: etcs_core::CACHE_KEY_VERSION.into(),
            events: events
                .into_iter()
                .enumerate()
                .map(|(i, (op, key, digest))| HistoryEvent {
                    seq: i as u64,
                    op,
                    key,
                    digest,
                })
                .collect(),
        }
    }

    #[test]
    fn a_clean_replicated_run_passes() {
        use HistoryOp::{Hit, Put};
        let histories = [
            shard("a", vec![(Put, 1, 10), (Hit, 1, 10), (Put, 2, 20)]),
            shard("b", vec![(Put, 2, 20), (Hit, 2, 20), (Hit, 2, 20)]),
        ];
        let report = check(&histories).expect("consistent");
        assert_eq!(report.shards, 2);
        assert_eq!(report.puts, 3);
        assert_eq!(report.hits, 3);
        assert_eq!(report.keys, 2);
        assert_eq!(report.replicated_keys, 1, "key 2 lives on both shards");
    }

    #[test]
    fn version_mixing_is_rejected() {
        let mut histories = vec![shard("a", vec![]), shard("b", vec![])];
        histories[1].version = "etcs-cache-key-v2".into();
        assert!(matches!(
            check(&histories),
            Err(ConsistencyViolation::VersionMismatch { .. })
        ));
    }

    #[test]
    fn sequence_gaps_are_rejected() {
        let mut history = shard("a", vec![(HistoryOp::Put, 1, 10), (HistoryOp::Hit, 1, 10)]);
        history.events[1].seq = 5;
        assert_eq!(
            check(&[history]),
            Err(ConsistencyViolation::SequenceGap {
                shard: "a".into(),
                expected: 1,
                found: 5
            })
        );
    }
}
