//! Rendezvous (highest-random-weight) hashing: key → shard routing.
//!
//! Every (fingerprint, shard) pair gets a pseudo-random weight; a key's
//! *home* shard is the alive shard with the highest weight, and its
//! replicas are the next-ranked shards. The decisive property for
//! failover: when a shard dies, only the keys it owned move (each to its
//! next-ranked survivor) — every other key keeps its home, so a crash
//! never invalidates the surviving shards' caches the way modulo hashing
//! would.
//!
//! The weight function reuses the repository's two-lane FNV-1a + avalanche
//! construction (`etcs_core::cache_key`, `JobPayload::digest`): no
//! cryptographic claim, just a well-mixed 64-bit weight per pair.

const FNV_PRIME: u64 = 0x100_0000_01b3;

fn avalanche(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The rendezvous weight of `shard` for `key`. Deterministic across
/// processes and runs: every frontend ranks shards identically.
pub fn weight(key: u128, shard: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key.to_le_bytes() {
        h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    for &byte in shard.as_bytes() {
        h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    avalanche(h ^ (shard.len() as u64).rotate_left(32))
}

/// Shard indices ranked by descending weight for `key` (ties broken by
/// index, so the ranking is total and stable). `ranked(...)[0]` is the
/// key's home shard; the following entries are its replica order.
pub fn ranked(key: u128, shards: &[String]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..shards.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(weight(key, &shards[i])), i));
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shards(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 47000 + i)).collect()
    }

    #[test]
    fn ranking_is_deterministic_and_total() {
        let shards = shards(5);
        for key in [0u128, 1, 0xdead_beef, u128::MAX] {
            let a = ranked(key, &shards);
            let b = ranked(key, &shards);
            assert_eq!(a, b);
            let mut sorted = a.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4], "a permutation of all shards");
        }
    }

    #[test]
    fn removing_a_shard_only_moves_its_own_keys() {
        let all = shards(4);
        let survivors: Vec<String> = all.iter().filter(|s| *s != &all[2]).cloned().collect();
        for key in 0..500u128 {
            let before = ranked(key, &all);
            let home_before = &all[before[0]];
            let after = ranked(key, &survivors);
            let home_after = &survivors[after[0]];
            if home_before != &all[2] {
                assert_eq!(
                    home_before, home_after,
                    "key {key} moved although its home shard survived"
                );
            }
        }
    }

    #[test]
    fn keys_spread_over_shards() {
        let shards = shards(4);
        let mut counts = [0usize; 4];
        for key in 0..1000u128 {
            counts[ranked(key * 0x9e37_79b9_7f4a_7c15, &shards)[0]] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > 100,
                "shard {i} owns only {c}/1000 keys — the weight function is skewed"
            );
        }
    }
}
