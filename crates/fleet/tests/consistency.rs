//! The consistency checker is only credible because it can *fail*: these
//! tests hand-build shard histories with injected violations — a stale
//! read and a digest fork — and assert the checker rejects each one with
//! the right typed verdict. Clean histories of the same shape pass.

use etcs_fleet::{check, ConsistencyViolation};
use etcs_serve::{HistoryEvent, HistoryOp, ShardHistory};

fn shard(name: &str, events: &[(HistoryOp, u128, u128)]) -> ShardHistory {
    ShardHistory {
        shard: name.into(),
        version: etcs_core::CACHE_KEY_VERSION.into(),
        events: events
            .iter()
            .enumerate()
            .map(|(i, &(op, key, digest))| HistoryEvent {
                seq: i as u64,
                op,
                key,
                digest,
            })
            .collect(),
    }
}

#[test]
fn an_injected_stale_read_is_rejected() {
    use HistoryOp::{Hit, Put};
    // Shard "b" serves a hit for key 7 it never put: a value it never
    // visibly stored. (A put on *another* shard does not excuse it — the
    // freshness invariant is per-shard.)
    let histories = [
        shard("a", &[(Put, 7, 70), (Hit, 7, 70)]),
        shard("b", &[(Put, 9, 90), (Hit, 7, 70)]),
    ];
    assert_eq!(
        check(&histories),
        Err(ConsistencyViolation::StaleHit {
            shard: "b".into(),
            seq: 1,
            key: 7,
        })
    );

    // The same histories with the missing put restored pass.
    let repaired = [
        shard("a", &[(Put, 7, 70), (Hit, 7, 70)]),
        shard("b", &[(Put, 9, 90), (Put, 7, 70), (Hit, 7, 70)]),
    ];
    let report = check(&repaired).expect("repaired histories are consistent");
    assert_eq!(report.replicated_keys, 1, "key 7 now lives on both shards");
}

#[test]
fn an_injected_digest_fork_is_rejected() {
    use HistoryOp::{Hit, Put};
    // Two shards bind the same fingerprint to different result digests:
    // the replicated cache forked, and some client saw a result another
    // client would never have gotten.
    let histories = [
        shard("a", &[(Put, 7, 70), (Hit, 7, 70)]),
        shard("b", &[(Put, 7, 71)]),
    ];
    assert_eq!(
        check(&histories),
        Err(ConsistencyViolation::DigestFork {
            key: 7,
            first: ("a".into(), 70),
            second: ("b".into(), 71),
        })
    );

    // A fork is a fork regardless of which shard is scanned first.
    let reversed = [
        shard("b", &[(Put, 7, 71)]),
        shard("a", &[(Put, 7, 70), (Hit, 7, 70)]),
    ];
    assert!(matches!(
        check(&reversed),
        Err(ConsistencyViolation::DigestFork { key: 7, .. })
    ));
}

#[test]
fn a_hit_that_disagrees_with_its_own_put_is_rejected() {
    use HistoryOp::{Hit, Put};
    // Subtler than the cross-shard fork: one shard's hit serves a digest
    // different from what its own put bound.
    let histories = [shard("a", &[(Put, 7, 70), (Hit, 7, 71)])];
    assert_eq!(
        check(&histories),
        Err(ConsistencyViolation::NonCanonicalHit {
            shard: "a".into(),
            seq: 1,
            key: 7,
            put: 70,
            served: 71,
        })
    );
}

#[test]
fn the_empty_fleet_is_vacuously_consistent() {
    let report = check(&[]).expect("nothing to violate");
    assert_eq!(report.shards, 0);
    assert_eq!(report.events, 0);
}
