//! Negative-path protocol tests: malformed frames, truncated JSON,
//! version-mismatched handshakes and mid-job disconnects must all produce
//! *typed* errors — never a panic, never a hang, never a wedged server.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

use etcs_fleet::wire::{ShardClient, ShardServer, ShardServerConfig, WireError, PROTO_VERSION};
use etcs_obs::Obs;
use etcs_serve::{ServeConfig, Service};

fn spawn_shard(name: &str) -> ShardServer {
    let service = Service::new(ServeConfig {
        workers: 1,
        cache_capacity: 16,
        record_history: true,
        ..ServeConfig::default()
    });
    ShardServer::spawn(
        "127.0.0.1:0",
        service,
        ShardServerConfig {
            name: name.into(),
            ..ShardServerConfig::default()
        },
        Obs::disabled(),
    )
    .expect("bind an ephemeral port")
}

/// A raw line-speaking client, for driving the server off-protocol.
struct Raw {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Raw {
    fn connect(addr: std::net::SocketAddr) -> Raw {
        let stream = TcpStream::connect(addr).expect("connect");
        Raw {
            writer: stream.try_clone().expect("clone"),
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("write");
        self.writer.write_all(b"\n").expect("write");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read");
        line
    }

    fn hello(&mut self) {
        self.send(&format!(
            "{{\"type\": \"hello\", \"proto\": {PROTO_VERSION}, \"cache_key\": \"{}\"}}",
            etcs_core::CACHE_KEY_VERSION
        ));
        let reply = self.recv();
        assert!(reply.contains("hello_ok"), "handshake failed: {reply}");
    }
}

#[test]
fn version_mismatched_hello_is_refused() {
    let server = spawn_shard("vm");
    let addr = server.addr();

    // Wrong protocol version.
    let mut raw = Raw::connect(addr);
    raw.send("{\"type\": \"hello\", \"proto\": 999, \"cache_key\": \"etcs-cache-key-v3\"}");
    let reply = raw.recv();
    assert!(reply.contains("hello_err"), "got: {reply}");
    assert!(
        reply.contains("unsupported protocol version"),
        "got: {reply}"
    );

    // Wrong cache-key version: jobs could run, but cache entries must
    // never be shared across key versions, so the handshake refuses.
    let mut raw = Raw::connect(addr);
    raw.send(&format!(
        "{{\"type\": \"hello\", \"proto\": {PROTO_VERSION}, \"cache_key\": \"etcs-cache-key-v0\"}}"
    ));
    let reply = raw.recv();
    assert!(reply.contains("hello_err"), "got: {reply}");
    assert!(reply.contains("cache-key version mismatch"), "got: {reply}");

    server.kill();
    server.wait();
}

#[test]
fn client_types_the_version_mismatch() {
    // A fake "shard" from the future: speaks proto 2.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let fake = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("read hello");
        let mut writer = stream;
        writer
            .write_all(
                b"{\"type\": \"hello_err\", \"reason\": \"unsupported protocol version 1\", \
                  \"proto\": 2, \"cache_key\": \"etcs-cache-key-v3\"}\n",
            )
            .expect("write");
    });
    let err = ShardClient::connect(&addr.to_string()).expect_err("must refuse");
    assert_eq!(
        err,
        WireError::VersionMismatch {
            field: "proto",
            ours: PROTO_VERSION.to_string(),
            theirs: "2".to_string(),
        }
    );
    fake.join().expect("fake shard");
}

#[test]
fn frames_before_hello_are_refused() {
    let server = spawn_shard("order");
    let mut raw = Raw::connect(server.addr());
    raw.send("{\"type\": \"stats\"}");
    let reply = raw.recv();
    assert!(reply.contains("hello_err"), "got: {reply}");
    assert!(reply.contains("expected a hello frame"), "got: {reply}");
    server.kill();
    server.wait();
}

#[test]
fn malformed_frames_get_typed_errors_and_the_connection_survives() {
    let server = spawn_shard("mal");
    let mut raw = Raw::connect(server.addr());
    raw.hello();

    // Not JSON at all.
    raw.send("this is not json");
    let reply = raw.recv();
    assert!(reply.contains("\"type\": \"error\""), "got: {reply}");

    // JSON, but not a protocol frame.
    raw.send("{\"kind\": \"verify\"}");
    let reply = raw.recv();
    assert!(reply.contains("\"type\": \"error\""), "got: {reply}");
    assert!(reply.contains("no \\\"type\\\""), "got: {reply}");

    // Unknown frame type.
    raw.send("{\"type\": \"teleport\"}");
    let reply = raw.recv();
    assert!(reply.contains("unknown frame type"), "got: {reply}");

    // Truncated JSON (valid prefix of an object, cut mid-string).
    raw.send("{\"type\": \"job\", \"spec\": \"{\\\"kind\\\"");
    let reply = raw.recv();
    assert!(reply.contains("\"type\": \"error\""), "got: {reply}");

    // The connection is still fully functional after all that garbage.
    raw.send("{\"type\": \"stats\"}");
    let reply = raw.recv();
    assert!(reply.contains("\"type\": \"stats\""), "got: {reply}");

    server.kill();
    server.wait();
}

#[test]
fn disconnect_mid_job_leaves_the_server_serving() {
    let server = spawn_shard("dc");

    // Rude client: sends a job, hangs up before the answer.
    {
        let mut raw = Raw::connect(server.addr());
        raw.hello();
        raw.send(
            "{\"type\": \"job\", \"spec\": \"{\\\"id\\\": \\\"gone\\\", \\\"kind\\\": \
             \\\"verify\\\", \\\"scenario\\\": \\\"fixture:running_example\\\"}\"}",
        );
        // Drop both halves without reading: the server's reply write fails.
    }

    // And one that hangs up mid-frame (an unterminated line).
    {
        let mut raw = Raw::connect(server.addr());
        raw.hello();
        raw.writer
            .write_all(b"{\"type\": \"job\", \"spec")
            .expect("write partial frame");
        // Dropped: the server must treat the truncated frame as a close.
    }

    // A well-behaved client still gets full service.
    let mut client = ShardClient::connect(&server.addr().to_string()).expect("connect");
    let done = client
        .job("{\"id\": \"ok\", \"kind\": \"verify\", \"scenario\": \"fixture:running_example\"}")
        .expect("the server survived the rude clients");
    assert_eq!(done.status, "done");
    assert!(done.payload.is_some());

    server.kill();
    server.wait();
}

#[test]
fn shard_death_mid_job_is_a_typed_error_not_a_hang() {
    let server = spawn_shard("die");
    let mut client = ShardClient::connect(&server.addr().to_string()).expect("connect");

    // Sever every socket, exactly as a crashed process would.
    server.kill();

    let err = client
        .job("{\"id\": \"j\", \"kind\": \"verify\", \"scenario\": \"fixture:running_example\"}")
        .expect_err("the shard is gone");
    assert!(
        matches!(err, WireError::Closed | WireError::Io(_)),
        "expected a typed connection error, got: {err:?}"
    );
    server.wait();
}

#[test]
fn invalid_job_specs_come_back_as_invalid_not_errors() {
    let server = spawn_shard("inv");
    let mut client = ShardClient::connect(&server.addr().to_string()).expect("connect");
    let done = client
        .job("{\"id\": \"bad\", \"kind\": \"fly\", \"scenario\": \"fixture:running_example\"}")
        .expect("protocol-level success");
    assert_eq!(done.status, "invalid");
    assert!(done.key.is_none());
    assert!(done.payload.is_none());
    assert!(done.response.contains("unknown kind"));
    client.shutdown().expect("graceful shutdown");
    server.wait();
}
