//! Two-shard loopback integration: a fleet run must produce bit-identical
//! result digests to direct in-process execution, replicate completed
//! entries across shards, survive a shard killed mid-batch without
//! dropping a job, and leave behind histories the consistency checker
//! accepts.

use std::collections::HashMap;
use std::time::Duration;

use etcs_core::EncoderConfig;
use etcs_fleet::wire::{parse_request_line, ShardServer, ShardServerConfig};
use etcs_fleet::{check, Fleet, FleetConfig, FleetJob};
use etcs_obs::json;
use etcs_obs::Obs;
use etcs_sat::Interrupt;
use etcs_serve::{execute, JobOutcome, ServeConfig, Service};

fn spawn_shard(name: &str) -> ShardServer {
    let service = Service::new(ServeConfig {
        workers: 2,
        cache_capacity: 64,
        record_history: true,
        ..ServeConfig::default()
    });
    ShardServer::spawn(
        "127.0.0.1:0",
        service,
        ShardServerConfig {
            name: name.into(),
            ..ShardServerConfig::default()
        },
        Obs::disabled(),
    )
    .expect("bind an ephemeral port")
}

/// A batch with twelve distinct fingerprints, so both shards of a
/// two-shard fleet all but certainly own several keys each.
fn request_lines() -> Vec<String> {
    let mut lines = vec![];
    for kind in [
        "verify",
        "generate",
        "optimize",
        "optimize_incremental",
        "diagnose",
    ] {
        lines.push(format!(
            "{{\"id\": \"{kind}-0\", \"kind\": \"{kind}\", \
             \"scenario\": \"fixture:running_example\"}}"
        ));
    }
    // NB: the default verify layout is pure_ttd, so "full" (not
    // "pure_ttd") keeps all twelve fingerprints distinct.
    for (i, layout) in [
        "full",
        "borders:1",
        "borders:2",
        "borders:1,2",
        "borders:1,3",
    ]
    .iter()
    .enumerate()
    {
        lines.push(format!(
            "{{\"id\": \"verify-l{i}\", \"kind\": \"verify\", \
             \"scenario\": \"fixture:running_example\", \"layout\": \"{layout}\"}}"
        ));
    }
    lines.push(
        "{\"id\": \"diagnose-l0\", \"kind\": \"diagnose\", \
         \"scenario\": \"fixture:running_example\", \"layout\": \"borders:2\"}"
            .into(),
    );
    lines.push(
        "{\"id\": \"verify-simple\", \"kind\": \"verify\", \
         \"scenario\": \"fixture:simple_layout\"}"
            .into(),
    );
    lines
}

fn fleet_jobs(lines: &[String]) -> Vec<FleetJob> {
    let encoder = EncoderConfig::default();
    lines
        .iter()
        .enumerate()
        .map(|(index, line)| {
            let request =
                parse_request_line(line, "test", false, None).expect("test lines are valid");
            FleetJob {
                index,
                id: request.id.clone(),
                key: request.cache_key(&encoder),
                spec: line.clone(),
            }
        })
        .collect()
}

/// Digest of each job's payload from direct in-process execution — the
/// single-process ground truth the fleet must reproduce bit-identically.
fn reference_digests(lines: &[String]) -> Vec<String> {
    let encoder = EncoderConfig::default();
    lines
        .iter()
        .map(|line| {
            let request =
                parse_request_line(line, "ref", false, None).expect("test lines are valid");
            match execute(&request, &encoder, &Interrupt::none(), &Obs::disabled()) {
                JobOutcome::Done(payload) => format!("{:032x}", payload.digest()),
                other => panic!("reference execution did not finish: {other:?}"),
            }
        })
        .collect()
}

fn digest_of(line: &str) -> String {
    let parsed = json::parse(line).expect("response lines are JSON");
    parsed
        .get("payload")
        .and_then(|p| p.get("digest"))
        .and_then(|d| d.as_str())
        .unwrap_or_else(|| panic!("no payload digest in: {line}"))
        .to_string()
}

fn quick_fleet(shards: Vec<String>) -> Fleet {
    Fleet::connect(
        FleetConfig {
            shards,
            replicas: 1,
            streams: 2,
            retry_base: Duration::from_millis(10),
            connect_retries: 20,
            connect_delay: Duration::from_millis(50),
            ..FleetConfig::default()
        },
        Obs::disabled(),
    )
    .expect("both shards are up")
}

#[test]
fn two_shard_fleet_matches_direct_execution_and_replicates() {
    let s1 = spawn_shard("s1");
    let s2 = spawn_shard("s2");
    let fleet = quick_fleet(vec![s1.addr().to_string(), s2.addr().to_string()]);

    let lines = request_lines();
    let reference = reference_digests(&lines);

    // Cold batch: every digest must equal direct in-process execution.
    let results = fleet.run_batch(fleet_jobs(&lines), |_| {});
    assert_eq!(results.len(), lines.len());
    let mut by_index = HashMap::new();
    for result in &results {
        assert_eq!(
            result.status, "done",
            "job {}: {}",
            result.index, result.line
        );
        assert!(!result.failed);
        assert_eq!(digest_of(&result.line), reference[result.index]);
        by_index.insert(result.index, result.clone());
    }

    // With one replica and both shards alive, every cold solve was
    // pushed to the other shard: the histories must show every key on
    // both shards, and must satisfy the consistency model.
    let histories = fleet.fetch_histories().expect("both shards answer");
    assert_eq!(histories.len(), 2);
    let report = check(&histories).expect("cold batch is consistent");
    assert_eq!(report.keys, lines.len());
    assert_eq!(
        report.replicated_keys,
        lines.len(),
        "every completed entry is replicated to the peer shard"
    );

    // Warm batch: same jobs, now answered from the shards' caches, with
    // the same digests.
    let warm = fleet.run_batch(fleet_jobs(&lines), |_| {});
    for result in &warm {
        assert_eq!(result.status, "done");
        assert!(result.cache_hit, "job {}: {}", result.index, result.line);
        assert_eq!(digest_of(&result.line), reference[result.index]);
        assert_eq!(
            result.shard, by_index[&result.index].shard,
            "routing is stable while the shard set is stable"
        );
    }

    let histories = fleet.fetch_histories().expect("both shards answer");
    let report = check(&histories).expect("warm batch is consistent");
    assert!(report.hits >= lines.len());

    fleet.shutdown_shards();
    s1.wait();
    s2.wait();
}

#[test]
fn a_shard_killed_mid_batch_loses_no_jobs_and_stays_consistent() {
    let s1 = spawn_shard("s1");
    let s2 = spawn_shard("s2");
    let fleet = quick_fleet(vec![s1.addr().to_string(), s2.addr().to_string()]);

    let lines = request_lines();
    let reference = reference_digests(&lines);

    // Warm both shards (cold solves + replication), and pin down the
    // routing: which shard owns which job.
    let cold = fleet.run_batch(fleet_jobs(&lines), |_| {});
    let on_s2 = cold
        .iter()
        .filter(|r| r.shard.as_deref() == Some("s2"))
        .count();
    let report = check(&fleet.fetch_histories().expect("fetch")).expect("consistent");
    assert_eq!(report.replicated_keys, lines.len());

    // Re-run the batch and kill shard 2 after the second result lands:
    // its queued and in-flight jobs must be re-dispatched onto the
    // survivor, never silently dropped.
    let mut seen = 0usize;
    let results = fleet.run_batch(fleet_jobs(&lines), |_| {
        seen += 1;
        if seen == 2 {
            s2.kill();
        }
    });
    assert_eq!(results.len(), lines.len(), "no job was dropped");
    for result in &results {
        assert_eq!(
            result.status, "done",
            "job {}: {}",
            result.index, result.line
        );
        assert!(!result.failed);
        assert_eq!(
            digest_of(&result.line),
            reference[result.index],
            "failover preserved bit-identical digests"
        );
    }

    // The surviving histories still satisfy the consistency model. (If
    // shard 2 died before answering anything this round, the fleet may
    // still list it as alive but unreachable; fetch then fails on it, so
    // only assert through the checker when the fetch succeeds.)
    if let Ok(histories) = fleet.fetch_histories() {
        check(&histories).expect("post-failover histories are consistent");
    }

    // Sanity: the batch genuinely spanned both shards before the kill —
    // otherwise this test exercised nothing. Twelve distinct keys over
    // two shards make a one-sided split all but impossible.
    assert!(on_s2 > 0, "routing never used shard 2; rework the job set");
    assert!(on_s2 < lines.len(), "routing never used shard 1");

    fleet.shutdown_shards();
    s1.wait();
    s2.wait();
}

#[test]
fn replan_frames_keep_a_warm_session_across_connections() {
    use etcs_fleet::wire::ShardClient;

    let shard = spawn_shard("rp");
    let addr = shard.addr().to_string();

    let mut client = ShardClient::connect(&addr).expect("connect");
    let opened = client
        .replan(
            "{\"record\": \"open\", \"session\": \"dispatch\", \
             \"scenario\": \"fixture:running_example\"}",
        )
        .expect("open");
    assert!(opened.contains("\"record\": \"opened\""), "{opened}");
    let first = client
        .replan("{\"record\": \"tick\", \"session\": \"dispatch\"}")
        .expect("tick");
    assert!(first.contains("\"warm\": false"), "{first}");
    assert!(first.contains("\"feasible\": true"), "{first}");

    // The streamed tick's verdict digest equals the cold
    // optimize_incremental *job*'s for the same scenario — the parity
    // `ci/check.sh` relies on.
    let job = client
        .job(
            "{\"id\": \"cold\", \"kind\": \"optimize_incremental\", \
             \"scenario\": \"fixture:running_example\"}",
        )
        .expect("job");
    let digest_in = |line: &str| {
        let marker = "\"verdict_digest\": \"";
        let at = line.find(marker).expect("has a verdict digest") + marker.len();
        line[at..at + 32].to_owned()
    };
    assert_eq!(
        digest_in(&first),
        digest_in(&job.response),
        "a streamed tick and the cold job agree on the verdict digest"
    );

    client
        .replan(
            "{\"record\": \"delta\", \"session\": \"dispatch\", \
             \"delta\": \"deadline Train 1 : arr 0:04:00\"}",
        )
        .expect("delta");

    // Drop the connection entirely: the session (and its warm solver
    // state) lives on the shard, so a fresh connection resumes it.
    drop(client);
    let mut client = ShardClient::connect(&addr).expect("reconnect");
    let second = client
        .replan("{\"record\": \"tick\", \"session\": \"dispatch\"}")
        .expect("tick after reconnect");
    assert!(
        second.contains("\"warm\": true"),
        "deadline delta keeps the core warm across connections: {second}"
    );

    let stats = client.stats().expect("stats");
    let replan = stats.get("replan").expect("stats carry a replan section");
    let counter = |key: &str| replan.get(key).and_then(json::Json::as_f64);
    assert_eq!(counter("ticks"), Some(2.0));
    assert_eq!(counter("warm_hits"), Some(1.0));
    assert_eq!(counter("deadline_misses"), Some(0.0));

    let closed = client
        .replan("{\"record\": \"close\", \"session\": \"dispatch\"}")
        .expect("close");
    assert!(closed.contains("\"record\": \"closed\""), "{closed}");

    client.shutdown().expect("shutdown");
    shard.wait();
}
