//! Per-shard cache histories: the raw material of the fleet's dbcop-style
//! consistency check.
//!
//! When [`crate::ServeConfig::record_history`] is on, the service appends
//! one [`HistoryEvent`] for every cache **put** (a payload published under
//! its content-addressed fingerprint — by a local solve or by a fleet
//! replication) and every cache **hit** (a payload served from the cache
//! instead of being re-solved). Each event carries the versioned
//! fingerprint and a digest of the *complete* payload, so an external
//! checker can verify, across a whole fleet of shards, that
//!
//! 1. no fingerprint was ever bound to two distinct result digests
//!    (canonicality — the replicated cache never forks), and
//! 2. no shard ever served a hit before that shard recorded the matching
//!    put (freshness — a hit is always explained by a visible put).
//!
//! The checker itself lives in `etcs-fleet` (`consistency` module); this
//! module only defines the recorded vocabulary, because the recording
//! happens inside the service's cache layer.

/// What a cache history event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HistoryOp {
    /// A payload was stored under its fingerprint (local solve or
    /// replication).
    Put,
    /// A payload was served from the cache.
    Hit,
}

impl HistoryOp {
    /// Stable wire name (`put` / `hit`).
    pub fn name(self) -> &'static str {
        match self {
            HistoryOp::Put => "put",
            HistoryOp::Hit => "hit",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<HistoryOp> {
        match s {
            "put" => Some(HistoryOp::Put),
            "hit" => Some(HistoryOp::Hit),
            _ => None,
        }
    }
}

/// One recorded cache event on one shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistoryEvent {
    /// Position in this shard's history (strictly increasing, gap-free).
    pub seq: u64,
    /// Put or hit.
    pub op: HistoryOp,
    /// The content-addressed fingerprint ([`etcs_core::cache_key`]).
    pub key: u128,
    /// Digest of the complete payload ([`crate::JobPayload::digest`]).
    pub digest: u128,
}

/// A whole shard's recorded history, tagged with the shard's name and the
/// cache-key version it was recorded under. Histories recorded under
/// different versions must never be checked against each other — the same
/// logical request hashes to different fingerprints across versions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardHistory {
    /// The shard's self-reported name.
    pub shard: String,
    /// The [`etcs_core::CACHE_KEY_VERSION`] the events were recorded under.
    pub version: String,
    /// The events, in `seq` order.
    pub events: Vec<HistoryEvent>,
}

/// The append-only log a service keeps when history recording is on.
#[derive(Debug, Default)]
pub(crate) struct HistoryLog {
    events: Vec<HistoryEvent>,
}

impl HistoryLog {
    pub(crate) fn record(&mut self, op: HistoryOp, key: u128, digest: u128) {
        let seq = self.events.len() as u64;
        self.events.push(HistoryEvent {
            seq,
            op,
            key,
            digest,
        });
    }

    pub(crate) fn snapshot(&self) -> Vec<HistoryEvent> {
        self.events.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_round_trip_their_wire_names() {
        for op in [HistoryOp::Put, HistoryOp::Hit] {
            assert_eq!(HistoryOp::parse(op.name()), Some(op));
        }
        assert_eq!(HistoryOp::parse("get"), None);
    }

    #[test]
    fn log_assigns_gap_free_sequence_numbers() {
        let mut log = HistoryLog::default();
        log.record(HistoryOp::Put, 7, 1);
        log.record(HistoryOp::Hit, 7, 1);
        log.record(HistoryOp::Put, 9, 2);
        let events = log.snapshot();
        assert_eq!(events.len(), 3);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
        assert_eq!(events[1].op, HistoryOp::Hit);
        assert_eq!(events[2].key, 9);
    }
}
