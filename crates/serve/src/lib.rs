//! # etcs-serve — job-scheduling service over the design tasks
//!
//! Turns the five task entry points of `etcs-core` (`verify`, `generate`,
//! `optimize`, `optimize_incremental`, `diagnose`) into a long-lived,
//! concurrent job service:
//!
//! * a bounded, priority-classed [`JobQueue`] with admission control —
//!   jobs are rejected *immediately* with a structured [`RejectReason`]
//!   when the queue is full, never silently dropped or blocked;
//! * a worker-thread pool ([`Service`]) with per-job wall-clock deadlines
//!   and cooperative cancellation ([`JobTicket::cancel`]), plumbed down to
//!   the CDCL solver's [`etcs_sat::Interrupt`] poll points;
//! * a content-addressed [`ResultCache`]: repeat jobs are answered from
//!   [`etcs_core::cache_key`]-addressed payloads that are **bit-identical**
//!   to a fresh solve (wall-clock data never enters a payload);
//! * full `etcs-obs` instrumentation: `serve.enqueue`/`serve.admit`/
//!   `serve.reject` events, a `serve.job` span per execution, and
//!   cache/cancellation counters.
//!
//! The `served` binary wraps all of this in a JSONL request/response loop
//! (see the repository README, "Running as a service").
//!
//! ## Quick start
//!
//! ```
//! use etcs_serve::{JobKind, JobRequest, ServeConfig, Service};
//! use etcs_network::fixtures;
//!
//! let service = Service::new(ServeConfig::default());
//! let ticket = service
//!     .submit(JobRequest::new("job-1", JobKind::Generate, fixtures::running_example()))
//!     .expect("admitted");
//! let response = ticket.wait();
//! assert_eq!(response.outcome.status(), "done");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod history;
mod job;
mod queue;
pub mod replan;
mod service;
pub mod wire;

pub use cache::{CacheStats, ResultCache};
pub use history::{HistoryEvent, HistoryOp, ShardHistory};
pub use job::{
    execute, JobKind, JobOutcome, JobPayload, JobRequest, JobResponse, Priority, RejectReason,
};
pub use queue::{JobQueue, QueueStats};
pub use replan::ReplanManager;
pub use service::{JobTicket, ServeConfig, Service, TerminalStats};

// Re-exported so wire-level callers can name the lazy strategy without
// depending on `etcs-lazy` directly.
pub use etcs_lazy::SelectionStrategy;
