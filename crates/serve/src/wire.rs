//! The fleet wire protocol: a dependency-free, versioned, line-framed
//! JSONL-over-TCP job protocol (`std::net` only).
//!
//! One JSON object per `\n`-terminated line, in both directions. Every
//! connection starts with an explicit handshake: the client sends
//! `{"type": "hello", "proto": 1, "cache_key": "etcs-cache-key-v3"}` and
//! the server answers `hello_ok` (echoing its own versions and shard name)
//! or `hello_err` — two processes may only exchange jobs and cache entries
//! when **both** the protocol version and the cache-key version agree,
//! because a replicated payload is addressed by its fingerprint and a
//! fingerprint only means the same thing under the same
//! [`etcs_core::CACHE_KEY_VERSION`].
//!
//! After the handshake the client drives a strict request/response cycle:
//!
//! | request                          | response                          |
//! |----------------------------------|-----------------------------------|
//! | `{"type":"job","spec":"<line>"}` | `{"type":"done", …}`              |
//! | `{"type":"put","key","payload"}` | `{"type":"put_ok","digest"}`      |
//! | `{"type":"replan","line":"<rec>"}`| `{"type":"replan_done", …}`      |
//! | `{"type":"histories"}`           | `{"type":"histories", …}`         |
//! | `{"type":"stats"}`               | `{"type":"stats", …}`             |
//! | `{"type":"shutdown"}`            | `{"type":"bye"}` (server drains)  |
//!
//! `spec` carries one `served`-format request line verbatim (a JSON string
//! containing the JSON object), so shard and frontend parse requests with
//! the same code path. A `replan` frame likewise carries one `served`
//! batch session record (`open`/`delta`/`tick`/`close`, see
//! [`crate::replan`]) and answers the record's response line verbatim —
//! the shard keeps the replanning session (and its warm solver state)
//! alive across frames on any connection. A `done` response carries the shard's standard
//! response line (written verbatim by the frontend, which is what makes
//! fleet output bit-identical to single-process output), the job's
//! fingerprint, and — for completed jobs — the full payload in wire form
//! so the frontend can replicate the cache entry to other shards.
//!
//! Malformed input never panics and never wedges a connection: the server
//! answers `{"type":"error","reason":…}` and keeps reading (line framing
//! is self-synchronising), while client-side decoding failures surface as
//! typed [`WireError`]s.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use etcs_core::{Diagnosis, EncodingStats, Instance, SolvedPlan, TrainPlan};
use etcs_lazy::SelectionStrategy;
use etcs_network::{fixtures, parse_scenario, EdgeId, NodeId, Scenario, TrainId, VssLayout};
use etcs_obs::json::{self, Json};
use etcs_obs::Obs;
use etcs_sat::Stats;

use etcs_replan::{ReplanConfig, ReplanStats};

use crate::cache::CacheStats;
use crate::history::{HistoryEvent, HistoryOp, ShardHistory};
use crate::job::{JobKind, JobOutcome, JobPayload, JobRequest, JobResponse, Priority};
use crate::queue::QueueStats;
use crate::replan::{replan_stats_json, ReplanManager};
use crate::service::{Service, TerminalStats};

/// The protocol version spoken by this build. Bump on any wire-visible
/// change to message shapes or semantics.
pub const PROTO_VERSION: u64 = 1;

/// Upper bound on one frame (a payload with full train plans is large but
/// bounded; an unterminated garbage stream must not grow memory forever).
const MAX_LINE: usize = 64 * 1024 * 1024;

/// Typed failure of a wire operation. Every protocol-level problem —
/// malformed frames, truncated JSON, version mismatches, peers vanishing
/// mid-job — maps to a variant here; nothing panics and nothing hangs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The underlying socket failed (connect/read/write).
    Io(String),
    /// The peer closed the connection (EOF, possibly mid-frame).
    Closed,
    /// A frame exceeded [`MAX_LINE`].
    Oversized {
        /// The configured frame bound, in bytes.
        limit: usize,
    },
    /// A frame was not the JSON the protocol requires at this point.
    Malformed {
        /// What was wrong.
        message: String,
    },
    /// The handshake was refused for a non-version reason.
    Handshake {
        /// The server's stated reason.
        reason: String,
    },
    /// The peers disagree on a version the protocol requires to match.
    VersionMismatch {
        /// Which version field disagreed (`proto` or `cache_key`).
        field: &'static str,
        /// Our side's value.
        ours: String,
        /// The peer's value.
        theirs: String,
    },
    /// The server answered `{"type":"error"}` to a request.
    Remote {
        /// The server's stated reason.
        reason: String,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Closed => write!(f, "peer closed the connection"),
            WireError::Oversized { limit } => write!(f, "frame exceeds {limit} bytes"),
            WireError::Malformed { message } => write!(f, "malformed frame: {message}"),
            WireError::Handshake { reason } => write!(f, "handshake refused: {reason}"),
            WireError::VersionMismatch {
                field,
                ours,
                theirs,
            } => write!(f, "{field} version mismatch: ours {ours}, peer {theirs}"),
            WireError::Remote { reason } => write!(f, "server error: {reason}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.to_string())
    }
}

fn malformed(message: impl Into<String>) -> WireError {
    WireError::Malformed {
        message: message.into(),
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Writes one frame (`line` must not contain `\n`).
fn write_frame(w: &mut impl Write, line: &str) -> Result<(), WireError> {
    debug_assert!(!line.contains('\n'), "frames are single lines");
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()?;
    Ok(())
}

/// Reads one frame. `Ok(None)` on clean EOF at a frame boundary; EOF in the
/// middle of a frame is [`WireError::Closed`] (a truncated frame must never
/// be parsed as if it were complete).
fn read_frame(r: &mut impl BufRead) -> Result<Option<String>, WireError> {
    let mut buf = Vec::new();
    loop {
        let chunk = r.fill_buf()?;
        if chunk.is_empty() {
            return if buf.is_empty() {
                Ok(None)
            } else {
                Err(WireError::Closed)
            };
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                buf.extend_from_slice(&chunk[..pos]);
                r.consume(pos + 1);
                let line =
                    String::from_utf8(buf).map_err(|_| malformed("frame is not valid UTF-8"))?;
                return Ok(Some(line));
            }
            None => {
                buf.extend_from_slice(chunk);
                let len = chunk.len();
                r.consume(len);
                if buf.len() > MAX_LINE {
                    return Err(WireError::Oversized { limit: MAX_LINE });
                }
            }
        }
    }
}

fn parse_frame(line: &str) -> Result<Json, WireError> {
    json::parse(line).map_err(|e| malformed(e.to_string()))
}

fn frame_type(v: &Json) -> Result<&str, WireError> {
    v.get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| malformed("frame has no \"type\""))
}

fn u64_field(v: &Json, key: &str) -> Result<u64, WireError> {
    match v.get(key).and_then(Json::as_f64) {
        Some(n) if n.fract() == 0.0 && n >= 0.0 => Ok(n as u64),
        _ => Err(malformed(format!("missing or non-integer \"{key}\""))),
    }
}

fn str_field<'a>(v: &'a Json, key: &str) -> Result<&'a str, WireError> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| malformed(format!("missing string \"{key}\"")))
}

fn hex_u128(s: &str) -> Result<u128, WireError> {
    u128::from_str_radix(s, 16).map_err(|_| malformed(format!("bad 128-bit hex {s:?}")))
}

// ---------------------------------------------------------------------------
// Request-line parsing (shared by `served` and `fleetd`)
// ---------------------------------------------------------------------------

/// Resolves a request `scenario` spec: `fixture:NAME`, `file:PATH`, or
/// `rail:TEXT`.
///
/// # Errors
///
/// A human-readable message naming the unknown fixture, unreadable file or
/// parse failure.
pub fn load_scenario(spec: &str) -> Result<Scenario, String> {
    if let Some(name) = spec.strip_prefix("fixture:") {
        match name {
            "running_example" => Ok(fixtures::running_example()),
            "simple_layout" => Ok(fixtures::simple_layout()),
            "complex_layout" => Ok(fixtures::complex_layout()),
            "nordlandsbanen" => Ok(fixtures::nordlandsbanen()),
            "convoy" => Ok(fixtures::convoy()),
            other => Err(format!("unknown fixture {other:?}")),
        }
    } else if let Some(path) = spec.strip_prefix("file:") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        parse_scenario(&text).map_err(|e| format!("{path}: {e}"))
    } else if let Some(text) = spec.strip_prefix("rail:") {
        parse_scenario(text).map_err(|e| e.to_string())
    } else {
        Err(format!(
            "scenario must start with fixture:, file: or rail: (got {spec:?})"
        ))
    }
}

/// Resolves a request `layout` spec: `pure_ttd`, `full`, or
/// `borders:i,j,…`.
///
/// # Errors
///
/// A human-readable message for unknown specs or bad border indices.
pub fn load_layout(spec: &str, scenario: &Scenario) -> Result<VssLayout, String> {
    if spec == "pure_ttd" {
        Ok(VssLayout::pure_ttd())
    } else if spec == "full" {
        let inst = Instance::new(scenario).map_err(|e| e.to_string())?;
        Ok(VssLayout::full(&inst.net))
    } else if let Some(list) = spec.strip_prefix("borders:") {
        let mut nodes = Vec::new();
        for part in list.split(',').filter(|p| !p.is_empty()) {
            let index: usize = part
                .trim()
                .parse()
                .map_err(|_| format!("bad border index {part:?}"))?;
            nodes.push(NodeId::from_index(index));
        }
        Ok(VssLayout::with_borders(nodes))
    } else {
        Err(format!(
            "layout must be pure_ttd, full or borders:i,j,… (got {spec:?})"
        ))
    }
}

/// Parses one `served`-format request line into a [`JobRequest`].
/// `label` prefixes error messages (`"line 7"`, `"job"`, …);
/// `lazy_default` / `portfolio_default` are the service-wide CLI defaults
/// applied to lines that do not carry their own fields.
///
/// # Errors
///
/// A human-readable message for malformed JSON or unknown field values.
pub fn parse_request_line(
    line: &str,
    label: &str,
    lazy_default: bool,
    portfolio_default: Option<usize>,
) -> Result<JobRequest, String> {
    let value = json::parse(line).map_err(|e| format!("{label}: {e}"))?;
    let str_field = |key: &str| value.get(key).and_then(Json::as_str);
    let id = str_field("id")
        .map(str::to_owned)
        .unwrap_or_else(|| label.replace(' ', "-"));
    let kind_name = str_field("kind").ok_or_else(|| format!("{label}: missing \"kind\""))?;
    let kind =
        JobKind::parse(kind_name).ok_or_else(|| format!("{label}: unknown kind {kind_name:?}"))?;
    let scenario_spec =
        str_field("scenario").ok_or_else(|| format!("{label}: missing \"scenario\""))?;
    let scenario = load_scenario(scenario_spec).map_err(|e| format!("{label}: {e}"))?;
    let mut request = JobRequest::new(id, kind, scenario);
    if let Some(layout_spec) = str_field("layout") {
        request.layout =
            load_layout(layout_spec, &request.scenario).map_err(|e| format!("{label}: {e}"))?;
    }
    if let Some(priority_name) = str_field("priority") {
        request.priority = Priority::parse(priority_name)
            .ok_or_else(|| format!("{label}: unknown priority {priority_name:?}"))?;
    }
    if let Some(ms) = value.get("deadline_ms").and_then(Json::as_f64) {
        if ms < 0.0 {
            return Err(format!("{label}: deadline_ms must be non-negative"));
        }
        request.deadline = Some(Duration::from_millis(ms as u64));
    }
    if let Some(strategy_name) = str_field("lazy") {
        let strategy = SelectionStrategy::parse(strategy_name)
            .ok_or_else(|| format!("{label}: unknown lazy strategy {strategy_name:?}"))?;
        request.lazy = Some(strategy);
    } else if lazy_default {
        request.lazy = Some(SelectionStrategy::AllViolated);
    }
    if let Some(n) = value.get("portfolio").and_then(Json::as_f64) {
        if n.fract() != 0.0 || n < 2.0 {
            return Err(format!(
                "{label}: portfolio must be an integer of at least 2"
            ));
        }
        request.portfolio = Some(n as usize);
    } else {
        request.portfolio = portfolio_default;
    }
    Ok(request)
}

// ---------------------------------------------------------------------------
// Response formatting (shared by `served` and the shard server)
// ---------------------------------------------------------------------------

/// The compact response-payload object of a `served` output line.
pub fn payload_json(payload: &JobPayload) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"kind\": {}", json::quote(payload.kind.name())));
    out.push_str(&format!(", \"feasible\": {}", payload.feasible));
    if !payload.costs.is_empty() {
        let costs: Vec<String> = payload.costs.iter().map(u64::to_string).collect();
        out.push_str(&format!(", \"costs\": [{}]", costs.join(", ")));
    }
    if let Some(plan) = &payload.plan {
        out.push_str(&format!(", \"borders\": {}", plan.layout.num_borders()));
        out.push_str(&format!(", \"trains\": {}", plan.plans.len()));
    }
    if let Some(diagnosis) = &payload.diagnosis {
        let summary = match diagnosis {
            Diagnosis::Feasible => "feasible".to_string(),
            Diagnosis::Structural => "structural".to_string(),
            Diagnosis::Conflict { names, .. } => {
                format!("conflict: {}", names.join(", "))
            }
        };
        out.push_str(&format!(", \"diagnosis\": {}", json::quote(&summary)));
    }
    out.push_str(&format!(", \"solver_calls\": {}", payload.solver_calls));
    out.push_str(&format!(", \"conflicts\": {}", payload.search.conflicts));
    out.push_str(&format!(", \"digest\": \"{:032x}\"", payload.digest()));
    out.push_str(&format!(
        ", \"verdict_digest\": \"{:032x}\"",
        payload.verdict_digest()
    ));
    out.push('}');
    out
}

/// Formats one `served`-format response line. Returns the line and whether
/// the outcome counts as a failure for the process exit code.
pub fn response_line(response: &JobResponse) -> (String, bool) {
    let mut failed = false;
    let mut line = format!(
        "{{\"id\": {}, \"status\": {}, \"cache\": {}, \"wall_ms\": {}",
        json::quote(&response.id),
        json::quote(response.outcome.status()),
        json::quote(if response.cache_hit { "hit" } else { "miss" }),
        response.wall.as_millis()
    );
    match &response.outcome {
        JobOutcome::Done(payload) => {
            line.push_str(&format!(", \"payload\": {}", payload_json(payload)));
        }
        JobOutcome::Rejected(reason) => {
            failed = true;
            line.push_str(&format!(
                ", \"reason\": {}",
                json::quote(&reason.to_string())
            ));
        }
        JobOutcome::Invalid(message) => {
            failed = true;
            line.push_str(&format!(", \"reason\": {}", json::quote(message)));
        }
        JobOutcome::Cancelled | JobOutcome::DeadlineExceeded => {}
    }
    line.push('}');
    (line, failed)
}

/// The shared `"queue": …, "jobs": …, "cache": …, "replan": …` body of a
/// stats record (used by the `served` shutdown summary and the wire
/// `stats` response).
pub fn stats_body_json(
    queue: &QueueStats,
    jobs: &TerminalStats,
    cache: &CacheStats,
    replan: &ReplanStats,
) -> String {
    format!(
        "\"queue\": {{\"submitted\": {}, \"admitted\": {}, \"rejected\": {}, \"high_water\": {}}}, \
         \"jobs\": {{\"done\": {}, \"cancelled\": {}, \"deadline_exceeded\": {}, \"invalid\": {}}}, \
         \"cache\": {{\"hits\": {}, \"misses\": {}, \"insertions\": {}, \"evictions\": {}}}, {}",
        queue.submitted,
        queue.admitted,
        queue.rejected,
        queue.high_water,
        jobs.done,
        jobs.cancelled,
        jobs.deadline_exceeded,
        jobs.invalid,
        cache.hits,
        cache.misses,
        cache.insertions,
        cache.evictions,
        replan_stats_json(replan),
    )
}

// ---------------------------------------------------------------------------
// Payload wire codec (full fidelity, for cache replication)
// ---------------------------------------------------------------------------

/// Serialises a complete [`JobPayload`] — including every train's
/// step-by-step positions — so a replica shard can store a bit-identical
/// cache entry. [`payload_from_wire`] inverts this exactly; the round trip
/// preserves [`JobPayload::digest`].
pub fn payload_to_wire(p: &JobPayload) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"kind\": {}", json::quote(p.kind.name())));
    out.push_str(&format!(", \"feasible\": {}", p.feasible));
    let costs: Vec<String> = p.costs.iter().map(u64::to_string).collect();
    out.push_str(&format!(", \"costs\": [{}]", costs.join(",")));
    if let Some(plan) = &p.plan {
        let borders: Vec<String> = plan
            .layout
            .borders()
            .iter()
            .map(|b| b.index().to_string())
            .collect();
        out.push_str(&format!(
            ", \"plan\": {{\"borders\": [{}]",
            borders.join(",")
        ));
        out.push_str(", \"trains\": [");
        for (i, train) in plan.plans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\": {}, \"positions\": [",
                json::quote(&train.name)
            ));
            for (j, step) in train.positions.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let edges: Vec<String> = step.iter().map(|e| e.index().to_string()).collect();
                out.push_str(&format!("[{}]", edges.join(",")));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
    }
    if let Some(diagnosis) = &p.diagnosis {
        match diagnosis {
            Diagnosis::Feasible => out.push_str(", \"diagnosis\": {\"verdict\": \"feasible\"}"),
            Diagnosis::Structural => out.push_str(", \"diagnosis\": {\"verdict\": \"structural\"}"),
            Diagnosis::Conflict { trains, names } => {
                let ids: Vec<String> = trains.iter().map(|t| t.index().to_string()).collect();
                let quoted: Vec<String> = names.iter().map(|n| json::quote(n)).collect();
                out.push_str(&format!(
                    ", \"diagnosis\": {{\"verdict\": \"conflict\", \"trains\": [{}], \"names\": [{}]}}",
                    ids.join(","),
                    quoted.join(",")
                ));
            }
        }
    }
    out.push_str(&format!(
        ", \"stats\": [{},{},{},{},{}]",
        p.stats.border_vars,
        p.stats.occupies_vars,
        p.stats.nominal_vars,
        p.stats.solver_vars,
        p.stats.clauses
    ));
    out.push_str(&format!(", \"solver_calls\": {}", p.solver_calls));
    out.push_str(&format!(
        ", \"search\": [{},{},{},{},{},{},{},{}]",
        p.search.decisions,
        p.search.propagations,
        p.search.conflicts,
        p.search.restarts,
        p.search.learnt_literals,
        p.search.deleted_clauses,
        p.search.solve_calls,
        p.search.reused_learnts
    ));
    out.push('}');
    out
}

fn wire_u64(v: &Json, what: &str) -> Result<u64, WireError> {
    match v {
        Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 => Ok(*n as u64),
        _ => Err(malformed(format!("{what} must be a non-negative integer"))),
    }
}

fn wire_u64_list(v: Option<&Json>, what: &str) -> Result<Vec<u64>, WireError> {
    match v {
        Some(Json::Arr(items)) => items.iter().map(|n| wire_u64(n, what)).collect(),
        _ => Err(malformed(format!("{what} must be an array of integers"))),
    }
}

/// Decodes a [`payload_to_wire`] object back into a [`JobPayload`].
///
/// # Errors
///
/// [`WireError::Malformed`] naming the first offending field.
pub fn payload_from_wire(v: &Json) -> Result<JobPayload, WireError> {
    let kind_name = str_field(v, "kind")?;
    let kind = JobKind::parse(kind_name)
        .ok_or_else(|| malformed(format!("unknown payload kind {kind_name:?}")))?;
    let feasible = match v.get("feasible") {
        Some(Json::Bool(b)) => *b,
        _ => return Err(malformed("missing bool \"feasible\"")),
    };
    let costs = wire_u64_list(v.get("costs"), "costs")?;
    let plan = match v.get("plan") {
        None | Some(Json::Null) => None,
        Some(plan) => {
            let borders = wire_u64_list(plan.get("borders"), "plan.borders")?;
            let layout = VssLayout::with_borders(
                borders.into_iter().map(|i| NodeId::from_index(i as usize)),
            );
            let trains = match plan.get("trains") {
                Some(Json::Arr(items)) => items,
                _ => return Err(malformed("plan.trains must be an array")),
            };
            let mut plans = Vec::with_capacity(trains.len());
            for train in trains {
                let name = str_field(train, "name")?.to_owned();
                let steps = match train.get("positions") {
                    Some(Json::Arr(steps)) => steps,
                    _ => return Err(malformed("train.positions must be an array")),
                };
                let mut positions = Vec::with_capacity(steps.len());
                for step in steps {
                    let edges = match step {
                        Json::Arr(edges) => edges,
                        _ => return Err(malformed("a position step must be an array")),
                    };
                    let mut ids = Vec::with_capacity(edges.len());
                    for e in edges {
                        ids.push(EdgeId::from_index(wire_u64(e, "edge index")? as usize));
                    }
                    positions.push(ids);
                }
                plans.push(TrainPlan { name, positions });
            }
            Some(SolvedPlan { layout, plans })
        }
    };
    let diagnosis = match v.get("diagnosis") {
        None | Some(Json::Null) => None,
        Some(d) => Some(match str_field(d, "verdict")? {
            "feasible" => Diagnosis::Feasible,
            "structural" => Diagnosis::Structural,
            "conflict" => {
                let trains = wire_u64_list(d.get("trains"), "diagnosis.trains")?
                    .into_iter()
                    .map(|i| TrainId::from_index(i as usize))
                    .collect();
                let names = match d.get("names") {
                    Some(Json::Arr(items)) => items
                        .iter()
                        .map(|n| {
                            n.as_str()
                                .map(str::to_owned)
                                .ok_or_else(|| malformed("diagnosis.names must be strings"))
                        })
                        .collect::<Result<Vec<String>, WireError>>()?,
                    _ => return Err(malformed("diagnosis.names must be an array")),
                };
                Diagnosis::Conflict { trains, names }
            }
            other => return Err(malformed(format!("unknown diagnosis verdict {other:?}"))),
        }),
    };
    let stats = wire_u64_list(v.get("stats"), "stats")?;
    if stats.len() != 5 {
        return Err(malformed("stats must have exactly 5 entries"));
    }
    let search = wire_u64_list(v.get("search"), "search")?;
    if search.len() != 8 {
        return Err(malformed("search must have exactly 8 entries"));
    }
    Ok(JobPayload {
        kind,
        feasible,
        costs,
        plan,
        diagnosis,
        stats: EncodingStats {
            border_vars: stats[0] as usize,
            occupies_vars: stats[1] as usize,
            nominal_vars: stats[2] as usize,
            solver_vars: stats[3] as usize,
            clauses: stats[4] as usize,
        },
        solver_calls: u64_field(v, "solver_calls")? as usize,
        search: Stats {
            decisions: search[0],
            propagations: search[1],
            conflicts: search[2],
            restarts: search[3],
            learnt_literals: search[4],
            deleted_clauses: search[5],
            solve_calls: search[6],
            reused_learnts: search[7],
        },
    })
}

// ---------------------------------------------------------------------------
// History wire codec
// ---------------------------------------------------------------------------

fn history_to_wire(shard: &str, events: &[HistoryEvent]) -> String {
    let mut out = format!(
        "{{\"type\": \"histories\", \"shard\": {}, \"cache_key\": {}, \"events\": [",
        json::quote(shard),
        json::quote(etcs_core::CACHE_KEY_VERSION)
    );
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"seq\": {}, \"op\": \"{}\", \"key\": \"{:032x}\", \"digest\": \"{:032x}\"}}",
            e.seq,
            e.op.name(),
            e.key,
            e.digest
        ));
    }
    out.push_str("]}");
    out
}

/// Decodes a `histories` response frame into a [`ShardHistory`].
///
/// # Errors
///
/// [`WireError::Malformed`] naming the first offending field.
pub fn history_from_wire(v: &Json) -> Result<ShardHistory, WireError> {
    let shard = str_field(v, "shard")?.to_owned();
    let version = str_field(v, "cache_key")?.to_owned();
    let items = match v.get("events") {
        Some(Json::Arr(items)) => items,
        _ => return Err(malformed("histories.events must be an array")),
    };
    let mut events = Vec::with_capacity(items.len());
    for item in items {
        let op_name = str_field(item, "op")?;
        let op = HistoryOp::parse(op_name)
            .ok_or_else(|| malformed(format!("unknown history op {op_name:?}")))?;
        events.push(HistoryEvent {
            seq: u64_field(item, "seq")?,
            op,
            key: hex_u128(str_field(item, "key")?)?,
            digest: hex_u128(str_field(item, "digest")?)?,
        });
    }
    Ok(ShardHistory {
        shard,
        version,
        events,
    })
}

// ---------------------------------------------------------------------------
// Shard server
// ---------------------------------------------------------------------------

/// Fault-injection hook: called with the 1-based count of job frames seen
/// so far, *before* the job runs. `served --crash-after N` installs a hook
/// that aborts the whole process — the deterministic "shard killed
/// mid-batch" of the CI fleet smoke.
pub type JobHook = Arc<dyn Fn(u64) + Send + Sync>;

/// Configuration for [`ShardServer::spawn`].
#[derive(Clone, Default)]
pub struct ShardServerConfig {
    /// The shard's self-reported name (defaults to the listen address).
    pub name: String,
    /// Apply the lazy CEGAR default to jobs without their own `lazy` field.
    pub lazy_default: bool,
    /// Portfolio width applied to jobs without their own field.
    pub portfolio_default: Option<usize>,
    /// Optional per-job fault-injection hook.
    pub hook: Option<JobHook>,
}

impl std::fmt::Debug for ShardServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardServerConfig")
            .field("name", &self.name)
            .field("lazy_default", &self.lazy_default)
            .field("portfolio_default", &self.portfolio_default)
            .field("hook", &self.hook.is_some())
            .finish()
    }
}

struct ServerShared {
    name: String,
    service: Service,
    obs: Obs,
    stop: AtomicBool,
    addr: SocketAddr,
    conns: Mutex<Vec<TcpStream>>,
    jobs_seen: AtomicU64,
    lazy_default: bool,
    portfolio_default: Option<usize>,
    hook: Option<JobHook>,
    // Replanning sessions live on the *shard*, not the connection: warm
    // solver state survives reconnects as long as the process does.
    replan: Mutex<ReplanManager>,
}

/// Final counters of a drained shard server.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServedStats {
    /// Queue backpressure counters.
    pub queue: QueueStats,
    /// Terminal-state counters.
    pub jobs: TerminalStats,
    /// Result-cache counters.
    pub cache: CacheStats,
    /// Replanning-session counters (closed and still-open sessions).
    pub replan: ReplanStats,
}

/// A `served` process's socket mode: one worker-pool [`Service`] behind a
/// TCP listener speaking the fleet wire protocol. Connections are handled
/// on their own threads; the listener runs until a `shutdown` frame (or
/// [`ShardServer::kill`]) and then drains the service.
pub struct ShardServer {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for ShardServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardServer")
            .field("addr", &self.addr)
            .field("name", &self.shared.name)
            .finish()
    }
}

impl ShardServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// accepting fleet-protocol connections over `service`.
    ///
    /// # Errors
    ///
    /// The bind error, if the address is unavailable.
    pub fn spawn(
        addr: &str,
        service: Service,
        config: ShardServerConfig,
        obs: Obs,
    ) -> std::io::Result<ShardServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let replan = ReplanManager::new(
            ReplanConfig {
                encoder: service.config().encoder,
                lazy: config.lazy_default,
                ..ReplanConfig::default()
            },
            obs.clone(),
        );
        let shared = Arc::new(ServerShared {
            name: if config.name.is_empty() {
                local.to_string()
            } else {
                config.name
            },
            service,
            obs,
            stop: AtomicBool::new(false),
            addr: local,
            conns: Mutex::new(Vec::new()),
            jobs_seen: AtomicU64::new(0),
            lazy_default: config.lazy_default,
            portfolio_default: config.portfolio_default,
            hook: config.hook,
            replan: Mutex::new(replan),
        });
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    if let Ok(clone) = stream.try_clone() {
                        shared.conns.lock().expect("conn registry").push(clone);
                    }
                    let shared = Arc::clone(&shared);
                    let handle = std::thread::spawn(move || handle_conn(&shared, stream));
                    handlers.lock().expect("handler registry").push(handle);
                }
            })
        };
        Ok(ShardServer {
            addr: local,
            shared,
            accept: Some(accept),
            handlers,
        })
    }

    /// The bound address (useful with an ephemeral-port bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shard's self-reported name.
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// Abruptly severs the shard: stops accepting and shuts every open
    /// connection's socket, exactly as a killed process would appear to its
    /// peers. The in-process service is drained afterwards by
    /// [`ShardServer::wait`] — the *wire* side is what dies here.
    pub fn kill(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        for conn in self.shared.conns.lock().expect("conn registry").iter() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
    }

    /// Blocks until the listener stops (a `shutdown` frame or
    /// [`ShardServer::kill`]), joins every connection, drains the service
    /// and returns its final counters.
    pub fn wait(mut self) -> ServedStats {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let handlers = std::mem::take(&mut *self.handlers.lock().expect("handler registry"));
        for handle in handlers {
            let _ = handle.join();
        }
        ServedStats {
            queue: self.shared.service.queue_stats(),
            jobs: self.shared.service.terminal_stats(),
            cache: self.shared.service.cache_stats().unwrap_or_default(),
            replan: self.shared.replan.lock().expect("replan sessions").stats(),
        }
    }
}

fn handle_conn(shared: &ServerShared, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    let mut writer = writer;
    let mut reader = BufReader::new(stream);
    // Handshake first: nothing else is accepted on a virgin connection.
    match read_frame(&mut reader) {
        Ok(Some(line)) => {
            if !handshake(shared, &mut writer, &line) {
                return;
            }
        }
        _ => return,
    }
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let line = match read_frame(&mut reader) {
            Ok(Some(line)) => line,
            Ok(None) | Err(WireError::Closed) => return,
            Err(e) => {
                let _ = send_error(&mut writer, &e.to_string());
                return;
            }
        };
        let frame = match parse_frame(&line) {
            Ok(frame) => frame,
            Err(e) => {
                // Self-synchronising: report and keep reading frames.
                if send_error(&mut writer, &e.to_string()).is_err() {
                    return;
                }
                continue;
            }
        };
        let done = match frame_type(&frame) {
            Ok("job") => handle_job(shared, &mut writer, &frame),
            Ok("put") => handle_put(shared, &mut writer, &frame),
            Ok("replan") => handle_replan(shared, &mut writer, &frame),
            Ok("histories") => {
                let events = shared.service.history();
                write_frame(&mut writer, &history_to_wire(&shared.name, &events))
            }
            Ok("stats") => {
                let body = stats_body_json(
                    &shared.service.queue_stats(),
                    &shared.service.terminal_stats(),
                    &shared.service.cache_stats().unwrap_or_default(),
                    &shared.replan.lock().expect("replan sessions").stats(),
                );
                write_frame(
                    &mut writer,
                    &format!(
                        "{{\"type\": \"stats\", \"shard\": {}, {body}}}",
                        json::quote(&shared.name)
                    ),
                )
            }
            Ok("shutdown") => {
                let _ = write_frame(&mut writer, "{\"type\": \"bye\"}");
                shared.stop.store(true, Ordering::SeqCst);
                let _ = TcpStream::connect(shared.addr); // unblock accept
                return;
            }
            Ok(other) => send_error(&mut writer, &format!("unknown frame type {other:?}")),
            Err(e) => send_error(&mut writer, &e.to_string()),
        };
        if done.is_err() {
            return;
        }
    }
}

fn handshake(shared: &ServerShared, writer: &mut TcpStream, line: &str) -> bool {
    let refuse = |writer: &mut TcpStream, reason: &str| {
        let _ = write_frame(
            writer,
            &format!(
                "{{\"type\": \"hello_err\", \"reason\": {}, \"proto\": {PROTO_VERSION}, \
                 \"cache_key\": {}}}",
                json::quote(reason),
                json::quote(etcs_core::CACHE_KEY_VERSION)
            ),
        );
        false
    };
    let Ok(frame) = parse_frame(line) else {
        return refuse(writer, "handshake frame is not valid JSON");
    };
    if frame_type(&frame).ok() != Some("hello") {
        return refuse(writer, "expected a hello frame");
    }
    let Ok(proto) = u64_field(&frame, "proto") else {
        return refuse(writer, "hello lacks an integer \"proto\"");
    };
    if proto != PROTO_VERSION {
        return refuse(writer, &format!("unsupported protocol version {proto}"));
    }
    let Ok(cache_key) = str_field(&frame, "cache_key") else {
        return refuse(writer, "hello lacks a \"cache_key\" version");
    };
    if cache_key != etcs_core::CACHE_KEY_VERSION {
        return refuse(writer, &format!("cache-key version mismatch: {cache_key}"));
    }
    write_frame(
        writer,
        &format!(
            "{{\"type\": \"hello_ok\", \"proto\": {PROTO_VERSION}, \"cache_key\": {}, \
             \"shard\": {}}}",
            json::quote(etcs_core::CACHE_KEY_VERSION),
            json::quote(&shared.name)
        ),
    )
    .is_ok()
}

fn send_error(writer: &mut TcpStream, reason: &str) -> Result<(), WireError> {
    write_frame(
        writer,
        &format!(
            "{{\"type\": \"error\", \"reason\": {}}}",
            json::quote(reason)
        ),
    )
}

fn handle_job(
    shared: &ServerShared,
    writer: &mut TcpStream,
    frame: &Json,
) -> Result<(), WireError> {
    let spec = match str_field(frame, "spec") {
        Ok(spec) => spec,
        Err(e) => return send_error(writer, &e.to_string()),
    };
    let seen = shared.jobs_seen.fetch_add(1, Ordering::SeqCst) + 1;
    if let Some(hook) = &shared.hook {
        hook(seen);
    }
    let request =
        match parse_request_line(spec, "job", shared.lazy_default, shared.portfolio_default) {
            Ok(request) => request,
            Err(message) => {
                let line = format!(
                    "{{\"id\": \"job\", \"status\": \"invalid\", \"reason\": {}}}",
                    json::quote(&message)
                );
                return write_frame(
                    writer,
                    &format!(
                        "{{\"type\": \"done\", \"status\": \"invalid\", \"cache\": \"miss\", \
                     \"response\": {}}}",
                        json::quote(&line)
                    ),
                );
            }
        };
    let key = request.cache_key(&shared.service.config().encoder);
    let response = match shared.service.submit(request) {
        Ok(ticket) => ticket.wait(),
        Err(rejected) => rejected,
    };
    let (line, _) = response_line(&response);
    let mut out = format!(
        "{{\"type\": \"done\", \"status\": {}, \"cache\": {}, \"key\": \"{key:032x}\", \
         \"response\": {}",
        json::quote(response.outcome.status()),
        json::quote(if response.cache_hit { "hit" } else { "miss" }),
        json::quote(&line)
    );
    if let JobOutcome::Done(payload) = &response.outcome {
        out.push_str(&format!(", \"payload\": {}", payload_to_wire(payload)));
    }
    out.push('}');
    write_frame(writer, &out)
}

fn handle_put(
    shared: &ServerShared,
    writer: &mut TcpStream,
    frame: &Json,
) -> Result<(), WireError> {
    let key = match str_field(frame, "key").and_then(hex_u128) {
        Ok(key) => key,
        Err(e) => return send_error(writer, &e.to_string()),
    };
    let payload = match frame
        .get("payload")
        .ok_or_else(|| malformed("put lacks a \"payload\""))
        .and_then(payload_from_wire)
    {
        Ok(payload) => payload,
        Err(e) => return send_error(writer, &e.to_string()),
    };
    let digest = payload.digest();
    if !shared.service.cache_insert(key, payload) {
        return send_error(writer, "caching is disabled on this shard");
    }
    shared.obs.event(
        "serve.replica_put",
        &[("key", format!("{key:032x}").into())],
    );
    write_frame(
        writer,
        &format!("{{\"type\": \"put_ok\", \"digest\": \"{digest:032x}\"}}"),
    )
}

fn handle_replan(
    shared: &ServerShared,
    writer: &mut TcpStream,
    frame: &Json,
) -> Result<(), WireError> {
    let line = match str_field(frame, "line") {
        Ok(line) => line,
        Err(e) => return send_error(writer, &e.to_string()),
    };
    let (response, failed) = shared
        .replan
        .lock()
        .expect("replan sessions")
        .handle(line, "replan");
    write_frame(
        writer,
        &format!(
            "{{\"type\": \"replan_done\", \"failed\": {failed}, \"response\": {}}}",
            json::quote(&response)
        ),
    )
}

// ---------------------------------------------------------------------------
// Shard client
// ---------------------------------------------------------------------------

/// One `done` response from a shard.
#[derive(Clone, Debug)]
pub struct JobDone {
    /// The job's content-addressed fingerprint (absent for invalid specs).
    pub key: Option<u128>,
    /// Terminal status (`done`, `invalid`, `rejected`, …).
    pub status: String,
    /// Whether the shard answered from its cache.
    pub cache_hit: bool,
    /// The shard's standard `served`-format response line, verbatim.
    pub response: String,
    /// The full payload (present exactly when `status` is `done`).
    pub payload: Option<JobPayload>,
}

/// A client connection to one shard, with the handshake already performed.
pub struct ShardClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    shard: String,
}

impl std::fmt::Debug for ShardClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardClient")
            .field("shard", &self.shard)
            .finish()
    }
}

impl ShardClient {
    /// Connects to `addr` and performs the `hello` handshake.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the socket fails, [`WireError::VersionMismatch`]
    /// if the shard speaks a different protocol or cache-key version,
    /// [`WireError::Handshake`] for other refusals, [`WireError::Malformed`]
    /// if the shard answers garbage.
    pub fn connect(addr: &str) -> Result<ShardClient, WireError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone()?;
        let mut client = ShardClient {
            reader: BufReader::new(stream),
            writer,
            shard: String::new(),
        };
        write_frame(
            &mut client.writer,
            &format!(
                "{{\"type\": \"hello\", \"proto\": {PROTO_VERSION}, \"cache_key\": {}}}",
                json::quote(etcs_core::CACHE_KEY_VERSION)
            ),
        )?;
        let frame = client.read_reply()?;
        match frame_type(&frame)? {
            "hello_ok" => {
                client.shard = str_field(&frame, "shard")?.to_owned();
                Ok(client)
            }
            "hello_err" => {
                let reason = str_field(&frame, "reason")
                    .unwrap_or("unspecified")
                    .to_owned();
                let theirs_proto = u64_field(&frame, "proto").unwrap_or(0);
                if theirs_proto != PROTO_VERSION {
                    return Err(WireError::VersionMismatch {
                        field: "proto",
                        ours: PROTO_VERSION.to_string(),
                        theirs: theirs_proto.to_string(),
                    });
                }
                let theirs_key = str_field(&frame, "cache_key").unwrap_or("");
                if theirs_key != etcs_core::CACHE_KEY_VERSION {
                    return Err(WireError::VersionMismatch {
                        field: "cache_key",
                        ours: etcs_core::CACHE_KEY_VERSION.to_owned(),
                        theirs: theirs_key.to_owned(),
                    });
                }
                Err(WireError::Handshake { reason })
            }
            other => Err(malformed(format!("unexpected handshake reply {other:?}"))),
        }
    }

    /// The shard's self-reported name from the handshake.
    pub fn shard(&self) -> &str {
        &self.shard
    }

    fn read_reply(&mut self) -> Result<Json, WireError> {
        match read_frame(&mut self.reader)? {
            Some(line) => parse_frame(&line),
            None => Err(WireError::Closed),
        }
    }

    /// Expects a reply of `want` type; maps server `error` frames to
    /// [`WireError::Remote`].
    fn expect_reply(&mut self, want: &str) -> Result<Json, WireError> {
        let frame = self.read_reply()?;
        match frame_type(&frame)? {
            t if t == want => Ok(frame),
            "error" => Err(WireError::Remote {
                reason: str_field(&frame, "reason")
                    .unwrap_or("unspecified")
                    .to_owned(),
            }),
            other => Err(malformed(format!("expected {want:?}, got {other:?}"))),
        }
    }

    /// Forwards one request line and waits for the shard's response.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] — in particular [`WireError::Closed`] /
    /// [`WireError::Io`] when the shard dies mid-job.
    pub fn job(&mut self, spec: &str) -> Result<JobDone, WireError> {
        write_frame(
            &mut self.writer,
            &format!("{{\"type\": \"job\", \"spec\": {}}}", json::quote(spec)),
        )?;
        let frame = self.expect_reply("done")?;
        let payload = match frame.get("payload") {
            None | Some(Json::Null) => None,
            Some(p) => Some(payload_from_wire(p)?),
        };
        Ok(JobDone {
            key: match frame.get("key").and_then(Json::as_str) {
                Some(s) => Some(hex_u128(s)?),
                None => None,
            },
            status: str_field(&frame, "status")?.to_owned(),
            cache_hit: str_field(&frame, "cache")? == "hit",
            response: str_field(&frame, "response")?.to_owned(),
            payload,
        })
    }

    /// Replicates a cache entry to this shard. Returns the digest the shard
    /// computed over the decoded payload.
    ///
    /// # Errors
    ///
    /// Any [`WireError`]; [`WireError::Remote`] if the shard refused the
    /// entry (e.g. caching disabled).
    pub fn put(&mut self, key: u128, payload: &JobPayload) -> Result<u128, WireError> {
        write_frame(
            &mut self.writer,
            &format!(
                "{{\"type\": \"put\", \"key\": \"{key:032x}\", \"payload\": {}}}",
                payload_to_wire(payload)
            ),
        )?;
        let frame = self.expect_reply("put_ok")?;
        hex_u128(str_field(&frame, "digest")?)
    }

    /// Forwards one replanning session record (`open`/`delta`/`tick`/
    /// `close`, the `served` batch format) and returns the shard's
    /// response line verbatim. The session lives on the shard, so a
    /// sequence of `replan` calls over one or more connections is one
    /// continuous warm-started session.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] — in particular [`WireError::Closed`] when the
    /// shard (and with it every open session) dies.
    pub fn replan(&mut self, record: &str) -> Result<String, WireError> {
        write_frame(
            &mut self.writer,
            &format!(
                "{{\"type\": \"replan\", \"line\": {}}}",
                json::quote(record)
            ),
        )?;
        let frame = self.expect_reply("replan_done")?;
        Ok(str_field(&frame, "response")?.to_owned())
    }

    /// Fetches the shard's recorded cache history.
    ///
    /// # Errors
    ///
    /// Any [`WireError`].
    pub fn histories(&mut self) -> Result<ShardHistory, WireError> {
        write_frame(&mut self.writer, "{\"type\": \"histories\"}")?;
        let frame = self.expect_reply("histories")?;
        history_from_wire(&frame)
    }

    /// Fetches the shard's live stats frame (raw JSON line).
    ///
    /// # Errors
    ///
    /// Any [`WireError`].
    pub fn stats(&mut self) -> Result<Json, WireError> {
        write_frame(&mut self.writer, "{\"type\": \"stats\"}")?;
        self.expect_reply("stats")
    }

    /// Asks the shard to stop listening and drain.
    ///
    /// # Errors
    ///
    /// Any [`WireError`].
    pub fn shutdown(&mut self) -> Result<(), WireError> {
        write_frame(&mut self.writer, "{\"type\": \"shutdown\"}")?;
        self.expect_reply("bye").map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::execute;
    use etcs_core::EncoderConfig;
    use etcs_sat::Interrupt;

    fn sample_payload(kind: JobKind) -> JobPayload {
        let request = JobRequest::new("p", kind, fixtures::running_example());
        let outcome = execute(
            &request,
            &EncoderConfig::default(),
            &Interrupt::none(),
            &Obs::disabled(),
        );
        outcome.payload().expect("solves").clone()
    }

    #[test]
    fn payload_wire_round_trip_preserves_the_digest() {
        for kind in [JobKind::Verify, JobKind::Generate, JobKind::Diagnose] {
            let payload = sample_payload(kind);
            let wire = payload_to_wire(&payload);
            let parsed = json::parse(&wire).expect("wire payload is valid JSON");
            let back = payload_from_wire(&parsed).expect("decodes");
            assert_eq!(back, payload, "{kind} round trip is lossless");
            assert_eq!(back.digest(), payload.digest());
        }
    }

    #[test]
    fn payload_from_wire_rejects_mangled_objects() {
        let payload = sample_payload(JobKind::Generate);
        let wire = payload_to_wire(&payload);
        for mangle in [
            wire.replace("\"kind\": \"generate\"", "\"kind\": \"bogus\""),
            wire.replace("\"feasible\": true", "\"feasible\": \"yes\""),
            wire.replace("\"search\": [", "\"search\": [999999,"),
        ] {
            let parsed = json::parse(&mangle).expect("still JSON");
            assert!(payload_from_wire(&parsed).is_err(), "accepted: {mangle}");
        }
    }

    #[test]
    fn history_wire_round_trips() {
        let events = vec![
            HistoryEvent {
                seq: 0,
                op: HistoryOp::Put,
                key: 0xdead_beef,
                digest: 42,
            },
            HistoryEvent {
                seq: 1,
                op: HistoryOp::Hit,
                key: 0xdead_beef,
                digest: 42,
            },
        ];
        let wire = history_to_wire("shard-a", &events);
        let parsed = json::parse(&wire).expect("valid JSON");
        let back = history_from_wire(&parsed).expect("decodes");
        assert_eq!(back.shard, "shard-a");
        assert_eq!(back.version, etcs_core::CACHE_KEY_VERSION);
        assert_eq!(back.events, events);
    }

    #[test]
    fn parse_request_line_matches_served_semantics() {
        let request = parse_request_line(
            "{\"id\": \"x\", \"kind\": \"verify\", \"scenario\": \"fixture:running_example\", \
             \"priority\": \"high\"}",
            "line 1",
            false,
            None,
        )
        .expect("parses");
        assert_eq!(request.id, "x");
        assert_eq!(request.kind, JobKind::Verify);
        assert_eq!(request.priority, Priority::High);
        assert!(parse_request_line("{}", "line 2", false, None)
            .unwrap_err()
            .contains("line 2"));
        assert!(parse_request_line("not json", "line 3", false, None).is_err());
    }
}
