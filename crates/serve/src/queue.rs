//! Bounded, priority-classed job queue with admission control.
//!
//! The queue is the service's single admission point: [`JobQueue::push`]
//! either accepts a job or rejects it *immediately* with a structured
//! [`RejectReason`] — callers are never blocked on submission, which is
//! what lets the service shed load instead of building unbounded latency.
//! Workers block on [`JobQueue::pop`], which drains priority classes
//! strictly high-to-low and returns `None` only once the queue is closed
//! **and** empty (graceful drain on shutdown).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use crate::job::{Priority, RejectReason};

/// Backpressure counters, readable at any time via [`JobQueue::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Jobs offered to the queue (admitted + rejected).
    pub submitted: u64,
    /// Jobs accepted.
    pub admitted: u64,
    /// Jobs refused by admission control.
    pub rejected: u64,
    /// Jobs currently waiting.
    pub depth: usize,
    /// Maximum depth ever observed.
    pub high_water: usize,
}

struct Inner<T> {
    queues: [VecDeque<T>; Priority::CLASSES],
    open: bool,
    stats: QueueStats,
}

impl<T> Inner<T> {
    fn depth(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

/// A bounded multi-priority MPMC queue (mutex + condvar, no dependencies).
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> std::fmt::Debug for JobQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobQueue")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

impl<T> JobQueue<T> {
    /// Creates an open queue holding at most `capacity` waiting jobs
    /// (a capacity of zero rejects everything — useful in tests).
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(Inner {
                queues: std::array::from_fn(|_| VecDeque::new()),
                open: true,
                stats: QueueStats::default(),
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offers a job. Never blocks: returns the admission decision at once.
    ///
    /// # Errors
    ///
    /// [`RejectReason::QueueFull`] when `capacity` jobs are already
    /// waiting, [`RejectReason::ShuttingDown`] after [`JobQueue::close`].
    pub fn push(&self, priority: Priority, item: T) -> Result<(), RejectReason> {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.stats.submitted += 1;
        if !inner.open {
            inner.stats.rejected += 1;
            return Err(RejectReason::ShuttingDown);
        }
        let depth = inner.depth();
        if depth >= self.capacity {
            inner.stats.rejected += 1;
            return Err(RejectReason::QueueFull {
                capacity: self.capacity,
                depth,
            });
        }
        inner.queues[priority.index()].push_back(item);
        inner.stats.admitted += 1;
        inner.stats.depth = depth + 1;
        inner.stats.high_water = inner.stats.high_water.max(depth + 1);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Takes the next job, highest priority class first (FIFO within a
    /// class). Blocks while the queue is open but empty; returns `None`
    /// once it is closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            for queue in inner.queues.iter_mut() {
                if let Some(item) = queue.pop_front() {
                    inner.stats.depth = inner.depth();
                    return Some(item);
                }
            }
            if !inner.open {
                return None;
            }
            inner = self.available.wait(inner).expect("queue lock");
        }
    }

    /// Closes the queue: future pushes are rejected, waiting workers wake
    /// up, and `pop` drains what is already admitted before returning
    /// `None`.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").open = false;
        self.available.notify_all();
    }

    /// A snapshot of the backpressure counters.
    pub fn stats(&self) -> QueueStats {
        let inner = self.inner.lock().expect("queue lock");
        let mut stats = inner.stats;
        stats.depth = inner.depth();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_when_full_with_observed_depth() {
        let q = JobQueue::new(2);
        q.push(Priority::Normal, 1).unwrap();
        q.push(Priority::Normal, 2).unwrap();
        assert_eq!(
            q.push(Priority::Normal, 3),
            Err(RejectReason::QueueFull {
                capacity: 2,
                depth: 2
            })
        );
        let stats = q.stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.high_water, 2);
    }

    #[test]
    fn pop_drains_high_priority_first() {
        let q = JobQueue::new(8);
        q.push(Priority::Low, "low").unwrap();
        q.push(Priority::Normal, "normal").unwrap();
        q.push(Priority::High, "high").unwrap();
        q.push(Priority::High, "high2").unwrap();
        q.close();
        assert_eq!(q.pop(), Some("high"));
        assert_eq!(q.pop(), Some("high2"));
        assert_eq!(q.pop(), Some("normal"));
        assert_eq!(q.pop(), Some("low"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_rejects_new_but_drains_admitted() {
        let q = JobQueue::new(8);
        q.push(Priority::Normal, 7).unwrap();
        q.close();
        assert_eq!(q.push(Priority::Normal, 8), Err(RejectReason::ShuttingDown));
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_pop_wakes_on_push() {
        use std::sync::Arc;
        let q = Arc::new(JobQueue::new(4));
        let q2 = Arc::clone(&q);
        let handle = std::thread::spawn(move || q2.pop());
        // Give the worker a moment to block, then feed it.
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.push(Priority::Normal, 42).unwrap();
        assert_eq!(handle.join().unwrap(), Some(42));
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let q = JobQueue::new(0);
        assert!(matches!(
            q.push(Priority::High, ()),
            Err(RejectReason::QueueFull { capacity: 0, .. })
        ));
    }
}
