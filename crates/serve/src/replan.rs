//! The streaming replan surface of `served`: JSONL session records over
//! [`etcs_replan::ReplanSession`].
//!
//! A batch input line carrying a `"record"` field (or the wire protocol's
//! `replan` frame) is a *session record* rather than a job request. Records
//! are handled synchronously, in input order — a replanning session is a
//! stateful conversation, not an independent job — and every record
//! produces exactly one response line:
//!
//! | record  | request fields                                        | response           |
//! |---------|-------------------------------------------------------|--------------------|
//! | `open`  | `session`, `scenario`, `lazy?`, `tick_budget_ms?`     | `opened`           |
//! | `delta` | `session`, `delta` (`.delta` trace text, `\n`-escaped)| `delta_ok`         |
//! | `tick`  | `session`                                             | `ticked`           |
//! | `close` | `session`                                             | `closed` (counters)|
//!
//! Malformed records, unknown sessions, `.delta` parse errors (reported
//! with the trace parser's line+column message) and rejected deltas all
//! answer `{"record": "error", …}` and count as failures for the process
//! exit code; the session itself — if one exists — stays usable, exactly
//! like [`etcs_replan::ReplanSession::apply`] rejecting a delta.
//!
//! A `ticked` response carries a `verdict_digest` computed with the same
//! construction as [`crate::JobPayload::verdict_digest`] under the
//! `optimize_incremental` kind, so a streamed tick is directly comparable
//! to the cold `optimize_incremental` *job* for the same patched scenario
//! — which is how `ci/check.sh` proves warm replans change nothing.

use std::collections::BTreeMap;
use std::time::Duration;

use etcs_obs::json::{self, Json};
use etcs_obs::Obs;
use etcs_replan::{parse_trace, ReplanConfig, ReplanSession, ReplanStats, TickReport, TraceOp};

use crate::job::{verdict_digest_of, JobKind};
use crate::wire::load_scenario;

/// All open replanning sessions of one `served` process, keyed by the
/// client-chosen session id, plus the accumulated counters of sessions
/// already closed (so the terminal stats record covers the whole run).
pub struct ReplanManager {
    base: ReplanConfig,
    obs: Obs,
    sessions: BTreeMap<String, ReplanSession>,
    closed: ReplanStats,
}

impl std::fmt::Debug for ReplanManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplanManager")
            .field("sessions", &self.sessions.len())
            .field("closed", &self.closed)
            .finish()
    }
}

impl ReplanManager {
    /// A manager whose sessions default to `base` (service encoder config,
    /// CLI `--lazy` default); `open` records override `lazy` and
    /// `tick_budget_ms` per session.
    pub fn new(base: ReplanConfig, obs: Obs) -> ReplanManager {
        ReplanManager {
            base,
            obs,
            sessions: BTreeMap::new(),
            closed: ReplanStats::default(),
        }
    }

    /// Service-wide replan counters: every closed session plus every
    /// session still open.
    pub fn stats(&self) -> ReplanStats {
        self.sessions
            .values()
            .fold(self.closed, |acc, s| acc.merged(s.stats()))
    }

    /// Handles one session record line; returns the response line and
    /// whether it counts as a failure for the process exit code.
    pub fn handle(&mut self, line: &str, label: &str) -> (String, bool) {
        match self.dispatch(line) {
            Ok(response) => (response, false),
            Err((session, reason)) => (
                format!(
                    "{{\"record\": \"error\", \"session\": {}, \"reason\": {}}}",
                    json::quote(&session),
                    json::quote(&format!("{label}: {reason}")),
                ),
                true,
            ),
        }
    }

    fn dispatch(&mut self, line: &str) -> Result<String, (String, String)> {
        let value = json::parse(line).map_err(|e| (String::new(), e.to_string()))?;
        let record = value
            .get("record")
            .and_then(Json::as_str)
            .ok_or_else(|| (String::new(), "missing \"record\"".to_string()))?
            .to_owned();
        let session = value
            .get("session")
            .and_then(Json::as_str)
            .ok_or_else(|| (String::new(), "missing \"session\"".to_string()))?
            .to_owned();
        let err = |message: String| (session.clone(), message);
        match record.as_str() {
            "open" => {
                if self.sessions.contains_key(&session) {
                    return Err(err("session is already open".to_string()));
                }
                let spec = value
                    .get("scenario")
                    .and_then(Json::as_str)
                    .ok_or_else(|| err("missing \"scenario\"".to_string()))?;
                let scenario = load_scenario(spec).map_err(err)?;
                let mut config = self.base.clone();
                if let Some(Json::Bool(lazy)) = value.get("lazy") {
                    config.lazy = *lazy;
                }
                if let Some(ms) = value.get("tick_budget_ms").and_then(Json::as_f64) {
                    if ms <= 0.0 {
                        return Err(err("tick_budget_ms must be positive".to_string()));
                    }
                    config.tick_budget = Some(Duration::from_millis(ms as u64));
                }
                let trains = scenario.schedule.runs().len();
                let opened = ReplanSession::new_obs(scenario, config, &self.obs)
                    .map_err(|e| err(e.to_string()))?;
                self.sessions.insert(session.clone(), opened);
                Ok(format!(
                    "{{\"record\": \"opened\", \"session\": {}, \"trains\": {trains}}}",
                    json::quote(&session)
                ))
            }
            "delta" => {
                let text = value
                    .get("delta")
                    .and_then(Json::as_str)
                    .ok_or_else(|| err("missing \"delta\"".to_string()))?;
                let live = self
                    .sessions
                    .get_mut(&session)
                    .ok_or_else(|| err("unknown session".to_string()))?;
                let ops = parse_trace(text).map_err(|e| err(e.to_string()))?;
                // Applied left to right; a rejection mid-record leaves the
                // earlier (accepted) deltas in place, like a trace replay
                // stopping at the bad line.
                let mut applied = Vec::new();
                for op in &ops {
                    match op {
                        TraceOp::Tick => {
                            return Err(err(
                                "a delta record cannot tick; send a tick record".to_string()
                            ))
                        }
                        TraceOp::Delta(delta) => {
                            live.apply(delta).map_err(|e| err(e.to_string()))?;
                            applied.push(json::quote(delta.kind()));
                        }
                    }
                }
                Ok(format!(
                    "{{\"record\": \"delta_ok\", \"session\": {}, \"applied\": [{}]}}",
                    json::quote(&session),
                    applied.join(", ")
                ))
            }
            "tick" => {
                let live = self
                    .sessions
                    .get_mut(&session)
                    .ok_or_else(|| err("unknown session".to_string()))?;
                Ok(tick_json(&session, &live.tick()))
            }
            "close" => {
                let live = self
                    .sessions
                    .remove(&session)
                    .ok_or_else(|| err("unknown session".to_string()))?;
                let stats = live.stats();
                self.closed = self.closed.merged(stats);
                Ok(format!(
                    "{{\"record\": \"closed\", \"session\": {}, {}}}",
                    json::quote(&session),
                    replan_stats_json(&stats)
                ))
            }
            other => Err(err(format!("unknown record {other:?}"))),
        }
    }
}

/// One `ticked` response line.
fn tick_json(session: &str, r: &TickReport) -> String {
    let costs: Vec<String> = r.costs.iter().map(u64::to_string).collect();
    let late: Vec<String> = r.late_trains.iter().map(|t| json::quote(t)).collect();
    let digest = verdict_digest_of(JobKind::OptimizeIncremental, r.feasible, &r.costs);
    format!(
        "{{\"record\": \"ticked\", \"session\": {}, \"tick\": {}, \"warm\": {}, \
         \"stale\": {}, \"feasible\": {}, \"costs\": [{}], \"conflicts\": {}, \
         \"solver_calls\": {}, \"late_trains\": [{}], \"verdict_digest\": \"{digest:032x}\"}}",
        json::quote(session),
        r.tick,
        r.warm,
        r.stale,
        r.feasible,
        costs.join(", "),
        r.conflicts,
        r.solver_calls,
        late.join(", "),
    )
}

/// The `"replan": {…}` member of a stats record body.
pub fn replan_stats_json(stats: &ReplanStats) -> String {
    format!(
        "\"replan\": {{\"ticks\": {}, \"warm_hits\": {}, \"cold_fallbacks\": {}, \
         \"deadline_misses\": {}, \"deltas\": {}, \"rejected_deltas\": {}}}",
        stats.ticks,
        stats.warm_hits,
        stats.cold_fallbacks,
        stats.deadline_misses,
        stats.deltas,
        stats.rejected_deltas,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager() -> ReplanManager {
        ReplanManager::new(ReplanConfig::default(), Obs::disabled())
    }

    #[test]
    fn a_session_conversation_round_trips() {
        let mut m = manager();
        let (opened, failed) = m.handle(
            r#"{"record": "open", "session": "s1", "scenario": "fixture:running_example"}"#,
            "line 1",
        );
        assert!(!failed, "{opened}");
        assert!(opened.contains("\"record\": \"opened\""));
        assert!(opened.contains("\"trains\": 4"));

        let (ticked, failed) = m.handle(r#"{"record": "tick", "session": "s1"}"#, "line 2");
        assert!(!failed, "{ticked}");
        assert!(ticked.contains("\"feasible\": true"));
        assert!(ticked.contains("\"warm\": false"));
        assert!(ticked.contains("\"verdict_digest\": \""));

        let (delta, failed) = m.handle(
            r#"{"record": "delta", "session": "s1", "delta": "deadline Train 1 : arr 0:04:00"}"#,
            "line 3",
        );
        assert!(!failed, "{delta}");
        assert!(delta.contains("\"applied\": [\"deadline\"]"));

        let (warm, failed) = m.handle(r#"{"record": "tick", "session": "s1"}"#, "line 4");
        assert!(!failed, "{warm}");
        assert!(warm.contains("\"warm\": true"));

        let (closed, failed) = m.handle(r#"{"record": "close", "session": "s1"}"#, "line 5");
        assert!(!failed, "{closed}");
        assert!(closed.contains("\"ticks\": 2"));
        assert!(closed.contains("\"warm_hits\": 1"));
        // Closed sessions keep counting in the service-wide stats.
        assert_eq!(m.stats().ticks, 2);
        assert_eq!(m.sessions.len(), 0);
    }

    #[test]
    fn errors_are_labelled_and_do_not_wedge_the_manager() {
        let mut m = manager();
        for (line, want) in [
            ("not json", "line 9: "),
            // The reason text lands inside a quoted JSON string, so the
            // quotes around the field name arrive backslash-escaped.
            (r#"{"record": "tick"}"#, r#"missing \"session\""#),
            (
                r#"{"record": "tick", "session": "nope"}"#,
                "unknown session",
            ),
            (
                r#"{"record": "frobnicate", "session": "s"}"#,
                "unknown record",
            ),
        ] {
            let (response, failed) = m.handle(line, "line 9");
            assert!(failed, "{line} should fail");
            assert!(response.contains("\"record\": \"error\""), "{response}");
            assert!(response.contains(want), "{response} lacks {want}");
        }
        // A parse error inside a delta surfaces the trace parser's
        // line+column message verbatim.
        m.handle(
            r#"{"record": "open", "session": "s1", "scenario": "fixture:running_example"}"#,
            "line 1",
        );
        let (response, failed) = m.handle(
            r#"{"record": "delta", "session": "s1", "delta": "warp Train 1"}"#,
            "line 2",
        );
        assert!(failed);
        assert!(
            response.contains("delta parse error at line 1, column 1"),
            "{response}"
        );
        let (response, failed) = m.handle(
            r#"{"record": "delta", "session": "s1", "delta": "tick"}"#,
            "line 3",
        );
        assert!(failed);
        assert!(response.contains("cannot tick"), "{response}");
        // The session survived all of it.
        let (ticked, failed) = m.handle(r#"{"record": "tick", "session": "s1"}"#, "line 4");
        assert!(!failed, "{ticked}");
    }

    #[test]
    fn duplicate_open_and_rejected_deltas_fail_cleanly() {
        let mut m = manager();
        let open = r#"{"record": "open", "session": "s1", "scenario": "fixture:running_example"}"#;
        assert!(!m.handle(open, "line 1").1);
        let (response, failed) = m.handle(open, "line 2");
        assert!(failed);
        assert!(response.contains("already open"), "{response}");
        let (response, failed) = m.handle(
            r#"{"record": "delta", "session": "s1", "delta": "remove Ghost Train"}"#,
            "line 3",
        );
        assert!(failed);
        assert!(response.contains("delta rejected"), "{response}");
        assert_eq!(m.stats().rejected_deltas, 1);
    }
}
