//! Content-addressed result cache with LRU eviction.
//!
//! Keys come from [`etcs_core::cache_key`]: a canonical 128-bit hash of
//! everything that determines a task's deterministic result. Values are
//! complete [`JobPayload`]s — a hit is, by construction, bit-identical to
//! re-running the solve (wall-clock data never enters the payload).
//!
//! Eviction is exact least-recently-used over a bounded entry count. The
//! capacity is a handful of solved instances, so the O(capacity) eviction
//! scan is cheaper than maintaining an intrusive list would be.

use std::collections::HashMap;

use crate::job::JobPayload;

/// Hit/miss/eviction counters, readable via [`ResultCache::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a payload.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Payloads stored.
    pub insertions: u64,
    /// Payloads evicted to make room.
    pub evictions: u64,
}

struct Entry {
    payload: JobPayload,
    last_used: u64,
}

/// A bounded LRU map from content hash to finished payload.
pub struct ResultCache {
    capacity: usize,
    entries: HashMap<u128, Entry>,
    tick: u64,
    stats: CacheStats,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("capacity", &self.capacity)
            .field("len", &self.entries.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` payloads.
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            entries: HashMap::with_capacity(capacity),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configured entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of payloads currently stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: u128) -> Option<JobPayload> {
        self.tick += 1;
        match self.entries.get_mut(&key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.stats.hits += 1;
                Some(entry.payload.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores `payload` under `key`, evicting the least-recently-used
    /// entry if the cache is full. A zero-capacity cache stores nothing.
    pub fn insert(&mut self, key: u128, payload: JobPayload) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.payload = payload;
            entry.last_used = self.tick;
            return;
        }
        if self.entries.len() >= self.capacity {
            if let Some(&victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                self.entries.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.entries.insert(
            key,
            Entry {
                payload,
                last_used: self.tick,
            },
        );
        self.stats.insertions += 1;
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobKind;
    use etcs_core::EncodingStats;
    use etcs_sat::Stats;

    fn payload(tagged_cost: u64) -> JobPayload {
        JobPayload {
            kind: JobKind::Generate,
            feasible: true,
            costs: vec![tagged_cost],
            plan: None,
            diagnosis: None,
            stats: EncodingStats::default(),
            solver_calls: 1,
            search: Stats::default(),
        }
    }

    #[test]
    fn hit_returns_the_stored_payload() {
        let mut cache = ResultCache::new(4);
        cache.insert(1, payload(10));
        assert_eq!(cache.get(1), Some(payload(10)));
        assert_eq!(cache.get(2), None);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn evicts_least_recently_used_and_respects_capacity() {
        let mut cache = ResultCache::new(2);
        cache.insert(1, payload(1));
        cache.insert(2, payload(2));
        // Touch 1 so that 2 becomes the LRU victim.
        assert!(cache.get(1).is_some());
        cache.insert(3, payload(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(1).is_some(), "recently used survives");
        assert!(cache.get(2).is_none(), "LRU entry evicted");
        assert!(cache.get(3).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut cache = ResultCache::new(2);
        cache.insert(1, payload(1));
        cache.insert(2, payload(2));
        cache.insert(1, payload(100));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.get(1), Some(payload(100)));
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let mut cache = ResultCache::new(0);
        cache.insert(1, payload(1));
        assert!(cache.is_empty());
        assert_eq!(cache.get(1), None);
    }
}
