//! The job service: bounded admission, a worker-thread pool with per-job
//! deadlines and cooperative cancellation, and a shared result cache with
//! single-flight duplicate suppression (concurrent jobs with the same
//! cache key trigger exactly one solve — and the workers that popped the
//! duplicates park them on the leader's flight and go straight back to the
//! queue, so duplicate-heavy mixes never serialise the pool).
//!
//! Lifecycle: [`Service::new`] spawns the workers; [`Service::submit`]
//! runs admission control and returns a [`JobTicket`] (or an immediate
//! rejection); each ticket can [`JobTicket::cancel`] its job at any point
//! and [`JobTicket::wait`] for the response. Dropping the service closes
//! the queue, drains it, and joins every worker.
//!
//! Observability vocabulary (all through `etcs-obs`):
//! `serve.enqueue` / `serve.admit` / `serve.reject` events at admission,
//! one `serve.job` span per executed job (fields: `job`, `kind`,
//! `priority`, `worker`, closing with `status` and `cache`), and the
//! counters `serve.jobs`, `serve.cache.hits`, `serve.cache.misses`,
//! `serve.cancelled`, `serve.deadline_exceeded`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use etcs_core::EncoderConfig;
use etcs_obs::{Obs, Span};
use etcs_sat::{Interrupt, InterruptReason};

use crate::cache::{CacheStats, ResultCache};
use crate::history::{HistoryEvent, HistoryLog, HistoryOp};
use crate::job::{execute, JobOutcome, JobPayload, JobRequest, JobResponse};
use crate::queue::{JobQueue, QueueStats};

/// Tunables for a [`Service`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Maximum jobs waiting for a worker before admission control rejects.
    pub queue_capacity: usize,
    /// Result-cache entries (`0` disables caching entirely).
    pub cache_capacity: usize,
    /// Deadline applied to jobs that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Encoder configuration shared by every job (part of the cache key).
    pub encoder: EncoderConfig,
    /// Record a per-fingerprint history of cache put/hit events (see
    /// [`crate::history`]) for the fleet's consistency checker. Off by
    /// default; `served --listen` turns it on.
    pub record_history: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 128,
            default_deadline: None,
            encoder: EncoderConfig::default(),
            record_history: false,
        }
    }
}

/// Terminal-state counters: how every popped job ended. (Rejections never
/// reach a worker and are counted by [`QueueStats::rejected`] instead.)
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TerminalStats {
    /// Jobs that ran to completion (cold or from the cache).
    pub done: u64,
    /// Jobs cancelled by their ticket or a shared token.
    pub cancelled: u64,
    /// Jobs whose wall-clock deadline expired.
    pub deadline_exceeded: u64,
    /// Jobs with malformed scenarios.
    pub invalid: u64,
}

#[derive(Default)]
struct TerminalCounters {
    done: AtomicU64,
    cancelled: AtomicU64,
    deadline_exceeded: AtomicU64,
    invalid: AtomicU64,
}

impl TerminalCounters {
    fn bump(&self, outcome: &JobOutcome) {
        match outcome {
            JobOutcome::Done(_) => &self.done,
            JobOutcome::Cancelled => &self.cancelled,
            JobOutcome::DeadlineExceeded => &self.deadline_exceeded,
            JobOutcome::Invalid(_) => &self.invalid,
            // Rejections resolve at admission, before any worker pops them.
            JobOutcome::Rejected(_) => return,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> TerminalStats {
        TerminalStats {
            done: self.done.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            invalid: self.invalid.load(Ordering::Relaxed),
        }
    }
}

/// One-shot mailbox a worker fills with the finished response.
struct Slot {
    result: Mutex<Option<JobResponse>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Arc<Slot> {
        Arc::new(Slot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn fill(&self, response: JobResponse) {
        *self.result.lock().expect("slot lock") = Some(response);
        self.ready.notify_all();
    }

    fn wait(&self) -> JobResponse {
        let mut guard = self.result.lock().expect("slot lock");
        loop {
            if let Some(response) = guard.take() {
                return response;
            }
            guard = self.ready.wait(guard).expect("slot lock");
        }
    }
}

struct QueuedJob {
    request: JobRequest,
    interrupt: Interrupt,
    slot: Arc<Slot>,
}

/// The result cache plus its single-flight registry: the first worker to
/// miss on a key becomes that key's *leader*; jobs hitting the same key
/// while the leader is still solving are handed to it as [`Waiter`]s and
/// answered from its published result instead of repeating a multi-second
/// solve — while the worker that popped them goes straight back to the
/// queue for independent work.
struct CacheLayer {
    results: Mutex<ResultCache>,
    pending: Mutex<HashMap<u128, Arc<Inflight>>>,
    /// The fleet consistency checker's raw material (present only when
    /// [`ServeConfig::record_history`] is on). Events are recorded *while
    /// holding the `results` lock*, so the recorded order is a
    /// linearisation of the cache's actual put/hit order: a hit can never
    /// be sequenced before the put that explains it.
    history: Option<Mutex<HistoryLog>>,
}

impl CacheLayer {
    /// Cache probe, recording a history hit when one is served.
    fn get(&self, key: u128) -> Option<JobPayload> {
        let mut results = self.results.lock().expect("cache lock");
        let payload = results.get(key);
        if let (Some(p), Some(history)) = (&payload, &self.history) {
            history
                .lock()
                .expect("history lock")
                .record(HistoryOp::Hit, key, p.digest());
        }
        payload
    }

    /// Cache publish, recording a history put.
    fn put(&self, key: u128, payload: &JobPayload) {
        let mut results = self.results.lock().expect("cache lock");
        results.insert(key, payload.clone());
        if let Some(history) = &self.history {
            history
                .lock()
                .expect("history lock")
                .record(HistoryOp::Put, key, payload.digest());
        }
    }

    /// Records a hit that was served from a leader's in-memory copy after
    /// eviction raced the entry out of the cache. Program order still
    /// guarantees the leader's put was recorded first.
    fn record_hit(&self, key: u128, payload: &JobPayload) {
        if let Some(history) = &self.history {
            history
                .lock()
                .expect("history lock")
                .record(HistoryOp::Hit, key, payload.digest());
        }
    }
}

/// One in-flight solve and the jobs parked on it. The registry entry lives
/// in [`CacheLayer::pending`] for exactly as long as the leader is solving;
/// registration and removal both happen under the pending lock, so a waiter
/// can never be orphaned on a finished flight.
struct Inflight {
    waiters: Mutex<Vec<Waiter>>,
}

/// Everything needed to finish a parked job on the leader's thread: the
/// popping worker keeps none of it and is immediately free for other work.
/// This is what fixes the pool's flat scaling on duplicate-heavy job mixes
/// — the old design blocked the popping worker until the leader finished,
/// collapsing N workers onto one effective solve stream.
struct Waiter {
    request: JobRequest,
    interrupt: Interrupt,
    slot: Arc<Slot>,
    span: Span,
    started: Instant,
}

/// Handle to an admitted job.
#[derive(Clone)]
pub struct JobTicket {
    id: String,
    interrupt: Interrupt,
    slot: Arc<Slot>,
}

impl std::fmt::Debug for JobTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobTicket").field("id", &self.id).finish()
    }
}

impl JobTicket {
    /// The request id this ticket tracks.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Requests cooperative cancellation. Takes effect at the solver's
    /// next poll point; a job still in the queue resolves to `Cancelled`
    /// without ever running.
    pub fn cancel(&self) {
        self.interrupt.trigger();
    }

    /// Blocks until the job reaches a terminal state.
    pub fn wait(self) -> JobResponse {
        self.slot.wait()
    }
}

/// A long-lived, concurrent job service over the five design tasks.
pub struct Service {
    queue: Arc<JobQueue<QueuedJob>>,
    cache: Option<Arc<CacheLayer>>,
    workers: Vec<JoinHandle<()>>,
    terminals: Arc<TerminalCounters>,
    obs: Obs,
    config: ServeConfig,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("workers", &self.config.workers)
            .field("queue", &self.queue.stats())
            .finish()
    }
}

impl Service {
    /// Starts a service with no observability.
    pub fn new(config: ServeConfig) -> Self {
        Self::with_obs(config, Obs::disabled())
    }

    /// Starts a service emitting spans, events and counters through `obs`.
    pub fn with_obs(config: ServeConfig, obs: Obs) -> Self {
        let queue = Arc::new(JobQueue::new(config.queue_capacity));
        let cache = (config.cache_capacity > 0).then(|| {
            Arc::new(CacheLayer {
                results: Mutex::new(ResultCache::new(config.cache_capacity)),
                pending: Mutex::new(HashMap::new()),
                history: config.record_history.then(Mutex::default),
            })
        });
        let terminals = Arc::new(TerminalCounters::default());
        let workers = (0..config.workers.max(1))
            .map(|worker_id| {
                let queue = Arc::clone(&queue);
                let cache = cache.clone();
                let terminals = Arc::clone(&terminals);
                let obs = obs.clone();
                let config = config.clone();
                std::thread::spawn(move || {
                    worker_loop(worker_id, &queue, cache, &terminals, &config, &obs)
                })
            })
            .collect();
        Service {
            queue,
            cache,
            workers,
            terminals,
            obs,
            config,
        }
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Offers a job to admission control. On admission returns a
    /// [`JobTicket`]; on rejection returns a complete (terminal) response
    /// immediately.
    pub fn submit(&self, request: JobRequest) -> Result<JobTicket, JobResponse> {
        self.obs.event(
            "serve.enqueue",
            &[
                ("job", request.id.clone().into()),
                ("kind", request.kind.name().into()),
                ("priority", request.priority.name().into()),
            ],
        );
        let interrupt = Interrupt::new();
        let slot = Slot::new();
        let queued = QueuedJob {
            request: request.clone(),
            interrupt: interrupt.clone(),
            slot: Arc::clone(&slot),
        };
        match self.queue.push(request.priority, queued) {
            Ok(()) => {
                self.obs.event(
                    "serve.admit",
                    &[
                        ("job", request.id.clone().into()),
                        ("depth", (self.queue.stats().depth as u64).into()),
                    ],
                );
                Ok(JobTicket {
                    id: request.id,
                    interrupt,
                    slot,
                })
            }
            Err(reason) => {
                self.obs.event(
                    "serve.reject",
                    &[
                        ("job", request.id.clone().into()),
                        ("reason", reason.to_string().into()),
                    ],
                );
                self.obs.counter_add("serve.rejected", 1);
                Err(JobResponse {
                    id: request.id,
                    outcome: JobOutcome::Rejected(reason),
                    cache_hit: false,
                    wall: Duration::ZERO,
                })
            }
        }
    }

    /// Submits a whole batch and waits for every job, preserving input
    /// order. Rejected jobs appear as terminal responses in place.
    pub fn run_batch(&self, requests: Vec<JobRequest>) -> Vec<JobResponse> {
        let tickets: Vec<Result<JobTicket, JobResponse>> =
            requests.into_iter().map(|r| self.submit(r)).collect();
        tickets
            .into_iter()
            .map(|t| match t {
                Ok(ticket) => ticket.wait(),
                Err(response) => response,
            })
            .collect()
    }

    /// Queue backpressure counters.
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// Result-cache counters (`None` when caching is disabled).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache
            .as_ref()
            .map(|c| c.results.lock().expect("cache lock").stats())
    }

    /// Terminal-state counters over every popped job so far.
    pub fn terminal_stats(&self) -> TerminalStats {
        self.terminals.snapshot()
    }

    /// Stores a payload under a caller-supplied fingerprint — the fleet's
    /// cache-replication path (a `put` frame). The put is recorded in the
    /// history like any local publish. Returns `false` when caching is
    /// disabled.
    pub fn cache_insert(&self, key: u128, payload: JobPayload) -> bool {
        match &self.cache {
            Some(layer) => {
                layer.put(key, &payload);
                true
            }
            None => false,
        }
    }

    /// Snapshot of the recorded cache history, in `seq` order (empty when
    /// [`ServeConfig::record_history`] is off or caching is disabled).
    pub fn history(&self) -> Vec<HistoryEvent> {
        self.cache
            .as_ref()
            .and_then(|c| c.history.as_ref())
            .map(|h| h.lock().expect("history lock").snapshot())
            .unwrap_or_default()
    }

    /// Closes admission, drains the queue, and joins every worker.
    /// Called automatically on drop; explicit calls are idempotent.
    pub fn shutdown(&mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.obs.flush_metrics();
        self.obs.flush();
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(
    worker_id: usize,
    queue: &JobQueue<QueuedJob>,
    cache: Option<Arc<CacheLayer>>,
    terminals: &TerminalCounters,
    config: &ServeConfig,
    obs: &Obs,
) {
    while let Some(job) = queue.pop() {
        let started = Instant::now();
        let QueuedJob {
            request,
            interrupt,
            slot,
        } = job;
        let span = obs.span_with(
            "serve.job",
            &[
                ("job", request.id.clone().into()),
                ("kind", request.kind.name().into()),
                ("priority", request.priority.name().into()),
                ("worker", (worker_id as u64).into()),
            ],
        );
        if interrupt.is_triggered() {
            // Cancelled while still queued: never touch solver or cache.
            finish_job(
                obs,
                terminals,
                span,
                JobOutcome::Cancelled,
                false,
                started,
                &slot,
                request.id,
            );
            continue;
        }
        // The deadline clock starts here: queueing time is free, riding on
        // another worker's in-flight solve of the same key is not.
        if let Some(deadline) = request.deadline.or(config.default_deadline) {
            interrupt.arm_deadline(deadline);
        }
        match &cache {
            None => {
                let outcome = execute(&request, &config.encoder, &interrupt, obs);
                finish_job(
                    obs, terminals, span, outcome, false, started, &slot, request.id,
                );
            }
            Some(layer) => {
                let job = Waiter {
                    request,
                    interrupt,
                    slot,
                    span,
                    started,
                };
                single_flight(layer, terminals, &config.encoder, obs, job);
            }
        }
    }
}

/// Closes the books on one job, wherever it was resolved: the `serve.jobs`
/// counter, the terminal-state counters, the `serve.job` span and the
/// caller's mailbox. Every popped job goes through this exactly once.
#[allow(clippy::too_many_arguments)]
fn finish_job(
    obs: &Obs,
    terminals: &TerminalCounters,
    span: Span,
    outcome: JobOutcome,
    cache_hit: bool,
    started: Instant,
    slot: &Slot,
    id: String,
) {
    obs.counter_add("serve.jobs", 1);
    terminals.bump(&outcome);
    match outcome {
        JobOutcome::Cancelled => obs.counter_add("serve.cancelled", 1),
        JobOutcome::DeadlineExceeded => obs.counter_add("serve.deadline_exceeded", 1),
        _ => {}
    }
    span.close_with(&[
        ("status", outcome.status().into()),
        ("cache", if cache_hit { "hit" } else { "miss" }.into()),
    ]);
    slot.fill(JobResponse {
        id,
        outcome,
        cache_hit,
        wall: started.elapsed(),
    });
}

/// Cache lookup with duplicate suppression. Exactly one worker solves a
/// given key at a time; every other job hitting that key is parked on the
/// leader's flight — its worker returns to the queue immediately — and is
/// answered from the published result (a hit, bit-identical by
/// construction). If the leader ends without a payload (cancelled,
/// deadline, invalid), the first waiter whose own token has not fired is
/// promoted to re-run the solve on the leader's thread rather than
/// inheriting the failure.
///
/// The cache is probed *under the pending lock*, and a leader publishes
/// its result before releasing its key — so between "no leader running"
/// and "not in the cache" no completed solve can slip through, and the
/// hit/miss counters are exact: one miss per executed solve, one hit per
/// job answered from a stored result.
fn single_flight(
    layer: &CacheLayer,
    terminals: &TerminalCounters,
    encoder: &EncoderConfig,
    obs: &Obs,
    job: Waiter,
) {
    let key = job.request.cache_key(encoder);
    {
        let mut pending = layer.pending.lock().expect("pending lock");
        if let Some(flight) = pending.get(&key) {
            // Park on the running leader; this worker is free again.
            flight.waiters.lock().expect("waiter lock").push(job);
            return;
        }
        if let Some(payload) = layer.get(key) {
            drop(pending);
            obs.counter_add("serve.cache.hits", 1);
            finish_job(
                obs,
                terminals,
                job.span,
                JobOutcome::Done(Box::new(payload)),
                true,
                job.started,
                &job.slot,
                job.request.id,
            );
            return;
        }
        pending.insert(
            key,
            Arc::new(Inflight {
                waiters: Mutex::new(Vec::new()),
            }),
        );
    }
    lead(layer, terminals, key, encoder, obs, job);
}

/// Runs the in-flight solve for `key` as its leader, publishes the result,
/// finishes the leader's own job, then drains every parked waiter —
/// backfilling them as cache hits, resolving fired tokens to their own
/// interrupt outcome, and promoting a live waiter to a fresh leader when
/// the solve ended without a payload.
fn lead(
    layer: &CacheLayer,
    terminals: &TerminalCounters,
    key: u128,
    encoder: &EncoderConfig,
    obs: &Obs,
    job: Waiter,
) {
    let mut leader = job;
    loop {
        obs.counter_add("serve.cache.misses", 1);
        let outcome = execute(&leader.request, encoder, &leader.interrupt, obs);
        let payload = match &outcome {
            JobOutcome::Done(p) => {
                let payload = (**p).clone();
                layer.put(key, &payload);
                Some(payload)
            }
            _ => None,
        };
        finish_job(
            obs,
            terminals,
            leader.span,
            outcome,
            false,
            leader.started,
            &leader.slot,
            leader.request.id,
        );

        // Drain the flight: promotion keeps the key registered (late
        // arrivals keep parking on it); completion removes it atomically
        // with taking the waiter list, so nobody can park on a dead flight.
        let mut promoted = None;
        let drained = {
            let mut pending = layer.pending.lock().expect("pending lock");
            let flight = pending.get(&key).expect("leader owns the key");
            let mut waiters = flight.waiters.lock().expect("waiter lock");
            if payload.is_none() {
                if let Some(pos) = waiters.iter().position(|w| !w.interrupt.is_triggered()) {
                    promoted = Some(waiters.remove(pos));
                }
            }
            if promoted.is_none() {
                let drained = std::mem::take(&mut *waiters);
                drop(waiters);
                pending.remove(&key);
                drained
            } else {
                Vec::new()
            }
        };
        for w in drained {
            let (outcome, hit) = match w.interrupt.probe() {
                Some(InterruptReason::DeadlineExceeded) => (JobOutcome::DeadlineExceeded, false),
                Some(_) => (JobOutcome::Cancelled, false),
                None => match &payload {
                    Some(p) => {
                        obs.counter_add("serve.cache.hits", 1);
                        // Answer through the cache so its hit counters and
                        // recency stay exact; fall back to the leader's
                        // copy if eviction already raced the entry out.
                        let stored = layer.get(key);
                        if stored.is_none() {
                            layer.record_hit(key, p);
                        }
                        (
                            JobOutcome::Done(Box::new(stored.unwrap_or_else(|| p.clone()))),
                            true,
                        )
                    }
                    // Unreachable: with no payload, a waiter with a live
                    // token would have been promoted instead of drained.
                    None => (JobOutcome::Cancelled, false),
                },
            };
            finish_job(
                obs,
                terminals,
                w.span,
                outcome,
                hit,
                w.started,
                &w.slot,
                w.request.id,
            );
        }
        match promoted {
            Some(next) => leader = next,
            None => return,
        }
    }
}
