//! The job service: bounded admission, a worker-thread pool with per-job
//! deadlines and cooperative cancellation, and a shared result cache with
//! single-flight duplicate suppression (concurrent jobs with the same
//! cache key trigger exactly one solve).
//!
//! Lifecycle: [`Service::new`] spawns the workers; [`Service::submit`]
//! runs admission control and returns a [`JobTicket`] (or an immediate
//! rejection); each ticket can [`JobTicket::cancel`] its job at any point
//! and [`JobTicket::wait`] for the response. Dropping the service closes
//! the queue, drains it, and joins every worker.
//!
//! Observability vocabulary (all through `etcs-obs`):
//! `serve.enqueue` / `serve.admit` / `serve.reject` events at admission,
//! one `serve.job` span per executed job (fields: `job`, `kind`,
//! `priority`, `worker`, closing with `status` and `cache`), and the
//! counters `serve.jobs`, `serve.cache.hits`, `serve.cache.misses`,
//! `serve.cancelled`, `serve.deadline_exceeded`.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use etcs_core::EncoderConfig;
use etcs_obs::Obs;
use etcs_sat::{Interrupt, InterruptReason};

use crate::cache::{CacheStats, ResultCache};
use crate::job::{execute, JobOutcome, JobRequest, JobResponse};
use crate::queue::{JobQueue, QueueStats};

/// Tunables for a [`Service`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Maximum jobs waiting for a worker before admission control rejects.
    pub queue_capacity: usize,
    /// Result-cache entries (`0` disables caching entirely).
    pub cache_capacity: usize,
    /// Deadline applied to jobs that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Encoder configuration shared by every job (part of the cache key).
    pub encoder: EncoderConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 128,
            default_deadline: None,
            encoder: EncoderConfig::default(),
        }
    }
}

/// One-shot mailbox a worker fills with the finished response.
struct Slot {
    result: Mutex<Option<JobResponse>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Arc<Slot> {
        Arc::new(Slot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn fill(&self, response: JobResponse) {
        *self.result.lock().expect("slot lock") = Some(response);
        self.ready.notify_all();
    }

    fn wait(&self) -> JobResponse {
        let mut guard = self.result.lock().expect("slot lock");
        loop {
            if let Some(response) = guard.take() {
                return response;
            }
            guard = self.ready.wait(guard).expect("slot lock");
        }
    }
}

struct QueuedJob {
    request: JobRequest,
    interrupt: Interrupt,
    slot: Arc<Slot>,
}

/// The result cache plus its single-flight registry: the first worker to
/// miss on a key becomes that key's *leader*; workers hitting the same key
/// while the leader is still solving wait for its result instead of
/// repeating a multi-second solve.
struct CacheLayer {
    results: Mutex<ResultCache>,
    pending: Mutex<HashMap<u128, Arc<Inflight>>>,
}

/// Completion latch for one in-flight solve.
struct Inflight {
    done: Mutex<bool>,
    ready: Condvar,
}

impl Inflight {
    fn new() -> Self {
        Inflight {
            done: Mutex::new(false),
            ready: Condvar::new(),
        }
    }

    fn finish(&self) {
        *self.done.lock().expect("flight lock") = true;
        self.ready.notify_all();
    }

    /// Blocks until the leader finishes, polling `interrupt` so a waiting
    /// job stays cancellable. Returns `false` if the token fired first.
    fn wait(&self, interrupt: &Interrupt) -> bool {
        let mut done = self.done.lock().expect("flight lock");
        while !*done {
            if interrupt.is_triggered() {
                return false;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(done, Duration::from_millis(20))
                .expect("flight lock");
            done = guard;
        }
        true
    }
}

/// Handle to an admitted job.
#[derive(Clone)]
pub struct JobTicket {
    id: String,
    interrupt: Interrupt,
    slot: Arc<Slot>,
}

impl std::fmt::Debug for JobTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobTicket").field("id", &self.id).finish()
    }
}

impl JobTicket {
    /// The request id this ticket tracks.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Requests cooperative cancellation. Takes effect at the solver's
    /// next poll point; a job still in the queue resolves to `Cancelled`
    /// without ever running.
    pub fn cancel(&self) {
        self.interrupt.trigger();
    }

    /// Blocks until the job reaches a terminal state.
    pub fn wait(self) -> JobResponse {
        self.slot.wait()
    }
}

/// A long-lived, concurrent job service over the five design tasks.
pub struct Service {
    queue: Arc<JobQueue<QueuedJob>>,
    cache: Option<Arc<CacheLayer>>,
    workers: Vec<JoinHandle<()>>,
    obs: Obs,
    config: ServeConfig,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("workers", &self.config.workers)
            .field("queue", &self.queue.stats())
            .finish()
    }
}

impl Service {
    /// Starts a service with no observability.
    pub fn new(config: ServeConfig) -> Self {
        Self::with_obs(config, Obs::disabled())
    }

    /// Starts a service emitting spans, events and counters through `obs`.
    pub fn with_obs(config: ServeConfig, obs: Obs) -> Self {
        let queue = Arc::new(JobQueue::new(config.queue_capacity));
        let cache = (config.cache_capacity > 0).then(|| {
            Arc::new(CacheLayer {
                results: Mutex::new(ResultCache::new(config.cache_capacity)),
                pending: Mutex::new(HashMap::new()),
            })
        });
        let workers = (0..config.workers.max(1))
            .map(|worker_id| {
                let queue = Arc::clone(&queue);
                let cache = cache.clone();
                let obs = obs.clone();
                let config = config.clone();
                std::thread::spawn(move || worker_loop(worker_id, &queue, cache, &config, &obs))
            })
            .collect();
        Service {
            queue,
            cache,
            workers,
            obs,
            config,
        }
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Offers a job to admission control. On admission returns a
    /// [`JobTicket`]; on rejection returns a complete (terminal) response
    /// immediately.
    pub fn submit(&self, request: JobRequest) -> Result<JobTicket, JobResponse> {
        self.obs.event(
            "serve.enqueue",
            &[
                ("job", request.id.clone().into()),
                ("kind", request.kind.name().into()),
                ("priority", request.priority.name().into()),
            ],
        );
        let interrupt = Interrupt::new();
        let slot = Slot::new();
        let queued = QueuedJob {
            request: request.clone(),
            interrupt: interrupt.clone(),
            slot: Arc::clone(&slot),
        };
        match self.queue.push(request.priority, queued) {
            Ok(()) => {
                self.obs.event(
                    "serve.admit",
                    &[
                        ("job", request.id.clone().into()),
                        ("depth", (self.queue.stats().depth as u64).into()),
                    ],
                );
                Ok(JobTicket {
                    id: request.id,
                    interrupt,
                    slot,
                })
            }
            Err(reason) => {
                self.obs.event(
                    "serve.reject",
                    &[
                        ("job", request.id.clone().into()),
                        ("reason", reason.to_string().into()),
                    ],
                );
                self.obs.counter_add("serve.rejected", 1);
                Err(JobResponse {
                    id: request.id,
                    outcome: JobOutcome::Rejected(reason),
                    cache_hit: false,
                    wall: Duration::ZERO,
                })
            }
        }
    }

    /// Submits a whole batch and waits for every job, preserving input
    /// order. Rejected jobs appear as terminal responses in place.
    pub fn run_batch(&self, requests: Vec<JobRequest>) -> Vec<JobResponse> {
        let tickets: Vec<Result<JobTicket, JobResponse>> =
            requests.into_iter().map(|r| self.submit(r)).collect();
        tickets
            .into_iter()
            .map(|t| match t {
                Ok(ticket) => ticket.wait(),
                Err(response) => response,
            })
            .collect()
    }

    /// Queue backpressure counters.
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// Result-cache counters (`None` when caching is disabled).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache
            .as_ref()
            .map(|c| c.results.lock().expect("cache lock").stats())
    }

    /// Closes admission, drains the queue, and joins every worker.
    /// Called automatically on drop; explicit calls are idempotent.
    pub fn shutdown(&mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.obs.flush_metrics();
        self.obs.flush();
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(
    worker_id: usize,
    queue: &JobQueue<QueuedJob>,
    cache: Option<Arc<CacheLayer>>,
    config: &ServeConfig,
    obs: &Obs,
) {
    while let Some(job) = queue.pop() {
        let started = Instant::now();
        let QueuedJob {
            request,
            interrupt,
            slot,
        } = job;
        let span = obs.span_with(
            "serve.job",
            &[
                ("job", request.id.clone().into()),
                ("kind", request.kind.name().into()),
                ("priority", request.priority.name().into()),
                ("worker", (worker_id as u64).into()),
            ],
        );
        let (outcome, cache_hit) = if interrupt.is_triggered() {
            // Cancelled while still queued: never touch solver or cache.
            (JobOutcome::Cancelled, false)
        } else {
            // The deadline clock starts here: queueing time is free,
            // waiting on another worker's in-flight solve of the same key
            // is not.
            if let Some(deadline) = request.deadline.or(config.default_deadline) {
                interrupt.arm_deadline(deadline);
            }
            match &cache {
                None => (execute(&request, &config.encoder, &interrupt, obs), false),
                Some(layer) => {
                    let key = request.cache_key(&config.encoder);
                    single_flight(layer, key, &request, &config.encoder, &interrupt, obs)
                }
            }
        };
        obs.counter_add("serve.jobs", 1);
        match outcome {
            JobOutcome::Cancelled => obs.counter_add("serve.cancelled", 1),
            JobOutcome::DeadlineExceeded => obs.counter_add("serve.deadline_exceeded", 1),
            _ => {}
        }
        span.close_with(&[
            ("status", outcome.status().into()),
            ("cache", if cache_hit { "hit" } else { "miss" }.into()),
        ]);
        slot.fill(JobResponse {
            id: request.id,
            outcome,
            cache_hit,
            wall: started.elapsed(),
        });
    }
}

/// Cache lookup with duplicate suppression. Exactly one worker solves a
/// given key at a time; everyone else joining that key waits and is then
/// answered from the cache (a hit, bit-identical by construction). If the
/// leader ends without a payload (cancelled, deadline, invalid), a waiter
/// takes over as the new leader rather than inheriting the failure.
///
/// The cache is probed *under the pending lock*, and a leader publishes
/// its result before releasing its key — so between "no leader running"
/// and "not in the cache" no completed solve can slip through, and the
/// hit/miss counters are exact: one miss per executed solve, one hit per
/// job answered from a stored result.
fn single_flight(
    layer: &CacheLayer,
    key: u128,
    request: &JobRequest,
    encoder: &EncoderConfig,
    interrupt: &Interrupt,
    obs: &Obs,
) -> (JobOutcome, bool) {
    loop {
        let flight = {
            let mut pending = layer.pending.lock().expect("pending lock");
            match pending.get(&key) {
                Some(flight) => Some(Arc::clone(flight)),
                None => {
                    if let Some(payload) = layer.results.lock().expect("cache lock").get(key) {
                        obs.counter_add("serve.cache.hits", 1);
                        return (JobOutcome::Done(Box::new(payload)), true);
                    }
                    pending.insert(key, Arc::new(Inflight::new()));
                    None
                }
            }
        };
        let Some(flight) = flight else {
            // Leader: solve, publish the result, then release the key.
            obs.counter_add("serve.cache.misses", 1);
            let outcome = execute(request, encoder, interrupt, obs);
            if let JobOutcome::Done(payload) = &outcome {
                layer
                    .results
                    .lock()
                    .expect("cache lock")
                    .insert(key, (**payload).clone());
            }
            if let Some(flight) = layer.pending.lock().expect("pending lock").remove(&key) {
                flight.finish();
            }
            return (outcome, false);
        };
        // Joiner: wait for the leader (staying responsive to our own
        // token), then loop back into the locked cache probe.
        if !flight.wait(interrupt) {
            let outcome = match interrupt.probe() {
                Some(InterruptReason::DeadlineExceeded) => JobOutcome::DeadlineExceeded,
                _ => JobOutcome::Cancelled,
            };
            return (outcome, false);
        }
    }
}
