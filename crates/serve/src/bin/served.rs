//! `served` — the ETCS L3 design tasks as a JSONL batch service.
//!
//! Reads one JSON job request per line (from `--input FILE` or stdin),
//! runs the batch through [`etcs_serve::Service`], and writes one JSON
//! response per line (to `--output FILE` or stdout), preserving input
//! order. Optionally emits an observability trace with `--trace FILE`.
//!
//! Lines carrying a `"record"` field are *replanning session records*
//! instead of jobs (`open`/`delta`/`tick`/`close`, see
//! [`etcs_serve::replan`]): they stream scenario deltas into a
//! warm-started [`etcs_replan::ReplanSession`] and are executed
//! synchronously, in input order, interleaved with the concurrent job
//! batch. The wire protocol's `replan` frame reaches the same sessions
//! in `--listen` mode.
//!
//! With `--listen ADDR` the process becomes a fleet *shard* instead: the
//! same worker-pool service behind a TCP socket speaking the versioned
//! fleet wire protocol (see [`etcs_serve::wire`]), with cache-history
//! recording on so a `fleetd --check-histories` run can audit it.
//!
//! Request line:
//!
//! ```json
//! {"id": "j1", "kind": "optimize", "scenario": "fixture:running_example",
//!  "layout": "pure_ttd", "priority": "normal", "deadline_ms": 30000}
//! ```
//!
//! * `kind` — `verify` | `generate` | `optimize` | `optimize_incremental`
//!   | `diagnose`.
//! * `scenario` — `fixture:NAME` (a built-in case study), `file:PATH`
//!   (a `.rail` file) or `rail:TEXT` (inline `.rail` source, `\n`-escaped).
//! * `layout` (optional, verify/diagnose only) — `pure_ttd` (default),
//!   `full`, or `borders:2,5,9` (discrete-node indices).
//! * `priority` (optional) — `high` | `normal` (default) | `low`.
//! * `deadline_ms` (optional) — wall-clock budget, armed at worker pickup.
//! * `lazy` (optional) — `all-violated` | `first-violated` | `per-train`:
//!   route the job through the `etcs-lazy` CEGAR loop with that selection
//!   strategy. The `--lazy` CLI flag applies `all-violated` to every job
//!   that does not carry its own `lazy` field (diagnose jobs ignore it).
//! * `portfolio` (optional) — worker count `n ≥ 2`: race every solve of
//!   this job across an in-process clause-sharing portfolio. Verdicts and
//!   optima are unchanged (witness plans may differ, so portfolio jobs
//!   cache under their own keys). The `--portfolio N` CLI flag applies `N`
//!   to every job that does not carry its own `portfolio` field.
//!
//! Response line (`payload` only when `status` is `done`):
//!
//! ```json
//! {"id": "j1", "status": "done", "cache": "miss", "wall_ms": 412,
//!  "payload": {"kind": "optimize", "feasible": true, "costs": [14, 2],
//!              "borders": 2, "trains": 2, "digest": "4f2e…",
//!              "verdict_digest": "91ab…"}}
//! ```
//!
//! `payload.digest` is a 128-bit hash over the *complete* result,
//! including every train's step-by-step positions — two equal digests
//! mean bit-identical results, which is how the CI smoke test proves
//! cache hits match fresh solves. `payload.verdict_digest` hashes only
//! (kind, feasible, costs), the slice guaranteed identical between eager
//! and lazy runs of the same request — CI compares it across `--lazy`.
//!
//! On shutdown (both modes) the process emits one machine-readable summary
//! record on stderr:
//!
//! ```json
//! {"record": "stats", "queue": {"submitted": 51, "admitted": 51,
//!  "rejected": 0, "high_water": 51}, "jobs": {"done": 51, "cancelled": 0,
//!  "deadline_exceeded": 0, "invalid": 0}, "cache": {"hits": 40,
//!  "misses": 11, "insertions": 11, "evictions": 0}, "replan": {"ticks": 4,
//!  "warm_hits": 2, "cold_fallbacks": 2, "deadline_misses": 0,
//!  "deltas": 3, "rejected_deltas": 0}}
//! ```

use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::sync::Arc;

use etcs_obs::json;
use etcs_obs::Obs;
use etcs_replan::{ReplanConfig, ReplanStats};
use etcs_serve::wire::{
    parse_request_line, response_line, stats_body_json, JobHook, ShardServer, ShardServerConfig,
};
use etcs_serve::{JobRequest, ReplanManager, ServeConfig, Service};

struct Args {
    input: Option<String>,
    output: Option<String>,
    trace: Option<String>,
    workers: usize,
    queue: usize,
    cache: usize,
    lazy: bool,
    preprocess: bool,
    portfolio: Option<usize>,
    listen: Option<String>,
    name: Option<String>,
    crash_after: Option<u64>,
}

const USAGE: &str = "usage: served [--input FILE] [--output FILE] [--trace FILE] \
[--workers N] [--queue N] [--cache N] [--lazy] [--preprocess] [--portfolio N] \
[--listen ADDR] [--name NAME] [--crash-after N]\n\
Reads one JSON job request per line, writes one JSON response per line.\n\
--lazy routes every job through the CEGAR loop (strategy all-violated)\n\
unless the request line carries its own \"lazy\" field.\n\
--preprocess runs the certified CNF preprocessor before every solve\n\
(results are bit-identical; the cache key distinguishes the modes).\n\
--portfolio N races every solve across an N-worker clause-sharing\n\
portfolio unless the request line carries its own \"portfolio\" field\n\
(verdicts and optima are unchanged; witness plans may differ).\n\
--listen ADDR serves the fleet wire protocol on a TCP socket instead of\n\
reading a batch (a fleet shard); --name labels the shard; --crash-after N\n\
aborts the whole process after N jobs (deterministic fault injection for\n\
fleet failover tests).\n\
Input lines carrying a \"record\" field are replanning session records\n\
(open/delta/tick/close) executed synchronously in input order; see the\n\
README, \"Online replanning\".\n\
See the repository README, \"Running as a service\", for the line formats.";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        input: None,
        output: None,
        trace: None,
        workers: 2,
        queue: 256,
        cache: 128,
        lazy: false,
        preprocess: false,
        portfolio: None,
        listen: None,
        name: None,
        crash_after: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--input" => args.input = Some(value("--input")?),
            "--output" => args.output = Some(value("--output")?),
            "--trace" => args.trace = Some(value("--trace")?),
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers must be a positive integer".to_string())?
            }
            "--queue" => {
                args.queue = value("--queue")?
                    .parse()
                    .map_err(|_| "--queue must be an integer".to_string())?
            }
            "--cache" => {
                args.cache = value("--cache")?
                    .parse()
                    .map_err(|_| "--cache must be an integer".to_string())?
            }
            "--lazy" => args.lazy = true,
            "--preprocess" => args.preprocess = true,
            "--portfolio" => {
                let n: usize = value("--portfolio")?
                    .parse()
                    .map_err(|_| "--portfolio must be a positive integer".to_string())?;
                if n < 2 {
                    return Err("--portfolio needs at least 2 workers".to_string());
                }
                args.portfolio = Some(n);
            }
            "--listen" => args.listen = Some(value("--listen")?),
            "--name" => args.name = Some(value("--name")?),
            "--crash-after" => {
                args.crash_after = Some(
                    value("--crash-after")?
                        .parse()
                        .map_err(|_| "--crash-after must be an integer".to_string())?,
                )
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if args.listen.is_some() && (args.input.is_some() || args.output.is_some()) {
        return Err(format!(
            "--listen is a socket mode: it takes no --input/--output\n{USAGE}"
        ));
    }
    Ok(args)
}

fn print_stats_record(shard: Option<&str>, service: &Service, replan: &ReplanStats) {
    let body = stats_body_json(
        &service.queue_stats(),
        &service.terminal_stats(),
        &service.cache_stats().unwrap_or_default(),
        replan,
    );
    match shard {
        Some(name) => eprintln!(
            "{{\"record\": \"stats\", \"shard\": {}, {body}}}",
            json::quote(name)
        ),
        None => eprintln!("{{\"record\": \"stats\", {body}}}"),
    }
}

/// The `--listen` socket mode: one fleet shard until `shutdown` (or death).
fn run_shard(args: &Args, addr: &str, obs: Obs) -> ExitCode {
    let encoder = etcs_core::EncoderConfig {
        preprocess: args.preprocess,
        ..etcs_core::EncoderConfig::default()
    };
    let service = Service::with_obs(
        ServeConfig {
            workers: args.workers,
            queue_capacity: args.queue,
            cache_capacity: args.cache,
            encoder,
            record_history: true,
            ..ServeConfig::default()
        },
        obs.clone(),
    );
    let hook: Option<JobHook> = args.crash_after.map(|n| {
        Arc::new(move |seen: u64| {
            if seen > n {
                // Deterministic fault injection: die abruptly, mid-protocol,
                // exactly as a crashed shard would.
                eprintln!("{{\"record\": \"crash_injected\", \"after\": {n}}}");
                std::process::exit(3);
            }
        }) as JobHook
    });
    let config = ShardServerConfig {
        name: args.name.clone().unwrap_or_default(),
        lazy_default: args.lazy,
        portfolio_default: args.portfolio,
        hook,
    };
    let server = match ShardServer::spawn(addr, service, config, obs) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot listen on {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "{{\"record\": \"listening\", \"addr\": \"{}\", \"shard\": {}}}",
        server.addr(),
        json::quote(server.name())
    );
    let name = server.name().to_owned();
    let stats = server.wait();
    let body = stats_body_json(&stats.queue, &stats.jobs, &stats.cache, &stats.replan);
    eprintln!(
        "{{\"record\": \"stats\", \"shard\": {}, {body}}}",
        json::quote(&name)
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let obs = match &args.trace {
        Some(path) => match Obs::jsonl(path) {
            Ok(obs) => obs,
            Err(e) => {
                eprintln!("cannot open trace file {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Obs::disabled(),
    };

    if let Some(addr) = args.listen.clone() {
        return run_shard(&args, &addr, obs);
    }

    let input: Box<dyn BufRead> = match &args.input {
        Some(path) => match std::fs::File::open(path) {
            Ok(file) => Box::new(std::io::BufReader::new(file)),
            Err(e) => {
                eprintln!("cannot open input file {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Box::new(std::io::BufReader::new(std::io::stdin())),
    };

    // Parse every line up front; malformed lines become terminal "invalid"
    // responses without costing a queue slot. Lines with a "record" field
    // are replanning session records: kept verbatim here and executed
    // synchronously at output time, so they run in input order relative
    // to each other while plain jobs still fan out across the pool.
    enum Entry {
        Job(Box<JobRequest>),
        Invalid(String, String),
        Replan { line: String, label: String },
    }
    let mut order: Vec<Entry> = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = match line {
            Ok(line) => line,
            Err(e) => {
                eprintln!("read error on line {lineno}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        if json::parse(&line).is_ok_and(|v| v.get("record").is_some()) {
            order.push(Entry::Replan {
                line,
                label: format!("line {lineno}"),
            });
            continue;
        }
        match parse_request_line(&line, &format!("line {lineno}"), args.lazy, args.portfolio) {
            Ok(request) => order.push(Entry::Job(Box::new(request))),
            Err(message) => order.push(Entry::Invalid(format!("line-{lineno}"), message)),
        }
    }

    let encoder = etcs_core::EncoderConfig {
        preprocess: args.preprocess,
        ..etcs_core::EncoderConfig::default()
    };
    let mut service = Service::with_obs(
        ServeConfig {
            workers: args.workers,
            queue_capacity: args.queue,
            cache_capacity: args.cache,
            encoder,
            ..ServeConfig::default()
        },
        obs.clone(),
    );
    let mut replan = ReplanManager::new(
        ReplanConfig {
            encoder,
            lazy: args.lazy,
            ..ReplanConfig::default()
        },
        obs,
    );

    // Submit every job up front, then collect in input order; session
    // records execute inline during collection.
    enum Pending {
        Job(Result<etcs_serve::JobTicket, etcs_serve::JobResponse>),
        Invalid(String, String),
        Replan { line: String, label: String },
    }
    let handles: Vec<Pending> = order
        .into_iter()
        .map(|entry| match entry {
            Entry::Job(request) => Pending::Job(service.submit(*request)),
            Entry::Invalid(id, message) => Pending::Invalid(id, message),
            Entry::Replan { line, label } => Pending::Replan { line, label },
        })
        .collect();

    let mut output: Box<dyn Write> = match &args.output {
        Some(path) => match std::fs::File::create(path) {
            Ok(file) => Box::new(std::io::BufWriter::new(file)),
            Err(e) => {
                eprintln!("cannot create output file {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Box::new(std::io::BufWriter::new(std::io::stdout())),
    };

    let mut failed = false;
    for handle in handles {
        let line = match handle {
            Pending::Invalid(id, message) => {
                failed = true;
                format!(
                    "{{\"id\": {}, \"status\": \"invalid\", \"reason\": {}}}",
                    json::quote(&id),
                    json::quote(&message)
                )
            }
            Pending::Job(submitted) => {
                let response = match submitted {
                    Ok(ticket) => ticket.wait(),
                    Err(rejected) => rejected,
                };
                let (line, line_failed) = response_line(&response);
                failed = failed || line_failed;
                line
            }
            Pending::Replan { line, label } => {
                let (line, line_failed) = replan.handle(&line, &label);
                failed = failed || line_failed;
                line
            }
        };
        if let Err(e) = writeln!(output, "{line}") {
            eprintln!("write error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = output.flush() {
        eprintln!("write error: {e}");
        return ExitCode::FAILURE;
    }

    print_stats_record(None, &service, &replan.stats());
    service.shutdown();

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
