//! `served` — the ETCS L3 design tasks as a JSONL batch service.
//!
//! Reads one JSON job request per line (from `--input FILE` or stdin),
//! runs the batch through [`etcs_serve::Service`], and writes one JSON
//! response per line (to `--output FILE` or stdout), preserving input
//! order. Optionally emits an observability trace with `--trace FILE`.
//!
//! Request line:
//!
//! ```json
//! {"id": "j1", "kind": "optimize", "scenario": "fixture:running_example",
//!  "layout": "pure_ttd", "priority": "normal", "deadline_ms": 30000}
//! ```
//!
//! * `kind` — `verify` | `generate` | `optimize` | `optimize_incremental`
//!   | `diagnose`.
//! * `scenario` — `fixture:NAME` (a built-in case study), `file:PATH`
//!   (a `.rail` file) or `rail:TEXT` (inline `.rail` source, `\n`-escaped).
//! * `layout` (optional, verify/diagnose only) — `pure_ttd` (default),
//!   `full`, or `borders:2,5,9` (discrete-node indices).
//! * `priority` (optional) — `high` | `normal` (default) | `low`.
//! * `deadline_ms` (optional) — wall-clock budget, armed at worker pickup.
//! * `lazy` (optional) — `all-violated` | `first-violated` | `per-train`:
//!   route the job through the `etcs-lazy` CEGAR loop with that selection
//!   strategy. The `--lazy` CLI flag applies `all-violated` to every job
//!   that does not carry its own `lazy` field (diagnose jobs ignore it).
//! * `portfolio` (optional) — worker count `n ≥ 2`: race every solve of
//!   this job across an in-process clause-sharing portfolio. Verdicts and
//!   optima are unchanged (witness plans may differ, so portfolio jobs
//!   cache under their own keys). The `--portfolio N` CLI flag applies `N`
//!   to every job that does not carry its own `portfolio` field.
//!
//! Response line (`payload` only when `status` is `done`):
//!
//! ```json
//! {"id": "j1", "status": "done", "cache": "miss", "wall_ms": 412,
//!  "payload": {"kind": "optimize", "feasible": true, "costs": [14, 2],
//!              "borders": 2, "trains": 2, "digest": "4f2e…",
//!              "verdict_digest": "91ab…"}}
//! ```
//!
//! `payload.digest` is a 128-bit hash over the *complete* result,
//! including every train's step-by-step positions — two equal digests
//! mean bit-identical results, which is how the CI smoke test proves
//! cache hits match fresh solves. `payload.verdict_digest` hashes only
//! (kind, feasible, costs), the slice guaranteed identical between eager
//! and lazy runs of the same request — CI compares it across `--lazy`.

use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::time::Duration;

use etcs_core::Instance;
use etcs_network::{fixtures, parse_scenario, Scenario, VssLayout};
use etcs_obs::json::{self, Json};
use etcs_obs::Obs;
use etcs_serve::{
    JobKind, JobOutcome, JobPayload, JobRequest, Priority, SelectionStrategy, ServeConfig, Service,
};

struct Args {
    input: Option<String>,
    output: Option<String>,
    trace: Option<String>,
    workers: usize,
    queue: usize,
    cache: usize,
    lazy: bool,
    preprocess: bool,
    portfolio: Option<usize>,
}

const USAGE: &str = "usage: served [--input FILE] [--output FILE] [--trace FILE] \
[--workers N] [--queue N] [--cache N] [--lazy] [--preprocess] [--portfolio N]\n\
Reads one JSON job request per line, writes one JSON response per line.\n\
--lazy routes every job through the CEGAR loop (strategy all-violated)\n\
unless the request line carries its own \"lazy\" field.\n\
--preprocess runs the certified CNF preprocessor before every solve\n\
(results are bit-identical; the cache key distinguishes the modes).\n\
--portfolio N races every solve across an N-worker clause-sharing\n\
portfolio unless the request line carries its own \"portfolio\" field\n\
(verdicts and optima are unchanged; witness plans may differ).\n\
See the repository README, \"Running as a service\", for the line formats.";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        input: None,
        output: None,
        trace: None,
        workers: 2,
        queue: 256,
        cache: 128,
        lazy: false,
        preprocess: false,
        portfolio: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--input" => args.input = Some(value("--input")?),
            "--output" => args.output = Some(value("--output")?),
            "--trace" => args.trace = Some(value("--trace")?),
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers must be a positive integer".to_string())?
            }
            "--queue" => {
                args.queue = value("--queue")?
                    .parse()
                    .map_err(|_| "--queue must be an integer".to_string())?
            }
            "--cache" => {
                args.cache = value("--cache")?
                    .parse()
                    .map_err(|_| "--cache must be an integer".to_string())?
            }
            "--lazy" => args.lazy = true,
            "--preprocess" => args.preprocess = true,
            "--portfolio" => {
                let n: usize = value("--portfolio")?
                    .parse()
                    .map_err(|_| "--portfolio must be a positive integer".to_string())?;
                if n < 2 {
                    return Err("--portfolio needs at least 2 workers".to_string());
                }
                args.portfolio = Some(n);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn load_scenario(spec: &str) -> Result<Scenario, String> {
    if let Some(name) = spec.strip_prefix("fixture:") {
        match name {
            "running_example" => Ok(fixtures::running_example()),
            "simple_layout" => Ok(fixtures::simple_layout()),
            "complex_layout" => Ok(fixtures::complex_layout()),
            "nordlandsbanen" => Ok(fixtures::nordlandsbanen()),
            "convoy" => Ok(fixtures::convoy()),
            other => Err(format!("unknown fixture {other:?}")),
        }
    } else if let Some(path) = spec.strip_prefix("file:") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        parse_scenario(&text).map_err(|e| format!("{path}: {e}"))
    } else if let Some(text) = spec.strip_prefix("rail:") {
        parse_scenario(text).map_err(|e| e.to_string())
    } else {
        Err(format!(
            "scenario must start with fixture:, file: or rail: (got {spec:?})"
        ))
    }
}

fn load_layout(spec: &str, scenario: &Scenario) -> Result<VssLayout, String> {
    if spec == "pure_ttd" {
        Ok(VssLayout::pure_ttd())
    } else if spec == "full" {
        let inst = Instance::new(scenario).map_err(|e| e.to_string())?;
        Ok(VssLayout::full(&inst.net))
    } else if let Some(list) = spec.strip_prefix("borders:") {
        let mut nodes = Vec::new();
        for part in list.split(',').filter(|p| !p.is_empty()) {
            let index: usize = part
                .trim()
                .parse()
                .map_err(|_| format!("bad border index {part:?}"))?;
            nodes.push(etcs_network::NodeId::from_index(index));
        }
        Ok(VssLayout::with_borders(nodes))
    } else {
        Err(format!(
            "layout must be pure_ttd, full or borders:i,j,… (got {spec:?})"
        ))
    }
}

fn parse_request(
    line: &str,
    lineno: usize,
    lazy_default: bool,
    portfolio_default: Option<usize>,
) -> Result<JobRequest, String> {
    let value = json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
    let str_field = |key: &str| value.get(key).and_then(Json::as_str);
    let id = str_field("id")
        .map(str::to_owned)
        .unwrap_or_else(|| format!("line-{lineno}"));
    let kind_name = str_field("kind").ok_or_else(|| format!("line {lineno}: missing \"kind\""))?;
    let kind = JobKind::parse(kind_name)
        .ok_or_else(|| format!("line {lineno}: unknown kind {kind_name:?}"))?;
    let scenario_spec =
        str_field("scenario").ok_or_else(|| format!("line {lineno}: missing \"scenario\""))?;
    let scenario = load_scenario(scenario_spec).map_err(|e| format!("line {lineno}: {e}"))?;
    let mut request = JobRequest::new(id, kind, scenario);
    if let Some(layout_spec) = str_field("layout") {
        request.layout = load_layout(layout_spec, &request.scenario)
            .map_err(|e| format!("line {lineno}: {e}"))?;
    }
    if let Some(priority_name) = str_field("priority") {
        request.priority = Priority::parse(priority_name)
            .ok_or_else(|| format!("line {lineno}: unknown priority {priority_name:?}"))?;
    }
    if let Some(ms) = value.get("deadline_ms").and_then(Json::as_f64) {
        if ms < 0.0 {
            return Err(format!("line {lineno}: deadline_ms must be non-negative"));
        }
        request.deadline = Some(Duration::from_millis(ms as u64));
    }
    if let Some(strategy_name) = str_field("lazy") {
        let strategy = SelectionStrategy::parse(strategy_name)
            .ok_or_else(|| format!("line {lineno}: unknown lazy strategy {strategy_name:?}"))?;
        request.lazy = Some(strategy);
    } else if lazy_default {
        request.lazy = Some(SelectionStrategy::AllViolated);
    }
    if let Some(n) = value.get("portfolio").and_then(Json::as_f64) {
        if n.fract() != 0.0 || n < 2.0 {
            return Err(format!(
                "line {lineno}: portfolio must be an integer of at least 2"
            ));
        }
        request.portfolio = Some(n as usize);
    } else {
        request.portfolio = portfolio_default;
    }
    Ok(request)
}

fn payload_json(payload: &JobPayload) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"kind\": {}", json::quote(payload.kind.name())));
    out.push_str(&format!(", \"feasible\": {}", payload.feasible));
    if !payload.costs.is_empty() {
        let costs: Vec<String> = payload.costs.iter().map(u64::to_string).collect();
        out.push_str(&format!(", \"costs\": [{}]", costs.join(", ")));
    }
    if let Some(plan) = &payload.plan {
        out.push_str(&format!(", \"borders\": {}", plan.layout.num_borders()));
        out.push_str(&format!(", \"trains\": {}", plan.plans.len()));
    }
    if let Some(diagnosis) = &payload.diagnosis {
        let summary = match diagnosis {
            etcs_core::Diagnosis::Feasible => "feasible".to_string(),
            etcs_core::Diagnosis::Structural => "structural".to_string(),
            etcs_core::Diagnosis::Conflict { names, .. } => {
                format!("conflict: {}", names.join(", "))
            }
        };
        out.push_str(&format!(", \"diagnosis\": {}", json::quote(&summary)));
    }
    out.push_str(&format!(", \"solver_calls\": {}", payload.solver_calls));
    out.push_str(&format!(", \"conflicts\": {}", payload.search.conflicts));
    out.push_str(&format!(", \"digest\": \"{:032x}\"", payload.digest()));
    out.push_str(&format!(
        ", \"verdict_digest\": \"{:032x}\"",
        payload.verdict_digest()
    ));
    out.push('}');
    out
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let obs = match &args.trace {
        Some(path) => match Obs::jsonl(path) {
            Ok(obs) => obs,
            Err(e) => {
                eprintln!("cannot open trace file {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Obs::disabled(),
    };

    let input: Box<dyn BufRead> = match &args.input {
        Some(path) => match std::fs::File::open(path) {
            Ok(file) => Box::new(std::io::BufReader::new(file)),
            Err(e) => {
                eprintln!("cannot open input file {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Box::new(std::io::BufReader::new(std::io::stdin())),
    };

    // Parse every line up front; malformed lines become terminal "invalid"
    // responses without costing a queue slot.
    let mut order: Vec<Result<JobRequest, (String, String)>> = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = match line {
            Ok(line) => line,
            Err(e) => {
                eprintln!("read error on line {lineno}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line, lineno, args.lazy, args.portfolio) {
            Ok(request) => order.push(Ok(request)),
            Err(message) => order.push(Err((format!("line-{lineno}"), message))),
        }
    }

    let encoder = etcs_core::EncoderConfig {
        preprocess: args.preprocess,
        ..etcs_core::EncoderConfig::default()
    };
    let mut service = Service::with_obs(
        ServeConfig {
            workers: args.workers,
            queue_capacity: args.queue,
            cache_capacity: args.cache,
            encoder,
            ..ServeConfig::default()
        },
        obs,
    );

    // Submit everything, then collect in input order.
    let handles: Vec<_> = order
        .into_iter()
        .map(|entry| match entry {
            Ok(request) => Ok(service.submit(request)),
            Err(invalid) => Err(invalid),
        })
        .collect();

    let mut output: Box<dyn Write> = match &args.output {
        Some(path) => match std::fs::File::create(path) {
            Ok(file) => Box::new(std::io::BufWriter::new(file)),
            Err(e) => {
                eprintln!("cannot create output file {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Box::new(std::io::BufWriter::new(std::io::stdout())),
    };

    let mut failed = false;
    for handle in handles {
        let line = match handle {
            Err((id, message)) => {
                failed = true;
                format!(
                    "{{\"id\": {}, \"status\": \"invalid\", \"reason\": {}}}",
                    json::quote(&id),
                    json::quote(&message)
                )
            }
            Ok(submitted) => {
                let response = match submitted {
                    Ok(ticket) => ticket.wait(),
                    Err(rejected) => rejected,
                };
                let mut line = format!(
                    "{{\"id\": {}, \"status\": {}, \"cache\": {}, \"wall_ms\": {}",
                    json::quote(&response.id),
                    json::quote(response.outcome.status()),
                    json::quote(if response.cache_hit { "hit" } else { "miss" }),
                    response.wall.as_millis()
                );
                match &response.outcome {
                    JobOutcome::Done(payload) => {
                        line.push_str(&format!(", \"payload\": {}", payload_json(payload)));
                    }
                    JobOutcome::Rejected(reason) => {
                        failed = true;
                        line.push_str(&format!(
                            ", \"reason\": {}",
                            json::quote(&reason.to_string())
                        ));
                    }
                    JobOutcome::Invalid(message) => {
                        failed = true;
                        line.push_str(&format!(", \"reason\": {}", json::quote(message)));
                    }
                    JobOutcome::Cancelled | JobOutcome::DeadlineExceeded => {}
                }
                line.push('}');
                line
            }
        };
        if let Err(e) = writeln!(output, "{line}") {
            eprintln!("write error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = output.flush() {
        eprintln!("write error: {e}");
        return ExitCode::FAILURE;
    }

    let queue = service.queue_stats();
    let cache = service.cache_stats().unwrap_or_default();
    eprintln!(
        "served: {} submitted, {} admitted, {} rejected; cache {} hits / {} misses",
        queue.submitted, queue.admitted, queue.rejected, cache.hits, cache.misses
    );
    service.shutdown();

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
