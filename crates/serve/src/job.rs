//! Job vocabulary of the service: requests, priorities, payloads and
//! responses — plus [`execute`], the direct (unqueued, uncached) execution
//! path every worker and every "is the cache bit-identical?" test runs
//! through.

use std::fmt;
use std::time::Duration;

use etcs_core::{
    cache_key, diagnose_cancellable, generate_cancellable, optimize_cancellable,
    optimize_incremental_cancellable, verify_cancellable, DesignOutcome, Diagnosis, EncoderConfig,
    EncodingStats, SolvedPlan, TaskError, TaskKind, TaskReport, VerifyOutcome,
};
use etcs_lazy::{
    generate_lazy_cancellable, optimize_lazy_cancellable, verify_lazy_cancellable, LazyConfig,
    SelectionStrategy,
};
use etcs_network::{Scenario, VssLayout};
use etcs_obs::Obs;
use etcs_sat::{Interrupt, Stats};

/// Which of the five task entry points a job runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JobKind {
    /// [`etcs_core::verify`] on the request's layout.
    Verify,
    /// [`etcs_core::generate`].
    Generate,
    /// [`etcs_core::optimize`] (from-scratch loop).
    Optimize,
    /// [`etcs_core::optimize_incremental`] (persistent solver).
    OptimizeIncremental,
    /// [`etcs_core::diagnose`] on the request's layout.
    Diagnose,
}

impl JobKind {
    /// All five kinds, in a stable order.
    pub const ALL: [JobKind; 5] = [
        JobKind::Verify,
        JobKind::Generate,
        JobKind::Optimize,
        JobKind::OptimizeIncremental,
        JobKind::Diagnose,
    ];

    /// The wire name (`verify`, `generate`, `optimize`,
    /// `optimize_incremental`, `diagnose`).
    pub fn name(self) -> &'static str {
        match self {
            JobKind::Verify => "verify",
            JobKind::Generate => "generate",
            JobKind::Optimize => "optimize",
            JobKind::OptimizeIncremental => "optimize_incremental",
            JobKind::Diagnose => "diagnose",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<JobKind> {
        JobKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

impl fmt::Display for JobKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Admission priority class. Workers always drain higher classes first.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Interactive / latency-sensitive jobs.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Bulk / best-effort jobs.
    Low,
}

impl Priority {
    /// Number of priority classes.
    pub const CLASSES: usize = 3;

    /// Queue index: 0 (high) to 2 (low).
    pub fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// The wire name (`high`, `normal`, `low`).
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<Priority> {
        [Priority::High, Priority::Normal, Priority::Low]
            .into_iter()
            .find(|p| p.name() == s)
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One unit of work for the service.
#[derive(Clone, Debug)]
pub struct JobRequest {
    /// Caller-chosen identifier, echoed in the response.
    pub id: String,
    /// Which task to run.
    pub kind: JobKind,
    /// The scenario to run it on.
    pub scenario: Scenario,
    /// The layout for [`JobKind::Verify`] / [`JobKind::Diagnose`]
    /// (ignored by the design tasks, which choose their own).
    pub layout: VssLayout,
    /// Admission class.
    pub priority: Priority,
    /// Per-job wall-clock budget, armed when a worker picks the job up
    /// (queueing time does not count). `None` = the service default.
    pub deadline: Option<Duration>,
    /// Run the task through the `etcs-lazy` CEGAR loop with the given
    /// selection strategy instead of the eager encoder. Verdicts and
    /// optima are identical (compare [`JobPayload::verdict_digest`]); the
    /// payload's statistics and witness plan may differ, so lazy and eager
    /// runs cache under different keys. Ignored by [`JobKind::Diagnose`],
    /// which has no lazy variant (its MUS extraction needs the full eager
    /// formula).
    pub lazy: Option<SelectionStrategy>,
    /// Race every solve of this job across an in-process clause-sharing
    /// portfolio of `n` workers ([`etcs_core::SolveMode::Portfolio`]).
    /// Verdicts and optima are unchanged; the witness plan may differ from
    /// a sequential run, so portfolio jobs cache under their own keys.
    /// `None` = the service default.
    pub portfolio: Option<usize>,
}

impl JobRequest {
    /// A normal-priority request with a pure-TTD layout and no deadline.
    pub fn new(id: impl Into<String>, kind: JobKind, scenario: Scenario) -> Self {
        JobRequest {
            id: id.into(),
            kind,
            scenario,
            layout: VssLayout::pure_ttd(),
            priority: Priority::Normal,
            deadline: None,
            lazy: None,
            portfolio: None,
        }
    }

    /// Sets the layout (for verify/diagnose jobs).
    pub fn with_layout(mut self, layout: VssLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Sets the admission class.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the per-job deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Routes the job through the lazy CEGAR loop with the given strategy.
    pub fn with_lazy(mut self, strategy: SelectionStrategy) -> Self {
        self.lazy = Some(strategy);
        self
    }

    /// Races every solve across an `n`-worker clause-sharing portfolio.
    pub fn with_portfolio(mut self, threads: usize) -> Self {
        self.portfolio = Some(threads);
        self
    }

    /// The encoder configuration this job actually runs under: the service
    /// config with the request's portfolio override applied. Both the cache
    /// key and [`execute`] go through this, so a portfolio job can never
    /// alias a sequential job's cached payload.
    pub fn effective_config(&self, config: &EncoderConfig) -> EncoderConfig {
        let mut cfg = *config;
        if let Some(n) = self.portfolio {
            cfg.solve_mode = etcs_core::SolveMode::Portfolio(n);
        }
        cfg
    }

    /// The encoder-level task this request maps to.
    pub fn task_kind(&self) -> TaskKind {
        match self.kind {
            JobKind::Verify => TaskKind::Verify(self.layout.clone()),
            JobKind::Generate => TaskKind::Generate,
            JobKind::Optimize => TaskKind::Optimize,
            JobKind::OptimizeIncremental => TaskKind::OptimizeIncremental,
            JobKind::Diagnose => TaskKind::Diagnose(self.layout.clone()),
        }
    }

    /// The content-addressed cache key of this request under `config`
    /// (see [`etcs_core::cache_key`] for the canonicalisation contract).
    ///
    /// Lazy jobs mix the strategy into the key: their payloads carry
    /// different statistics (and possibly different witness plans) than
    /// eager runs of the same request, and the cache's bit-identical
    /// guarantee must keep holding per key.
    pub fn cache_key(&self, config: &EncoderConfig) -> u128 {
        let base = cache_key(
            &self.scenario,
            &self.task_kind(),
            &self.effective_config(config),
        );
        match self.lazy {
            None => base,
            Some(strategy) => {
                let mut h = Fnv2::new();
                h.str("etcs-lazy-job-v1");
                h.u64(base as u64);
                h.u64((base >> 64) as u64);
                h.str(strategy.name());
                h.finish()
            }
        }
    }
}

/// The deterministic result of a completed job — everything a caller can
/// compare bit-for-bit between a cache hit and a cold solve. Wall-clock
/// data lives on [`JobResponse`], never here.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobPayload {
    /// The task that produced this payload.
    pub kind: JobKind,
    /// Verification/design verdict (`true` for a feasible diagnosis).
    pub feasible: bool,
    /// Proven optimal objective costs, lexicographic (empty for
    /// verify/diagnose).
    pub costs: Vec<u64>,
    /// The witness/solved plan, if one exists.
    pub plan: Option<SolvedPlan>,
    /// The diagnosis, for [`JobKind::Diagnose`] jobs.
    pub diagnosis: Option<Diagnosis>,
    /// Encoding size statistics.
    pub stats: EncodingStats,
    /// Solver invocations the task made.
    pub solver_calls: usize,
    /// Accumulated CDCL search statistics.
    pub search: Stats,
}

impl JobPayload {
    /// A 128-bit digest over the *entire* payload, including every train's
    /// full step-by-step positions. Two payloads are equal iff their wire
    /// JSON **and** this digest agree, so responses can stay compact while
    /// the bit-identical guarantee still covers the full plan.
    pub fn digest(&self) -> u128 {
        let mut h = Fnv2::new();
        h.str(self.kind.name());
        h.u64(u64::from(self.feasible));
        h.u64(self.costs.len() as u64);
        for &c in &self.costs {
            h.u64(c);
        }
        match &self.plan {
            None => h.u64(0),
            Some(plan) => {
                h.u64(1);
                h.u64(plan.layout.num_borders() as u64);
                for b in plan.layout.borders() {
                    h.u64(b.index() as u64);
                }
                h.u64(plan.plans.len() as u64);
                for train in &plan.plans {
                    h.str(&train.name);
                    h.u64(train.positions.len() as u64);
                    for step in &train.positions {
                        h.u64(step.len() as u64);
                        for e in step {
                            h.u64(e.index() as u64);
                        }
                    }
                }
            }
        }
        match &self.diagnosis {
            None => h.u64(0),
            Some(Diagnosis::Feasible) => h.u64(1),
            Some(Diagnosis::Structural) => h.u64(2),
            Some(Diagnosis::Conflict { trains, names }) => {
                h.u64(3);
                h.u64(trains.len() as u64);
                for t in trains {
                    h.u64(t.index() as u64);
                }
                for n in names {
                    h.str(n);
                }
            }
        }
        for v in [
            self.stats.border_vars,
            self.stats.occupies_vars,
            self.stats.nominal_vars,
            self.stats.solver_vars,
            self.stats.clauses,
            self.solver_calls,
        ] {
            h.u64(v as u64);
        }
        for v in [
            self.search.decisions,
            self.search.propagations,
            self.search.conflicts,
            self.search.restarts,
            self.search.learnt_literals,
            self.search.deleted_clauses,
            self.search.solve_calls,
            self.search.reused_learnts,
        ] {
            h.u64(v);
        }
        h.finish()
    }

    /// A 128-bit digest over the *verdict* only — kind, feasibility and
    /// the proven optimal costs. This is the part of a payload that is
    /// guaranteed identical between eager and lazy runs of the same
    /// request (witness plans and solver statistics legitimately differ),
    /// so it is what `ci/check.sh` compares across the `--lazy` boundary.
    pub fn verdict_digest(&self) -> u128 {
        verdict_digest_of(self.kind, self.feasible, &self.costs)
    }
}

/// The verdict digest over a bare (kind, feasible, costs) triple — the
/// same construction as [`JobPayload::verdict_digest`], callable without
/// a full payload. The replan surface uses it to stamp each streamed tick
/// with a digest directly comparable to the `optimize_incremental` job
/// for the same patched scenario.
pub(crate) fn verdict_digest_of(kind: JobKind, feasible: bool, costs: &[u64]) -> u128 {
    let mut h = Fnv2::new();
    h.str("etcs-verdict-v1");
    h.str(kind.name());
    h.u64(u64::from(feasible));
    h.u64(costs.len() as u64);
    for &c in costs {
        h.u64(c);
    }
    h.finish()
}

/// Two-lane FNV-1a-64 with an avalanche finish — the same construction as
/// `etcs_core::cache_key`, here hashing *outputs* instead of inputs.
struct Fnv2 {
    a: u64,
    b: u64,
}

impl Fnv2 {
    const PRIME: u64 = 0x100_0000_01b3;

    fn new() -> Self {
        Fnv2 {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0x6c62_272e_07bb_0142,
        }
    }

    fn byte(&mut self, x: u8) {
        self.a = (self.a ^ u64::from(x)).wrapping_mul(Self::PRIME);
        self.b = (self.b ^ u64::from(x)).wrapping_mul(Self::PRIME);
    }

    fn u64(&mut self, x: u64) {
        for byte in x.to_le_bytes() {
            self.byte(byte);
        }
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for &byte in s.as_bytes() {
            self.byte(byte);
        }
    }

    fn finish(self) -> u128 {
        fn avalanche(mut x: u64) -> u64 {
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^ (x >> 31)
        }
        let hi = avalanche(self.a ^ self.b.rotate_left(32));
        let lo = avalanche(self.b ^ self.a.rotate_left(17));
        (u128::from(hi) << 64) | u128::from(lo)
    }
}

/// Why a job was refused at admission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The queue was at capacity.
    QueueFull {
        /// The configured bound.
        capacity: usize,
        /// Depth observed at rejection time.
        depth: usize,
    },
    /// The service is shutting down and accepts no new jobs.
    ShuttingDown,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull { capacity, depth } => {
                write!(f, "queue full ({depth}/{capacity})")
            }
            RejectReason::ShuttingDown => write!(f, "service shutting down"),
        }
    }
}

impl std::error::Error for RejectReason {}

/// Terminal state of a job.
#[derive(Clone, Debug, PartialEq)]
pub enum JobOutcome {
    /// The task ran to completion. Boxed: a payload (plan, statistics) is
    /// an order of magnitude larger than the other variants.
    Done(Box<JobPayload>),
    /// Admission control refused the job.
    Rejected(RejectReason),
    /// The job's [`Interrupt`] was triggered (by [`crate::JobTicket::cancel`]
    /// or a shared token).
    Cancelled,
    /// The per-job wall-clock deadline expired mid-solve.
    DeadlineExceeded,
    /// The scenario was malformed ([`etcs_network::NetworkError`] text).
    Invalid(String),
}

impl JobOutcome {
    /// Stable wire name of the state (`done`, `rejected`, `cancelled`,
    /// `deadline_exceeded`, `invalid`).
    pub fn status(&self) -> &'static str {
        match self {
            JobOutcome::Done(_) => "done",
            JobOutcome::Rejected(_) => "rejected",
            JobOutcome::Cancelled => "cancelled",
            JobOutcome::DeadlineExceeded => "deadline_exceeded",
            JobOutcome::Invalid(_) => "invalid",
        }
    }

    /// The payload, for completed jobs.
    pub fn payload(&self) -> Option<&JobPayload> {
        match self {
            JobOutcome::Done(p) => Some(p),
            _ => None,
        }
    }
}

/// What the service hands back per job.
#[derive(Clone, Debug)]
pub struct JobResponse {
    /// The request's `id`, echoed.
    pub id: String,
    /// Terminal state (payload, rejection, cancellation, …).
    pub outcome: JobOutcome,
    /// `true` when the payload came from the result cache.
    pub cache_hit: bool,
    /// Wall-clock time from worker pickup (or rejection) to completion.
    pub wall: Duration,
}

fn payload_from_report(
    kind: JobKind,
    feasible: bool,
    costs: Vec<u64>,
    plan: Option<SolvedPlan>,
    report: TaskReport,
) -> JobPayload {
    JobPayload {
        kind,
        feasible,
        costs,
        plan,
        diagnosis: None,
        stats: report.stats,
        solver_calls: report.solver_calls,
        search: report.search,
    }
}

/// Runs a request directly — no queue, no cache — and maps the result into
/// a [`JobOutcome`]. This is the exact function the worker pool executes on
/// cache misses, exposed so callers (and the bit-identical cache tests) can
/// produce reference payloads.
pub fn execute(
    request: &JobRequest,
    config: &EncoderConfig,
    interrupt: &Interrupt,
    obs: &Obs,
) -> JobOutcome {
    let config = &request.effective_config(config);
    let lazy = request.lazy.map(LazyConfig::with_strategy);
    let result = match request.kind {
        JobKind::Verify => match lazy {
            Some(lazy) => verify_lazy_cancellable(
                &request.scenario,
                &request.layout,
                config,
                &lazy,
                interrupt,
                obs,
            )
            .map(|(outcome, lr)| verify_payload(request.kind, outcome, lr.report)),
            None => verify_cancellable(&request.scenario, &request.layout, config, interrupt, obs)
                .map(|(outcome, report)| verify_payload(request.kind, outcome, report)),
        },
        JobKind::Generate => match lazy {
            Some(lazy) => {
                generate_lazy_cancellable(&request.scenario, config, &lazy, interrupt, obs)
                    .map(|(outcome, lr)| design_payload(request.kind, outcome, lr.report))
            }
            None => generate_cancellable(&request.scenario, config, interrupt, obs)
                .map(|(outcome, report)| design_payload(request.kind, outcome, report)),
        },
        // Both optimisation kinds share one lazy loop: the CEGAR walk is
        // inherently incremental, and its optima match either eager loop.
        JobKind::Optimize | JobKind::OptimizeIncremental if lazy.is_some() => {
            optimize_lazy_cancellable(
                &request.scenario,
                config,
                &lazy.expect("guarded"),
                interrupt,
                obs,
            )
            .map(|(outcome, lr)| design_payload(request.kind, outcome, lr.report))
        }
        JobKind::Optimize => optimize_cancellable(&request.scenario, config, interrupt, obs)
            .map(|(outcome, report)| design_payload(request.kind, outcome, report)),
        JobKind::OptimizeIncremental => {
            optimize_incremental_cancellable(&request.scenario, config, interrupt, obs)
                .map(|(outcome, report)| design_payload(request.kind, outcome, report))
        }
        JobKind::Diagnose => {
            diagnose_cancellable(&request.scenario, &request.layout, config, interrupt).map(
                |diagnosis| JobPayload {
                    kind: request.kind,
                    feasible: diagnosis == Diagnosis::Feasible,
                    costs: Vec::new(),
                    plan: None,
                    diagnosis: Some(diagnosis),
                    stats: EncodingStats::default(),
                    solver_calls: 0,
                    search: Stats::default(),
                },
            )
        }
    };
    match result {
        Ok(payload) => JobOutcome::Done(Box::new(payload)),
        Err(TaskError::Cancelled) => JobOutcome::Cancelled,
        Err(TaskError::DeadlineExceeded) => JobOutcome::DeadlineExceeded,
        Err(TaskError::Network(e)) => JobOutcome::Invalid(e.to_string()),
    }
}

fn verify_payload(kind: JobKind, outcome: VerifyOutcome, report: TaskReport) -> JobPayload {
    match outcome {
        VerifyOutcome::Feasible(plan) => {
            payload_from_report(kind, true, Vec::new(), Some(plan), report)
        }
        VerifyOutcome::Infeasible => payload_from_report(kind, false, Vec::new(), None, report),
    }
}

fn design_payload(kind: JobKind, outcome: DesignOutcome, report: TaskReport) -> JobPayload {
    match outcome {
        DesignOutcome::Solved { plan, costs } => {
            payload_from_report(kind, true, costs, Some(plan), report)
        }
        DesignOutcome::Infeasible => payload_from_report(kind, false, Vec::new(), None, report),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etcs_network::fixtures;

    #[test]
    fn kind_and_priority_wire_names_round_trip() {
        for kind in JobKind::ALL {
            assert_eq!(JobKind::parse(kind.name()), Some(kind));
        }
        for p in [Priority::High, Priority::Normal, Priority::Low] {
            assert_eq!(Priority::parse(p.name()), Some(p));
        }
        assert_eq!(JobKind::parse("bogus"), None);
        assert_eq!(Priority::parse("urgent"), None);
    }

    #[test]
    fn execute_verify_matches_library_call() {
        let scenario = fixtures::running_example();
        let config = EncoderConfig::default();
        let request = JobRequest::new("v", JobKind::Verify, scenario.clone());
        let outcome = execute(&request, &config, &Interrupt::none(), &Obs::disabled());
        let payload = outcome.payload().expect("runs to completion");
        let (direct, _) =
            etcs_core::verify(&scenario, &VssLayout::pure_ttd(), &config).expect("valid");
        assert_eq!(payload.feasible, direct.is_feasible());
        assert_eq!(payload.digest(), payload.clone().digest(), "digest is pure");
    }

    #[test]
    fn lazy_jobs_cache_separately_but_agree_on_the_verdict() {
        let scenario = fixtures::running_example();
        let config = EncoderConfig::default();
        let eager = JobRequest::new("e", JobKind::OptimizeIncremental, scenario.clone());
        let lazy = JobRequest::new("l", JobKind::OptimizeIncremental, scenario)
            .with_lazy(SelectionStrategy::AllViolated);
        assert_ne!(
            eager.cache_key(&config),
            lazy.cache_key(&config),
            "lazy payloads differ bit-wise, so they must not share a cache line"
        );
        let a = execute(&eager, &config, &Interrupt::none(), &Obs::disabled());
        let b = execute(&lazy, &config, &Interrupt::none(), &Obs::disabled());
        let (a, b) = (a.payload().expect("solves"), b.payload().expect("solves"));
        assert_eq!(a.costs, b.costs, "bit-identical optima");
        assert_eq!(
            a.verdict_digest(),
            b.verdict_digest(),
            "the verdict digest is the eager/lazy-stable slice of a payload"
        );
    }

    #[test]
    fn lazy_strategies_key_separately() {
        let scenario = fixtures::simple_layout();
        let config = EncoderConfig::default();
        let mut keys: Vec<u128> = SelectionStrategy::ALL
            .into_iter()
            .map(|s| {
                JobRequest::new("k", JobKind::Generate, scenario.clone())
                    .with_lazy(s)
                    .cache_key(&config)
            })
            .collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), SelectionStrategy::ALL.len());
    }

    #[test]
    fn portfolio_jobs_cache_separately_but_agree_on_the_verdict() {
        let scenario = fixtures::running_example();
        let config = EncoderConfig::default();
        let plain = JobRequest::new("p", JobKind::Verify, scenario.clone());
        let raced = JobRequest::new("r", JobKind::Verify, scenario).with_portfolio(2);
        assert_ne!(
            plain.cache_key(&config),
            raced.cache_key(&config),
            "portfolio witness plans may differ, so the modes must not share a cache line"
        );
        let a = execute(&plain, &config, &Interrupt::none(), &Obs::disabled());
        let b = execute(&raced, &config, &Interrupt::none(), &Obs::disabled());
        let (a, b) = (a.payload().expect("solves"), b.payload().expect("solves"));
        assert_eq!(a.feasible, b.feasible);
        assert_eq!(a.verdict_digest(), b.verdict_digest());
    }

    #[test]
    fn digests_differ_between_kinds() {
        let scenario = fixtures::simple_layout();
        let config = EncoderConfig::default();
        let a = execute(
            &JobRequest::new("a", JobKind::Generate, scenario.clone()),
            &config,
            &Interrupt::none(),
            &Obs::disabled(),
        );
        let b = execute(
            &JobRequest::new("b", JobKind::Verify, scenario),
            &config,
            &Interrupt::none(),
            &Obs::disabled(),
        );
        let (a, b) = (a.payload().unwrap().digest(), b.payload().unwrap().digest());
        assert_ne!(a, b);
    }
}
