//! End-to-end tests of the job service: a mixed batch with a warm cache
//! proven bit-identical to direct library calls, cancellation and
//! deadlines that never poison a worker, admission-control rejection,
//! cache-key canonicalisation across reordered inputs, and the
//! observability vocabulary.

use std::collections::HashMap;
use std::time::Duration;

use etcs_core::EncoderConfig;
use etcs_network::{fixtures, NetworkBuilder, Scenario};
use etcs_obs::{EventKind, Obs};
use etcs_sat::Interrupt;
use etcs_serve::{
    execute, JobKind, JobOutcome, JobRequest, Priority, RejectReason, ServeConfig, Service,
};

/// A 50+ job batch cycling kinds and fixtures; only seven unique solves.
fn mixed_batch() -> Vec<JobRequest> {
    let running = fixtures::running_example();
    let simple = fixtures::simple_layout();
    let unique: Vec<(JobKind, Scenario)> = vec![
        (JobKind::Verify, running.clone()),
        (JobKind::Generate, running.clone()),
        (JobKind::Optimize, running.clone()),
        (JobKind::OptimizeIncremental, running.clone()),
        (JobKind::Diagnose, running),
        (JobKind::Verify, simple.clone()),
        (JobKind::Generate, simple),
    ];
    (0..56)
        .map(|i| {
            let (kind, scenario) = &unique[i % unique.len()];
            JobRequest::new(format!("job-{i}"), *kind, scenario.clone())
                .with_priority([Priority::High, Priority::Normal, Priority::Low][i % 3])
        })
        .collect()
}

#[test]
fn mixed_batch_warm_cache_is_bit_identical_to_direct_calls() {
    let requests = mixed_batch();
    let config = EncoderConfig::default();

    // Reference payloads via the direct (unqueued, uncached) path, one
    // per unique cache key.
    let mut reference = HashMap::new();
    for request in &requests {
        reference
            .entry(request.cache_key(&config))
            .or_insert_with(|| execute(request, &config, &Interrupt::none(), &Obs::disabled()));
    }
    assert_eq!(reference.len(), 7, "batch has exactly seven unique solves");

    let service = Service::new(ServeConfig {
        workers: 2,
        queue_capacity: 128,
        cache_capacity: 32,
        ..ServeConfig::default()
    });
    let responses = service.run_batch(requests.clone());

    assert_eq!(responses.len(), requests.len());
    for (request, response) in requests.iter().zip(&responses) {
        assert_eq!(response.id, request.id, "responses preserve input order");
        let payload = response
            .outcome
            .payload()
            .unwrap_or_else(|| panic!("{} should be done, got {:?}", request.id, response.outcome));
        let expected = reference[&request.cache_key(&config)]
            .payload()
            .expect("reference run completed");
        assert_eq!(payload, expected, "{}: served != direct", request.id);
        assert_eq!(payload.digest(), expected.digest());
    }

    let cache = service.cache_stats().expect("cache enabled");
    assert!(
        cache.hits >= (requests.len() - reference.len()) as u64,
        "warm cache must answer every repeat job (hits = {})",
        cache.hits
    );
    assert_eq!(service.queue_stats().rejected, 0);
}

#[test]
fn cancellation_and_deadline_return_structured_errors_without_poisoning_the_worker() {
    // Single worker, no cache: all three jobs run on the same thread.
    let service = Service::new(ServeConfig {
        workers: 1,
        queue_capacity: 8,
        cache_capacity: 0,
        ..ServeConfig::default()
    });

    // An oversized optimisation, cancelled as soon as it is submitted.
    let cancelled = service
        .submit(JobRequest::new(
            "cancel-me",
            JobKind::Optimize,
            fixtures::complex_layout(),
        ))
        .expect("admitted");
    cancelled.cancel();

    // An oversized optimisation with a deadline far below its solve time.
    let deadline = service
        .submit(
            JobRequest::new("too-slow", JobKind::Optimize, fixtures::complex_layout())
                .with_deadline(Duration::from_millis(1)),
        )
        .expect("admitted");

    // A cheap job queued behind both: completes iff the worker survived.
    let survivor = service
        .submit(JobRequest::new(
            "after",
            JobKind::Verify,
            fixtures::running_example(),
        ))
        .expect("admitted");

    assert_eq!(cancelled.wait().outcome, JobOutcome::Cancelled);
    assert_eq!(deadline.wait().outcome, JobOutcome::DeadlineExceeded);
    let response = survivor.wait();
    assert!(
        response.outcome.payload().is_some(),
        "worker must stay usable after interrupted jobs, got {:?}",
        response.outcome
    );
}

#[test]
fn full_queue_rejects_with_structured_reason() {
    // Zero queue capacity: admission control rejects deterministically.
    let service = Service::new(ServeConfig {
        workers: 1,
        queue_capacity: 0,
        cache_capacity: 0,
        ..ServeConfig::default()
    });
    let response = service
        .submit(JobRequest::new(
            "no-room",
            JobKind::Verify,
            fixtures::running_example(),
        ))
        .expect_err("zero-capacity queue admits nothing");
    assert_eq!(response.id, "no-room");
    assert_eq!(
        response.outcome,
        JobOutcome::Rejected(RejectReason::QueueFull {
            capacity: 0,
            depth: 0
        })
    );
    assert_eq!(service.queue_stats().rejected, 1);
}

/// Rebuilds a scenario with every TTD and station member list reversed —
/// semantically identical (membership sets are unordered), byte-different.
fn reverse_member_lists(s: &Scenario) -> Scenario {
    let mut b = NetworkBuilder::new();
    b.nodes(s.network.num_nodes());
    for t in s.network.tracks() {
        b.track(t.from, t.to, t.length, t.name.clone());
    }
    for ttd in s.network.ttds() {
        b.ttd(ttd.name.clone(), ttd.tracks.iter().rev().copied());
    }
    for station in s.network.stations() {
        b.station(
            station.name.clone(),
            station.tracks.iter().rev().copied(),
            station.boundary,
        );
    }
    let mut out = s.clone();
    out.network = b.build().expect("reordered network stays valid");
    out
}

#[test]
fn reordered_member_lists_share_a_cache_entry_with_identical_payloads() {
    let config = EncoderConfig::default();
    let original = JobRequest::new("original", JobKind::Generate, fixtures::running_example());
    let reordered = JobRequest::new(
        "reordered",
        JobKind::Generate,
        reverse_member_lists(&original.scenario),
    );
    assert_eq!(
        original.cache_key(&config),
        reordered.cache_key(&config),
        "member-list order must not reach the cache key"
    );

    let service = Service::new(ServeConfig {
        workers: 1,
        queue_capacity: 8,
        cache_capacity: 8,
        ..ServeConfig::default()
    });
    let responses = service.run_batch(vec![original, reordered]);
    let (cold, warm) = (&responses[0], &responses[1]);
    assert!(!cold.cache_hit);
    assert!(warm.cache_hit, "second submission must hit the cache");
    assert_eq!(
        cold.outcome.payload().expect("done"),
        warm.outcome.payload().expect("done"),
    );
}

#[test]
fn service_emits_the_serve_observability_vocabulary() {
    let (obs, sink) = Obs::memory();
    let mut service = Service::with_obs(
        ServeConfig {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 8,
            ..ServeConfig::default()
        },
        obs.clone(),
    );
    let request = JobRequest::new("traced", JobKind::Verify, fixtures::running_example());
    let responses = service.run_batch(vec![request.clone(), request]);
    assert!(responses.iter().all(|r| r.outcome.payload().is_some()));
    service.shutdown();

    let events = sink.events();
    let names: Vec<&str> = events.iter().map(|e| e.name).collect();
    for expected in ["serve.enqueue", "serve.admit", "serve.job"] {
        assert!(names.contains(&expected), "missing {expected} in {names:?}");
    }
    let job_spans = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanOpen && e.name == "serve.job")
        .count();
    assert_eq!(job_spans, 2, "one serve.job span per executed job");

    let metrics = obs.metrics();
    assert_eq!(metrics.counter("serve.jobs"), 2);
    assert_eq!(metrics.counter("serve.cache.hits"), 1);
    assert_eq!(metrics.counter("serve.cache.misses"), 1);
}
