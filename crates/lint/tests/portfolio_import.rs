//! Cross-validation between the portfolio's import filter and this crate's
//! structural audit. Before an imported clause enters a racing worker's
//! clause database, `etcs_sat::parallel::clause_is_structurally_clean`
//! rejects exactly the shapes the encoder lint reports as structural
//! defects — duplicate literals and tautological `x, ¬x` pairs — so a
//! foreign lemma can never smuggle in a clause the lint would have flagged
//! on encoder output. These tests pin that the two layers implement the
//! same notion of "clean", by enumeration against the audit itself.

use etcs_lint::{audit_formula, LintKind};
use etcs_sat::parallel::clause_is_structurally_clean;
use etcs_sat::{CnfSink, Formula, Lit, PortfolioConfig, SatResult, Solver};

/// All clauses of length 1..=3 over three variables (literal codes 0..6).
fn all_small_clauses() -> Vec<Vec<Lit>> {
    let codes: Vec<u32> = (0..6).collect();
    let mut clauses = Vec::new();
    for &a in &codes {
        clauses.push(vec![Lit::from_code(a)]);
        for &b in &codes {
            clauses.push(vec![Lit::from_code(a), Lit::from_code(b)]);
            for &c in &codes {
                clauses.push(vec![
                    Lit::from_code(a),
                    Lit::from_code(b),
                    Lit::from_code(c),
                ]);
            }
        }
    }
    clauses
}

fn has_tautology(lits: &[Lit]) -> bool {
    lits.iter()
        .any(|&l| lits.contains(&Lit::from_code(l.code() ^ 1)))
}

fn has_duplicate(lits: &[Lit]) -> bool {
    lits.iter().enumerate().any(|(i, l)| lits[..i].contains(l))
}

#[test]
fn import_filter_agrees_with_the_audits_tautology_lint() {
    // For every small clause: the audit reports `TautologicalClause` iff
    // the clause holds a variable in both polarities, and the import
    // filter must reject at least that set (plus duplicate literals, which
    // the audit silently normalises away — covered below).
    for clause in all_small_clauses() {
        let mut f = Formula::new();
        for _ in 0..3 {
            let _ = f.new_var();
        }
        f.add_clause_from(&clause);
        let findings = audit_formula(&f);
        let lint_says_tautological = findings
            .iter()
            .any(|x| x.kind == LintKind::TautologicalClause);
        assert_eq!(
            lint_says_tautological,
            has_tautology(&clause),
            "audit tautology disagrees on {clause:?}"
        );
        assert_eq!(
            clause_is_structurally_clean(&clause),
            !has_tautology(&clause) && !has_duplicate(&clause),
            "import filter disagrees on {clause:?}"
        );
        if lint_says_tautological {
            assert!(
                !clause_is_structurally_clean(&clause),
                "import filter admits a clause the audit flags: {clause:?}"
            );
        }
    }
}

#[test]
fn duplicate_literals_are_what_the_audit_normalises_away() {
    // The audit dedups literals before comparing clauses, so a
    // duplicate-literal clause is *identical* to its cleaned form in the
    // audit's eyes — `[a, a, b]` next to `[a, b]` is a `DuplicateClause`
    // finding. The import filter enforces the same fact up front by
    // refusing the unnormalised shape.
    let mut f = Formula::new();
    let a = f.new_var().positive();
    let b = f.new_var().positive();
    f.add_clause_from(&[a, b]);
    f.add_clause_from(&[a, a, b]);
    f.add_clause_from(&[!a, !b]); // keep both polarities constrained
    let findings = audit_formula(&f);
    assert!(
        findings
            .iter()
            .any(|x| x.kind == LintKind::DuplicateClause && x.clause == Some(1)),
        "audit must see [a, a, b] as a duplicate of [a, b]: {findings:?}"
    );
    assert!(clause_is_structurally_clean(&[a, b]));
    assert!(!clause_is_structurally_clean(&[a, a, b]));
}

#[test]
fn portfolio_races_never_need_the_lint_rejection_path() {
    // Conflict analysis resolves over distinct variables, so every clause a
    // worker exports is already structurally clean: after a race on a
    // conflict-heavy instance the lint-rejection counter must be zero. (The
    // filter still runs on every import — this pins that it is a no-op on
    // well-formed traffic, exactly like the audit on encoder output.)
    let mut solver = Solver::new();
    // Pigeonhole PHP(5, 4): UNSAT and resolution-hard, so every worker
    // learns plenty of lemmas to export.
    let (pigeons, holes) = (5usize, 4usize);
    let var = |p: usize, h: usize| p * holes + h;
    let vars: Vec<_> = (0..pigeons * holes).map(|_| solver.new_var()).collect();
    for p in 0..pigeons {
        let clause: Vec<_> = (0..holes).map(|h| vars[var(p, h)].positive()).collect();
        solver.add_clause(clause);
    }
    for h in 0..holes {
        for p in 0..pigeons {
            for q in (p + 1)..pigeons {
                solver.add_clause([vars[var(p, h)].negative(), vars[var(q, h)].negative()]);
            }
        }
    }
    solver.set_portfolio(Some(PortfolioConfig::with_threads(4)));
    let result = solver.solve();
    assert!(
        matches!(result, SatResult::Unsat { .. }),
        "pigeonhole is unsatisfiable"
    );
    let stats = *solver.portfolio_stats();
    assert_eq!(stats.solves, 1, "the race engaged");
    assert!(stats.worker_conflicts > 0, "the race actually searched");
    assert_eq!(
        stats.lint_rejected, 0,
        "conflict-analysis clauses are always structurally clean"
    );
}
