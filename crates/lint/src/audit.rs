//! The lint checks: a static audit of a CNF formula (plus optional
//! [`Provenance`]) for encoding defects that solvers silently tolerate.

use std::collections::HashMap;

use etcs_sat::{Formula, Lit, Var};

use crate::provenance::Provenance;

/// How serious a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Diagnostic information; the encoding is sound but noteworthy.
    Info,
    /// Almost certainly an encoding mistake (wasted work or a missing
    /// constraint), but the formula is still well-formed.
    Warning,
    /// The formula is malformed and must not be solved.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The lint catalogue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LintKind {
    /// A literal references a variable index outside the allocated range.
    OutOfRangeLiteral,
    /// The formula contains an empty clause (trivially unsatisfiable).
    EmptyClause,
    /// A variable was allocated but appears in no clause and no objective.
    UnconstrainedVar,
    /// A clause contains a literal and its negation.
    TautologicalClause,
    /// Two clauses have identical literal sets.
    DuplicateClause,
    /// A clause is a strict superset of another clause.
    SubsumedClause,
    /// A declared constraint group produced no clauses.
    EmptyGroup,
    /// Every clause of a group is already satisfied by unit propagation
    /// over the *rest* of the formula — the group constrains nothing on
    /// this instance.
    DeadGroup,
    /// A Tseitin gate output is never referenced outside its own (or other
    /// dead gates') defining clauses.
    UnreferencedGate,
    /// A clause references a variable the SAT preprocessor eliminated:
    /// the clause database and the elimination record disagree, so models
    /// reconstructed from the elimination stack are untrustworthy.
    EliminatedVarClause,
}

impl LintKind {
    /// Stable kebab-case name of the lint.
    pub fn name(self) -> &'static str {
        match self {
            LintKind::OutOfRangeLiteral => "out-of-range-literal",
            LintKind::EmptyClause => "empty-clause",
            LintKind::UnconstrainedVar => "unconstrained-var",
            LintKind::TautologicalClause => "tautological-clause",
            LintKind::DuplicateClause => "duplicate-clause",
            LintKind::SubsumedClause => "subsumed-clause",
            LintKind::EmptyGroup => "empty-group",
            LintKind::DeadGroup => "dead-group",
            LintKind::UnreferencedGate => "unreferenced-gate",
            LintKind::EliminatedVarClause => "eliminated-var-clause",
        }
    }

    /// The severity this lint reports at.
    pub fn severity(self) -> Severity {
        match self {
            LintKind::OutOfRangeLiteral | LintKind::EliminatedVarClause => Severity::Error,
            LintKind::EmptyClause
            | LintKind::UnconstrainedVar
            | LintKind::TautologicalClause
            | LintKind::DuplicateClause
            | LintKind::SubsumedClause
            | LintKind::EmptyGroup
            | LintKind::UnreferencedGate => Severity::Warning,
            LintKind::DeadGroup => Severity::Info,
        }
    }
}

impl std::fmt::Display for LintKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One audit finding, anchored to the offending variable / clause / group.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Which lint fired.
    pub kind: LintKind,
    /// Its severity (from [`LintKind::severity`]).
    pub severity: Severity,
    /// Human-readable description, including provenance when available.
    pub message: String,
    /// The offending variable, if the finding anchors to one.
    pub var: Option<Var>,
    /// Index of the offending clause, if any.
    pub clause: Option<usize>,
    /// Id of the offending constraint group, if any.
    pub group: Option<usize>,
}

impl Finding {
    fn new(kind: LintKind, message: String) -> Self {
        Finding {
            kind,
            severity: kind.severity(),
            message,
            var: None,
            clause: None,
            group: None,
        }
    }

    fn with_var(mut self, v: Var) -> Self {
        self.var = Some(v);
        self
    }

    fn with_clause(mut self, c: usize) -> Self {
        self.clause = Some(c);
        self
    }

    fn with_group(mut self, g: usize) -> Self {
        self.group = Some(g);
        self
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.severity, self.kind, self.message)
    }
}

/// An explicit allowlist of constraint groups a *lazy* solving profile
/// intentionally leaves relaxed.
///
/// A CEGAR-style loop (see `etcs-lazy`) deliberately encodes some
/// constraint families as empty groups and adds their violated instances
/// on demand. To the plain [`audit`] such a relaxation is
/// indistinguishable from a forgotten constraint family — exactly the
/// defect [`LintKind::EmptyGroup`] / [`LintKind::DeadGroup`] exist to
/// catch. Instead of hard-failing on relaxed CNFs (or, worse, disabling
/// those lints), callers declare the deferral: [`audit_with_profile`]
/// suppresses group-underconstrained findings *only* for the groups named
/// here, keeping the lints armed for every group the profile does not
/// claim.
///
/// # Examples
///
/// ```
/// use etcs_lint::LazyProfile;
///
/// let profile = LazyProfile::new().allow_group("separation");
/// assert!(profile.allows("separation"));
/// assert!(!profile.allows("collision"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct LazyProfile {
    groups: Vec<String>,
}

impl LazyProfile {
    /// An empty profile: nothing is allowlisted, so
    /// [`audit_with_profile`] behaves exactly like [`audit`].
    pub fn new() -> Self {
        LazyProfile::default()
    }

    /// Adds a constraint group (by its declared name) to the allowlist.
    #[must_use]
    pub fn allow_group(mut self, name: impl Into<String>) -> Self {
        self.groups.push(name.into());
        self
    }

    /// `true` if the named group is allowlisted.
    pub fn allows(&self, name: &str) -> bool {
        self.groups.iter().any(|g| g == name)
    }

    /// The allowlisted group names, in declaration order.
    pub fn groups(&self) -> &[String] {
        &self.groups
    }
}

/// [`audit`] for lazily relaxed formulas: identical findings, except that
/// [`LintKind::EmptyGroup`] and [`LintKind::DeadGroup`] findings anchored
/// to a group the `profile` allowlists are suppressed — the relaxation is
/// declared, not accidental. All other lints (malformed clauses,
/// unconstrained variables, dangling gates, under-constrained groups the
/// profile does *not* claim) stay armed.
pub fn audit_with_profile(
    formula: &Formula,
    provenance: Option<&Provenance>,
    profile: &LazyProfile,
) -> Vec<Finding> {
    let findings = audit(formula, provenance);
    let Some(prov) = provenance else {
        return findings; // group lints need provenance; nothing to suppress
    };
    findings
        .into_iter()
        .filter(|f| {
            if !matches!(f.kind, LintKind::EmptyGroup | LintKind::DeadGroup) {
                return true;
            }
            let allowed = f
                .group
                .and_then(|g| prov.group_name(g))
                .is_some_and(|name| profile.allows(name));
            !allowed
        })
        .collect()
}

/// Audits the output of the SAT preprocessor (`Solver::clauses_snapshot`
/// rebuilt as a [`Formula`], plus `Solver::eliminated_vars`).
///
/// The preprocessed formula must contain no tautological clauses, no
/// duplicate clauses, and — the preprocessing-specific invariant — no
/// clause touching an eliminated variable ([`LintKind::EliminatedVarClause`],
/// an error: the clause database and the model-reconstruction stack would
/// disagree). Eliminated variables legitimately occur in no clause, so they
/// are exempt from [`LintKind::UnconstrainedVar`].
pub fn audit_preprocessed(formula: &Formula, eliminated: &[Var]) -> Vec<Finding> {
    let mut elim = vec![false; formula.num_vars()];
    for &v in eliminated {
        if let Some(slot) = elim.get_mut(v.index()) {
            *slot = true;
        }
    }
    let mut findings: Vec<Finding> = audit(formula, None)
        .into_iter()
        .filter(|f| {
            !(f.kind == LintKind::UnconstrainedVar
                && f.var
                    .is_some_and(|v| elim.get(v.index()).copied().unwrap_or(false)))
        })
        .collect();
    for (i, clause) in formula.clauses().iter().enumerate() {
        if let Some(&l) = clause
            .iter()
            .find(|l| elim.get(l.var().index()).copied().unwrap_or(false))
        {
            findings.push(
                Finding::new(
                    LintKind::EliminatedVarClause,
                    format!(
                        "clause #{i} references {}, which preprocessing eliminated",
                        l.var()
                    ),
                )
                .with_var(l.var())
                .with_clause(i),
            );
        }
    }
    findings
}

/// Audits `formula`, returning all findings in discovery order.
///
/// `provenance` (when given) exempts objective-referenced variables from
/// the unconstrained-variable lint, enables the group and gate lints, and
/// enriches every message with encoder-level origin information.
pub fn audit(formula: &Formula, provenance: Option<&Provenance>) -> Vec<Finding> {
    let empty = Provenance::new();
    let prov = provenance.unwrap_or(&empty);
    let mut auditor = Auditor::new(formula, prov);
    auditor.per_clause_structure();
    auditor.unconstrained_vars();
    auditor.duplicates_and_subsumption();
    auditor.groups();
    auditor.gates();
    auditor.findings
}

struct Auditor<'a> {
    formula: &'a Formula,
    prov: &'a Provenance,
    /// Sorted, deduplicated literal codes per clause.
    norm: Vec<Vec<u32>>,
    /// Clause indices per variable (vars within range only).
    var_occ: Vec<Vec<usize>>,
    /// Clause indices per literal code.
    lit_occ: Vec<Vec<usize>>,
    tautological: Vec<bool>,
    findings: Vec<Finding>,
}

impl<'a> Auditor<'a> {
    fn new(formula: &'a Formula, prov: &'a Provenance) -> Self {
        let nv = formula.num_vars();
        let clauses = formula.clauses();
        let mut norm = Vec::with_capacity(clauses.len());
        let mut var_occ = vec![Vec::new(); nv];
        let mut lit_occ = vec![Vec::new(); 2 * nv];
        let mut tautological = vec![false; clauses.len()];
        for (i, clause) in clauses.iter().enumerate() {
            let mut codes: Vec<u32> = clause.iter().map(|l| l.code()).collect();
            codes.sort_unstable();
            codes.dedup();
            tautological[i] = codes.windows(2).any(|w| w[0] ^ 1 == w[1]);
            for &code in &codes {
                let v = (code >> 1) as usize;
                if v < nv {
                    var_occ[v].push(i);
                    lit_occ[code as usize].push(i);
                }
            }
            norm.push(codes);
        }
        Auditor {
            formula,
            prov,
            norm,
            var_occ,
            lit_occ,
            tautological,
            findings: Vec::new(),
        }
    }

    /// Anchors a finding to clause `i`, attaching its provenance group.
    fn anchored(&self, f: Finding, i: usize) -> Finding {
        match self.prov.clause_group(i) {
            Some(g) => f.with_clause(i).with_group(g),
            None => f.with_clause(i),
        }
    }

    fn per_clause_structure(&mut self) {
        let nv = self.formula.num_vars();
        for (i, clause) in self.formula.clauses().iter().enumerate() {
            if clause.is_empty() {
                let f = self.anchored(
                    Finding::new(
                        LintKind::EmptyClause,
                        format!(
                            "{} is empty — the formula is trivially unsatisfiable",
                            self.prov.describe_clause(i)
                        ),
                    ),
                    i,
                );
                self.findings.push(f);
                continue;
            }
            for &l in clause {
                if l.var().index() >= nv {
                    let f = self.anchored(
                        Finding::new(
                            LintKind::OutOfRangeLiteral,
                            format!(
                                "{} references {} but only {nv} variables are allocated",
                                self.prov.describe_clause(i),
                                self.prov.describe_var(l.var()),
                            ),
                        ),
                        i,
                    );
                    self.findings.push(f.with_var(l.var()));
                }
            }
            if self.tautological[i] {
                let v = first_tautological_var(&self.norm[i]);
                let f = self.anchored(
                    Finding::new(
                        LintKind::TautologicalClause,
                        format!(
                            "{} contains {} in both polarities and is always true",
                            self.prov.describe_clause(i),
                            self.prov.describe_var(v),
                        ),
                    ),
                    i,
                );
                self.findings.push(f.with_var(v));
            }
        }
    }

    fn unconstrained_vars(&mut self) {
        for idx in 0..self.formula.num_vars() {
            let v = Var::from_index(idx);
            if self.var_occ[idx].is_empty() && !self.prov.is_objective_var(v) {
                self.findings.push(
                    Finding::new(
                        LintKind::UnconstrainedVar,
                        format!(
                            "{} is allocated but appears in no clause or objective",
                            self.prov.describe_var(v)
                        ),
                    )
                    .with_var(v),
                );
            }
        }
    }

    fn duplicates_and_subsumption(&mut self) {
        // Duplicates: identical normalized literal sets.
        let mut first_seen: HashMap<&[u32], usize> = HashMap::new();
        let mut duplicate_of: Vec<Option<usize>> = vec![None; self.norm.len()];
        for (i, codes) in self.norm.iter().enumerate() {
            if codes.is_empty() {
                continue;
            }
            match first_seen.entry(codes.as_slice()) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    duplicate_of[i] = Some(*e.get());
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(i);
                }
            }
        }
        let mut dup_findings = Vec::new();
        for (i, dup) in duplicate_of.iter().enumerate() {
            if let Some(j) = dup {
                dup_findings.push(self.anchored(
                    Finding::new(
                        LintKind::DuplicateClause,
                        format!(
                            "{} repeats {}",
                            self.prov.describe_clause(i),
                            self.prov.describe_clause(*j),
                        ),
                    ),
                    i,
                ));
            }
        }
        self.findings.append(&mut dup_findings);

        // Subsumption (strict): scan, for each potential subsumer, the
        // occurrence list of its rarest literal — every superset clause
        // must contain that literal too. Tautologies and duplicates are
        // excluded (already reported; a tautology "subsumes" nothing
        // meaningful and duplicates would double-report). Unit clauses are
        // excluded as subsumers too: a unit is a root-level *assignment*,
        // and the instance-specific slack it creates is reported at group
        // granularity by the dead-group lint instead of flooding the
        // report with one finding per clause mentioning the literal.
        //
        // Gate-defining clauses are exempt as subsumees: they pin down the
        // gate's *value*, so "redundant" there only means the context
        // already forces the gate one way (e.g. a completion gate whose
        // inputs a presence clause guarantees) — removing the clause would
        // change the function being defined, not eliminate waste.
        let mut gate_defining = vec![false; self.norm.len()];
        for gate in self.prov.gates() {
            for ci in gate.clauses.clone() {
                if let Some(slot) = gate_defining.get_mut(ci) {
                    *slot = true;
                }
            }
        }
        let mut subsumed_reported = vec![false; self.norm.len()];
        for (j, codes) in self.norm.iter().enumerate() {
            if codes.len() < 2 || self.tautological[j] || duplicate_of[j].is_some() {
                continue;
            }
            // Out-of-range literals (already reported as errors) have no
            // occurrence lists; skip such clauses here.
            if codes
                .last()
                .is_some_and(|&c| c as usize >= self.lit_occ.len())
            {
                continue;
            }
            let rarest = codes
                .iter()
                .min_by_key(|&&c| self.lit_occ[c as usize].len())
                .copied()
                .expect("non-empty clause");
            for &i in &self.lit_occ[rarest as usize] {
                if i == j
                    || subsumed_reported[i]
                    || gate_defining[i]
                    || self.norm[i].len() <= codes.len()
                    || self.tautological[i]
                    || duplicate_of[i].is_some()
                {
                    continue;
                }
                if is_subset(codes, &self.norm[i]) {
                    subsumed_reported[i] = true;
                    let f = self.anchored(
                        Finding::new(
                            LintKind::SubsumedClause,
                            format!(
                                "{} is subsumed by {}",
                                self.prov.describe_clause(i),
                                self.prov.describe_clause(j),
                            ),
                        ),
                        i,
                    );
                    self.findings.push(f);
                }
            }
        }
    }

    fn groups(&mut self) {
        let num_groups = self.prov.num_groups();
        if num_groups == 0 {
            return;
        }
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); num_groups];
        for i in 0..self.formula.num_clauses() {
            if let Some(g) = self.prov.clause_group(i) {
                if g < num_groups {
                    members[g].push(i);
                }
            }
        }
        for (g, clause_ids) in members.iter().enumerate() {
            let name = self.prov.group_name(g).unwrap_or("?");
            if clause_ids.is_empty() {
                self.findings.push(
                    Finding::new(
                        LintKind::EmptyGroup,
                        format!("constraint group `{name}` produced no clauses"),
                    )
                    .with_group(g),
                );
                continue;
            }
            // Dead: unit propagation over the *other* groups' clauses
            // already satisfies every clause of this group.
            let Some(assign) = self.up_fixpoint(|i| self.prov.clause_group(i) == Some(g)) else {
                continue; // the rest of the formula is root-conflicting
            };
            let dead = clause_ids.iter().all(|&i| {
                self.formula.clauses()[i]
                    .iter()
                    .any(|&l| lit_value(&assign, l) == Some(true))
            });
            if dead {
                self.findings.push(
                    Finding::new(
                        LintKind::DeadGroup,
                        format!(
                            "constraint group `{name}` ({} clauses) is already \
                             satisfied by unit propagation over the rest of the \
                             formula — it constrains nothing on this instance",
                            clause_ids.len()
                        ),
                    )
                    .with_group(g),
                );
            }
        }
    }

    /// Root-level unit propagation over all clauses except those for which
    /// `skip` returns true. `None` on conflict. Assignment is indexed by
    /// variable: `1` true, `-1` false, `0` unassigned.
    fn up_fixpoint(&self, skip: impl Fn(usize) -> bool) -> Option<Vec<i8>> {
        let nv = self.formula.num_vars();
        let mut assign = vec![0i8; nv];
        loop {
            let mut changed = false;
            for (i, clause) in self.formula.clauses().iter().enumerate() {
                if skip(i) || self.tautological[i] {
                    continue;
                }
                let mut unassigned = None;
                let mut n_unassigned = 0usize;
                let mut satisfied = false;
                for &l in clause {
                    match lit_value(&assign, l) {
                        Some(true) => {
                            satisfied = true;
                            break;
                        }
                        Some(false) => {}
                        None => {
                            n_unassigned += 1;
                            unassigned = Some(l);
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                match n_unassigned {
                    0 => return None,
                    1 => {
                        let l = unassigned.expect("counted one unassigned literal");
                        if l.var().index() < nv {
                            assign[l.var().index()] = if l.is_positive() { 1 } else { -1 };
                            changed = true;
                        }
                    }
                    _ => {}
                }
            }
            if !changed {
                return Some(assign);
            }
        }
    }

    fn gates(&mut self) {
        let gates = self.prov.gates();
        if gates.is_empty() {
            return;
        }
        // Map each gate-defining clause to its owning gate.
        let mut owner: HashMap<usize, usize> = HashMap::new();
        for (gi, gate) in gates.iter().enumerate() {
            for ci in gate.clauses.clone() {
                owner.insert(ci, gi);
            }
        }
        // A gate is live while its output is referenced outside its own
        // defining clauses and outside dead gates' defining clauses (or by
        // an objective). Iterate to a fixpoint so dangling gate *chains*
        // die back-to-front.
        let mut alive = vec![true; gates.len()];
        loop {
            let mut changed = false;
            for (gi, gate) in gates.iter().enumerate() {
                if !alive[gi] || self.prov.is_objective_var(gate.output) {
                    continue;
                }
                let out = gate.output.index();
                let referenced = out < self.var_occ.len()
                    && self.var_occ[out].iter().any(|&ci| {
                        !gate.clauses.contains(&ci)
                            && match owner.get(&ci) {
                                Some(&og) => alive[og],
                                None => true,
                            }
                    });
                if !referenced {
                    alive[gi] = false;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for (gi, gate) in gates.iter().enumerate() {
            if !alive[gi] {
                self.findings.push(
                    Finding::new(
                        LintKind::UnreferencedGate,
                        format!(
                            "Tseitin gate output {} is never referenced outside \
                             its defining clauses",
                            self.prov.describe_var(gate.output)
                        ),
                    )
                    .with_var(gate.output),
                );
            }
        }
    }
}

/// Truth value of a literal under a partial assignment.
fn lit_value(assign: &[i8], l: Lit) -> Option<bool> {
    match assign.get(l.var().index()).copied().unwrap_or(0) {
        0 => None,
        s => Some((s > 0) == l.is_positive()),
    }
}

/// `a ⊆ b` for sorted, deduplicated code slices.
fn is_subset(a: &[u32], b: &[u32]) -> bool {
    let mut bi = 0usize;
    for &x in a {
        loop {
            match b.get(bi) {
                Some(&y) if y < x => bi += 1,
                Some(&y) if y == x => {
                    bi += 1;
                    break;
                }
                _ => return false,
            }
        }
    }
    true
}

/// First variable occurring in both polarities in a sorted code slice.
fn first_tautological_var(codes: &[u32]) -> Var {
    codes
        .windows(2)
        .find(|w| w[0] ^ 1 == w[1])
        .map(|w| Var::from_index((w[0] >> 1) as usize))
        .expect("caller checked the clause is tautological")
}
