//! Encoder-supplied metadata that anchors lint findings to the model.
//!
//! The lint checks themselves only need a clause list, but a bare "variable
//! 4711 is never constrained" is useless to an encoding author. A
//! [`Provenance`] carries what the encoder knew at emission time — a label
//! per variable (train / time step / segment), a named *constraint group*
//! per clause, which variables an objective references, and which variables
//! are Tseitin gate outputs — so findings can name the construct at fault.

use etcs_sat::Var;
use std::ops::Range;

/// A Tseitin gate: an output variable plus the contiguous range of clause
/// indices that define it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Gate {
    /// The gate's output variable.
    pub output: Var,
    /// Indices (into the formula's clause list) of the defining clauses.
    pub clauses: Range<usize>,
}

/// Origin metadata for a formula, built alongside it by the encoder.
///
/// Every part is optional: untagged variables and clauses simply produce
/// less specific findings. Indices must align with the audited formula
/// (variable index ↔ label slot, clause index ↔ group slot).
#[derive(Clone, Debug, Default)]
pub struct Provenance {
    var_labels: Vec<Option<String>>,
    objective_vars: Vec<bool>,
    clause_groups: Vec<Option<usize>>,
    groups: Vec<String>,
    gates: Vec<Gate>,
}

impl Provenance {
    /// Creates empty provenance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a named constraint group and returns its id.
    pub fn declare_group(&mut self, name: impl Into<String>) -> usize {
        self.groups.push(name.into());
        self.groups.len() - 1
    }

    /// Number of declared groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Name of a group, if declared.
    pub fn group_name(&self, group: usize) -> Option<&str> {
        self.groups.get(group).map(String::as_str)
    }

    /// Attaches a human-readable origin label to a variable.
    pub fn tag_var(&mut self, v: Var, label: impl Into<String>) {
        let idx = v.index();
        if self.var_labels.len() <= idx {
            self.var_labels.resize(idx + 1, None);
        }
        self.var_labels[idx] = Some(label.into());
    }

    /// The origin label of a variable, if tagged.
    pub fn var_label(&self, v: Var) -> Option<&str> {
        self.var_labels.get(v.index())?.as_deref()
    }

    /// Marks a variable as referenced by an objective function (such
    /// variables are exempt from the unconstrained-variable lint).
    pub fn mark_objective_var(&mut self, v: Var) {
        let idx = v.index();
        if self.objective_vars.len() <= idx {
            self.objective_vars.resize(idx + 1, false);
        }
        self.objective_vars[idx] = true;
    }

    /// `true` if the variable is referenced by an objective.
    pub fn is_objective_var(&self, v: Var) -> bool {
        self.objective_vars.get(v.index()).copied().unwrap_or(false)
    }

    /// Assigns a clause (by index in the formula) to a declared group.
    pub fn tag_clause(&mut self, clause: usize, group: usize) {
        if self.clause_groups.len() <= clause {
            self.clause_groups.resize(clause + 1, None);
        }
        self.clause_groups[clause] = Some(group);
    }

    /// The group of a clause, if tagged.
    pub fn clause_group(&self, clause: usize) -> Option<usize> {
        self.clause_groups.get(clause).copied().flatten()
    }

    /// Records a Tseitin gate (output variable + defining clause range).
    pub fn tag_gate(&mut self, output: Var, clauses: Range<usize>) {
        self.gates.push(Gate { output, clauses });
    }

    /// The recorded gates.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Renders a variable with its origin label when available.
    pub fn describe_var(&self, v: Var) -> String {
        match self.var_label(v) {
            Some(label) => format!("x{} ({label})", v.index()),
            None => format!("x{}", v.index()),
        }
    }

    /// Renders a clause index with its group name when available.
    pub fn describe_clause(&self, clause: usize) -> String {
        match self.clause_group(clause).and_then(|g| self.group_name(g)) {
            Some(name) => format!("clause {clause} (group `{name}`)"),
            None => format!("clause {clause}"),
        }
    }
}
