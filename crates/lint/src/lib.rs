//! # etcs-lint — static analysis for CNF encodings
//!
//! SAT solvers happily digest malformed or wasteful encodings: an
//! unconstrained variable, a tautological clause, or a whole constraint
//! family that never fires all solve to the *same verdict* as the intended
//! formula, so such defects survive every end-to-end test. This crate
//! audits a [`Formula`] (any formula — it only assumes CNF) together with
//! optional encoder [`Provenance`] and reports:
//!
//! * [`LintKind::OutOfRangeLiteral`] — literals outside the allocated
//!   variable range (severity: error; the formula is malformed),
//! * [`LintKind::EmptyClause`] — trivial unsatisfiability baked in,
//! * [`LintKind::UnconstrainedVar`] — allocated but never used variables,
//! * [`LintKind::TautologicalClause`] / [`LintKind::DuplicateClause`] /
//!   [`LintKind::SubsumedClause`] — clauses that cannot constrain anything,
//! * [`LintKind::EmptyGroup`] / [`LintKind::DeadGroup`] — declared
//!   constraint groups that emitted nothing, or whose every clause is
//!   already satisfied by unit propagation over the rest of the formula,
//! * [`LintKind::UnreferencedGate`] — Tseitin gates whose outputs dangle,
//! * [`LintKind::EliminatedVarClause`] — clauses touching a variable the
//!   SAT preprocessor eliminated (via [`audit_preprocessed`], the audit
//!   profile over preprocessor output).
//!
//! With provenance attached (the ETCS encoder tags every variable with its
//! train / time step / segment and every clause with its constraint group),
//! findings read like `occ[train=2,t=3,seg=7]` instead of `x4711`.
//!
//! ## Example
//!
//! ```
//! use etcs_lint::{audit, LintKind, Provenance};
//! use etcs_sat::{CnfSink, Formula};
//!
//! let mut f = Formula::new();
//! let mut prov = Provenance::new();
//! let a = f.new_var();
//! prov.tag_var(a, "occ[train=0,t=0,seg=0]");
//! let b = f.new_var();
//! prov.tag_var(b, "occ[train=0,t=1,seg=0]");
//! let g = prov.declare_group("movement[train=0]");
//! f.add_clause_from(&[a.positive(), a.negative()]); // oops: tautology
//! prov.tag_clause(0, g);
//!
//! let findings = audit(&f, Some(&prov));
//! assert!(findings.iter().any(|x| x.kind == LintKind::TautologicalClause));
//! assert!(findings.iter().any(|x| x.kind == LintKind::UnconstrainedVar
//!     && x.message.contains("occ[train=0,t=1,seg=0]")));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod audit;
mod provenance;

pub use audit::{
    audit, audit_preprocessed, audit_with_profile, Finding, LazyProfile, LintKind, Severity,
};
pub use provenance::{Gate, Provenance};

use etcs_sat::Formula;

/// `true` if any finding is [`Severity::Error`] — the formula is malformed
/// and must not be handed to a solver.
pub fn has_errors(findings: &[Finding]) -> bool {
    findings.iter().any(|f| f.severity == Severity::Error)
}

/// Renders findings as a line-per-finding report (empty string when clean).
pub fn render_report(findings: &[Finding]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(out, "{f}");
    }
    out
}

/// Convenience: audits a formula without provenance.
pub fn audit_formula(formula: &Formula) -> Vec<Finding> {
    audit(formula, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use etcs_sat::{CnfSink, Formula, Var};

    fn kinds(findings: &[Finding]) -> Vec<LintKind> {
        findings.iter().map(|f| f.kind).collect()
    }

    #[test]
    fn clean_formula_has_no_findings() {
        let mut f = Formula::new();
        let a = f.new_var().positive();
        let b = f.new_var().positive();
        f.add_clause_from(&[a, b]);
        f.add_clause_from(&[!a, !b]);
        assert!(audit_formula(&f).is_empty());
    }

    #[test]
    fn out_of_range_literal_is_an_error() {
        let mut f = Formula::new();
        let a = f.new_var().positive();
        f.add_clause_from(&[a, Var::from_index(7).positive()]);
        let findings = audit_formula(&f);
        assert!(kinds(&findings).contains(&LintKind::OutOfRangeLiteral));
        assert!(has_errors(&findings));
    }

    #[test]
    fn empty_clause_is_flagged() {
        let mut f = Formula::new();
        let _ = f.new_var();
        f.add_clause_from(&[]);
        let findings = audit_formula(&f);
        assert!(kinds(&findings).contains(&LintKind::EmptyClause));
    }

    #[test]
    fn unconstrained_var_is_flagged_unless_objective() {
        let mut f = Formula::new();
        let a = f.new_var();
        let b = f.new_var();
        f.add_clause_from(&[a.positive()]);
        let findings = audit_formula(&f);
        assert_eq!(kinds(&findings), vec![LintKind::UnconstrainedVar]);
        assert_eq!(findings[0].var, Some(b));

        let mut prov = Provenance::new();
        prov.mark_objective_var(b);
        assert!(audit(&f, Some(&prov)).is_empty());
    }

    #[test]
    fn tautology_duplicate_and_subsumption_are_flagged() {
        let mut f = Formula::new();
        let a = f.new_var().positive();
        let b = f.new_var().positive();
        let c = f.new_var().positive();
        f.add_clause_from(&[a, !a, b]); // 0: tautology
        f.add_clause_from(&[a, b]); // 1
        f.add_clause_from(&[b, a]); // 2: duplicate of 1
        f.add_clause_from(&[a, b, c]); // 3: subsumed by 1
        f.add_clause_from(&[!c, !a]); // 4: clean (constrains c)
        let findings = audit_formula(&f);
        let ks = kinds(&findings);
        assert!(ks.contains(&LintKind::TautologicalClause));
        assert!(ks.contains(&LintKind::DuplicateClause));
        assert!(ks.contains(&LintKind::SubsumedClause));
        let sub = findings
            .iter()
            .find(|f| f.kind == LintKind::SubsumedClause)
            .expect("subsumption finding");
        assert_eq!(sub.clause, Some(3));
    }

    #[test]
    fn duplicates_are_not_double_reported_as_subsumed() {
        let mut f = Formula::new();
        let a = f.new_var().positive();
        let b = f.new_var().positive();
        f.add_clause_from(&[a, b]);
        f.add_clause_from(&[a, b]);
        let findings = audit_formula(&f);
        assert_eq!(kinds(&findings), vec![LintKind::DuplicateClause]);
    }

    #[test]
    fn gate_defining_clauses_are_exempt_from_subsumption() {
        // The gate's long clause [a, b, !y] is a strict superset of the
        // plain clause [a, b], but it is definitional (it pins down y's
        // value) and must not be reported as subsumed.
        let mut f = Formula::new();
        let a = f.new_var().positive();
        let b = f.new_var().positive();
        f.add_clause_from(&[a, b]);
        f.add_clause_from(&[!a, !b]);
        let mut prov = Provenance::new();
        let start = f.num_clauses();
        let y = f.or_gate(&[a, b]);
        prov.tag_gate(y.var(), start..f.num_clauses());
        f.assert_true(y);
        let findings = audit(&f, Some(&prov));
        assert!(
            !kinds(&findings).contains(&LintKind::SubsumedClause),
            "definitional gate clauses must not be reported: {findings:?}"
        );
    }

    #[test]
    fn empty_group_is_flagged() {
        let mut f = Formula::new();
        let a = f.new_var().positive();
        f.add_clause_from(&[a]);
        let mut prov = Provenance::new();
        let g = prov.declare_group("separation");
        let findings = audit(&f, Some(&prov));
        assert_eq!(kinds(&findings), vec![LintKind::EmptyGroup]);
        assert_eq!(findings[0].group, Some(g));
        assert!(findings[0].message.contains("separation"));
    }

    #[test]
    fn dead_group_is_flagged() {
        // Group 0 root-implies b (a unit chain); every clause of group 1
        // is satisfied by the derived b, so group 1 constrains nothing.
        let mut f = Formula::new();
        let a = f.new_var().positive();
        let b = f.new_var().positive();
        let c = f.new_var().positive();
        let mut prov = Provenance::new();
        let g0 = prov.declare_group("border-fix");
        let g1 = prov.declare_group("separation");
        f.add_clause_from(&[a]);
        prov.tag_clause(0, g0);
        f.add_clause_from(&[!a, b]);
        prov.tag_clause(1, g0);
        f.add_clause_from(&[b, c]);
        prov.tag_clause(2, g1);
        f.add_clause_from(&[b, !c]);
        prov.tag_clause(3, g1);
        let findings = audit(&f, Some(&prov));
        assert_eq!(kinds(&findings), vec![LintKind::DeadGroup]);
        assert_eq!(findings[0].group, Some(g1));
        assert_eq!(findings[0].severity, Severity::Info);
    }

    #[test]
    fn live_group_is_not_flagged() {
        let mut f = Formula::new();
        let a = f.new_var().positive();
        let b = f.new_var().positive();
        let mut prov = Provenance::new();
        let g = prov.declare_group("movement");
        f.add_clause_from(&[a, b]);
        prov.tag_clause(0, g);
        f.add_clause_from(&[!a, !b]);
        assert!(audit(&f, Some(&prov)).is_empty());
    }

    #[test]
    fn unreferenced_gate_chain_dies_back_to_front() {
        // y0 = or(a); y1 = or(y0): y1 dangles, which in turn kills y0.
        let mut f = Formula::new();
        let a = f.new_var().positive();
        f.add_clause_from(&[a]); // keep `a` constrained
        let mut prov = Provenance::new();
        let start0 = f.num_clauses();
        let y0 = f.or_gate(&[a]);
        prov.tag_gate(y0.var(), start0..f.num_clauses());
        let start1 = f.num_clauses();
        let y1 = f.or_gate(&[y0]);
        prov.tag_gate(y1.var(), start1..f.num_clauses());
        let findings = audit(&f, Some(&prov));
        let mut gate_vars: Vec<_> = findings
            .iter()
            .filter(|f| f.kind == LintKind::UnreferencedGate)
            .filter_map(|f| f.var)
            .collect();
        gate_vars.sort();
        assert_eq!(gate_vars, vec![y0.var(), y1.var()]);
    }

    #[test]
    fn referenced_gate_is_live() {
        let mut f = Formula::new();
        let a = f.new_var().positive();
        f.add_clause_from(&[a]);
        let mut prov = Provenance::new();
        let start = f.num_clauses();
        let y = f.or_gate(&[a]);
        prov.tag_gate(y.var(), start..f.num_clauses());
        f.assert_true(y);
        assert!(audit(&f, Some(&prov)).is_empty());
    }

    #[test]
    fn objective_marked_gate_is_live() {
        let mut f = Formula::new();
        let a = f.new_var().positive();
        f.add_clause_from(&[a]);
        let mut prov = Provenance::new();
        let start = f.num_clauses();
        let y = f.and_gate(&[a]);
        prov.tag_gate(y.var(), start..f.num_clauses());
        prov.mark_objective_var(y.var());
        assert!(audit(&f, Some(&prov)).is_empty());
    }

    #[test]
    fn lazy_profile_suppresses_only_allowlisted_groups() {
        let mut f = Formula::new();
        let a = f.new_var().positive();
        f.add_clause_from(&[a]);
        let mut prov = Provenance::new();
        let g_sep = prov.declare_group("separation");
        let g_col = prov.declare_group("collision");
        let findings = audit(&f, Some(&prov));
        assert_eq!(
            kinds(&findings),
            vec![LintKind::EmptyGroup, LintKind::EmptyGroup],
            "both relaxed groups are flagged without a profile"
        );

        let profile = LazyProfile::new().allow_group("separation");
        let filtered = audit_with_profile(&f, Some(&prov), &profile);
        assert_eq!(kinds(&filtered), vec![LintKind::EmptyGroup]);
        assert_eq!(filtered[0].group, Some(g_col), "collision stays flagged");
        let _ = g_sep;

        let full = LazyProfile::new()
            .allow_group("separation")
            .allow_group("collision");
        assert!(audit_with_profile(&f, Some(&prov), &full).is_empty());
    }

    #[test]
    fn lazy_profile_does_not_mask_other_lints() {
        let mut f = Formula::new();
        let a = f.new_var().positive();
        let _dangling = f.new_var();
        f.add_clause_from(&[a, !a]); // tautology
        let mut prov = Provenance::new();
        let g = prov.declare_group("separation");
        prov.tag_clause(0, g);
        let profile = LazyProfile::new().allow_group("separation");
        let findings = audit_with_profile(&f, Some(&prov), &profile);
        let ks = kinds(&findings);
        assert!(ks.contains(&LintKind::TautologicalClause));
        assert!(ks.contains(&LintKind::UnconstrainedVar));
    }

    #[test]
    fn dead_allowlisted_group_is_suppressed() {
        // Group 0 root-implies b; group 1 ("separation") is dead — and
        // declared lazily deferred, so the profile silences it.
        let mut f = Formula::new();
        let a = f.new_var().positive();
        let b = f.new_var().positive();
        let mut prov = Provenance::new();
        let g0 = prov.declare_group("border-fix");
        let g1 = prov.declare_group("separation");
        f.add_clause_from(&[a]);
        prov.tag_clause(0, g0);
        f.add_clause_from(&[!a, b]);
        prov.tag_clause(1, g0);
        f.add_clause_from(&[b, a]);
        prov.tag_clause(2, g1);
        let findings = audit(&f, Some(&prov));
        assert!(kinds(&findings).contains(&LintKind::DeadGroup));
        let profile = LazyProfile::new().allow_group("separation");
        assert!(audit_with_profile(&f, Some(&prov), &profile).is_empty());
    }

    #[test]
    fn findings_render_with_severity_and_name() {
        let mut f = Formula::new();
        let _ = f.new_var();
        let findings = audit_formula(&f);
        let report = render_report(&findings);
        assert!(report.contains("[warning] unconstrained-var"));
    }

    #[test]
    fn preprocessed_audit_errors_on_clauses_touching_eliminated_vars() {
        let mut f = Formula::new();
        let a = f.new_var();
        let b = f.new_var();
        f.add_clause_from(&[a.positive(), b.positive()]);
        // Claiming `b` was eliminated while a clause still mentions it is
        // an inconsistency between database and elimination record.
        let findings = audit_preprocessed(&f, &[b]);
        assert!(kinds(&findings).contains(&LintKind::EliminatedVarClause));
        assert!(has_errors(&findings));
        assert_eq!(
            findings
                .iter()
                .find(|x| x.kind == LintKind::EliminatedVarClause)
                .and_then(|x| x.var),
            Some(b)
        );
    }

    #[test]
    fn preprocessed_audit_exempts_eliminated_vars_from_unconstrained() {
        let mut f = Formula::new();
        let a = f.new_var();
        let b = f.new_var();
        f.add_clause_from(&[a.positive()]);
        // Plain audit flags `b` as unconstrained; the preprocess profile
        // knows eliminated variables occur in no clause by design.
        assert!(kinds(&audit_formula(&f)).contains(&LintKind::UnconstrainedVar));
        assert!(audit_preprocessed(&f, &[b]).is_empty());
    }

    #[test]
    fn preprocessor_output_passes_the_preprocessed_audit() {
        // Round-trip: a formula with duplicates, subsumed clauses and an
        // eliminable variable goes through the real preprocessor; its
        // output snapshot must be clean under the preprocess profile.
        use etcs_sat::{PreprocessConfig, Solver};
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        let x = s.new_var().positive();
        let c = s.new_var().positive();
        s.add_clause([a, b]);
        s.add_clause([b, a]); // duplicate
        s.add_clause([a, b, c]); // subsumed
        s.add_clause([!x, a]);
        s.add_clause([x, c]); // x is eliminable
        for l in [a, b, c] {
            s.freeze_lit(l);
        }
        let stats = s.preprocess(&PreprocessConfig::default());
        assert!(stats.clauses_removed() >= 2);
        let mut f = Formula::new();
        for _ in 0..s.num_vars() {
            let _ = f.new_var();
        }
        for clause in s.clauses_snapshot() {
            f.add_clause_from(&clause);
        }
        let findings = audit_preprocessed(&f, &s.eliminated_vars());
        let ks = kinds(&findings);
        assert!(!ks.contains(&LintKind::TautologicalClause), "{findings:?}");
        assert!(!ks.contains(&LintKind::DuplicateClause), "{findings:?}");
        assert!(!ks.contains(&LintKind::EliminatedVarClause), "{findings:?}");
        assert!(!has_errors(&findings), "{findings:?}");
    }
}
