//! A greedy fixed-block dispatcher: the operational baseline the paper's
//! SAT methodology is compared against.
//!
//! The dispatcher simulates conventional signalling on a given VSS layout:
//! each train follows its shortest route and may only advance into a
//! segment whose *section* (TTD or VSS, per the layout) is free of other
//! trains. No global lookahead — exactly the myopic behaviour that
//! deadlocks on the paper's running example, motivating the SAT approach.

// Index-coupled loops over parallel tables are intentional here.
#![allow(clippy::needless_range_loop)]

use etcs_core::{ExitPolicy, Instance, SolvedPlan, TrainPlan};
use etcs_network::{EdgeId, VssLayout};

/// Result of a dispatcher run.
#[derive(Clone, Debug)]
pub struct DispatchResult {
    /// The produced movement plan (positions per train per step).
    pub plan: SolvedPlan,
    /// Arrival step of each train, `None` if it never arrived within the
    /// horizon (blocked or deadlocked).
    pub arrivals: Vec<Option<usize>>,
}

impl DispatchResult {
    /// `true` when every train reached its destination within the horizon.
    pub fn all_arrived(&self) -> bool {
        self.arrivals.iter().all(Option::is_some)
    }

    /// Completion time in steps (last arrival + 1), if all trains arrived.
    pub fn completion_steps(&self) -> Option<usize> {
        self.arrivals
            .iter()
            .map(|a| a.map(|s| s + 1))
            .collect::<Option<Vec<_>>>()
            .map(|v| v.into_iter().max().unwrap_or(0))
    }
}

/// Runs the greedy dispatcher on the instance under the given layout.
///
/// Trains move in schedule order each step (earlier trains have priority),
/// advancing up to their speed along their precomputed shortest route, but
/// never entering a segment whose section contains another train at the
/// start of the step or a segment already claimed in this step.
pub fn dispatch(inst: &Instance, layout: &VssLayout) -> DispatchResult {
    let net = &inst.net;
    let sections = layout.sections(net);
    let section_of: Vec<usize> = {
        let mut map = vec![usize::MAX; net.num_edges()];
        for (si, sec) in sections.iter().enumerate() {
            for e in sec {
                map[e.index()] = si;
            }
        }
        map
    };

    // Shortest route (as an edge sequence) per train.
    let routes: Vec<Vec<EdgeId>> = inst.trains.iter().map(|tr| route_of(inst, tr)).collect();

    #[derive(Clone)]
    struct State {
        /// Index of the route edge under the train's front, `None` before
        /// departure or after leaving.
        front: Option<usize>,
        arrived: Option<usize>,
        gone: bool,
    }
    let mut states: Vec<State> = inst
        .trains
        .iter()
        .map(|_| State {
            front: None,
            arrived: None,
            gone: false,
        })
        .collect();

    let occupied_chain = |route: &[EdgeId], front: usize, len: usize| -> Vec<EdgeId> {
        let lo = front.saturating_sub(len - 1);
        route[lo..=front].to_vec()
    };

    let mut positions: Vec<Vec<Vec<EdgeId>>> =
        vec![vec![Vec::new(); inst.t_max]; inst.trains.len()];

    for t in 0..inst.t_max {
        // Occupancy at the start of the step.
        let mut section_busy: Vec<Option<usize>> = vec![None; sections.len()];
        let mut edge_busy: Vec<Option<usize>> = vec![None; net.num_edges()];
        for (tr, st) in states.iter().enumerate() {
            if let (Some(front), false) = (st.front, st.gone) {
                for e in occupied_chain(&routes[tr], front, inst.trains[tr].length) {
                    edge_busy[e.index()] = Some(tr);
                    section_busy[section_of[e.index()]] = Some(tr);
                }
            }
        }

        for tr in 0..inst.trains.len() {
            let spec = &inst.trains[tr];
            let route = &routes[tr];
            let st = &mut states[tr];
            if st.gone {
                continue;
            }
            match st.front {
                None if t == spec.dep_step => {
                    // Enter at the first route edge if its section is free.
                    let e = route[0];
                    let free = edge_busy[e.index()].is_none()
                        && section_busy[section_of[e.index()]].is_none();
                    if free {
                        st.front = Some(0);
                        edge_busy[e.index()] = Some(tr);
                        section_busy[section_of[e.index()]] = Some(tr);
                    }
                    // A blocked entry is a missed departure: the train stays
                    // outside and retries next step (real dispatching would
                    // hold it in the yard).
                }
                None => {}
                Some(front) => {
                    if st.arrived.is_some() {
                        match spec.exit {
                            ExitPolicy::Leave => {
                                // Vacate the network.
                                for e in occupied_chain(route, front, spec.length) {
                                    edge_busy[e.index()] = None;
                                    section_busy[section_of[e.index()]] = None;
                                }
                                st.gone = true;
                            }
                            ExitPolicy::Park => {}
                        }
                        continue;
                    }
                    // Advance while speed and section availability allow.
                    let mut new_front = front;
                    for _ in 0..spec.speed {
                        let Some(&next_edge) = route.get(new_front + 1) else {
                            break;
                        };
                        let sec = section_of[next_edge.index()];
                        let blocked_edge =
                            matches!(edge_busy[next_edge.index()], Some(o) if o != tr);
                        let blocked_sec = matches!(section_busy[sec], Some(o) if o != tr);
                        if blocked_edge || blocked_sec {
                            break;
                        }
                        new_front += 1;
                        edge_busy[next_edge.index()] = Some(tr);
                        section_busy[sec] = Some(tr);
                    }
                    if new_front != front {
                        // Release the vacated tail.
                        let old = occupied_chain(route, front, spec.length);
                        let new = occupied_chain(route, new_front, spec.length);
                        for e in old {
                            if !new.contains(&e) {
                                edge_busy[e.index()] = None;
                                if !new
                                    .iter()
                                    .any(|f| section_of[f.index()] == section_of[e.index()])
                                {
                                    section_busy[section_of[e.index()]] = None;
                                }
                            }
                        }
                    }
                    st.front = Some(new_front);
                    if spec.goal_edges.contains(&route[new_front]) {
                        st.arrived = Some(t);
                    }
                }
            }
        }

        // Record positions at the end of the step.
        for (tr, st) in states.iter().enumerate() {
            if let (Some(front), false) = (st.front, st.gone) {
                positions[tr][t] = occupied_chain(&routes[tr], front, inst.trains[tr].length);
            }
        }
    }

    let plans = inst
        .trains
        .iter()
        .zip(positions)
        .map(|(spec, positions)| TrainPlan {
            name: spec.name.clone(),
            positions,
        })
        .collect();
    DispatchResult {
        plan: SolvedPlan {
            layout: layout.clone(),
            plans,
        },
        arrivals: states.iter().map(|s| s.arrived).collect(),
    }
}

/// Shortest origin→goal edge sequence for a train (BFS over segments).
fn route_of(inst: &Instance, tr: &etcs_core::TrainSpec) -> Vec<EdgeId> {
    let net = &inst.net;
    // Multi-source BFS from all origin edges towards the nearest goal edge.
    use std::collections::VecDeque;
    let mut parent: Vec<Option<EdgeId>> = vec![None; net.num_edges()];
    let mut seen = vec![false; net.num_edges()];
    let mut queue = VecDeque::new();
    for &o in &tr.origin_edges {
        seen[o.index()] = true;
        queue.push_back(o);
    }
    let mut goal = None;
    'bfs: while let Some(e) = queue.pop_front() {
        if tr.goal_edges.contains(&e) {
            goal = Some(e);
            break 'bfs;
        }
        for &f in net.neighbors(e) {
            if !seen[f.index()] {
                seen[f.index()] = true;
                parent[f.index()] = Some(e);
                queue.push_back(f);
            }
        }
    }
    let mut route = Vec::new();
    let mut cur = goal.expect("schedules are validated: goal is reachable");
    route.push(cur);
    while let Some(p) = parent[cur.index()] {
        route.push(p);
        cur = p;
    }
    route.reverse();
    route
}

#[cfg(test)]
mod tests {
    use super::*;
    use etcs_network::fixtures;

    #[test]
    fn pure_ttd_running_example_fails_to_complete() {
        // The paper's motivating observation, reproduced operationally: a
        // greedy fixed-block dispatcher cannot run Fig. 1b on pure TTDs.
        let scenario = fixtures::running_example();
        let inst = Instance::new(&scenario).expect("valid");
        let result = dispatch(&inst, &VssLayout::pure_ttd());
        assert!(!result.all_arrived(), "pure TTD must fail");
    }

    #[test]
    fn routes_connect_origin_to_goal() {
        let scenario = fixtures::running_example();
        let inst = Instance::new(&scenario).expect("valid");
        for tr in &inst.trains {
            let route = route_of(&inst, tr);
            assert!(tr.origin_edges.contains(&route[0]));
            assert!(tr.goal_edges.contains(route.last().expect("non-empty")));
            for w in route.windows(2) {
                assert!(inst.net.shared_node(w[0], w[1]).is_some());
            }
        }
    }

    #[test]
    fn single_train_reaches_goal_on_any_layout() {
        // With no other traffic the greedy dispatcher always succeeds.
        let scenario = fixtures::running_example();
        let mut one = scenario.clone();
        one.schedule = etcs_network::Schedule::new(vec![scenario.schedule.runs()[0].clone()]);
        let inst = Instance::new(&one).expect("valid");
        for layout in [VssLayout::pure_ttd(), VssLayout::full(&inst.net)] {
            let result = dispatch(&inst, &layout);
            assert!(result.all_arrived(), "single train must arrive");
            assert!(result.completion_steps().expect("arrived") <= inst.t_max);
        }
    }

    #[test]
    fn finer_layout_never_hurts_single_direction_convoys() {
        // Convoys on the simple layout: full VSS completes no later than
        // any coarser layout the dispatcher happens to manage.
        let scenario = fixtures::simple_layout();
        let inst = Instance::new(&scenario).expect("valid");
        let full = dispatch(&inst, &VssLayout::full(&inst.net));
        let pure = dispatch(&inst, &VssLayout::pure_ttd());
        if let (Some(f), Some(p)) = (full.completion_steps(), pure.completion_steps()) {
            assert!(f <= p);
        }
    }

    #[test]
    fn dispatcher_plans_have_correct_shapes() {
        let scenario = fixtures::running_example();
        let mut one = scenario.clone();
        one.schedule = etcs_network::Schedule::new(vec![scenario.schedule.runs()[1].clone()]);
        let inst = Instance::new(&one).expect("valid");
        let result = dispatch(&inst, &VssLayout::full(&inst.net));
        let spec = &inst.trains[0];
        for t in spec.dep_step..inst.t_max {
            let pos = &result.plan.plans[0].positions[t];
            if !pos.is_empty() {
                assert!(pos.len() <= spec.length);
            }
        }
    }
}
