//! Plan analytics and a time–space timeline rendering.
//!
//! Quantifies what a solved plan *does* — waiting steps, travel times,
//! section utilisation — and renders the classic dispatcher's time–space
//! diagram as text, which makes solver output reviewable by railway
//! engineers (and in test failures).

use std::collections::BTreeMap;
use std::fmt;

use etcs_core::{Instance, SolvedPlan};
use etcs_network::EdgeId;

/// Quantitative summary of one train's movement in a plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrainStats {
    /// Display name.
    pub name: String,
    /// Departure step.
    pub departure: usize,
    /// First step at the destination, if reached.
    pub arrival: Option<usize>,
    /// Steps between departure and arrival.
    pub travel_steps: Option<usize>,
    /// Steps (strictly between departure and arrival) at which the train
    /// did not change its position — time spent waiting for other traffic.
    pub wait_steps: usize,
    /// Distinct segments visited.
    pub segments_visited: usize,
}

/// Quantitative summary of a whole plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanStats {
    /// Per-train statistics, in schedule order.
    pub trains: Vec<TrainStats>,
    /// Completion time in steps (last arrival + 1), if all trains arrive.
    pub completion_steps: Option<usize>,
    /// Total waiting steps across all trains.
    pub total_wait_steps: usize,
    /// Peak number of trains simultaneously on the network.
    pub peak_occupancy: usize,
}

impl fmt::Display for PlanStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "completion: {} steps, total waiting: {} steps, peak occupancy: {} trains",
            self.completion_steps
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
            self.total_wait_steps,
            self.peak_occupancy
        )?;
        for t in &self.trains {
            writeln!(
                f,
                "  {:<16} dep {} arr {} ({} moving, {} waiting)",
                t.name,
                t.departure,
                t.arrival
                    .map(|a| a.to_string())
                    .unwrap_or_else(|| "-".into()),
                t.travel_steps
                    .map(|s| s.saturating_sub(t.wait_steps).to_string())
                    .unwrap_or_else(|| "-".into()),
                t.wait_steps
            )?;
        }
        Ok(())
    }
}

/// Computes [`PlanStats`] for a solved plan.
pub fn plan_stats(inst: &Instance, plan: &SolvedPlan) -> PlanStats {
    let mut trains = Vec::new();
    let mut total_wait = 0usize;
    let mut last_arrival: Option<usize> = Some(0);
    for (p, spec) in plan.plans.iter().zip(&inst.trains) {
        let arrival = p.arrival_step(&spec.goal_edges);
        let travel = arrival.map(|a| a - spec.dep_step);
        let end = arrival.unwrap_or(inst.t_max - 1);
        let mut waits = 0usize;
        for t in spec.dep_step..end {
            let now = &p.positions[t];
            let next = &p.positions[t + 1];
            if !now.is_empty() && now == next {
                waits += 1;
            }
        }
        let mut visited: Vec<EdgeId> = p.positions.iter().flatten().copied().collect();
        visited.sort();
        visited.dedup();
        total_wait += waits;
        last_arrival = match (last_arrival, arrival) {
            (Some(best), Some(a)) => Some(best.max(a)),
            _ => None,
        };
        trains.push(TrainStats {
            name: p.name.clone(),
            departure: spec.dep_step,
            arrival,
            travel_steps: travel,
            wait_steps: waits,
            segments_visited: visited.len(),
        });
    }
    let peak = (0..inst.t_max)
        .map(|t| {
            plan.plans
                .iter()
                .filter(|p| !p.positions[t].is_empty())
                .count()
        })
        .max()
        .unwrap_or(0);
    PlanStats {
        trains,
        completion_steps: last_arrival.map(|a| a + 1),
        total_wait_steps: total_wait,
        peak_occupancy: peak,
    }
}

/// Renders a textual time–space diagram: one row per segment (in id
/// order), one column per time step, with each cell showing the index of
/// the occupying train (or `.`).
///
/// Intended for small networks; on large ones, pass a slice of edges of
/// interest via [`render_timeline_for`].
pub fn render_timeline(inst: &Instance, plan: &SolvedPlan) -> String {
    let edges: Vec<EdgeId> = (0..inst.net.num_edges()).map(EdgeId::from_index).collect();
    render_timeline_for(inst, plan, &edges)
}

/// Like [`render_timeline`] restricted to the given segments.
pub fn render_timeline_for(inst: &Instance, plan: &SolvedPlan, edges: &[EdgeId]) -> String {
    use std::fmt::Write;
    // Occupancy index: (edge, step) -> train.
    let mut occupancy: BTreeMap<(EdgeId, usize), usize> = BTreeMap::new();
    for (tr, p) in plan.plans.iter().enumerate() {
        for (t, pos) in p.positions.iter().enumerate() {
            for &e in pos {
                occupancy.insert((e, t), tr);
            }
        }
    }
    let name_width = edges
        .iter()
        .map(|&e| inst.net.edge_name(e).len())
        .max()
        .unwrap_or(4)
        .max(4);
    let mut out = String::new();
    let _ = write!(out, "{:>width$} ", "t =", width = name_width);
    for t in 0..inst.t_max {
        let _ = write!(out, "{:>2}", t % 100);
    }
    let _ = writeln!(out);
    for &e in edges {
        let _ = write!(
            out,
            "{:>width$} ",
            inst.net.edge_name(e),
            width = name_width
        );
        for t in 0..inst.t_max {
            match occupancy.get(&(e, t)) {
                Some(tr) => {
                    let _ = write!(out, "{:>2}", tr);
                }
                None => {
                    let _ = write!(out, " .");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use etcs_core::{generate, EncoderConfig};
    use etcs_network::fixtures;

    fn solved() -> (Instance, SolvedPlan) {
        let scenario = fixtures::running_example();
        let inst = Instance::new(&scenario).expect("valid");
        let (outcome, _) = generate(&scenario, &EncoderConfig::default()).expect("ok");
        (inst, outcome.plan().expect("feasible").clone())
    }

    #[test]
    fn stats_account_for_all_trains() {
        let (inst, plan) = solved();
        let stats = plan_stats(&inst, &plan);
        assert_eq!(stats.trains.len(), 4);
        assert!(stats.completion_steps.is_some());
        assert!(stats.peak_occupancy >= 2, "trains overlap in time");
        for t in &stats.trains {
            let arrival = t.arrival.expect("all trains arrive");
            assert!(arrival >= t.departure);
            assert_eq!(t.travel_steps, Some(arrival - t.departure));
            assert!(t.segments_visited >= 1);
        }
    }

    #[test]
    fn waits_are_bounded_by_travel() {
        let (inst, plan) = solved();
        let stats = plan_stats(&inst, &plan);
        for t in &stats.trains {
            if let Some(travel) = t.travel_steps {
                assert!(t.wait_steps <= travel);
            }
        }
        assert_eq!(
            stats.total_wait_steps,
            stats.trains.iter().map(|t| t.wait_steps).sum::<usize>()
        );
    }

    #[test]
    fn timeline_mentions_every_step_and_train() {
        let (inst, plan) = solved();
        let text = render_timeline(&inst, &plan);
        let lines: Vec<&str> = text.lines().collect();
        // Header + one row per segment.
        assert_eq!(lines.len(), 1 + inst.net.num_edges());
        // Train 0 appears somewhere.
        assert!(text.contains(" 0"));
        // Every row has the same length.
        let width = lines[0].len();
        for l in &lines {
            assert_eq!(l.len(), width, "ragged timeline row");
        }
    }

    #[test]
    fn restricted_timeline_only_shows_requested_edges() {
        let (inst, plan) = solved();
        let some = [EdgeId::from_index(0)];
        let text = render_timeline_for(&inst, &plan, &some);
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn display_of_stats_is_informative() {
        let (inst, plan) = solved();
        let stats = plan_stats(&inst, &plan);
        let text = format!("{stats}");
        assert!(text.contains("completion"));
        assert!(text.contains("Train 1"));
    }
}
