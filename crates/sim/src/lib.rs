//! # etcs-sim — independent validation and operational baseline
//!
//! Two cross-checks for the SAT methodology in `etcs-core`:
//!
//! * [`validate`] — re-checks a decoded plan against an independent
//!   implementation of the paper's operational rules (train shape, speed,
//!   VSS separation, no passing through one another, departures, arrivals);
//! * [`dispatch`] — a greedy fixed-block dispatcher, the conventional
//!   operation the paper's methodology is motivated against: it deadlocks
//!   on the running example under pure TTD operation.
//!
//! ## Quick start
//!
//! ```
//! use etcs_core::{generate, EncoderConfig, Instance};
//! use etcs_network::fixtures;
//! use etcs_sim::validate;
//!
//! let scenario = fixtures::running_example();
//! let inst = Instance::new(&scenario)?;
//! let (outcome, _) = generate(&scenario, &EncoderConfig::default())?;
//! let report = validate(&inst, outcome.plan().expect("feasible"), true);
//! assert!(report.is_valid());
//! # Ok::<(), etcs_network::NetworkError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dispatcher;
mod report;
mod validator;

pub use dispatcher::{dispatch, DispatchResult};
pub use report::{plan_stats, render_timeline, render_timeline_for, PlanStats, TrainStats};
pub use validator::{validate, validate_obs, ValidationReport, Violation};
