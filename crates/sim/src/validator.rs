//! Independent validation of solved plans.
//!
//! The checks mirror the paper's Section III-B constraints but are
//! implemented from scratch against the decoded [`TrainPlan`]s — none of
//! the encoder's clause machinery is reused — so a bug in the encoding and
//! a bug in the validator would have to coincide to let an invalid plan
//! slip through.

use std::fmt;

use etcs_core::{ExitPolicy, Instance, SolvedPlan};
use etcs_network::EdgeId;
#[cfg(test)]
use etcs_network::VssLayout;
use etcs_obs::Obs;

/// A single rule violation found in a plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// The occupied segments do not form one connected simple chain.
    NotAChain {
        /// Offending train (schedule index).
        train: usize,
        /// Offending time step.
        step: usize,
    },
    /// The chain has the wrong number of segments for the train's length.
    WrongLength {
        /// Offending train.
        train: usize,
        /// Offending step.
        step: usize,
        /// Segments required (`l*`).
        expected: usize,
        /// Segments occupied.
        actual: usize,
    },
    /// A segment occupied at `step + 1` is farther than the train's speed
    /// from every segment occupied at `step` (or vice versa).
    TooFast {
        /// Offending train.
        train: usize,
        /// Step of the move's start.
        step: usize,
    },
    /// The train is absent at a step where it must be present (after
    /// departure and before completing), or present when it must be gone.
    PresenceBroken {
        /// Offending train.
        train: usize,
        /// Offending step.
        step: usize,
    },
    /// The departure chain does not touch the origin station.
    DepartureMissed {
        /// Offending train.
        train: usize,
    },
    /// The train never reaches its goal by the deadline.
    ArrivalMissed {
        /// Offending train.
        train: usize,
        /// The deadline step it missed.
        deadline: usize,
    },
    /// A parked train moved after reaching its interior terminus.
    ParkBroken {
        /// Offending train.
        train: usize,
        /// Step at which it moved.
        step: usize,
    },
    /// Two trains occupy the same segment.
    SharedSegment {
        /// Offending step.
        step: usize,
        /// The contested segment.
        edge: EdgeId,
        /// The two trains.
        trains: (usize, usize),
    },
    /// Two trains share a TTD without an active VSS border between them.
    MissingBorder {
        /// Offending step.
        step: usize,
        /// The two trains.
        trains: (usize, usize),
    },
    /// A train's move sweeps over segments occupied by another train
    /// (trains passing through one another).
    PassThrough {
        /// Step of the move's start.
        step: usize,
        /// The moving train.
        mover: usize,
        /// The train in its way.
        other: usize,
        /// The swept, occupied segment.
        edge: EdgeId,
    },
}

impl Violation {
    /// A stable short label for the violation class; this is the `kind`
    /// field of the `sim.mismatch` events emitted by [`validate_obs`].
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::NotAChain { .. } => "chain",
            Violation::WrongLength { .. } => "length",
            Violation::TooFast { .. } => "speed",
            Violation::PresenceBroken { .. } => "presence",
            Violation::DepartureMissed { .. } => "departure",
            Violation::ArrivalMissed { .. } => "arrival",
            Violation::ParkBroken { .. } => "park",
            Violation::SharedSegment { .. } => "shared",
            Violation::MissingBorder { .. } => "border",
            Violation::PassThrough { .. } => "pass",
        }
    }

    /// The primary offending train, where the rule has one.
    fn train(&self) -> Option<usize> {
        match self {
            Violation::NotAChain { train, .. }
            | Violation::WrongLength { train, .. }
            | Violation::TooFast { train, .. }
            | Violation::PresenceBroken { train, .. }
            | Violation::DepartureMissed { train }
            | Violation::ArrivalMissed { train, .. }
            | Violation::ParkBroken { train, .. } => Some(*train),
            Violation::SharedSegment { trains, .. } | Violation::MissingBorder { trains, .. } => {
                Some(trains.0)
            }
            Violation::PassThrough { mover, .. } => Some(*mover),
        }
    }

    /// The offending step, where the rule has one.
    fn step(&self) -> Option<usize> {
        match self {
            Violation::NotAChain { step, .. }
            | Violation::WrongLength { step, .. }
            | Violation::TooFast { step, .. }
            | Violation::PresenceBroken { step, .. }
            | Violation::ParkBroken { step, .. }
            | Violation::SharedSegment { step, .. }
            | Violation::MissingBorder { step, .. }
            | Violation::PassThrough { step, .. } => Some(*step),
            Violation::DepartureMissed { .. } | Violation::ArrivalMissed { .. } => None,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::NotAChain { train, step } => {
                write!(f, "train {train} does not occupy a chain at step {step}")
            }
            Violation::WrongLength {
                train,
                step,
                expected,
                actual,
            } => write!(
                f,
                "train {train} occupies {actual} segments at step {step}, needs {expected}"
            ),
            Violation::TooFast { train, step } => {
                write!(
                    f,
                    "train {train} exceeds its speed between steps {step} and {}",
                    step + 1
                )
            }
            Violation::PresenceBroken { train, step } => {
                write!(f, "train {train} presence broken at step {step}")
            }
            Violation::DepartureMissed { train } => {
                write!(f, "train {train} does not depart from its origin")
            }
            Violation::ArrivalMissed { train, deadline } => {
                write!(
                    f,
                    "train {train} misses its arrival deadline (step {deadline})"
                )
            }
            Violation::ParkBroken { train, step } => {
                write!(f, "parked train {train} moved at step {step}")
            }
            Violation::SharedSegment { step, edge, trains } => write!(
                f,
                "trains {} and {} share segment {edge} at step {step}",
                trains.0, trains.1
            ),
            Violation::MissingBorder { step, trains } => write!(
                f,
                "trains {} and {} share a TTD without a separating border at step {step}",
                trains.0, trains.1
            ),
            Violation::PassThrough {
                step,
                mover,
                other,
                edge,
            } => write!(
                f,
                "train {mover} sweeps segment {edge} occupied by train {other} at step {step}"
            ),
        }
    }
}

/// The outcome of validating a plan.
#[derive(Clone, Debug, Default)]
pub struct ValidationReport {
    /// All violations found, in deterministic order.
    pub violations: Vec<Violation>,
}

impl ValidationReport {
    /// `true` when the plan satisfies every rule.
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_valid() {
            write!(f, "plan is valid")
        } else {
            writeln!(f, "{} violations:", self.violations.len())?;
            for v in &self.violations {
                writeln!(f, "  - {v}")?;
            }
            Ok(())
        }
    }
}

/// Validates `plan` against the operational rules of the paper on the
/// instance's network, using the plan's own VSS layout.
///
/// `enforce_deadlines` additionally checks the schedule's arrival deadlines
/// (verification/generation semantics); the optimisation task validates
/// with it disabled.
pub fn validate(inst: &Instance, plan: &SolvedPlan, enforce_deadlines: bool) -> ValidationReport {
    validate_obs(inst, plan, enforce_deadlines, &Obs::disabled())
}

/// [`validate`] with observability: the run is wrapped in a `sim.validate`
/// span (fields: `trains`, `steps`, `enforce_deadlines`; close fields:
/// `violations`, `valid`), and every violation additionally becomes a
/// `sim.mismatch` point event with `kind` ([`Violation::kind`]) plus the
/// offending `train`/`step` where the rule has one — so a differential-test
/// failure leaves a trace naming exactly which rule disagreed with the
/// encoder.
pub fn validate_obs(
    inst: &Instance,
    plan: &SolvedPlan,
    enforce_deadlines: bool,
    obs: &Obs,
) -> ValidationReport {
    let span = obs.span_with(
        "sim.validate",
        &[
            ("trains", plan.plans.len().into()),
            ("steps", inst.t_max.into()),
            ("enforce_deadlines", enforce_deadlines.into()),
        ],
    );
    let report = run_checks(inst, plan, enforce_deadlines);
    for v in &report.violations {
        let mut fields: Vec<(&'static str, etcs_obs::Value)> = vec![("kind", v.kind().into())];
        if let Some(train) = v.train() {
            fields.push(("train", train.into()));
        }
        if let Some(step) = v.step() {
            fields.push(("step", step.into()));
        }
        span.event("sim.mismatch", &fields);
        obs.counter_add("mismatches", 1);
    }
    span.close_with(&[
        ("violations", report.violations.len().into()),
        ("valid", report.is_valid().into()),
    ]);
    report
}

fn run_checks(inst: &Instance, plan: &SolvedPlan, enforce_deadlines: bool) -> ValidationReport {
    let mut report = ValidationReport::default();
    let net = &inst.net;
    let layout = &plan.layout;

    for (tr, (p, spec)) in plan.plans.iter().zip(&inst.trains).enumerate() {
        let mut arrived_at: Option<usize> = None;
        for t in 0..inst.t_max {
            let pos = &p.positions[t];
            // Presence discipline.
            if t < spec.dep_step {
                if !pos.is_empty() {
                    report
                        .violations
                        .push(Violation::PresenceBroken { train: tr, step: t });
                }
                continue;
            }
            if pos.is_empty() {
                match spec.exit {
                    ExitPolicy::Park => {
                        report
                            .violations
                            .push(Violation::PresenceBroken { train: tr, step: t });
                    }
                    ExitPolicy::Leave => {
                        // Absence is only allowed after a goal visit.
                        if arrived_at.is_none() {
                            report
                                .violations
                                .push(Violation::PresenceBroken { train: tr, step: t });
                        }
                    }
                }
                continue;
            }
            // Shape.
            if pos.len() != spec.length {
                report.violations.push(Violation::WrongLength {
                    train: tr,
                    step: t,
                    expected: spec.length,
                    actual: pos.len(),
                });
            } else if !is_chain(net, pos) {
                report
                    .violations
                    .push(Violation::NotAChain { train: tr, step: t });
            }
            if pos.iter().any(|e| spec.goal_edges.contains(e)) && arrived_at.is_none() {
                arrived_at = Some(t);
            }
        }
        // Departure at the origin.
        let dep_pos = &p.positions[spec.dep_step];
        if !dep_pos.iter().any(|e| spec.origin_edges.contains(e)) {
            report
                .violations
                .push(Violation::DepartureMissed { train: tr });
        }
        // Arrival.
        if enforce_deadlines {
            let deadline = spec.deadline_step.unwrap_or(inst.t_max - 1);
            match arrived_at {
                Some(a) if a <= deadline => {}
                _ => report.violations.push(Violation::ArrivalMissed {
                    train: tr,
                    deadline,
                }),
            }
        } else if arrived_at.is_none() {
            report.violations.push(Violation::ArrivalMissed {
                train: tr,
                deadline: inst.t_max - 1,
            });
        }
        // Movement speed and park freezing.
        for t in spec.dep_step..inst.t_max - 1 {
            let now = &p.positions[t];
            let next = &p.positions[t + 1];
            if now.is_empty() || next.is_empty() {
                continue;
            }
            let within = |a: &EdgeId, set: &[EdgeId]| {
                set.iter()
                    .any(|b| matches!(inst.dist(*a, *b), Some(d) if d <= spec.speed))
            };
            if !now.iter().all(|e| within(e, next)) || !next.iter().all(|f| within(f, now)) {
                report
                    .violations
                    .push(Violation::TooFast { train: tr, step: t });
            }
            if spec.exit == ExitPolicy::Park {
                if let Some(a) = arrived_at {
                    if t >= a && now != next {
                        report
                            .violations
                            .push(Violation::ParkBroken { train: tr, step: t });
                    }
                }
            }
        }
    }

    // Pairwise exclusivity.
    for t in 0..inst.t_max {
        for i in 0..plan.plans.len() {
            for j in (i + 1)..plan.plans.len() {
                let pi = &plan.plans[i].positions[t];
                let pj = &plan.plans[j].positions[t];
                for &e in pi {
                    if pj.contains(&e) {
                        report.violations.push(Violation::SharedSegment {
                            step: t,
                            edge: e,
                            trains: (i, j),
                        });
                    }
                }
                // VSS separation inside a common TTD.
                'pairs: for &e in pi {
                    for &f in pj {
                        if e == f || net.segment(e).ttd != net.segment(f).ttd {
                            continue;
                        }
                        let between = net.between(e, f).expect("same-TTD edges connect");
                        if !between.iter().any(|&n| layout.is_border(net, n)) {
                            report.violations.push(Violation::MissingBorder {
                                step: t,
                                trains: (i, j),
                            });
                            break 'pairs;
                        }
                    }
                }
            }
        }
    }

    // No passing through one another: re-derive each train's swept segments
    // per move and test them against every other train.
    for (mover, (p, spec)) in plan.plans.iter().zip(&inst.trains).enumerate() {
        for t in spec.dep_step..inst.t_max - 1 {
            let now = &p.positions[t];
            let next = &p.positions[t + 1];
            if now.is_empty() || next.is_empty() {
                continue;
            }
            let mut swept: Vec<EdgeId> = Vec::new();
            for &e in now {
                for &f in next {
                    if e == f {
                        continue;
                    }
                    if !matches!(inst.dist(e, f), Some(d) if d >= 1 && d <= spec.speed) {
                        continue;
                    }
                    swept.extend(net.path_edges(e, f, spec.speed));
                }
            }
            swept.sort();
            swept.dedup();
            for (other, q) in plan.plans.iter().enumerate() {
                if other == mover {
                    continue;
                }
                for &g in &swept {
                    for step in [t, t + 1] {
                        if q.positions[step].contains(&g) {
                            report.violations.push(Violation::PassThrough {
                                step: t,
                                mover,
                                other,
                                edge: g,
                            });
                        }
                    }
                }
            }
        }
    }

    report
}

/// Checks that the segments form one connected simple chain: every segment
/// shares nodes with its chain neighbours and no node is used more than
/// twice.
fn is_chain(net: &etcs_network::DiscreteNet, edges: &[EdgeId]) -> bool {
    if edges.len() <= 1 {
        return true;
    }
    // A set of edges is a simple path iff it is connected (in the subgraph
    // induced by exactly these edges) and every node has degree <= 2 with
    // exactly two degree-1 endpoints.
    use std::collections::BTreeMap;
    let mut degree: BTreeMap<etcs_network::NodeId, usize> = BTreeMap::new();
    for &e in edges {
        let s = net.segment(e);
        *degree.entry(s.a).or_insert(0) += 1;
        *degree.entry(s.b).or_insert(0) += 1;
    }
    if degree.values().any(|&d| d > 2) {
        return false;
    }
    if degree.values().filter(|&&d| d == 1).count() != 2 {
        return false;
    }
    // Connectivity via BFS over shared nodes.
    let mut seen = vec![false; edges.len()];
    let mut stack = vec![0usize];
    seen[0] = true;
    while let Some(i) = stack.pop() {
        for j in 0..edges.len() {
            if !seen[j] && net.shared_node(edges[i], edges[j]).is_some() {
                seen[j] = true;
                stack.push(j);
            }
        }
    }
    seen.iter().all(|&s| s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use etcs_core::{generate, optimize, verify, EncoderConfig};
    use etcs_network::fixtures;

    #[test]
    fn generated_running_example_plan_is_valid() {
        let scenario = fixtures::running_example();
        let inst = Instance::new(&scenario).expect("valid");
        let (outcome, _) = generate(&scenario, &EncoderConfig::default()).expect("ok");
        let plan = outcome.plan().expect("feasible");
        let report = validate(&inst, plan, true);
        assert!(report.is_valid(), "{report}");
    }

    #[test]
    fn optimized_running_example_plan_is_valid() {
        let scenario = fixtures::running_example();
        let open = scenario.without_arrivals();
        let inst = Instance::new(&open).expect("valid");
        let (outcome, _) = optimize(&scenario, &EncoderConfig::default()).expect("ok");
        let plan = outcome.plan().expect("feasible");
        let report = validate(&inst, plan, false);
        assert!(report.is_valid(), "{report}");
    }

    #[test]
    fn full_vss_witness_is_valid() {
        let scenario = fixtures::running_example();
        let inst = Instance::new(&scenario).expect("valid");
        let full = VssLayout::full(&inst.net);
        let (outcome, _) = verify(&scenario, &full, &EncoderConfig::default()).expect("ok");
        let plan = outcome.plan().expect("feasible");
        let report = validate(&inst, plan, true);
        assert!(report.is_valid(), "{report}");
    }

    #[test]
    fn tampered_plan_is_rejected() {
        let scenario = fixtures::running_example();
        let inst = Instance::new(&scenario).expect("valid");
        let (outcome, _) = generate(&scenario, &EncoderConfig::default()).expect("ok");
        let mut plan = outcome.plan().expect("feasible").clone();
        // Teleport train 0 to the far end of the network mid-plan.
        let far = EdgeId::from_index(inst.net.num_edges() - 1);
        let mid = inst.t_max / 2;
        plan.plans[0].positions[mid] = vec![far];
        let report = validate(&inst, &plan, true);
        assert!(!report.is_valid(), "teleportation must be flagged");
    }

    #[test]
    fn stripped_borders_break_separation() {
        let scenario = fixtures::running_example();
        let inst = Instance::new(&scenario).expect("valid");
        let (outcome, _) = generate(&scenario, &EncoderConfig::default()).expect("ok");
        let mut plan = outcome.plan().expect("feasible").clone();
        assert!(plan.layout.num_borders() > 0);
        // Remove all virtual borders but keep the movements: the separation
        // rule must now fire somewhere.
        plan.layout = VssLayout::pure_ttd();
        let report = validate(&inst, &plan, true);
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::MissingBorder { .. })),
            "expected a MissingBorder violation, got: {report}"
        );
    }

    #[test]
    fn validate_obs_emits_one_mismatch_event_per_violation() {
        let scenario = fixtures::running_example();
        let inst = Instance::new(&scenario).expect("valid");
        let (outcome, _) = generate(&scenario, &EncoderConfig::default()).expect("ok");
        let mut plan = outcome.plan().expect("feasible").clone();
        plan.layout = VssLayout::pure_ttd();

        let (obs, sink) = etcs_obs::Obs::memory();
        let report = validate_obs(&inst, &plan, true, &obs);
        assert!(!report.is_valid());

        let mismatches = sink.named("sim.mismatch");
        assert_eq!(mismatches.len(), report.violations.len());
        for (event, violation) in mismatches.iter().zip(&report.violations) {
            assert_eq!(event.field_str("kind"), Some(violation.kind()));
        }
        assert_eq!(obs.metrics().counter("mismatches"), mismatches.len() as u64);
        let close = sink
            .events()
            .into_iter()
            .rfind(|e| e.name == "sim.validate")
            .expect("span close");
        assert_eq!(
            close.field_u64("violations"),
            Some(report.violations.len() as u64)
        );
        assert_eq!(close.field("valid"), Some(&etcs_obs::Value::Bool(false)));
    }

    #[test]
    fn report_display_lists_violations() {
        let mut r = ValidationReport::default();
        assert!(format!("{r}").contains("valid"));
        r.violations.push(Violation::DepartureMissed { train: 3 });
        let text = format!("{r}");
        assert!(text.contains("1 violations"));
        assert!(text.contains("train 3"));
    }
}

#[cfg(test)]
mod mutation_tests {
    //! Mutation coverage of the validator itself: every class of rule
    //! violation must be detected when deliberately injected into an
    //! otherwise-valid plan.

    use super::*;
    use etcs_core::{generate, EncoderConfig, Instance, SolvedPlan};
    use etcs_network::fixtures;

    fn solved() -> (Instance, SolvedPlan) {
        let scenario = fixtures::running_example();
        let inst = Instance::new(&scenario).expect("valid");
        let (outcome, _) = generate(&scenario, &EncoderConfig::default()).expect("ok");
        (inst, outcome.plan().expect("feasible").clone())
    }

    fn kinds(report: &ValidationReport) -> Vec<&'static str> {
        report.violations.iter().map(Violation::kind).collect()
    }

    #[test]
    fn wrong_length_is_detected() {
        let (inst, mut plan) = solved();
        // Duplicate an edge of train 0 at its departure step into a second
        // segment far away: wrong length and not a chain.
        let dep = inst.trains[0].dep_step;
        let far = EdgeId::from_index(inst.net.num_edges() - 1);
        plan.plans[0].positions[dep].push(far);
        let report = validate(&inst, &plan, true);
        assert!(kinds(&report).contains(&"length"), "{report}");
    }

    #[test]
    fn too_fast_is_detected() {
        let (inst, mut plan) = solved();
        // Move train 0 across the network between two consecutive steps.
        let dep = inst.trains[0].dep_step;
        let far = EdgeId::from_index(inst.net.num_edges() - 1);
        plan.plans[0].positions[dep + 1] = vec![far];
        let report = validate(&inst, &plan, true);
        assert!(kinds(&report).contains(&"speed"), "{report}");
    }

    #[test]
    fn presence_before_departure_is_detected() {
        let (inst, mut plan) = solved();
        // Train 3 departs at step 2; make it appear at step 0.
        assert_eq!(inst.trains[2].dep_step, 2);
        plan.plans[2].positions[0] = vec![inst.trains[2].origin_edges[0]];
        let report = validate(&inst, &plan, true);
        assert!(kinds(&report).contains(&"presence"), "{report}");
    }

    #[test]
    fn vanishing_without_arrival_is_detected() {
        let (inst, mut plan) = solved();
        // Erase train 0 from some mid-plan step before its arrival.
        let arrival = plan.plans[0]
            .arrival_step(&inst.trains[0].goal_edges)
            .expect("arrives");
        assert!(arrival > 1);
        plan.plans[0].positions[1].clear();
        let report = validate(&inst, &plan, true);
        assert!(kinds(&report).contains(&"presence"), "{report}");
    }

    #[test]
    fn shared_segment_is_detected() {
        let (inst, mut plan) = solved();
        // Copy train 1's position onto train 0 at a step where both run.
        let t = 3;
        let stolen = plan.plans[1].positions[t].clone();
        assert!(!stolen.is_empty());
        plan.plans[0].positions[t] = stolen;
        let report = validate(&inst, &plan, true);
        assert!(kinds(&report).contains(&"shared"), "{report}");
    }

    #[test]
    fn parked_train_moving_is_detected() {
        let (inst, mut plan) = solved();
        // Train 3 (index 2) parks at station C; teleport it back to its
        // origin afterwards.
        let arrival = plan.plans[2]
            .arrival_step(&inst.trains[2].goal_edges)
            .expect("arrives");
        let last = inst.t_max - 1;
        assert!(arrival < last);
        plan.plans[2].positions[last] = vec![inst.trains[2].origin_edges[0]];
        let report = validate(&inst, &plan, true);
        let ks = kinds(&report);
        assert!(
            ks.contains(&"park") || ks.contains(&"speed"),
            "expected park/speed violation: {report}"
        );
    }

    #[test]
    fn missed_arrival_is_detected() {
        let (inst, mut plan) = solved();
        // Strip train 0's goal occupation entirely and keep it circling at
        // its origin (which also breaks other rules, but arrival must be
        // among them).
        let origin = inst.trains[0].origin_edges[0];
        for t in inst.trains[0].dep_step..inst.t_max {
            plan.plans[0].positions[t] = vec![origin];
        }
        let report = validate(&inst, &plan, true);
        assert!(kinds(&report).contains(&"arrival"), "{report}");
    }
}
