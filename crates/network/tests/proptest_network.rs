//! Property-based tests over randomly generated line networks: the
//! discretisation invariants the SAT encoding relies on must hold for
//! every topology, not just the bundled fixtures.

use etcs_network::generator::{single_track_line, LineConfig};
use etcs_network::{
    parse_scenario, write_scenario, DiscreteNet, EdgeId, Meters, NodeKind, Scenario, Seconds,
    VssLayout,
};
use proptest::prelude::*;

fn line_config() -> impl Strategy<Value = LineConfig> {
    (
        2usize..7,       // stations
        0usize..3,       // loop_every
        1u64..5,         // link_m multiplier (×500 m)
        1usize..3,       // trains per direction
        any::<u64>(),    // seed
    )
        .prop_map(|(stations, loop_every, link, trains, seed)| LineConfig {
            stations,
            loop_every,
            link_m: link * 500,
            trains_per_direction: trains,
            headway: Seconds::from_minutes(2),
            r_s: Meters(500),
            r_t: Seconds(30),
            horizon: Seconds::from_minutes(10),
            seed,
            ..LineConfig::default()
        })
}

fn discretised() -> impl Strategy<Value = (Scenario, DiscreteNet)> {
    line_config().prop_map(|cfg| {
        let s = single_track_line(&cfg);
        let d = s.discretise().expect("generated lines discretise");
        (s, d)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scenarios_validate_and_roundtrip((s, _) in discretised()) {
        s.validate().expect("generated schedule is valid");
        let text = write_scenario(&s);
        let back = parse_scenario(&text).expect("roundtrip parses");
        prop_assert_eq!(back.network, s.network);
        prop_assert_eq!(back.schedule, s.schedule);
    }

    #[test]
    fn chains_of_length_one_are_exactly_the_edges((_, d) in discretised()) {
        let chains = d.chains(1);
        prop_assert_eq!(chains.len(), d.num_edges());
        for c in chains {
            prop_assert_eq!(c.len(), 1);
        }
    }

    #[test]
    fn chains_are_connected_simple_paths((_, d) in discretised(), l in 2usize..4) {
        for c in d.chains(l) {
            prop_assert_eq!(c.len(), l);
            for w in c.windows(2) {
                prop_assert!(d.shared_node(w[0], w[1]).is_some(), "chain gap: {:?}", c);
            }
            let mut sorted = c.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), c.len(), "chain repeats an edge");
        }
    }

    #[test]
    fn reachability_is_symmetric_and_monotone((_, d) in discretised(), v in 0u32..5) {
        for e in (0..d.num_edges()).map(EdgeId::from_index) {
            let r = d.reachable(e, v);
            prop_assert!(r.contains(&e), "reachable must include the edge itself");
            for &f in &r {
                prop_assert!(
                    d.reachable(f, v).contains(&e),
                    "reachability not symmetric: {e} vs {f}"
                );
            }
            let bigger = d.reachable(e, v + 1);
            for &f in &r {
                prop_assert!(bigger.contains(&f), "reachable not monotone in v");
            }
        }
    }

    #[test]
    fn between_is_consistent_with_distances((_, d) in discretised()) {
        for e in (0..d.num_edges()).map(EdgeId::from_index) {
            for f in (0..d.num_edges()).map(EdgeId::from_index) {
                if e >= f {
                    continue;
                }
                match d.between(e, f) {
                    None => prop_assert_ne!(d.segment(e).ttd, d.segment(f).ttd),
                    Some(nodes) => {
                        prop_assert_eq!(d.segment(e).ttd, d.segment(f).ttd);
                        // The number of crossed nodes equals the hop count
                        // within the TTD.
                        let ttd = d.segment(e).ttd;
                        let dist = d.bfs_edges(e, |g| d.segment(g).ttd == ttd)[f.index()]
                            .expect("same TTD is connected");
                        prop_assert_eq!(nodes.len() as u32, dist);
                    }
                }
            }
        }
    }

    #[test]
    fn path_edges_triangle_property((_, d) in discretised(), v in 1u32..5) {
        for e in (0..d.num_edges()).map(EdgeId::from_index) {
            for f in (0..d.num_edges()).map(EdgeId::from_index) {
                let path = d.path_edges(e, f, v);
                match d.edge_distances(e)[f.index()] {
                    Some(dist) if dist <= v => {
                        prop_assert!(path.contains(&e));
                        prop_assert!(path.contains(&f));
                    }
                    _ => prop_assert!(path.is_empty(), "no route within v, path must be empty"),
                }
            }
        }
    }

    #[test]
    fn sections_partition_edges_for_random_layouts(
        (_, d) in discretised(),
        picks in proptest::collection::vec(any::<u16>(), 0..6),
    ) {
        let candidates = d.border_candidates();
        let layout: VssLayout = picks
            .iter()
            .filter(|_| !candidates.is_empty())
            .map(|&p| candidates[p as usize % candidates.len()])
            .collect();
        let sections = layout.sections(&d);
        let mut all: Vec<EdgeId> = sections.iter().flatten().copied().collect();
        all.sort();
        all.dedup();
        prop_assert_eq!(all.len(), d.num_edges(), "sections must partition the edges");
        // Section count grows monotonically with borders (each new border
        // can only split).
        prop_assert!(layout.section_count(&d) >= VssLayout::pure_ttd().section_count(&d));
        prop_assert!(layout.section_count(&d) <= VssLayout::full(&d).section_count(&d));
    }

    #[test]
    fn node_kinds_cover_every_node((_, d) in discretised()) {
        let boundary = (0..d.num_nodes())
            .filter(|&i| d.node_kind(etcs_network::NodeId::from_index(i)) == NodeKind::Boundary)
            .count();
        let candidates = d.border_candidates().len();
        let forced = d.forced_borders().len();
        prop_assert_eq!(boundary + candidates + forced, d.num_nodes());
        // Boundary nodes have degree one.
        for i in 0..d.num_nodes() {
            let n = etcs_network::NodeId::from_index(i);
            if d.node_kind(n) == NodeKind::Boundary {
                prop_assert_eq!(d.edges_at(n).len(), 1);
            }
        }
    }
}
