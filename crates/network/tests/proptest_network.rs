//! Property-based tests over randomly generated line networks: the
//! discretisation invariants the SAT encoding relies on must hold for
//! every topology, not just the bundled fixtures.

use etcs_network::generator::{single_track_line, LineConfig};
use etcs_network::{
    parse_scenario, write_scenario, DiscreteNet, EdgeId, Meters, NodeKind, Scenario, Seconds,
    VssLayout,
};
use etcs_testkit::{cases, Rng};

fn line_config(rng: &mut Rng) -> LineConfig {
    LineConfig {
        stations: rng.range(2, 7),
        loop_every: rng.below(3),
        link_m: rng.range(1, 5) as u64 * 500,
        trains_per_direction: rng.range(1, 3),
        headway: Seconds::from_minutes(2),
        r_s: Meters(500),
        r_t: Seconds(30),
        horizon: Seconds::from_minutes(10),
        seed: rng.next_u64(),
        ..LineConfig::default()
    }
}

fn discretised(rng: &mut Rng) -> (Scenario, DiscreteNet) {
    let s = single_track_line(&line_config(rng));
    let d = s.discretise().expect("generated lines discretise");
    (s, d)
}

#[test]
fn scenarios_validate_and_roundtrip() {
    cases(64, |rng| {
        let (s, _) = discretised(rng);
        s.validate().expect("generated schedule is valid");
        let text = write_scenario(&s);
        let back = parse_scenario(&text).expect("roundtrip parses");
        assert_eq!(back.network, s.network);
        assert_eq!(back.schedule, s.schedule);
    });
}

#[test]
fn chains_of_length_one_are_exactly_the_edges() {
    cases(64, |rng| {
        let (_, d) = discretised(rng);
        let chains = d.chains(1);
        assert_eq!(chains.len(), d.num_edges());
        for c in chains {
            assert_eq!(c.len(), 1);
        }
    });
}

#[test]
fn chains_are_connected_simple_paths() {
    cases(64, |rng| {
        let (_, d) = discretised(rng);
        let l = rng.range(2, 4);
        for c in d.chains(l) {
            assert_eq!(c.len(), l);
            for w in c.windows(2) {
                assert!(d.shared_node(w[0], w[1]).is_some(), "chain gap: {c:?}");
            }
            let mut sorted = c.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), c.len(), "chain repeats an edge");
        }
    });
}

#[test]
fn reachability_is_symmetric_and_monotone() {
    cases(64, |rng| {
        let (_, d) = discretised(rng);
        let v = rng.below(5) as u32;
        for e in (0..d.num_edges()).map(EdgeId::from_index) {
            let r = d.reachable(e, v);
            assert!(r.contains(&e), "reachable must include the edge itself");
            for &f in &r {
                assert!(
                    d.reachable(f, v).contains(&e),
                    "reachability not symmetric: {e} vs {f}"
                );
            }
            let bigger = d.reachable(e, v + 1);
            for &f in &r {
                assert!(bigger.contains(&f), "reachable not monotone in v");
            }
        }
    });
}

#[test]
fn between_is_consistent_with_distances() {
    cases(64, |rng| {
        let (_, d) = discretised(rng);
        for e in (0..d.num_edges()).map(EdgeId::from_index) {
            for f in (0..d.num_edges()).map(EdgeId::from_index) {
                if e >= f {
                    continue;
                }
                match d.between(e, f) {
                    None => assert_ne!(d.segment(e).ttd, d.segment(f).ttd),
                    Some(nodes) => {
                        assert_eq!(d.segment(e).ttd, d.segment(f).ttd);
                        // The number of crossed nodes equals the hop count
                        // within the TTD.
                        let ttd = d.segment(e).ttd;
                        let dist = d.bfs_edges(e, |g| d.segment(g).ttd == ttd)[f.index()]
                            .expect("same TTD is connected");
                        assert_eq!(nodes.len() as u32, dist);
                    }
                }
            }
        }
    });
}

#[test]
fn path_edges_triangle_property() {
    cases(64, |rng| {
        let (_, d) = discretised(rng);
        let v = rng.range(1, 5) as u32;
        for e in (0..d.num_edges()).map(EdgeId::from_index) {
            for f in (0..d.num_edges()).map(EdgeId::from_index) {
                let path = d.path_edges(e, f, v);
                match d.edge_distances(e)[f.index()] {
                    Some(dist) if dist <= v => {
                        assert!(path.contains(&e));
                        assert!(path.contains(&f));
                    }
                    _ => assert!(path.is_empty(), "no route within v, path must be empty"),
                }
            }
        }
    });
}

#[test]
fn sections_partition_edges_for_random_layouts() {
    cases(64, |rng| {
        let (_, d) = discretised(rng);
        let num_picks = rng.below(6);
        let picks = rng.vec(num_picks, |rng| rng.below(u16::MAX as usize + 1));
        let candidates = d.border_candidates();
        let layout: VssLayout = picks
            .iter()
            .filter(|_| !candidates.is_empty())
            .map(|&p| candidates[p % candidates.len()])
            .collect();
        let sections = layout.sections(&d);
        let mut all: Vec<EdgeId> = sections.iter().flatten().copied().collect();
        all.sort();
        all.dedup();
        assert_eq!(
            all.len(),
            d.num_edges(),
            "sections must partition the edges"
        );
        // Section count grows monotonically with borders (each new border
        // can only split).
        assert!(layout.section_count(&d) >= VssLayout::pure_ttd().section_count(&d));
        assert!(layout.section_count(&d) <= VssLayout::full(&d).section_count(&d));
    });
}

#[test]
fn node_kinds_cover_every_node() {
    cases(64, |rng| {
        let (_, d) = discretised(rng);
        let boundary = (0..d.num_nodes())
            .filter(|&i| d.node_kind(etcs_network::NodeId::from_index(i)) == NodeKind::Boundary)
            .count();
        let candidates = d.border_candidates().len();
        let forced = d.forced_borders().len();
        assert_eq!(boundary + candidates + forced, d.num_nodes());
        // Boundary nodes have degree one.
        for i in 0..d.num_nodes() {
            let n = etcs_network::NodeId::from_index(i);
            if d.node_kind(n) == NodeKind::Boundary {
                assert_eq!(d.edges_at(n).len(), 1);
            }
        }
    });
}
