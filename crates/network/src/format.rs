//! A plain-text scenario format (`.rail`) with parser and writer.
//!
//! Scenarios — network, TTD layout, stations, trains and schedule — can be
//! stored in a small line-based format, shared with colleagues, and loaded
//! back. Every bundled fixture round-trips losslessly (`write_scenario` →
//! [`parse_scenario`] → identical scenario).
//!
//! # Format
//!
//! ```text
//! # comments start with '#'
//! scenario Running Example
//! rs 500                      # spatial resolution [m]
//! rt 30                       # temporal resolution [s]
//! horizon 0:05:00
//!
//! node A
//! node P
//! track A-P : A - P 1500      # name : endpoint - endpoint length[m]
//! ttd TTD1 : A-P              # name : member tracks
//! station A : boundary A-P    # name : boundary|interior member tracks
//! train Train 1 : 400 180     # name : length[m] max-speed[km/h]
//! run Train 1 : A -> B dep 0:00:00 arr 0:04:30
//! run Train 2 : A -> B dep 0:01:00            # arrival free
//! stop Train 1 : C arr 0:02:00                # optional intermediate stop
//! ```
//!
//! Names may contain spaces; fields around them are separated by `:`,
//! `-`, `->` and keywords.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::error::NetworkError;
use crate::scenario::Scenario;
use crate::schedule::{Schedule, TrainRun};
use crate::topology::{NetworkBuilder, StationId, TopoNodeId, TrackId};
use crate::train::Train;
use crate::units::{KmPerHour, Meters, Seconds};

/// Error produced when parsing a `.rail` document fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseScenarioError {
    /// 1-based line number (0 for whole-document errors such as a missing
    /// directive or a validation failure of the completed network).
    pub line: usize,
    /// 1-based column of the offending fragment within the raw line
    /// (0 when the error has no line, or no narrower span than the line).
    pub column: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.line, self.column) {
            (0, _) => write!(f, "scenario parse error: {}", self.message),
            (line, 0) => write!(f, "scenario parse error at line {line}: {}", self.message),
            (line, column) => write!(
                f,
                "scenario parse error at line {line}, column {column}: {}",
                self.message
            ),
        }
    }
}

impl std::error::Error for ParseScenarioError {}

impl From<(usize, String)> for ParseScenarioError {
    fn from((line, message): (usize, String)) -> Self {
        ParseScenarioError {
            line,
            column: 0,
            message,
        }
    }
}

/// 1-based column of `fragment` within `raw`, or 0 when `fragment` is not
/// a subslice of `raw`. Pure pointer arithmetic on the borrowed slices —
/// every parser fragment is carved out of its raw line, so the offset *is*
/// the column (bytes; `.rail` documents are ASCII in practice).
fn column_of(raw: &str, fragment: &str) -> usize {
    let base = raw.as_ptr() as usize;
    let p = fragment.as_ptr() as usize;
    if p >= base && p + fragment.len() <= base + raw.len() {
        p - base + 1
    } else {
        0
    }
}

/// Parses a `.rail` document into a validated [`Scenario`].
///
/// # Errors
///
/// Returns [`ParseScenarioError`] on malformed syntax and wraps
/// [`NetworkError`] diagnostics (with line 0) when the parsed network
/// fails validation.
pub fn parse_scenario(input: &str) -> Result<Scenario, ParseScenarioError> {
    let mut name = String::from("unnamed");
    let mut r_s: Option<Meters> = None;
    let mut r_t: Option<Seconds> = None;
    let mut horizon: Option<Seconds> = None;
    let mut builder = NetworkBuilder::new();
    let mut nodes: BTreeMap<String, TopoNodeId> = BTreeMap::new();
    let mut tracks: BTreeMap<String, TrackId> = BTreeMap::new();
    let mut stations: BTreeMap<String, StationId> = BTreeMap::new();
    let mut trains: BTreeMap<String, (Train, usize)> = BTreeMap::new(); // -> run index
    let mut runs: Vec<TrainRun> = Vec::new();

    for (lineno, raw) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        // `err` blames the whole directive (column of its first keyword
        // character); `err_at` narrows the span to the offending fragment,
        // which every reference/number error below points at.
        let err = |message: String| ParseScenarioError {
            line: lineno,
            column: column_of(raw, line),
            message,
        };
        let err_at = |fragment: &str, message: String| ParseScenarioError {
            line: lineno,
            column: column_of(raw, fragment),
            message,
        };
        let (keyword, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        match keyword {
            "scenario" => name = rest.to_owned(),
            "rs" => {
                let metres: u64 = rest
                    .parse()
                    .map_err(|_| err_at(rest, format!("invalid rs `{rest}` (metres)")))?;
                r_s = Some(Meters(metres));
            }
            "rt" => {
                let secs: u64 = rest
                    .parse()
                    .map_err(|_| err_at(rest, format!("invalid rt `{rest}` (seconds)")))?;
                r_t = Some(Seconds(secs));
            }
            "horizon" => {
                horizon = Some(
                    Seconds::parse_hms(rest)
                        .map_err(|e| err_at(rest, format!("invalid horizon: {e}")))?,
                );
            }
            "node" => {
                if rest.is_empty() {
                    return Err(err("node needs a name".into()));
                }
                if nodes.contains_key(rest) {
                    return Err(err_at(rest, format!("duplicate node `{rest}`")));
                }
                let id = builder.node();
                nodes.insert(rest.to_owned(), id);
            }
            "track" => {
                // <name> : <node> - <node> <length_m>
                let (tname, spec) = rest
                    .split_once(':')
                    .ok_or_else(|| err("track needs `name : a - b length`".into()))?;
                let tname = tname.trim();
                let (ends, len) = spec
                    .trim()
                    .rsplit_once(char::is_whitespace)
                    .ok_or_else(|| err("track needs a length".into()))?;
                let length: u64 = len
                    .parse()
                    .map_err(|_| err_at(len, format!("invalid track length `{len}`")))?;
                // Node names may themselves contain dashes (`westhaven-end`),
                // so the separator is a dash surrounded by whitespace.
                let (a, b) = ends
                    .split_once(" - ")
                    .or_else(|| ends.split_once('-'))
                    .ok_or_else(|| err("track endpoints need `a - b`".into()))?;
                let a = nodes
                    .get(a.trim())
                    .ok_or_else(|| err_at(a.trim(), format!("unknown node `{}`", a.trim())))?;
                let b = nodes
                    .get(b.trim())
                    .ok_or_else(|| err_at(b.trim(), format!("unknown node `{}`", b.trim())))?;
                let id = builder.track(*a, *b, Meters(length), tname);
                tracks.insert(tname.to_owned(), id);
            }
            "ttd" => {
                let (tname, members) = rest
                    .split_once(':')
                    .ok_or_else(|| err("ttd needs `name : tracks…`".into()))?;
                let members = parse_track_list(members, &tracks).map_err(|(f, m)| err_at(f, m))?;
                builder.ttd(tname.trim(), members);
            }
            "station" => {
                let (sname, spec) = rest.split_once(':').ok_or_else(|| {
                    err("station needs `name : boundary|interior tracks…`".into())
                })?;
                let spec = spec.trim();
                let (kind, members) = spec
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| err("station needs member tracks".into()))?;
                let boundary = match kind {
                    "boundary" => true,
                    "interior" => false,
                    other => return Err(err_at(other, format!("unknown station kind `{other}`"))),
                };
                let members = parse_track_list(members, &tracks).map_err(|(f, m)| err_at(f, m))?;
                let id = builder.station(sname.trim(), members, boundary);
                stations.insert(sname.trim().to_owned(), id);
            }
            "train" => {
                let (tname, spec) = rest
                    .split_once(':')
                    .ok_or_else(|| err("train needs `name : length speed`".into()))?;
                let parts: Vec<&str> = spec.split_whitespace().collect();
                let [length, speed] = parts.as_slice() else {
                    return Err(err("train needs `length[m] speed[km/h]`".into()));
                };
                let length: u64 = length
                    .parse()
                    .map_err(|_| err_at(length, format!("invalid train length `{length}`")))?;
                let speed: u32 = speed
                    .parse()
                    .map_err(|_| err_at(speed, format!("invalid train speed `{speed}`")))?;
                let train = Train::new(tname.trim(), Meters(length), KmPerHour(speed));
                trains.insert(tname.trim().to_owned(), (train, usize::MAX));
            }
            "run" => {
                // <train> : <origin> -> <dest> dep <time> [arr <time>]
                let (tname, spec) = rest
                    .split_once(':')
                    .ok_or_else(|| err("run needs `train : origin -> dest dep …`".into()))?;
                let tname = tname.trim();
                let (train, run_slot) = trains
                    .get_mut(tname)
                    .ok_or_else(|| err_at(tname, format!("unknown train `{tname}`")))?;
                let (route, times) = spec
                    .split_once(" dep ")
                    .ok_or_else(|| err("run needs ` dep <time>`".into()))?;
                let (origin, dest) = route
                    .split_once("->")
                    .ok_or_else(|| err("run route needs `origin -> dest`".into()))?;
                let origin = *stations.get(origin.trim()).ok_or_else(|| {
                    err_at(
                        origin.trim(),
                        format!("unknown station `{}`", origin.trim()),
                    )
                })?;
                let dest = *stations.get(dest.trim()).ok_or_else(|| {
                    err_at(dest.trim(), format!("unknown station `{}`", dest.trim()))
                })?;
                let (dep_text, arr_text) = match times.trim().split_once(" arr ") {
                    Some((d, a)) => (d.trim(), Some(a.trim())),
                    None => (times.trim(), None),
                };
                let departure = Seconds::parse_hms(dep_text)
                    .map_err(|e| err_at(dep_text, format!("invalid departure: {e}")))?;
                let arrival = match arr_text {
                    Some(a) => Some(
                        Seconds::parse_hms(a)
                            .map_err(|e| err_at(a, format!("invalid arrival: {e}")))?,
                    ),
                    None => None,
                };
                *run_slot = runs.len();
                runs.push(TrainRun::new(
                    train.clone(),
                    origin,
                    dest,
                    departure,
                    arrival,
                ));
            }
            "stop" => {
                // <train> : <station> [arr <time>]
                let (tname, spec) = rest
                    .split_once(':')
                    .ok_or_else(|| err("stop needs `train : station [arr <time>]`".into()))?;
                let run_ix = trains
                    .get(tname.trim())
                    .filter(|(_, ix)| *ix != usize::MAX)
                    .ok_or_else(|| {
                        err_at(
                            tname.trim(),
                            format!("stop before run for train `{}`", tname.trim()),
                        )
                    })?
                    .1;
                let (sname, deadline) = match spec.trim().split_once(" arr ") {
                    Some((s, t)) => (
                        s.trim(),
                        Some(
                            Seconds::parse_hms(t.trim())
                                .map_err(|e| err_at(t.trim(), format!("invalid stop time: {e}")))?,
                        ),
                    ),
                    None => (spec.trim(), None),
                };
                let station = *stations
                    .get(sname)
                    .ok_or_else(|| err_at(sname, format!("unknown station `{sname}`")))?;
                runs[run_ix].stops.push((station, deadline));
            }
            other => return Err(err_at(other, format!("unknown keyword `{other}`"))),
        }
    }

    let missing = |what: &str| ParseScenarioError {
        line: 0,
        column: 0,
        message: format!("missing `{what}` directive"),
    };
    let network = builder
        .build()
        .map_err(|e: NetworkError| ParseScenarioError {
            line: 0,
            column: 0,
            message: format!("network validation failed: {e}"),
        })?;
    let scenario = Scenario {
        name,
        network,
        schedule: Schedule::new(runs),
        r_s: r_s.ok_or_else(|| missing("rs"))?,
        r_t: r_t.ok_or_else(|| missing("rt"))?,
        horizon: horizon.ok_or_else(|| missing("horizon"))?,
    };
    scenario.validate().map_err(|e| ParseScenarioError {
        line: 0,
        column: 0,
        message: format!("schedule validation failed: {e}"),
    })?;
    Ok(scenario)
}

fn parse_track_list<'a>(
    text: &'a str,
    tracks: &BTreeMap<String, TrackId>,
) -> Result<Vec<TrackId>, (&'a str, String)> {
    // Track names may contain spaces, so match greedily against the known
    // names: split on two-or-more spaces first; fall back to whitespace.
    let mut out = Vec::new();
    for token in text.split(',') {
        let token = token.trim();
        if token.is_empty() {
            continue;
        }
        match tracks.get(token) {
            Some(&id) => out.push(id),
            None => return Err((token, format!("unknown track `{token}`"))),
        }
    }
    if out.is_empty() {
        return Err((text, "empty track list".into()));
    }
    Ok(out)
}

/// Serialises a scenario to the `.rail` text format.
///
/// Node names are synthesised (`n0`, `n1`, …) since the topology stores
/// nodes anonymously.
pub fn write_scenario(scenario: &Scenario) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "scenario {}", scenario.name);
    let _ = writeln!(out, "rs {}", scenario.r_s.as_u64());
    let _ = writeln!(out, "rt {}", scenario.r_t.as_u64());
    let _ = writeln!(out, "horizon {}", scenario.horizon);
    let _ = writeln!(out);
    let net = &scenario.network;
    for i in 0..net.num_nodes() {
        let _ = writeln!(out, "node n{i}");
    }
    for t in net.tracks() {
        let _ = writeln!(
            out,
            "track {} : n{} - n{} {}",
            t.name,
            t.from.index(),
            t.to.index(),
            t.length.as_u64()
        );
    }
    for ttd in net.ttds() {
        let members: Vec<&str> = ttd
            .tracks
            .iter()
            .map(|&t| net.tracks()[t.index()].name.as_str())
            .collect();
        let _ = writeln!(out, "ttd {} : {}", ttd.name, members.join(", "));
    }
    for s in net.stations() {
        let members: Vec<&str> = s
            .tracks
            .iter()
            .map(|&t| net.tracks()[t.index()].name.as_str())
            .collect();
        let kind = if s.boundary { "boundary" } else { "interior" };
        let _ = writeln!(out, "station {} : {kind} {}", s.name, members.join(", "));
    }
    for run in scenario.schedule.runs() {
        let _ = writeln!(
            out,
            "train {} : {} {}",
            run.train.name,
            run.train.length.as_u64(),
            run.train.max_speed.as_u32()
        );
    }
    for run in scenario.schedule.runs() {
        let origin = &net.stations()[run.origin.index()].name;
        let dest = &net.stations()[run.destination.index()].name;
        let _ = write!(
            out,
            "run {} : {origin} -> {dest} dep {}",
            run.train.name, run.departure
        );
        if let Some(arr) = run.arrival {
            let _ = write!(out, " arr {arr}");
        }
        let _ = writeln!(out);
        for &(station, deadline) in &run.stops {
            let sname = &net.stations()[station.index()].name;
            let _ = write!(out, "stop {} : {sname}", run.train.name);
            if let Some(d) = deadline {
                let _ = write!(out, " arr {d}");
            }
            let _ = writeln!(out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn all_fixtures_roundtrip() {
        for original in fixtures::all() {
            let text = write_scenario(&original);
            let parsed = parse_scenario(&text).unwrap_or_else(|e| panic!("{}: {e}", original.name));
            assert_eq!(parsed.name, original.name);
            assert_eq!(parsed.r_s, original.r_s);
            assert_eq!(parsed.r_t, original.r_t);
            assert_eq!(parsed.horizon, original.horizon);
            assert_eq!(parsed.network, original.network, "{}", original.name);
            assert_eq!(parsed.schedule, original.schedule, "{}", original.name);
        }
    }

    #[test]
    fn minimal_document_parses() {
        let text = "\
scenario Mini
rs 500
rt 30
horizon 0:05:00
node a
node b
track main : a - b 1000
ttd T1 : main
station A : boundary main
train T : 200 120
run T : A -> A dep 0:00:00
";
        let s = parse_scenario(text).expect("parses");
        assert_eq!(s.name, "Mini");
        assert_eq!(s.network.tracks().len(), 1);
        assert_eq!(s.schedule.len(), 1);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\
# header comment
scenario C

rs 500   # inline comment
rt 30
horizon 0:01:00
node a
node b
track t : a - b 500
ttd T : t
station S : boundary t
";
        let s = parse_scenario(text).expect("parses");
        assert_eq!(s.name, "C");
    }

    #[test]
    fn stops_attach_to_the_preceding_run() {
        let text = "\
scenario S
rs 500
rt 30
horizon 0:10:00
node a
node b
node c
track t1 : a - b 500
track t2 : b - c 500
ttd T1 : t1
ttd T2 : t2
station A : boundary t1
station M : interior t2
train T : 100 60
run T : A -> A dep 0:00:00 arr 0:08:00
stop T : M arr 0:04:00
";
        let s = parse_scenario(text).expect("parses");
        let run = &s.schedule.runs()[0];
        assert_eq!(run.stops.len(), 1);
        assert_eq!(run.stops[0].1, Some(Seconds(240)));
    }

    #[test]
    fn error_reports_line_numbers() {
        let text = "scenario X\nrs 500\nrt 30\nhorizon 0:01:00\nbogus directive\n";
        let e = parse_scenario(text).expect_err("fails");
        assert_eq!(e.line, 5);
        assert_eq!(e.column, 1, "the unknown keyword starts the line");
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn error_reports_columns_of_the_offending_fragment() {
        // `rs nope` — the bad number starts at column 4.
        let e = parse_scenario("scenario X\nrs nope\n").expect_err("fails");
        assert_eq!((e.line, e.column), (2, 4));

        // The unknown node `c` of the track endpoints, not the directive.
        let text = "scenario X\nrs 500\nrt 30\nhorizon 0:01:00\nnode a\ntrack t : a - c 500\n";
        let e = parse_scenario(text).expect_err("fails");
        assert_eq!((e.line, e.column), (6, 15), "{e}");
        assert!(e.message.contains("unknown node `c`"));

        // Leading whitespace and inline comments do not shift the span:
        // the column is measured in the raw line.
        let e = parse_scenario("scenario X\n   rs nope # comment\n").expect_err("fails");
        assert_eq!((e.line, e.column), (2, 7));
    }

    #[test]
    fn column_of_rejects_foreign_fragments() {
        assert_eq!(column_of("abc", "abc"), 1);
        assert_eq!(column_of("abc", &"abc"[1..]), 2);
        assert_eq!(column_of("abc", "elsewhere"), 0);
    }

    #[test]
    fn unknown_references_are_reported() {
        let text = "\
scenario X
rs 500
rt 30
horizon 0:01:00
node a
node b
track t : a - b 500
ttd T : missing
";
        let e = parse_scenario(text).expect_err("fails");
        assert!(e.message.contains("unknown track"));
    }

    #[test]
    fn missing_resolution_is_reported() {
        let text =
            "scenario X\nrt 30\nhorizon 0:01:00\nnode a\nnode b\ntrack t : a - b 500\nttd T : t\n";
        let e = parse_scenario(text).expect_err("fails");
        assert!(e.message.contains("rs"));
    }

    #[test]
    fn network_validation_failures_surface() {
        // Track not covered by any TTD.
        let text = "\
scenario X
rs 500
rt 30
horizon 0:01:00
node a
node b
track t : a - b 500
";
        let e = parse_scenario(text).expect_err("fails");
        assert!(e.message.contains("validation"));
    }

    #[test]
    fn display_of_error_mentions_line() {
        let e = ParseScenarioError {
            line: 7,
            column: 3,
            message: "boom".into(),
        };
        assert!(format!("{e}").contains("line 7, column 3"));
        let whole_line = ParseScenarioError {
            line: 7,
            column: 0,
            message: "boom".into(),
        };
        assert!(format!("{whole_line}").contains("line 7"));
        assert!(!format!("{whole_line}").contains("column"));
    }
}
