//! The "Simple Layout" case study (Fig. 4a): three stations on a vertical
//! line, the outer two at the network boundary, the middle one a two-track
//! crossing loop, joined by single-track links (10 TTD sections in total,
//! as in the paper).
//!
//! The schedule sends a three-train convoy in each direction. Under pure
//! TTD operation each 1.5 km loop track holds one train, so the convoys
//! deadlock at the crossing station — verification is UNSAT. VSS borders
//! subdivide the loop tracks (and links), letting a whole convoy stack on
//! one loop track while the opposing convoy passes.

use crate::scenario::Scenario;
use crate::schedule::{Schedule, TrainRun};
use crate::topology::NetworkBuilder;
use crate::train::Train;
use crate::units::{KmPerHour, Meters, Seconds};

/// Builds the simple-layout scenario
/// (`r_s = 0.5 km`, `r_t = 1 min`, 20-minute horizon).
///
/// # Examples
///
/// ```
/// use etcs_network::fixtures::simple_layout;
/// let s = simple_layout();
/// assert_eq!(s.network.stations().len(), 3);
/// assert_eq!(s.network.ttds().len(), 10);
/// assert_eq!(s.schedule.len(), 6);
/// ```
pub fn simple_layout() -> Scenario {
    let km = Meters::from_km;
    let mut b = NetworkBuilder::new();

    // S1 (two boundary tracks) = p1 --L1a--m1--L1b-- p2 = S2 loop =
    // p3 --L2a--m2--L2b-- p4 = S3 (two boundary tracks).
    let s1a_end = b.node();
    let s1b_end = b.node();
    let p1 = b.node();
    let m1 = b.node();
    let p2 = b.node();
    let p3 = b.node();
    let m2 = b.node();
    let p4 = b.node();
    let s3a_end = b.node();
    let s3b_end = b.node();

    let s1a = b.track(s1a_end, p1, km(0.5), "S1a");
    let s1b = b.track(s1b_end, p1, km(0.5), "S1b");
    let l1a = b.track(p1, m1, km(1.5), "L1a");
    let l1b = b.track(m1, p2, km(1.5), "L1b");
    let s2a = b.track(p2, p3, km(1.5), "S2a");
    let s2b = b.track(p2, p3, km(1.5), "S2b");
    let l2a = b.track(p3, m2, km(1.5), "L2a");
    let l2b = b.track(m2, p4, km(1.5), "L2b");
    let s3a = b.track(p4, s3a_end, km(0.5), "S3a");
    let s3b = b.track(p4, s3b_end, km(0.5), "S3b");

    for (name, track) in [
        ("TTD-S1a", s1a),
        ("TTD-S1b", s1b),
        ("TTD-L1a", l1a),
        ("TTD-L1b", l1b),
        ("TTD-S2a", s2a),
        ("TTD-S2b", s2b),
        ("TTD-L2a", l2a),
        ("TTD-L2b", l2b),
        ("TTD-S3a", s3a),
        ("TTD-S3b", s3b),
    ] {
        b.ttd(name, [track]);
    }

    let st1 = b.station("S1", [s1a, s1b], true);
    let _st2 = b.station("S2", [s2a, s2b], false);
    let st3 = b.station("S3", [s3a, s3b], true);

    let network = b.build().expect("simple layout topology is valid");

    let min = Seconds::from_minutes;
    let regional = |name: &str| Train::new(name, Meters(200), KmPerHour(120));

    // A three-train convoy in each direction, two minutes apart.
    let schedule = Schedule::new(vec![
        TrainRun::new(regional("South 1"), st1, st3, min(0), Some(min(11))),
        TrainRun::new(regional("North 1"), st3, st1, min(0), Some(min(11))),
        TrainRun::new(regional("South 2"), st1, st3, min(2), Some(min(12))),
        TrainRun::new(regional("North 2"), st3, st1, min(2), Some(min(12))),
        TrainRun::new(regional("South 3"), st1, st3, min(4), Some(min(13))),
        TrainRun::new(regional("North 3"), st3, st1, min(4), Some(min(13))),
    ]);

    Scenario {
        name: "Simple Layout".into(),
        network,
        schedule,
        r_s: km(0.5),
        r_t: Seconds::from_minutes(1),
        horizon: Seconds::from_minutes(20),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::VssLayout;

    #[test]
    fn shape_matches_fig_4a() {
        let s = simple_layout();
        assert_eq!(s.network.stations().len(), 3);
        assert_eq!(s.network.ttds().len(), 10, "paper: 10 pure-TTD sections");
        s.validate().expect("schedule is valid");
    }

    #[test]
    fn pure_ttd_section_count() {
        let s = simple_layout();
        let d = s.discretise().expect("discretises");
        assert_eq!(VssLayout::pure_ttd().section_count(&d), 10);
    }

    #[test]
    fn loop_tracks_are_subdividable() {
        let s = simple_layout();
        let d = s.discretise().expect("discretises");
        let st2 = s.network.station_by_name("S2").expect("exists");
        // Each 1.5 km loop track has 3 segments — room for a whole convoy
        // once VSS borders are added.
        assert_eq!(d.station_edges(st2).len(), 6);
    }

    #[test]
    fn loop_tracks_allow_crossing() {
        let s = simple_layout();
        let d = s.discretise().expect("discretises");
        let st2 = s.network.station_by_name("S2").expect("exists");
        let edges = d.station_edges(st2);
        let layout = VssLayout::pure_ttd();
        // The two loop tracks are separate sections even under pure TTD.
        let sec = layout.section_of(&d, edges[0]);
        assert!(!edges.iter().all(|e| sec.contains(e)));
    }

    #[test]
    fn horizon_and_steps() {
        let s = simple_layout();
        assert_eq!(s.t_max(), 21);
    }
}
