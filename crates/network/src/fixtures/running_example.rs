//! The paper's running example (Fig. 1): a main line from Station A to
//! Station B with a two-track terminus branch "Station C" at the junction
//! point, divided into four TTD sections.
//!
//! The schedule is Fig. 1b verbatim: with pure TTD operation it deadlocks
//! (verification is UNSAT); a single additional VSS border makes it
//! feasible; further borders let the optimiser cut the completion time.

use crate::scenario::Scenario;
use crate::schedule::{Schedule, TrainRun};
use crate::topology::NetworkBuilder;
use crate::train::Train;
use crate::units::{KmPerHour, Meters, Seconds};

/// Builds the running-example scenario
/// (`r_s = 0.5 km`, `r_t = 0.5 min`, 5-minute horizon).
///
/// # Examples
///
/// ```
/// use etcs_network::fixtures::running_example;
/// let s = running_example();
/// assert_eq!(s.network.ttds().len(), 4);
/// assert_eq!(s.schedule.len(), 4);
/// ```
pub fn running_example() -> Scenario {
    let km = Meters::from_km;
    let mut b = NetworkBuilder::new();

    // Topology: A - a1 ====== P ====== b1 - B, with a two-track terminus
    // branch at P forming Station C (tracks to Ca and Cb).
    let a = b.node();
    let a1 = b.node();
    let p = b.node();
    let ca1 = b.node();
    let ca = b.node();
    let cb1 = b.node();
    let cb = b.node();
    let b1 = b.node();
    let bb = b.node();

    let sta_a = b.track(a, a1, km(0.5), "A");
    let ap = b.track(a1, p, km(1.0), "A-P");
    let pca = b.track(p, ca1, km(0.5), "P-Ca");
    let sta_ca = b.track(ca1, ca, km(0.5), "Ca");
    let pcb = b.track(p, cb1, km(0.5), "P-Cb");
    let sta_cb = b.track(cb1, cb, km(0.5), "Cb");
    let pb = b.track(p, b1, km(1.5), "P-B");
    let sta_b = b.track(b1, bb, km(0.5), "B");

    b.ttd("TTD1", [sta_a, ap]);
    b.ttd("TTD2", [pca, sta_ca]);
    b.ttd("TTD3", [pcb, sta_cb]);
    b.ttd("TTD4", [pb, sta_b]);

    let st_a = b.station("A", [sta_a], true);
    let st_b = b.station("B", [sta_b], true);
    let st_c = b.station("C", [sta_ca, sta_cb], false);

    let network = b.build().expect("running example topology is valid");

    let time = |text: &str| Seconds::parse_hms(text).expect("fixture times are valid");
    // Fig. 1b of the paper.
    let schedule = Schedule::new(vec![
        TrainRun::new(
            Train::new("Train 1", Meters(400), KmPerHour(180)),
            st_a,
            st_b,
            time("0:00:00"),
            Some(time("0:04:30")),
        ),
        TrainRun::new(
            Train::new("Train 2", Meters(700), KmPerHour(120)),
            st_b,
            st_a,
            time("0:00:00"),
            Some(time("0:04:00")),
        ),
        TrainRun::new(
            Train::new("Train 3", Meters(100), KmPerHour(120)),
            st_a,
            st_c,
            time("0:01:00"),
            Some(time("0:03:00")),
        ),
        TrainRun::new(
            Train::new("Train 4", Meters(250), KmPerHour(180)),
            st_b,
            st_a,
            time("0:01:00"),
            Some(time("0:05:00")),
        ),
    ]);

    Scenario {
        name: "Running Example".into(),
        network,
        schedule,
        r_s: km(0.5),
        r_t: Seconds(30),
        horizon: Seconds::from_minutes(5),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::VssLayout;

    #[test]
    fn matches_paper_headline_numbers() {
        let s = running_example();
        assert_eq!(s.network.ttds().len(), 4, "four TTD sections");
        assert_eq!(s.schedule.len(), 4, "four trains");
        assert_eq!(s.t_max(), 11);
        s.validate().expect("schedule is valid");
    }

    #[test]
    fn discretises_to_a_tree() {
        let s = running_example();
        let d = s.discretise().expect("discretises");
        assert_eq!(d.num_edges(), 11);
        assert_eq!(d.num_nodes(), 12);
        // Pure TTD operation yields exactly the 4 TTD sections.
        assert_eq!(VssLayout::pure_ttd().section_count(&d), 4);
    }

    #[test]
    fn train_parameters_match_fig_1b() {
        let s = running_example();
        let runs = s.schedule.runs();
        assert_eq!(runs[0].train.max_speed, KmPerHour(180));
        assert_eq!(runs[1].train.length, Meters(700));
        assert_eq!(runs[2].arrival, Some(Seconds(180)));
        assert_eq!(runs[3].departure, Seconds(60));
    }

    #[test]
    fn discrete_train_dimensions() {
        let s = running_example();
        let runs = s.schedule.runs();
        // 180 km/h at 30 s and 500 m: 3 segments per step.
        assert_eq!(runs[0].train.discrete_speed(s.r_s, s.r_t), 3);
        assert_eq!(runs[1].train.discrete_speed(s.r_s, s.r_t), 2);
        // 700 m spans 2 segments, everything else 1.
        assert_eq!(runs[1].train.discrete_length(s.r_s), 2);
        assert_eq!(runs[0].train.discrete_length(s.r_s), 1);
    }
}
