//! A synthetic congestion fixture for the optimisation benchmarks: a
//! single-track line where fast trains queue behind a slow leader.
//!
//! Unlike the four paper case studies, this scenario is *not* from the
//! paper. It exists because every bundled case study has a tight
//! completion lower bound — the unobstructed earliest arrival of the
//! slowest train already equals (or nearly equals) the optimum, so the
//! optimiser's deadline search accepts one of its first probes. Here the
//! fast followers cannot overtake the slow leader on the single track,
//! which pushes the optimal completion time strictly above the lower
//! bound and forces the deadline search through several UNSAT probes.
//! That multi-probe regime is what the incremental optimisation loop is
//! designed for, and what `bench_optimize` and the optimisation
//! equivalence tests exercise with this fixture.

use crate::scenario::Scenario;
use crate::schedule::{Schedule, TrainRun};
use crate::topology::NetworkBuilder;
use crate::train::Train;
use crate::units::{KmPerHour, Meters, Seconds};

/// Builds the convoy scenario (`r_s = 0.5 km`, `r_t = 0.5 min`,
/// 13-minute horizon): Station A with three platform tracks, an 8 km
/// single-track link in one TTD, and a terminal Station B. A 60 km/h
/// leader departs first, chased by three 120 km/h followers at 30 s
/// spacing that can only trail it — closely with VSS borders, or a whole
/// TTD behind without. Each platform needs two steps to clear, so three
/// platforms are exactly enough for the departure sequence.
///
/// # Examples
///
/// ```
/// use etcs_network::fixtures::convoy;
/// let s = convoy();
/// assert_eq!(s.network.ttds().len(), 5);
/// assert_eq!(s.schedule.len(), 4);
/// ```
pub fn convoy() -> Scenario {
    let km = Meters::from_km;
    let mut b = NetworkBuilder::new();

    let junction = b.node();
    let mut platforms = Vec::new();
    for i in 1..=3 {
        let head = b.node();
        let track = b.track(head, junction, km(0.5), format!("A{i}"));
        b.ttd(format!("TTD-A{i}"), [track]);
        platforms.push(track);
    }
    let b1 = b.node();
    let link = b.track(junction, b1, km(8.0), "A-B");
    let bb = b.node();
    let sta_b = b.track(b1, bb, km(0.5), "B");
    b.ttd("TTD-LINE", [link]);
    b.ttd("TTD-B", [sta_b]);

    let st_a = b.station("A", platforms, true);
    let st_b = b.station("B", [sta_b], true);

    let network = b.build().expect("convoy topology is valid");

    let mut runs = vec![TrainRun::new(
        Train::new("Leader", Meters(200), KmPerHour(60)),
        st_a,
        st_b,
        Seconds(0),
        None,
    )];
    for i in 1..=3u64 {
        runs.push(TrainRun::new(
            Train::new(format!("Follower {i}"), Meters(100), KmPerHour(120)),
            st_a,
            st_b,
            Seconds(30 * i),
            None,
        ));
    }

    Scenario {
        name: "Convoy".into(),
        network,
        schedule: Schedule::new(runs),
        r_s: km(0.5),
        r_t: Seconds(30),
        horizon: Seconds::from_minutes(13),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convoy_is_well_formed() {
        let s = convoy();
        assert_eq!(s.network.ttds().len(), 5);
        assert_eq!(s.schedule.len(), 4);
        assert_eq!(s.t_max(), 27);
        s.validate().expect("schedule is valid");
        s.discretise().expect("discretises");
    }

    #[test]
    fn followers_are_faster_than_the_leader() {
        let s = convoy();
        let runs = s.schedule.runs();
        assert_eq!(
            runs[0].train.discrete_speed(s.r_s, s.r_t),
            1,
            "leader crawls one segment per step"
        );
        for follower in &runs[1..] {
            assert_eq!(follower.train.discrete_speed(s.r_s, s.r_t), 2);
        }
    }
}
