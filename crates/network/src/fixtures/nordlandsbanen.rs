//! The Nordlandsbanen case study: a real-life-inspired reconstruction of
//! the Norwegian line from Trondheim to Bodø — 58 stations and 822 km of
//! track, operated as a single-track line with two-track crossing loops at
//! a subset of stations.
//!
//! The paper publishes only the station count and total length; the
//! inter-station distances here are synthesised deterministically (fixed
//! seed, no RNG dependency) and scaled so the total trackage is exactly
//! 822 km. Remote stretches share long TTD sections, mirroring the paper's
//! 51 pure-TTD sections.

use crate::scenario::Scenario;
use crate::schedule::{Schedule, TrainRun};
use crate::topology::{NetworkBuilder, TrackId};
use crate::train::Train;
use crate::units::{KmPerHour, Meters, Seconds};

/// The 58 stations from Trondheim to Bodø (south to north). The real line
/// has fewer regular stops; historic halts pad the list to the paper's 58.
pub const NORDLANDSBANEN_STATIONS: [&str; 58] = [
    "Trondheim",
    "Leangen",
    "Vikhammer",
    "Hommelvik",
    "Hell",
    "Værnes",
    "Stjørdal",
    "Skatval",
    "Langstein",
    "Åsen",
    "Ronglan",
    "Skogn",
    "Levanger",
    "Bergsgrav",
    "Verdal",
    "Røra",
    "Sparbu",
    "Steinkjer",
    "Sunnan",
    "Starrgrasmyra",
    "Jørstad",
    "Snåsa",
    "Agle",
    "Grong",
    "Harran",
    "Lassemoen",
    "Namsskogan",
    "Brekkvasselv",
    "Majavatn",
    "Svenningdal",
    "Trofors",
    "Laksfors",
    "Eiterstraum",
    "Mosjøen",
    "Drevvatn",
    "Elsfjord",
    "Bjerka",
    "Finneidfjord",
    "Mo i Rana",
    "Skonseng",
    "Ørtfjell",
    "Dunderland",
    "Bolna",
    "Stødi",
    "Lønsdal",
    "Røkland",
    "Rognan",
    "Setså",
    "Finneid",
    "Fauske",
    "Valnesfjord",
    "Oteråga",
    "Tverlandet",
    "Mørkved",
    "Støver",
    "Hunstad",
    "Bodø Sør",
    "Bodø",
];

/// Indices of the stations that are two-track crossing loops. Index 0
/// (Trondheim) and 57 (Bodø) are boundary yards instead.
const CROSSING_LOOPS: [usize; 10] = [4, 9, 17, 23, 28, 33, 38, 44, 49, 53];

/// Deterministic pseudo-random stream (xorshift), so the fixture needs no
/// RNG dependency and is bit-identical across runs.
fn xorshift(seed: &mut u64) -> u64 {
    *seed ^= *seed << 13;
    *seed ^= *seed >> 7;
    *seed ^= *seed << 17;
    *seed
}

/// Track budget (all in km): 2 terminus yards of 5, 10 loops of 2 × 5,
/// 46 plain-station platforms of 5, and 57 links making up the rest of the
/// 822 km total.
const LINK_BUDGET_KM: u64 = 822 - 2 * 5 - 10 * 10 - 46 * 5;

/// Synthesises the 57 link lengths (km, multiples of 5, minimum 5) summing
/// to [`LINK_BUDGET_KM`] up to one remainder link.
fn link_lengths_km() -> Vec<u64> {
    const NUM_LINKS: u64 = 57;
    let mut seed = 0x5eed_ba5e_u64 | 1;
    let raw: Vec<u64> = (0..NUM_LINKS)
        .map(|_| 1 + xorshift(&mut seed) % 3)
        .collect();
    let raw_sum: u64 = raw.iter().sum();
    let mut lengths: Vec<u64> = raw
        .iter()
        .map(|&w| ((w * LINK_BUDGET_KM / raw_sum) / 5).max(1) * 5)
        .collect();
    // Fix rounding drift on the longest link (may leave it a non-multiple
    // of 5; discretisation rounds that single segment up).
    let current: u64 = lengths.iter().sum();
    let longest = (0..NUM_LINKS as usize)
        .max_by_key(|&i| lengths[i])
        .expect("links exist");
    lengths[longest] = lengths[longest] + LINK_BUDGET_KM - current;
    lengths
}

/// Builds the Nordlandsbanen scenario
/// (`r_s = 5 km`, `r_t = 5 min`, 340-minute horizon).
///
/// # Examples
///
/// ```
/// use etcs_network::fixtures::nordlandsbanen;
/// let s = nordlandsbanen();
/// assert_eq!(s.network.stations().len(), 58);
/// assert_eq!(s.network.total_length().as_km(), 822.0);
/// ```
pub fn nordlandsbanen() -> Scenario {
    let km = |x: u64| Meters::from_km(x as f64);
    let lengths = link_lengths_km();
    let mut b = NetworkBuilder::new();

    let mut ttd_counter = 0usize;
    // Plain-line tracks accumulate until a crossing loop closes the TTD;
    // remote stretches are chunked so one TTD covers at most 3 tracks.
    let mut open_line: Vec<TrackId> = Vec::new();

    macro_rules! close_ttd {
        ($tracks:expr) => {{
            ttd_counter += 1;
            b.ttd(format!("TTD{ttd_counter}"), $tracks);
        }};
    }
    macro_rules! flush_line {
        () => {{
            let pending = std::mem::take(&mut open_line);
            for chunk in pending.chunks(3) {
                close_ttd!(chunk.to_vec());
            }
        }};
    }

    // Terminus Trondheim.
    let yard_end = b.node();
    let mut prev = b.node();
    let yard = b.track(yard_end, prev, km(5), "Trondheim-yard");
    close_ttd!([yard]);
    b.station(NORDLANDSBANEN_STATIONS[0], [yard], true);

    for i in 1..58 {
        let name = NORDLANDSBANEN_STATIONS[i];
        let link_km = lengths[i - 1];
        if i == 57 {
            // Terminus Bodø.
            let west = b.node();
            let link = b.track(prev, west, km(link_km), format!("line-{i}"));
            open_line.push(link);
            flush_line!();
            let end = b.node();
            let yard = b.track(west, end, km(5), "Bodø-yard");
            close_ttd!([yard]);
            b.station(name, [yard], true);
        } else if CROSSING_LOOPS.contains(&i) {
            let west = b.node();
            let link = b.track(prev, west, km(link_km), format!("line-{i}"));
            open_line.push(link);
            flush_line!();
            let east = b.node();
            let loop_a = b.track(west, east, km(5), format!("{name}-a"));
            let loop_b = b.track(west, east, km(5), format!("{name}-b"));
            close_ttd!([loop_a]);
            close_ttd!([loop_b]);
            b.station(name, [loop_a, loop_b], false);
            prev = east;
        } else {
            // Plain station: link then a 5 km platform track on the line.
            let mid = b.node();
            let next = b.node();
            let link = b.track(prev, mid, km(link_km), format!("line-{i}"));
            let platform = b.track(mid, next, km(5), format!("{name}-platform"));
            open_line.push(link);
            open_line.push(platform);
            b.station(name, [platform], false);
            prev = next;
        }
    }

    let network = b.build().expect("nordlandsbanen topology is valid");

    let trondheim = network.station_by_name("Trondheim").expect("exists");
    let bodo = network.station_by_name("Bodø").expect("exists");
    let mosjoen = network.station_by_name("Mosjøen").expect("exists");
    let mo = network.station_by_name("Mo i Rana").expect("exists");

    let min = Seconds::from_minutes;
    // 180 km/h day trains advance 3 segments per 5-minute step; 120 km/h
    // freights advance 2.
    let day_train = |name: &str| Train::new(name, Meters(200), KmPerHour(180));
    let freight = |name: &str| Train::new(name, Meters(600), KmPerHour(120));

    // The freights leave first; the faster day trains catch up mid-line
    // and must overtake at crossing loops.
    let schedule = Schedule::new(vec![
        TrainRun::new(
            freight("Freight North"),
            trondheim,
            mo,
            min(0),
            Some(min(315)),
        ),
        TrainRun::new(
            freight("Freight South"),
            bodo,
            mosjoen,
            min(0),
            Some(min(315)),
        ),
        TrainRun::new(
            day_train("Day North"),
            trondheim,
            bodo,
            min(30),
            Some(min(320)),
        ),
        TrainRun::new(
            day_train("Day South"),
            bodo,
            trondheim,
            min(30),
            Some(min(320)),
        ),
    ]);

    Scenario {
        name: "Nordlandsbanen".into(),
        network,
        schedule,
        r_s: km(5),
        r_t: Seconds::from_minutes(5),
        horizon: Seconds::from_minutes(340),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_58_stations_and_822_km() {
        let s = nordlandsbanen();
        assert_eq!(s.network.stations().len(), 58);
        assert_eq!(s.network.total_length(), Meters::from_km(822.0));
    }

    #[test]
    fn termini_are_boundaries_rest_interior() {
        let s = nordlandsbanen();
        for (i, st) in s.network.stations().iter().enumerate() {
            assert_eq!(
                st.boundary,
                i == 0 || i == 57,
                "station {} boundary flag",
                st.name
            );
        }
    }

    #[test]
    fn ten_crossing_loops() {
        let s = nordlandsbanen();
        let loops = s
            .network
            .stations()
            .iter()
            .filter(|st| st.tracks.len() == 2)
            .count();
        assert_eq!(loops, 10);
    }

    #[test]
    fn link_lengths_are_deterministic_and_quantised() {
        let a = link_lengths_km();
        let b = link_lengths_km();
        assert_eq!(a, b);
        assert_eq!(a.len(), 57);
        assert!(a.iter().all(|&l| l >= 5));
        assert_eq!(a.iter().sum::<u64>(), LINK_BUDGET_KM);
    }

    #[test]
    fn validates_and_discretises() {
        let s = nordlandsbanen();
        s.validate().expect("schedule is valid");
        let d = s.discretise().expect("discretises");
        // 822 km of track at 5 km per segment, with at most one link
        // rounded up.
        let expected: u64 = s
            .network
            .tracks()
            .iter()
            .map(|t| t.length.div_ceil(s.r_s))
            .sum();
        assert_eq!(d.num_edges() as u64, expected);
        assert!((164..=170).contains(&d.num_edges()));
    }

    #[test]
    fn ttd_count_matches_paper_scale() {
        let s = nordlandsbanen();
        // The paper reports 51 pure-TTD sections; the reconstruction lands
        // in the same range.
        let n = s.network.ttds().len();
        assert!((45..=60).contains(&n), "got {n} TTDs");
    }

    #[test]
    fn horizon_and_steps() {
        let s = nordlandsbanen();
        assert_eq!(s.t_max(), 69);
    }
}
