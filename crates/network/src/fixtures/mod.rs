//! The paper's four case-study scenarios (Section IV, Fig. 1 and Fig. 4),
//! plus one synthetic stress fixture ([`convoy`]) for the optimisation
//! benchmarks.
//!
//! The paper publishes drawings, TTD counts, train tables and headline
//! numbers but not exact geometries; these fixtures reconstruct networks
//! consistent with everything the paper states (see DESIGN.md §5). All
//! fixtures are deterministic — [`nordlandsbanen`] synthesises its
//! inter-station distances from a fixed seed.

mod complex_layout;
mod convoy;
mod nordlandsbanen;
mod running_example;
mod simple_layout;

pub use complex_layout::complex_layout;
pub use convoy::convoy;
pub use nordlandsbanen::{nordlandsbanen, NORDLANDSBANEN_STATIONS};
pub use running_example::running_example;
pub use simple_layout::simple_layout;

/// All four case studies in Table I order.
pub fn all() -> Vec<crate::Scenario> {
    vec![
        running_example(),
        simple_layout(),
        complex_layout(),
        nordlandsbanen(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_returns_table_one_order() {
        let names: Vec<String> = all().into_iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "Running Example",
                "Simple Layout",
                "Complex Layout",
                "Nordlandsbanen"
            ]
        );
    }
}
