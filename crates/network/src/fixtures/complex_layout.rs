//! The "Complex Layout" case study (Fig. 4b): six stations connected in a
//! branched topology — a west–east main line A–B–C–D with a northern branch
//! to E at B and a southern branch to F at C. B and C are two-track
//! crossing loops; A, D, E, F are boundary stations.
//!
//! Three eastbound trains (two from A, one from E) meet three westbound
//! trains (two to A, one to F) on the shared B–C corridor. Under pure TTD
//! operation each 2 km loop track holds a single train, so the convoys
//! cannot clear each other in time; VSS borders subdivide the loops and
//! the corridor.

use crate::scenario::Scenario;
use crate::schedule::{Schedule, TrainRun};
use crate::topology::NetworkBuilder;
use crate::train::Train;
use crate::units::{KmPerHour, Meters, Seconds};

/// Builds the complex-layout scenario
/// (`r_s = 1 km`, `r_t = 3 min`, 60-minute horizon).
///
/// # Examples
///
/// ```
/// use etcs_network::fixtures::complex_layout;
/// let s = complex_layout();
/// assert_eq!(s.network.stations().len(), 6);
/// assert_eq!(s.schedule.len(), 6);
/// ```
pub fn complex_layout() -> Scenario {
    let km = Meters::from_km;
    let mut b = NetworkBuilder::new();

    // Boundary ends (A and D are two-track terminus stations).
    let a_end = b.node();
    let a_end2 = b.node();
    let d_end = b.node();
    let d_end2 = b.node();
    let e_end = b.node();
    let f_end = b.node();
    // Main-line junctions and link midpoints.
    let pa = b.node(); // east end of station A track
    let m_ab = b.node(); // A-B midpoint (TTD border)
    let pb_w = b.node(); // west point of loop B
    let pb_e = b.node(); // east point of loop B
    let m_bc1 = b.node(); // B-C at one third
    let m_bc2 = b.node(); // B-C at two thirds
    let pc_w = b.node(); // west point of loop C
    let pc_e = b.node(); // east point of loop C
    let m_cd = b.node(); // C-D midpoint
    let pd = b.node(); // west end of station D track
    let pe = b.node(); // south end of station E track
    let m_be = b.node(); // B-E midpoint
    let pf = b.node(); // north end of station F track
    let m_cf = b.node(); // C-F midpoint

    // Station tracks.
    let st_a_tr = b.track(a_end, pa, km(1.0), "A-1");
    let st_a_tr2 = b.track(a_end2, pa, km(1.0), "A-2");
    let st_d_tr = b.track(pd, d_end, km(1.0), "D-1");
    let st_d_tr2 = b.track(pd, d_end2, km(1.0), "D-2");
    let st_e_tr = b.track(pe, e_end, km(1.0), "E");
    let st_f_tr = b.track(pf, f_end, km(1.0), "F");
    let st_b_a = b.track(pb_w, pb_e, km(3.0), "B-loop-a");
    let st_b_b = b.track(pb_w, pb_e, km(3.0), "B-loop-b");
    let st_c_a = b.track(pc_w, pc_e, km(3.0), "C-loop-a");
    let st_c_b = b.track(pc_w, pc_e, km(3.0), "C-loop-b");

    // Links, pre-split at TTD borders.
    let l_ab1 = b.track(pa, m_ab, km(3.0), "A-B.1");
    let l_ab2 = b.track(m_ab, pb_w, km(3.0), "A-B.2");
    let l_bc1 = b.track(pb_e, m_bc1, km(4.0), "B-C.1");
    let l_bc2 = b.track(m_bc1, m_bc2, km(4.0), "B-C.2");
    let l_bc3 = b.track(m_bc2, pc_w, km(4.0), "B-C.3");
    let l_cd1 = b.track(pc_e, m_cd, km(3.0), "C-D.1");
    let l_cd2 = b.track(m_cd, pd, km(3.0), "C-D.2");
    let l_be1 = b.track(pb_e, m_be, km(2.0), "B-E.1");
    let l_be2 = b.track(m_be, pe, km(3.0), "B-E.2");
    let l_cf1 = b.track(pc_w, m_cf, km(2.0), "C-F.1");
    let l_cf2 = b.track(m_cf, pf, km(3.0), "C-F.2");

    for (name, track) in [
        ("TTD-Aa", st_a_tr),
        ("TTD-Ab", st_a_tr2),
        ("TTD-Da", st_d_tr),
        ("TTD-Db", st_d_tr2),
        ("TTD-E", st_e_tr),
        ("TTD-F", st_f_tr),
        ("TTD-Ba", st_b_a),
        ("TTD-Bb", st_b_b),
        ("TTD-Ca", st_c_a),
        ("TTD-Cb", st_c_b),
    ] {
        b.ttd(name, [track]);
    }
    // Long single-track links are each one coarse TTD — the very situation
    // ETCS Level 3 is meant to improve.
    b.ttd("TTD-AB", [l_ab1, l_ab2]);
    b.ttd("TTD-BC", [l_bc1, l_bc2, l_bc3]);
    b.ttd("TTD-CD", [l_cd1, l_cd2]);
    b.ttd("TTD-BE", [l_be1, l_be2]);
    b.ttd("TTD-CF", [l_cf1, l_cf2]);

    let st_a = b.station("A", [st_a_tr, st_a_tr2], true);
    let _st_b = b.station("B", [st_b_a, st_b_b], false);
    let _st_c = b.station("C", [st_c_a, st_c_b], false);
    let st_d = b.station("D", [st_d_tr, st_d_tr2], true);
    let _st_e = b.station("E", [st_e_tr], true);
    let st_f = b.station("F", [st_f_tr], true);

    let network = b.build().expect("complex layout topology is valid");

    let min = Seconds::from_minutes;
    // 80 km/h regionals advance 4 segments per 3-minute step.
    let regional = |name: &str| Train::new(name, Meters(250), KmPerHour(80));

    let schedule = Schedule::new(vec![
        TrainRun::new(regional("East 1"), st_a, st_d, min(0), Some(min(54))),
        TrainRun::new(regional("West 1"), st_d, st_a, min(0), Some(min(54))),
        TrainRun::new(regional("East 2"), st_a, st_d, min(3), Some(min(54))),
        TrainRun::new(regional("West 2"), st_d, st_a, min(3), Some(min(54))),
        TrainRun::new(regional("East 3"), st_a, st_d, min(6), Some(min(54))),
        TrainRun::new(regional("West 3"), st_d, st_f, min(6), Some(min(54))),
    ]);

    Scenario {
        name: "Complex Layout".into(),
        network,
        schedule,
        r_s: km(1.0),
        r_t: Seconds::from_minutes(3),
        horizon: Seconds::from_minutes(60),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::VssLayout;

    #[test]
    fn shape_matches_fig_4b() {
        let s = complex_layout();
        assert_eq!(s.network.stations().len(), 6);
        assert_eq!(s.network.ttds().len(), 15);
        s.validate().expect("schedule is valid");
    }

    #[test]
    fn discretises() {
        let s = complex_layout();
        let d = s.discretise().expect("discretises");
        // 6 boundary tracks (1 km) + 4 loop tracks (3 km) + 34 km of links.
        assert_eq!(d.num_edges(), 6 + 12 + 34);
        assert_eq!(VssLayout::pure_ttd().section_count(&d), 15);
    }

    #[test]
    fn branch_routes_share_the_corridor() {
        let s = complex_layout();
        let d = s.discretise().expect("discretises");
        let e = s.network.station_by_name("E").expect("exists");
        let f = s.network.station_by_name("F").expect("exists");
        let from = d.station_edges(e)[0];
        let to = d.station_edges(f)[0];
        assert!(d.edge_distances(from)[to.index()].is_some());
    }

    #[test]
    fn horizon_and_steps() {
        let s = complex_layout();
        assert_eq!(s.t_max(), 21);
    }
}
