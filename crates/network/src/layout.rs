//! VSS layouts: which candidate nodes carry a virtual-subsection border.
//!
//! A layout assigns the paper's `border_v` variables. TTD borders are always
//! borders (they carry physical axle counters); a [`VssLayout`] records the
//! *additional* virtual borders placed at interior nodes.

use std::collections::BTreeSet;
use std::fmt;

use crate::discrete::{DiscreteNet, EdgeId, NodeId, NodeKind};

/// A placement of VSS borders on a [`DiscreteNet`].
///
/// # Examples
///
/// ```
/// use etcs_network::{NetworkBuilder, DiscreteNet, VssLayout, Meters};
/// let mut b = NetworkBuilder::new();
/// let a = b.node();
/// let c = b.node();
/// let t = b.track(a, c, Meters::from_km(1.5), "main");
/// b.ttd("TTD1", [t]);
/// let net = b.build()?;
/// let disc = DiscreteNet::new(&net, Meters::from_km(0.5))?;
/// // Pure TTD operation: one section; full VSS: one per segment.
/// assert_eq!(VssLayout::pure_ttd().section_count(&disc), 1);
/// assert_eq!(VssLayout::full(&disc).section_count(&disc), 3);
/// # Ok::<(), etcs_network::NetworkError>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VssLayout {
    borders: BTreeSet<NodeId>,
}

impl VssLayout {
    /// The pure-TTD layout: no virtual borders at all.
    pub fn pure_ttd() -> Self {
        VssLayout::default()
    }

    /// The finest layout: a border at every candidate node, i.e. every
    /// segment is its own VSS (the paper's "trivial" generation answer).
    pub fn full(net: &DiscreteNet) -> Self {
        VssLayout {
            borders: net.border_candidates().into_iter().collect(),
        }
    }

    /// A layout with the given virtual borders.
    pub fn with_borders(borders: impl IntoIterator<Item = NodeId>) -> Self {
        VssLayout {
            borders: borders.into_iter().collect(),
        }
    }

    /// The virtual borders (not counting TTD borders).
    pub fn borders(&self) -> &BTreeSet<NodeId> {
        &self.borders
    }

    /// Number of virtual borders.
    pub fn num_borders(&self) -> usize {
        self.borders.len()
    }

    /// Adds a virtual border; returns `true` if it was new.
    pub fn add_border(&mut self, n: NodeId) -> bool {
        self.borders.insert(n)
    }

    /// Removes a virtual border; returns `true` if it was present.
    pub fn remove_border(&mut self, n: NodeId) -> bool {
        self.borders.remove(&n)
    }

    /// `true` when node `n` separates two sections under this layout
    /// (either a virtual border or a TTD border).
    pub fn is_border(&self, net: &DiscreteNet, n: NodeId) -> bool {
        self.borders.contains(&n) || net.node_kind(n) == NodeKind::TtdBorder
    }

    /// Groups the edges into VSS sections: maximal edge sets connected
    /// through non-border nodes.
    pub fn sections(&self, net: &DiscreteNet) -> Vec<Vec<EdgeId>> {
        // Union-find over edges; merge across every non-border interior node.
        let mut parent: Vec<usize> = (0..net.num_edges()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for ni in 0..net.num_nodes() {
            let n = NodeId::from_index(ni);
            if self.is_border(net, n) || net.node_kind(n) == NodeKind::Boundary {
                continue;
            }
            let incident = net.edges_at(n);
            for w in incident.windows(2) {
                let a = find(&mut parent, w[0].index());
                let b = find(&mut parent, w[1].index());
                parent[a] = b;
            }
        }
        let mut groups: std::collections::BTreeMap<usize, Vec<EdgeId>> = Default::default();
        for e in 0..net.num_edges() {
            let root = find(&mut parent, e);
            groups.entry(root).or_default().push(EdgeId::from_index(e));
        }
        groups.into_values().collect()
    }

    /// Number of VSS sections — the paper's "TTD/VSS" column of Table I.
    pub fn section_count(&self, net: &DiscreteNet) -> usize {
        self.sections(net).len()
    }

    /// The section containing edge `e`.
    pub fn section_of(&self, net: &DiscreteNet, e: EdgeId) -> Vec<EdgeId> {
        self.sections(net)
            .into_iter()
            .find(|s| s.contains(&e))
            .expect("every edge is in exactly one section")
    }
}

impl fmt::Display for VssLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VssLayout({} virtual borders:", self.borders.len())?;
        for b in &self.borders {
            write!(f, " v{}", b.0)?;
        }
        write!(f, ")")
    }
}

impl FromIterator<NodeId> for VssLayout {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        VssLayout::with_borders(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NetworkBuilder;
    use crate::units::Meters;

    fn km(x: f64) -> Meters {
        Meters::from_km(x)
    }

    /// Two TTDs in a row: A --(2 seg)-- M --(2 seg)-- B.
    fn two_ttds() -> DiscreteNet {
        let mut b = NetworkBuilder::new();
        let a = b.node();
        let m = b.node();
        let c = b.node();
        let t1 = b.track(a, m, km(1.0), "t1");
        let t2 = b.track(m, c, km(1.0), "t2");
        b.ttd("TTD1", [t1]);
        b.ttd("TTD2", [t2]);
        let net = b.build().expect("valid");
        DiscreteNet::new(&net, km(0.5)).expect("discretises")
    }

    #[test]
    fn pure_ttd_sections_equal_ttds() {
        let d = two_ttds();
        assert_eq!(VssLayout::pure_ttd().section_count(&d), 2);
    }

    #[test]
    fn full_layout_sections_equal_edges() {
        let d = two_ttds();
        assert_eq!(VssLayout::full(&d).section_count(&d), d.num_edges());
    }

    #[test]
    fn single_border_splits_one_ttd() {
        let d = two_ttds();
        let candidates = d.border_candidates();
        let mut layout = VssLayout::pure_ttd();
        layout.add_border(candidates[0]);
        assert_eq!(layout.section_count(&d), 3);
    }

    #[test]
    fn adding_same_border_twice_is_idempotent() {
        let d = two_ttds();
        let candidates = d.border_candidates();
        let mut layout = VssLayout::pure_ttd();
        assert!(layout.add_border(candidates[0]));
        assert!(!layout.add_border(candidates[0]));
        assert_eq!(layout.num_borders(), 1);
    }

    #[test]
    fn ttd_borders_always_separate() {
        let d = two_ttds();
        let forced = d.forced_borders();
        assert_eq!(forced.len(), 1);
        assert!(VssLayout::pure_ttd().is_border(&d, forced[0]));
    }

    #[test]
    fn sections_partition_edges() {
        let d = two_ttds();
        for layout in [
            VssLayout::pure_ttd(),
            VssLayout::full(&d),
            VssLayout::with_borders([d.border_candidates()[1]]),
        ] {
            let sections = layout.sections(&d);
            let mut all: Vec<EdgeId> = sections.into_iter().flatten().collect();
            all.sort();
            let expected: Vec<EdgeId> = (0..d.num_edges()).map(EdgeId::from_index).collect();
            assert_eq!(all, expected);
        }
    }

    #[test]
    fn section_of_finds_the_right_group() {
        let d = two_ttds();
        let layout = VssLayout::pure_ttd();
        let sec = layout.section_of(&d, EdgeId(0));
        assert!(sec.contains(&EdgeId(0)));
        assert!(sec.contains(&EdgeId(1)));
        assert!(!sec.contains(&EdgeId(2)));
    }

    #[test]
    fn display_lists_borders() {
        let layout = VssLayout::with_borders([NodeId(3), NodeId(1)]);
        let text = format!("{layout}");
        assert!(text.contains("v1"));
        assert!(text.contains("v3"));
        assert!(text.contains("2 virtual borders"));
    }

    #[test]
    fn from_iterator_collects() {
        let layout: VssLayout = [NodeId(5)].into_iter().collect();
        assert_eq!(layout.num_borders(), 1);
    }
}
