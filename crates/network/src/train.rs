//! Trains and their physical parameters.

use std::fmt;

use crate::topology::id_type;
use crate::units::{KmPerHour, Meters, Seconds};

id_type!(
    /// A train in the considered scenario.
    TrainId
);

/// A train with the parameters the paper's formulation needs: a length
/// `l_tr` and a maximum speed `s_tr` (Section III-A).
///
/// # Examples
///
/// ```
/// use etcs_network::{Train, Meters, KmPerHour, Seconds};
/// let t = Train::new("ICE 1", Meters(400), KmPerHour(180));
/// // At r_s = 500 m it occupies ceil(400/500) = 1 segment …
/// assert_eq!(t.discrete_length(Meters(500)), 1);
/// // … and covers 3 segments per 30-second step.
/// assert_eq!(t.discrete_speed(Meters(500), Seconds(30)), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Train {
    /// Human-readable name (unique within a scenario).
    pub name: String,
    /// Physical train length.
    pub length: Meters,
    /// Maximum speed.
    pub max_speed: KmPerHour,
}

impl Train {
    /// Creates a train.
    pub fn new(name: impl Into<String>, length: Meters, max_speed: KmPerHour) -> Self {
        Train {
            name: name.into(),
            length,
            max_speed,
        }
    }

    /// Discrete length `l*_tr = ceil(l_tr / r_s)` — the number of segments
    /// the train occupies (at least 1).
    ///
    /// # Panics
    ///
    /// Panics if `r_s` is zero.
    pub fn discrete_length(&self, r_s: Meters) -> u64 {
        self.length.div_ceil(r_s).max(1)
    }

    /// Discrete speed — the number of segments the train may advance per
    /// time step, `floor(s_tr · r_t / r_s)`, clamped to at least 1 so that
    /// every train can make progress on any grid.
    ///
    /// # Panics
    ///
    /// Panics if `r_s` is zero.
    pub fn discrete_speed(&self, r_s: Meters, r_t: Seconds) -> u64 {
        self.max_speed.distance_in(r_t).div_floor(r_s).max(1)
    }
}

impl fmt::Display for Train {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}, {})", self.name, self.length, self.max_speed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discrete_length_rounds_up() {
        let t = Train::new("t", Meters(700), KmPerHour(120));
        assert_eq!(t.discrete_length(Meters(500)), 2);
        assert_eq!(t.discrete_length(Meters(700)), 1);
        assert_eq!(t.discrete_length(Meters(1000)), 1);
    }

    #[test]
    fn discrete_length_is_at_least_one() {
        let t = Train::new("handcar", Meters(10), KmPerHour(20));
        assert_eq!(t.discrete_length(Meters(5000)), 1);
    }

    #[test]
    fn discrete_speed_floors() {
        let t = Train::new("t", Meters(100), KmPerHour(120));
        // 120 km/h * 60 s = 2 km = 4 segments of 500 m.
        assert_eq!(t.discrete_speed(Meters(500), Seconds(60)), 4);
        // 120 km/h * 30 s = 1 km = 2 segments.
        assert_eq!(t.discrete_speed(Meters(500), Seconds(30)), 2);
        // 1.5 km per step at 1 km segments floors to 1.
        let fast = Train::new("f", Meters(100), KmPerHour(90));
        assert_eq!(fast.discrete_speed(Meters(1000), Seconds(60)), 1);
    }

    #[test]
    fn discrete_speed_is_at_least_one() {
        let slow = Train::new("s", Meters(100), KmPerHour(10));
        assert_eq!(slow.discrete_speed(Meters(5000), Seconds(60)), 1);
    }

    #[test]
    fn display_mentions_name() {
        let t = Train::new("RE 7", Meters(250), KmPerHour(160));
        assert!(format!("{t}").contains("RE 7"));
    }
}
