//! Train schedules: who runs where, and when.
//!
//! A [`Schedule`] is the Fig. 1b table of the paper: per train an origin,
//! a destination, a departure time and (for the verification and generation
//! tasks) a required arrival time. The optimisation task drops the arrival
//! times and lets the solver find the earliest ones.

use crate::error::NetworkError;
use crate::topology::{RailwayNetwork, StationId};
use crate::train::{Train, TrainId};
use crate::units::Seconds;

/// One scheduled train movement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrainRun {
    /// The train being moved.
    pub train: Train,
    /// Origin station (must be a boundary station: the train enters the
    /// modelled network here).
    pub origin: StationId,
    /// Destination station.
    pub destination: StationId,
    /// Departure time from the origin.
    pub departure: Seconds,
    /// Required arrival time at the destination; `None` leaves the arrival
    /// free (used by the optimisation task).
    pub arrival: Option<Seconds>,
    /// Intermediate stops the train must make, in order, each with an
    /// optional deadline.
    pub stops: Vec<(StationId, Option<Seconds>)>,
}

impl TrainRun {
    /// Creates a run without intermediate stops.
    pub fn new(
        train: Train,
        origin: StationId,
        destination: StationId,
        departure: Seconds,
        arrival: Option<Seconds>,
    ) -> Self {
        TrainRun {
            train,
            origin,
            destination,
            departure,
            arrival,
            stops: Vec::new(),
        }
    }

    /// Adds an intermediate stop.
    pub fn with_stop(mut self, station: StationId, deadline: Option<Seconds>) -> Self {
        self.stops.push((station, deadline));
        self
    }
}

/// A complete scenario schedule.
///
/// # Examples
///
/// ```
/// use etcs_network::{Schedule, TrainRun, Train, Meters, KmPerHour, Seconds, NetworkBuilder};
/// let mut b = NetworkBuilder::new();
/// let n0 = b.node();
/// let n1 = b.node();
/// let t = b.track(n0, n1, Meters::from_km(2.0), "main");
/// b.ttd("TTD1", [t]);
/// let a = b.station("A", [t], true);
/// let net = b.build()?;
/// let schedule = Schedule::new(vec![TrainRun::new(
///     Train::new("T1", Meters(400), KmPerHour(180)),
///     a,
///     a,
///     Seconds::ZERO,
///     None,
/// )]);
/// schedule.validate(&net)?;
/// # Ok::<(), etcs_network::NetworkError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Schedule {
    runs: Vec<TrainRun>,
}

impl Schedule {
    /// Creates a schedule from the given runs.
    pub fn new(runs: Vec<TrainRun>) -> Self {
        Schedule { runs }
    }

    /// The scheduled runs, indexable by [`TrainId`].
    pub fn runs(&self) -> &[TrainRun] {
        &self.runs
    }

    /// Number of trains.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// `true` when no trains are scheduled.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The run of a particular train.
    pub fn run(&self, train: TrainId) -> &TrainRun {
        &self.runs[train.index()]
    }

    /// Iterates `(TrainId, &TrainRun)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TrainId, &TrainRun)> {
        self.runs
            .iter()
            .enumerate()
            .map(|(i, r)| (TrainId::from_index(i), r))
    }

    /// The latest arrival deadline, if every run has one.
    pub fn latest_arrival(&self) -> Option<Seconds> {
        self.runs
            .iter()
            .map(|r| r.arrival)
            .collect::<Option<Vec<_>>>()?
            .into_iter()
            .max()
    }

    /// Drops all arrival deadlines (turning a verification schedule into an
    /// optimisation agenda, Section III-C of the paper).
    pub fn without_arrivals(&self) -> Schedule {
        Schedule {
            runs: self
                .runs
                .iter()
                .map(|r| TrainRun {
                    arrival: None,
                    stops: r.stops.iter().map(|&(s, _)| (s, None)).collect(),
                    ..r.clone()
                })
                .collect(),
        }
    }

    /// Checks that all station references exist in `net`, that origins are
    /// boundary stations, and that arrivals are not before departures.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::UnknownReference`] describing the first
    /// offending run.
    pub fn validate(&self, net: &RailwayNetwork) -> Result<(), NetworkError> {
        for run in &self.runs {
            let stations = [run.origin, run.destination]
                .into_iter()
                .chain(run.stops.iter().map(|&(s, _)| s));
            for s in stations {
                if s.index() >= net.stations().len() {
                    return Err(NetworkError::UnknownReference {
                        what: format!("station {} in run of train `{}`", s, run.train.name),
                    });
                }
            }
            if !net.stations()[run.origin.index()].boundary {
                return Err(NetworkError::UnknownReference {
                    what: format!(
                        "origin `{}` of train `{}` is not a boundary station",
                        net.stations()[run.origin.index()].name,
                        run.train.name
                    ),
                });
            }
            if let Some(arr) = run.arrival {
                if arr < run.departure {
                    return Err(NetworkError::UnknownReference {
                        what: format!(
                            "train `{}` arrives ({arr}) before departing ({})",
                            run.train.name, run.departure
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{KmPerHour, Meters};
    use crate::NetworkBuilder;

    fn toy_net() -> (RailwayNetwork, StationId, StationId) {
        let mut b = NetworkBuilder::new();
        let n0 = b.node();
        let n1 = b.node();
        let n2 = b.node();
        let t1 = b.track(n0, n1, Meters::from_km(1.0), "t1");
        let t2 = b.track(n1, n2, Meters::from_km(1.0), "t2");
        b.ttd("TTD1", [t1, t2]);
        let a = b.station("A", [t1], true);
        let c = b.station("C", [t2], false);
        (b.build().expect("valid"), a, c)
    }

    fn train() -> Train {
        Train::new("T", Meters(200), KmPerHour(120))
    }

    #[test]
    fn validate_accepts_good_schedule() {
        let (net, a, c) = toy_net();
        let s = Schedule::new(vec![TrainRun::new(
            train(),
            a,
            c,
            Seconds::ZERO,
            Some(Seconds(120)),
        )]);
        assert!(s.validate(&net).is_ok());
    }

    #[test]
    fn validate_rejects_interior_origin() {
        let (net, a, c) = toy_net();
        let s = Schedule::new(vec![TrainRun::new(train(), c, a, Seconds::ZERO, None)]);
        let err = s.validate(&net).expect_err("interior origin");
        assert!(format!("{err}").contains("boundary"));
    }

    #[test]
    fn validate_rejects_unknown_station() {
        let (net, a, _) = toy_net();
        let s = Schedule::new(vec![TrainRun::new(
            train(),
            a,
            StationId(42),
            Seconds::ZERO,
            None,
        )]);
        assert!(s.validate(&net).is_err());
    }

    #[test]
    fn validate_rejects_arrival_before_departure() {
        let (net, a, c) = toy_net();
        let s = Schedule::new(vec![TrainRun::new(
            train(),
            a,
            c,
            Seconds(300),
            Some(Seconds(60)),
        )]);
        assert!(s.validate(&net).is_err());
    }

    #[test]
    fn without_arrivals_clears_deadlines() {
        let (_, a, c) = toy_net();
        let s = Schedule::new(vec![TrainRun::new(
            train(),
            a,
            c,
            Seconds::ZERO,
            Some(Seconds(120)),
        )
        .with_stop(c, Some(Seconds(60)))]);
        let open = s.without_arrivals();
        assert_eq!(open.runs()[0].arrival, None);
        assert_eq!(open.runs()[0].stops[0].1, None);
        assert_eq!(open.runs()[0].departure, Seconds::ZERO);
    }

    #[test]
    fn latest_arrival_requires_all_deadlines() {
        let (_, a, c) = toy_net();
        let with = Schedule::new(vec![
            TrainRun::new(train(), a, c, Seconds::ZERO, Some(Seconds(120))),
            TrainRun::new(train(), a, c, Seconds::ZERO, Some(Seconds(300))),
        ]);
        assert_eq!(with.latest_arrival(), Some(Seconds(300)));
        let without = with.without_arrivals();
        assert_eq!(without.latest_arrival(), None);
    }

    #[test]
    fn iter_yields_dense_ids() {
        let (_, a, c) = toy_net();
        let s = Schedule::new(vec![
            TrainRun::new(train(), a, c, Seconds::ZERO, None),
            TrainRun::new(train(), a, c, Seconds(60), None),
        ]);
        let ids: Vec<usize> = s.iter().map(|(id, _)| id.index()).collect();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }
}
