//! Scenarios: a network, a schedule and the discretisation resolutions,
//! bundled as one case study (the unit of Table I in the paper).

use crate::discrete::DiscreteNet;
use crate::error::NetworkError;
use crate::schedule::Schedule;
use crate::topology::RailwayNetwork;
use crate::units::{Meters, Seconds};

/// A complete case study: network + schedule + resolutions + horizon.
///
/// The number of time steps is `t_max = horizon / r_t + 1`, i.e. the grid
/// `t_0 … t_{horizon/r_t}` covers the horizon *inclusively* so a deadline at
/// exactly the horizon is representable.
///
/// # Examples
///
/// ```
/// use etcs_network::fixtures;
/// let scenario = fixtures::running_example();
/// assert_eq!(scenario.t_max(), 11); // 5 min at 30 s per step, inclusive
/// assert_eq!(scenario.schedule.len(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Case-study name (used by the benchmark harness).
    pub name: String,
    /// The macroscopic network.
    pub network: RailwayNetwork,
    /// The train schedule.
    pub schedule: Schedule,
    /// Spatial resolution `r_s`.
    pub r_s: Meters,
    /// Temporal resolution `r_t`.
    pub r_t: Seconds,
    /// Scenario horizon (the real time the scenario spans).
    pub horizon: Seconds,
}

impl Scenario {
    /// Number of discrete time steps `t_max`.
    ///
    /// # Panics
    ///
    /// Panics if `r_t` is zero.
    pub fn t_max(&self) -> usize {
        assert!(
            self.r_t.as_u64() > 0,
            "temporal resolution must be positive"
        );
        (self.horizon.as_u64() / self.r_t.as_u64()) as usize + 1
    }

    /// Converts a wall-clock time to its time-step index, clamped into the
    /// grid (a deadline beyond the horizon becomes the last step).
    pub fn step_of(&self, time: Seconds) -> usize {
        let step = (time.as_u64() + self.r_t.as_u64() / 2) / self.r_t.as_u64();
        (step as usize).min(self.t_max() - 1)
    }

    /// The wall-clock time of a step.
    pub fn time_of(&self, step: usize) -> Seconds {
        Seconds(self.r_t.as_u64() * step as u64)
    }

    /// Discretises the network at this scenario's spatial resolution.
    ///
    /// # Errors
    ///
    /// Propagates [`NetworkError`] from [`DiscreteNet::new`].
    pub fn discretise(&self) -> Result<DiscreteNet, NetworkError> {
        DiscreteNet::new(&self.network, self.r_s)
    }

    /// Validates the schedule against the network.
    ///
    /// # Errors
    ///
    /// Propagates [`NetworkError`] from [`Schedule::validate`].
    pub fn validate(&self) -> Result<(), NetworkError> {
        self.schedule.validate(&self.network)
    }

    /// Returns a copy with all arrival deadlines dropped (the optimisation
    /// task's input).
    pub fn without_arrivals(&self) -> Scenario {
        Scenario {
            schedule: self.schedule.without_arrivals(),
            ..self.clone()
        }
    }

    /// Returns a copy where every run without an arrival deadline is given
    /// one at the scenario horizon.
    ///
    /// The synthetic generators emit open schedules (no deadlines); the
    /// verification and generation tasks need one per train to be
    /// well-defined, and "arrive by the end of the scenario" is the
    /// weakest deadline the time grid can express. Runs that already carry
    /// a deadline keep it.
    pub fn with_horizon_arrivals(&self) -> Scenario {
        let runs = self
            .schedule
            .runs()
            .iter()
            .map(|r| crate::TrainRun {
                arrival: r.arrival.or(Some(self.horizon)),
                ..r.clone()
            })
            .collect();
        Scenario {
            schedule: Schedule::new(runs),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn step_conversion_roundtrips() {
        let s = fixtures::running_example();
        assert_eq!(s.step_of(Seconds(0)), 0);
        assert_eq!(s.step_of(Seconds(30)), 1);
        assert_eq!(s.step_of(Seconds(270)), 9);
        assert_eq!(s.time_of(9), Seconds(270));
    }

    #[test]
    fn step_of_clamps_beyond_horizon() {
        let s = fixtures::running_example();
        assert_eq!(s.step_of(Seconds(10_000)), s.t_max() - 1);
    }

    #[test]
    fn step_of_rounds_to_nearest() {
        let s = fixtures::running_example();
        // 44 s is closer to step 1 (30 s) than step 2 (60 s).
        assert_eq!(s.step_of(Seconds(44)), 1);
        assert_eq!(s.step_of(Seconds(46)), 2);
    }

    #[test]
    fn without_arrivals_keeps_everything_else() {
        let s = fixtures::running_example();
        let open = s.without_arrivals();
        assert_eq!(open.t_max(), s.t_max());
        assert_eq!(open.schedule.len(), s.schedule.len());
        assert!(open.schedule.runs().iter().all(|r| r.arrival.is_none()));
    }

    #[test]
    fn fixture_scenarios_validate_and_discretise() {
        for s in [
            fixtures::running_example(),
            fixtures::simple_layout(),
            fixtures::complex_layout(),
        ] {
            s.validate().unwrap_or_else(|e| panic!("{}: {e}", s.name));
            s.discretise().unwrap_or_else(|e| panic!("{}: {e}", s.name));
        }
    }
}
