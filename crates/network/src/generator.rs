//! Parametric scenario synthesis: deterministic single-track lines with
//! crossing loops and opposing traffic ([`single_track_line`]), branching
//! topologies where `arms` arms merge into a shared trunk
//! ([`branched_line`]), ladder/grid meshes of parallel lines joined by
//! crossover rungs ([`grid_ladder`]), and station throats fanning out into
//! parallel sidings ([`station_throat`]).
//!
//! Used by the property-based test suites (random-but-reproducible
//! topologies), the scaling benchmarks and the `etcs-corpus` scenario
//! corpus; also a convenient starting point for custom experiments.

use crate::scenario::Scenario;
use crate::schedule::{Schedule, TrainRun};
use crate::topology::NetworkBuilder;
use crate::train::Train;
use crate::units::{KmPerHour, Meters, Seconds};

/// Parameters for [`single_track_line`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LineConfig {
    /// Number of stations along the line (≥ 2); the termini are two-track
    /// boundary stations.
    pub stations: usize,
    /// Every `loop_every`-th interior station is a two-track crossing loop
    /// (0 = no loops).
    pub loop_every: usize,
    /// Inter-station link length in metres (drawn deterministically in
    /// `link_m ..= 2·link_m`, quantised to `r_s`).
    pub link_m: u64,
    /// Trains per direction.
    pub trains_per_direction: usize,
    /// Departure headway between same-direction trains.
    pub headway: Seconds,
    /// Train speed.
    pub speed: KmPerHour,
    /// Train length in metres.
    pub train_m: u64,
    /// Spatial resolution.
    pub r_s: Meters,
    /// Temporal resolution.
    pub r_t: Seconds,
    /// Scenario horizon.
    pub horizon: Seconds,
    /// Seed for the deterministic length stream.
    pub seed: u64,
}

impl Default for LineConfig {
    fn default() -> Self {
        LineConfig {
            stations: 4,
            loop_every: 2,
            link_m: 1000,
            trains_per_direction: 1,
            headway: Seconds::from_minutes(2),
            speed: KmPerHour(120),
            train_m: 200,
            r_s: Meters(500),
            r_t: Seconds(30),
            horizon: Seconds::from_minutes(15),
            seed: 1,
        }
    }
}

fn xorshift(seed: &mut u64) -> u64 {
    *seed ^= *seed << 13;
    *seed ^= *seed >> 7;
    *seed ^= *seed << 17;
    *seed
}

/// Synthesises a single-track line scenario from `cfg`.
///
/// The network is a chain of `cfg.stations` stations; the two termini are
/// two-track boundary stations (so convoys can depart at tight headways),
/// interior stations are plain platforms or, every `loop_every`-th, a
/// two-track crossing loop. Trains run end to end in both directions
/// without arrival deadlines (add your own or run the optimisation task).
///
/// # Panics
///
/// Panics if `cfg.stations < 2`.
///
/// # Examples
///
/// ```
/// use etcs_network::generator::{single_track_line, LineConfig};
/// let scenario = single_track_line(&LineConfig::default());
/// assert_eq!(scenario.network.stations().len(), 4);
/// scenario.validate()?;
/// scenario.discretise()?;
/// # Ok::<(), etcs_network::NetworkError>(())
/// ```
pub fn single_track_line(cfg: &LineConfig) -> Scenario {
    assert!(cfg.stations >= 2, "a line needs at least two stations");
    let mut seed = cfg.seed | 1;
    let quantum = cfg.r_s.as_u64().max(1);
    let mut draw_link = || {
        let raw = cfg.link_m + xorshift(&mut seed) % (cfg.link_m + 1);
        Meters((raw.div_ceil(quantum)).max(1) * quantum)
    };
    let station_track_len = Meters(quantum);

    let mut b = NetworkBuilder::new();
    let mut ttd = 0usize;
    let mut station_ids = Vec::new();

    // First terminus: two boundary tracks joining at a point.
    let t_end_a = b.node();
    let t_end_a2 = b.node();
    let mut prev = b.node();
    let first_a = b.track(t_end_a, prev, station_track_len, "S0-a");
    let first_b = b.track(t_end_a2, prev, station_track_len, "S0-b");
    ttd += 1;
    b.ttd(format!("TTD{ttd}"), [first_a]);
    ttd += 1;
    b.ttd(format!("TTD{ttd}"), [first_b]);
    station_ids.push(b.station("S0", [first_a, first_b], true));

    for i in 1..cfg.stations {
        let link_len = draw_link();
        let is_last = i == cfg.stations - 1;
        let is_loop = !is_last && cfg.loop_every != 0 && i % cfg.loop_every == 0;
        let west = b.node();
        let link = b.track(prev, west, link_len, format!("link-{i}"));
        ttd += 1;
        b.ttd(format!("TTD{ttd}"), [link]);
        if is_last {
            // Second terminus: two boundary tracks.
            let end1 = b.node();
            let end2 = b.node();
            let ta = b.track(west, end1, station_track_len, format!("S{i}-a"));
            let tb = b.track(west, end2, station_track_len, format!("S{i}-b"));
            ttd += 1;
            b.ttd(format!("TTD{ttd}"), [ta]);
            ttd += 1;
            b.ttd(format!("TTD{ttd}"), [tb]);
            station_ids.push(b.station(format!("S{i}"), [ta, tb], true));
        } else if is_loop {
            let east = b.node();
            let loop_len = Meters(quantum * 2);
            let la = b.track(west, east, loop_len, format!("S{i}-a"));
            let lb = b.track(west, east, loop_len, format!("S{i}-b"));
            ttd += 1;
            b.ttd(format!("TTD{ttd}"), [la]);
            ttd += 1;
            b.ttd(format!("TTD{ttd}"), [lb]);
            station_ids.push(b.station(format!("S{i}"), [la, lb], false));
            prev = east;
            continue;
        } else {
            let east = b.node();
            let platform = b.track(west, east, station_track_len, format!("S{i}-pl"));
            ttd += 1;
            b.ttd(format!("TTD{ttd}"), [platform]);
            station_ids.push(b.station(format!("S{i}"), [platform], false));
            prev = east;
            continue;
        }
    }

    let network = b.build().expect("generated line topology is valid");
    let first = station_ids[0];
    let last = *station_ids.last().expect("at least two stations");

    let mut runs = Vec::new();
    for k in 0..cfg.trains_per_direction {
        let dep = Seconds(cfg.headway.as_u64() * k as u64);
        runs.push(TrainRun::new(
            Train::new(format!("East {k}"), Meters(cfg.train_m), cfg.speed),
            first,
            last,
            dep,
            None,
        ));
        runs.push(TrainRun::new(
            Train::new(format!("West {k}"), Meters(cfg.train_m), cfg.speed),
            last,
            first,
            dep,
            None,
        ));
    }

    Scenario {
        name: format!(
            "line-{}st-{}tr-seed{}",
            cfg.stations, cfg.trains_per_direction, cfg.seed
        ),
        network,
        schedule: Schedule::new(runs),
        r_s: cfg.r_s,
        r_t: cfg.r_t,
        horizon: cfg.horizon,
    }
}

/// Parameters for [`branched_line`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BranchConfig {
    /// Arms merging into the shared trunk (2 ≤ `arms` ≤ 19; 2 is the
    /// classic Y-junction, higher values make a star-shaped mesh whose
    /// junction node has degree `arms + 1`). Arm stations are prefixed
    /// `A`, `B`, `C`, … — `T` is reserved for the trunk.
    pub arms: usize,
    /// Interior (plain-platform) stations on each arm between the arm's
    /// boundary terminus and the junction.
    pub arm_stations: usize,
    /// Interior stations on the shared trunk between the junction and the
    /// trunk's boundary terminus.
    pub trunk_stations: usize,
    /// Inter-station link length in metres (drawn deterministically in
    /// `link_m ..= 2·link_m`, quantised to `r_s`).
    pub link_m: u64,
    /// Trains departing from each arm terminus towards the trunk terminus.
    pub trains_per_arm: usize,
    /// Departure headway between same-arm trains.
    pub headway: Seconds,
    /// Train speed.
    pub speed: KmPerHour,
    /// Train length in metres.
    pub train_m: u64,
    /// Spatial resolution.
    pub r_s: Meters,
    /// Temporal resolution.
    pub r_t: Seconds,
    /// Scenario horizon.
    pub horizon: Seconds,
    /// Seed for the deterministic length stream.
    pub seed: u64,
}

impl Default for BranchConfig {
    fn default() -> Self {
        BranchConfig {
            arms: 2,
            arm_stations: 1,
            trunk_stations: 1,
            link_m: 1000,
            trains_per_arm: 1,
            headway: Seconds::from_minutes(2),
            speed: KmPerHour(120),
            train_m: 200,
            r_s: Meters(500),
            r_t: Seconds(30),
            horizon: Seconds::from_minutes(15),
            seed: 1,
        }
    }
}

/// Synthesises a branching scenario: `cfg.arms` single-track arms (`A`,
/// `B`, `C`, …), each starting at a two-track boundary terminus, merge at
/// a junction node into one shared single-track trunk ending in a
/// two-track boundary terminus (`T`).
///
/// All trains run arm → trunk terminus, so every schedule contends for the
/// junction — the non-linear case the differential encoder/validator tests
/// need: occupation chains across a degree-`arms + 1` node, merge
/// ordering, and VSS borders whose cut sits on the trunk. With `arms > 2`
/// this is the "branched mesh" corpus family: a star of arms funnelling
/// into one trunk.
///
/// # Panics
///
/// Panics if `cfg.trains_per_arm == 0` (an empty schedule makes the
/// scenario trivially feasible and tests nothing) or if `cfg.arms` is
/// outside `2..=26` (arm prefixes are single letters).
///
/// # Examples
///
/// ```
/// use etcs_network::generator::{branched_line, BranchConfig};
/// let scenario = branched_line(&BranchConfig::default());
/// // Termini A0/B0/T0 plus one interior station per arm and trunk.
/// assert_eq!(scenario.network.stations().len(), 6);
/// scenario.validate()?;
/// scenario.discretise()?;
/// # Ok::<(), etcs_network::NetworkError>(())
/// ```
pub fn branched_line(cfg: &BranchConfig) -> Scenario {
    assert!(cfg.trains_per_arm >= 1, "at least one train per arm");
    assert!(
        (2..=19).contains(&cfg.arms),
        "arms must be in 2..=19 (single-letter prefixes A..S; T is the trunk)"
    );
    let mut seed = cfg.seed | 1;
    let quantum = cfg.r_s.as_u64().max(1);
    let mut draw_link = || {
        let raw = cfg.link_m + xorshift(&mut seed) % (cfg.link_m + 1);
        Meters((raw.div_ceil(quantum)).max(1) * quantum)
    };
    let station_track_len = Meters(quantum);

    let mut b = NetworkBuilder::new();
    let mut ttd = 0usize;
    let mut new_ttd = |b: &mut NetworkBuilder, track| {
        ttd += 1;
        b.ttd(format!("TTD{ttd}"), [track]);
    };

    // One arm: boundary terminus, `arm_stations` interior platforms, then a
    // final link into the shared junction node. Returns the terminus id.
    let junction = b.node();
    let arm = |b: &mut NetworkBuilder,
               new_ttd: &mut dyn FnMut(&mut NetworkBuilder, crate::TrackId),
               draw_link: &mut dyn FnMut() -> Meters,
               prefix: &str| {
        let end1 = b.node();
        let end2 = b.node();
        let mut prev = b.node();
        let ta = b.track(end1, prev, station_track_len, format!("{prefix}0-a"));
        let tb = b.track(end2, prev, station_track_len, format!("{prefix}0-b"));
        new_ttd(b, ta);
        new_ttd(b, tb);
        let terminus = b.station(format!("{prefix}0"), [ta, tb], true);
        for i in 1..=cfg.arm_stations {
            let west = b.node();
            let link = b.track(prev, west, draw_link(), format!("{prefix}-link-{i}"));
            new_ttd(b, link);
            let east = b.node();
            let platform = b.track(west, east, station_track_len, format!("{prefix}{i}-pl"));
            new_ttd(b, platform);
            b.station(format!("{prefix}{i}"), [platform], false);
            prev = east;
        }
        let merge = b.track(prev, junction, draw_link(), format!("{prefix}-merge"));
        new_ttd(b, merge);
        terminus
    };
    let arm_termini: Vec<_> = (0..cfg.arms)
        .map(|i| {
            let prefix = char::from(b'A' + i as u8).to_string();
            arm(&mut b, &mut new_ttd, &mut draw_link, &prefix)
        })
        .collect();

    // The shared trunk, junction → boundary terminus T0.
    let mut prev = junction;
    for i in 1..=cfg.trunk_stations {
        let west = b.node();
        let link = b.track(prev, west, draw_link(), format!("T-link-{i}"));
        new_ttd(&mut b, link);
        let east = b.node();
        let platform = b.track(west, east, station_track_len, format!("T{i}-pl"));
        new_ttd(&mut b, platform);
        b.station(format!("T{i}"), [platform], false);
        prev = east;
    }
    let west = b.node();
    let last_link = b.track(prev, west, draw_link(), "T-link-final");
    new_ttd(&mut b, last_link);
    let end1 = b.node();
    let end2 = b.node();
    let ta = b.track(west, end1, station_track_len, "T0-a");
    let tb = b.track(west, end2, station_track_len, "T0-b");
    new_ttd(&mut b, ta);
    new_ttd(&mut b, tb);
    let trunk_terminus = b.station("T0", [ta, tb], true);

    let network = b.build().expect("generated branch topology is valid");

    let mut runs = Vec::new();
    for k in 0..cfg.trains_per_arm {
        let dep = Seconds(cfg.headway.as_u64() * k as u64);
        for (i, &terminus) in arm_termini.iter().enumerate() {
            let prefix = char::from(b'A' + i as u8);
            runs.push(TrainRun::new(
                Train::new(format!("{prefix} {k}"), Meters(cfg.train_m), cfg.speed),
                terminus,
                trunk_terminus,
                dep,
                None,
            ));
        }
    }

    Scenario {
        name: format!(
            "branch-{}arms-{}a-{}t-{}tr-seed{}",
            cfg.arms, cfg.arm_stations, cfg.trunk_stations, cfg.trains_per_arm, cfg.seed
        ),
        network,
        schedule: Schedule::new(runs),
        r_s: cfg.r_s,
        r_t: cfg.r_t,
        horizon: cfg.horizon,
    }
}

/// Parameters for [`grid_ladder`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GridConfig {
    /// Parallel single-track lines (≥ 2).
    pub rows: usize,
    /// Stations per line (≥ 3; the two ends are boundary termini).
    pub cols: usize,
    /// Every `rung_every`-th interior column gets crossover rungs joining
    /// each pair of adjacent rows (≥ 1; at least one interior column must
    /// be a rung column or the rows would be disconnected).
    pub rung_every: usize,
    /// Inter-station link length in metres (drawn deterministically in
    /// `link_m ..= 2·link_m`, quantised to `r_s`).
    pub link_m: u64,
    /// Trains per row and direction running the full length of their row.
    pub trains_per_row: usize,
    /// Additional cross trains: train `k` runs from row `k mod (rows-1)`'s
    /// west terminus to row `k mod (rows-1) + 1`'s east terminus, forcing a
    /// route across at least one crossover rung.
    pub cross_trains: usize,
    /// Departure headway between same-origin trains.
    pub headway: Seconds,
    /// Train speed.
    pub speed: KmPerHour,
    /// Train length in metres.
    pub train_m: u64,
    /// Spatial resolution.
    pub r_s: Meters,
    /// Temporal resolution.
    pub r_t: Seconds,
    /// Scenario horizon.
    pub horizon: Seconds,
    /// Seed for the deterministic length stream.
    pub seed: u64,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            rows: 2,
            cols: 4,
            rung_every: 2,
            link_m: 1000,
            trains_per_row: 1,
            cross_trains: 1,
            headway: Seconds::from_minutes(2),
            speed: KmPerHour(120),
            train_m: 200,
            r_s: Meters(500),
            r_t: Seconds(30),
            horizon: Seconds::from_minutes(15),
            seed: 1,
        }
    }
}

/// Synthesises a junction-rich ladder/grid scenario: `rows` parallel
/// single-track lines, each a chain of `cols` stations between two
/// two-track boundary termini, joined at every `rung_every`-th interior
/// column by short crossover rungs between adjacent rows.
///
/// Per-row trains run their own line end to end in both directions; cross
/// trains start on one row and finish on the next, so their routes must
/// thread a crossover — every rung column is a degree-3/degree-4 junction
/// cluster, the topology regime the ROADMAP's corpus item asks for.
/// Stations are named `R{row}-S{col}`, rungs `R{row}-X{col}`.
///
/// # Panics
///
/// Panics if `rows < 2`, `cols < 3`, `rung_every == 0`, or no interior
/// column is a rung column (the rows would form a disconnected network).
///
/// # Examples
///
/// ```
/// use etcs_network::generator::{grid_ladder, GridConfig};
/// let scenario = grid_ladder(&GridConfig::default());
/// assert_eq!(scenario.network.stations().len(), 8);
/// scenario.validate()?;
/// scenario.discretise()?;
/// # Ok::<(), etcs_network::NetworkError>(())
/// ```
pub fn grid_ladder(cfg: &GridConfig) -> Scenario {
    assert!(cfg.rows >= 2, "a ladder needs at least two rows");
    assert!(cfg.cols >= 3, "a ladder needs at least three columns");
    assert!(cfg.rung_every >= 1, "rung_every must be at least 1");
    let rung_cols: Vec<usize> = (1..cfg.cols - 1)
        .filter(|i| i % cfg.rung_every == 0)
        .collect();
    assert!(
        !rung_cols.is_empty(),
        "no interior column is a rung column; the rows would be disconnected"
    );

    let mut seed = cfg.seed | 1;
    let quantum = cfg.r_s.as_u64().max(1);
    let mut draw_link = || {
        let raw = cfg.link_m + xorshift(&mut seed) % (cfg.link_m + 1);
        Meters((raw.div_ceil(quantum)).max(1) * quantum)
    };
    let station_track_len = Meters(quantum);

    let mut b = NetworkBuilder::new();
    let mut ttd = 0usize;
    let mut new_ttd = |b: &mut NetworkBuilder, track| {
        ttd += 1;
        b.ttd(format!("TTD{ttd}"), [track]);
    };

    // Build each row as a single-track chain; remember the termini and the
    // east node of every interior platform for rung attachment.
    let mut west_termini = Vec::with_capacity(cfg.rows);
    let mut east_termini = Vec::with_capacity(cfg.rows);
    let mut platform_east: Vec<Vec<crate::TopoNodeId>> = Vec::with_capacity(cfg.rows);
    for r in 0..cfg.rows {
        let end1 = b.node();
        let end2 = b.node();
        let mut prev = b.node();
        let ta = b.track(end1, prev, station_track_len, format!("R{r}-S0-a"));
        let tb = b.track(end2, prev, station_track_len, format!("R{r}-S0-b"));
        new_ttd(&mut b, ta);
        new_ttd(&mut b, tb);
        west_termini.push(b.station(format!("R{r}-S0"), [ta, tb], true));
        let mut east_nodes = vec![prev];
        for i in 1..cfg.cols {
            let west = b.node();
            let link = b.track(prev, west, draw_link(), format!("R{r}-link-{i}"));
            new_ttd(&mut b, link);
            if i == cfg.cols - 1 {
                let e1 = b.node();
                let e2 = b.node();
                let ta = b.track(west, e1, station_track_len, format!("R{r}-S{i}-a"));
                let tb = b.track(west, e2, station_track_len, format!("R{r}-S{i}-b"));
                new_ttd(&mut b, ta);
                new_ttd(&mut b, tb);
                east_termini.push(b.station(format!("R{r}-S{i}"), [ta, tb], true));
                east_nodes.push(west);
            } else {
                let east = b.node();
                let platform = b.track(west, east, station_track_len, format!("R{r}-S{i}-pl"));
                new_ttd(&mut b, platform);
                b.station(format!("R{r}-S{i}"), [platform], false);
                east_nodes.push(east);
                prev = east;
            }
        }
        platform_east.push(east_nodes);
    }

    // Crossover rungs join adjacent rows at each rung column.
    for &col in &rung_cols {
        for r in 0..cfg.rows - 1 {
            let rung = b.track(
                platform_east[r][col],
                platform_east[r + 1][col],
                station_track_len,
                format!("R{r}-X{col}"),
            );
            new_ttd(&mut b, rung);
        }
    }

    let network = b.build().expect("generated ladder topology is valid");

    let mut runs = Vec::new();
    for r in 0..cfg.rows {
        for k in 0..cfg.trains_per_row {
            let dep = Seconds(cfg.headway.as_u64() * k as u64);
            runs.push(TrainRun::new(
                Train::new(format!("R{r} East {k}"), Meters(cfg.train_m), cfg.speed),
                west_termini[r],
                east_termini[r],
                dep,
                None,
            ));
            runs.push(TrainRun::new(
                Train::new(format!("R{r} West {k}"), Meters(cfg.train_m), cfg.speed),
                east_termini[r],
                west_termini[r],
                dep,
                None,
            ));
        }
    }
    for k in 0..cfg.cross_trains {
        let r = k % (cfg.rows - 1);
        let dep = Seconds(cfg.headway.as_u64() * (k / (cfg.rows - 1)) as u64);
        runs.push(TrainRun::new(
            Train::new(format!("X {k}"), Meters(cfg.train_m), cfg.speed),
            west_termini[r],
            east_termini[r + 1],
            dep,
            None,
        ));
    }

    Scenario {
        name: format!(
            "grid-{}x{}-{}tr-seed{}",
            cfg.rows, cfg.cols, cfg.trains_per_row, cfg.seed
        ),
        network,
        schedule: Schedule::new(runs),
        r_s: cfg.r_s,
        r_t: cfg.r_t,
        horizon: cfg.horizon,
    }
}

/// Parameters for [`station_throat`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThroatConfig {
    /// Parallel siding tracks through the central yard station (≥ 2).
    pub sidings: usize,
    /// Interior (plain-platform) stations on each approach between a
    /// boundary terminus and the yard throat.
    pub approach_stations: usize,
    /// Inter-station link length in metres (drawn deterministically in
    /// `link_m ..= 2·link_m`, quantised to `r_s`).
    pub link_m: u64,
    /// Trains per direction crossing the yard end to end.
    pub trains_per_direction: usize,
    /// Departure headway between same-direction trains.
    pub headway: Seconds,
    /// Train speed.
    pub speed: KmPerHour,
    /// Train length in metres.
    pub train_m: u64,
    /// Spatial resolution.
    pub r_s: Meters,
    /// Temporal resolution.
    pub r_t: Seconds,
    /// Scenario horizon.
    pub horizon: Seconds,
    /// Seed for the deterministic length stream.
    pub seed: u64,
}

impl Default for ThroatConfig {
    fn default() -> Self {
        ThroatConfig {
            sidings: 2,
            approach_stations: 1,
            link_m: 1000,
            trains_per_direction: 1,
            headway: Seconds::from_minutes(2),
            speed: KmPerHour(120),
            train_m: 200,
            r_s: Meters(500),
            r_t: Seconds(30),
            horizon: Seconds::from_minutes(15),
            seed: 1,
        }
    }
}

/// Synthesises a station-throat scenario: two single-track approaches meet
/// a central yard of `sidings` parallel tracks between two throat nodes.
///
/// Opposing trains cross the yard end to end (`W0` ↔ `E0`), so every
/// schedule contends for the two throat nodes (degree `sidings + 1`) — the
/// station-throat regime of real interlockings, where VSS borders inside
/// the sidings decide how many trains can be staged simultaneously.
///
/// # Panics
///
/// Panics if `sidings < 2` or `trains_per_direction == 0`.
///
/// # Examples
///
/// ```
/// use etcs_network::generator::{station_throat, ThroatConfig};
/// let scenario = station_throat(&ThroatConfig::default());
/// // W0 + E0 termini, one approach station each side, the yard.
/// assert_eq!(scenario.network.stations().len(), 5);
/// scenario.validate()?;
/// scenario.discretise()?;
/// # Ok::<(), etcs_network::NetworkError>(())
/// ```
pub fn station_throat(cfg: &ThroatConfig) -> Scenario {
    assert!(cfg.sidings >= 2, "a yard needs at least two sidings");
    assert!(cfg.trains_per_direction >= 1, "at least one train each way");
    let mut seed = cfg.seed | 1;
    let quantum = cfg.r_s.as_u64().max(1);
    let mut draw_link = || {
        let raw = cfg.link_m + xorshift(&mut seed) % (cfg.link_m + 1);
        Meters((raw.div_ceil(quantum)).max(1) * quantum)
    };
    let station_track_len = Meters(quantum);

    let mut b = NetworkBuilder::new();
    let mut ttd = 0usize;
    let mut new_ttd = |b: &mut NetworkBuilder, track| {
        ttd += 1;
        b.ttd(format!("TTD{ttd}"), [track]);
    };

    // One approach: boundary terminus, `approach_stations` platforms, then
    // a link into the throat node. Returns the terminus station id.
    let mut approach = |b: &mut NetworkBuilder,
                        new_ttd: &mut dyn FnMut(&mut NetworkBuilder, crate::TrackId),
                        throat: crate::TopoNodeId,
                        prefix: &str| {
        let end1 = b.node();
        let end2 = b.node();
        let mut prev = b.node();
        let ta = b.track(end1, prev, station_track_len, format!("{prefix}0-a"));
        let tb = b.track(end2, prev, station_track_len, format!("{prefix}0-b"));
        new_ttd(b, ta);
        new_ttd(b, tb);
        let terminus = b.station(format!("{prefix}0"), [ta, tb], true);
        for i in 1..=cfg.approach_stations {
            let west = b.node();
            let link = b.track(prev, west, draw_link(), format!("{prefix}-link-{i}"));
            new_ttd(b, link);
            let east = b.node();
            let platform = b.track(west, east, station_track_len, format!("{prefix}{i}-pl"));
            new_ttd(b, platform);
            b.station(format!("{prefix}{i}"), [platform], false);
            prev = east;
        }
        let merge = b.track(prev, throat, draw_link(), format!("{prefix}-throat"));
        new_ttd(b, merge);
        terminus
    };

    let throat_w = b.node();
    let throat_e = b.node();
    let west_terminus = approach(&mut b, &mut new_ttd, throat_w, "W");
    let east_terminus = approach(&mut b, &mut new_ttd, throat_e, "E");

    // The yard: parallel sidings between the two throat nodes, one station
    // holding them all (each siding is its own TTD, so VSS borders inside
    // a siding stay well-defined).
    let mut siding_tracks = Vec::with_capacity(cfg.sidings);
    for s in 0..cfg.sidings {
        let track = b.track(throat_w, throat_e, Meters(quantum * 2), format!("Y-s{s}"));
        new_ttd(&mut b, track);
        siding_tracks.push(track);
    }
    b.station("Yard", siding_tracks, false);

    let network = b.build().expect("generated throat topology is valid");

    let mut runs = Vec::new();
    for k in 0..cfg.trains_per_direction {
        let dep = Seconds(cfg.headway.as_u64() * k as u64);
        runs.push(TrainRun::new(
            Train::new(format!("East {k}"), Meters(cfg.train_m), cfg.speed),
            west_terminus,
            east_terminus,
            dep,
            None,
        ));
        runs.push(TrainRun::new(
            Train::new(format!("West {k}"), Meters(cfg.train_m), cfg.speed),
            east_terminus,
            west_terminus,
            dep,
            None,
        ));
    }

    Scenario {
        name: format!(
            "throat-{}sd-{}tr-seed{}",
            cfg.sidings, cfg.trains_per_direction, cfg.seed
        ),
        network,
        schedule: Schedule::new(runs),
        r_s: cfg.r_s,
        r_t: cfg.r_t,
        horizon: cfg.horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_line_is_valid() {
        let s = single_track_line(&LineConfig::default());
        s.validate().expect("valid");
        let d = s.discretise().expect("discretises");
        assert!(d.num_edges() > 0);
    }

    #[test]
    fn station_count_matches_config() {
        for n in 2..8 {
            let s = single_track_line(&LineConfig {
                stations: n,
                ..LineConfig::default()
            });
            assert_eq!(s.network.stations().len(), n);
        }
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let a = single_track_line(&LineConfig::default());
        let b = single_track_line(&LineConfig::default());
        assert_eq!(a.network, b.network);
        let c = single_track_line(&LineConfig {
            seed: 99,
            ..LineConfig::default()
        });
        assert_ne!(a.network, c.network, "different seed, different lengths");
    }

    #[test]
    fn loops_appear_at_configured_interval() {
        let s = single_track_line(&LineConfig {
            stations: 7,
            loop_every: 2,
            ..LineConfig::default()
        });
        let loops = s
            .network
            .stations()
            .iter()
            .filter(|st| !st.boundary && st.tracks.len() == 2)
            .count();
        assert_eq!(loops, 2, "stations 2 and 4 are loops");
    }

    #[test]
    fn no_loops_when_disabled() {
        let s = single_track_line(&LineConfig {
            stations: 6,
            loop_every: 0,
            ..LineConfig::default()
        });
        assert!(s
            .network
            .stations()
            .iter()
            .filter(|st| !st.boundary)
            .all(|st| st.tracks.len() == 1));
    }

    #[test]
    #[should_panic(expected = "at least two stations")]
    fn one_station_panics() {
        single_track_line(&LineConfig {
            stations: 1,
            ..LineConfig::default()
        });
    }

    #[test]
    fn default_branch_is_valid() {
        let s = branched_line(&BranchConfig::default());
        s.validate().expect("valid");
        let d = s.discretise().expect("discretises");
        assert!(d.num_edges() > 0);
    }

    #[test]
    fn branch_has_a_degree_three_junction() {
        let s = branched_line(&BranchConfig {
            arm_stations: 0,
            trunk_stations: 0,
            ..BranchConfig::default()
        });
        // Exactly one node joins three plain tracks: both arm merge links
        // and the trunk link.
        let mut incidence = std::collections::BTreeMap::new();
        for t in s.network.tracks() {
            *incidence.entry(t.from).or_insert(0usize) += 1;
            *incidence.entry(t.to).or_insert(0usize) += 1;
        }
        let junctions = incidence.values().filter(|&&d| d >= 3).count();
        assert!(junctions >= 1, "a branch needs a junction node");
    }

    #[test]
    fn branch_station_count_matches_config() {
        for (arms, trunk) in [(0, 0), (1, 2), (2, 1)] {
            let s = branched_line(&BranchConfig {
                arm_stations: arms,
                trunk_stations: trunk,
                ..BranchConfig::default()
            });
            // 3 termini + interiors on both arms + trunk interiors.
            assert_eq!(s.network.stations().len(), 3 + 2 * arms + trunk);
        }
    }

    #[test]
    fn branch_is_deterministic_per_seed() {
        let a = branched_line(&BranchConfig::default());
        let b = branched_line(&BranchConfig::default());
        assert_eq!(a.network, b.network);
        let c = branched_line(&BranchConfig {
            seed: 7,
            ..BranchConfig::default()
        });
        assert_ne!(a.network, c.network, "different seed, different lengths");
    }

    #[test]
    fn branch_trains_start_on_both_arms() {
        let s = branched_line(&BranchConfig {
            trains_per_arm: 2,
            ..BranchConfig::default()
        });
        assert_eq!(s.schedule.len(), 4);
        let runs = s.schedule.runs();
        assert_ne!(runs[0].origin, runs[1].origin, "one train per arm per wave");
        assert_eq!(
            runs[0].destination, runs[1].destination,
            "all trains merge onto the trunk"
        );
    }

    #[test]
    #[should_panic(expected = "at least one train per arm")]
    fn branch_without_trains_panics() {
        branched_line(&BranchConfig {
            trains_per_arm: 0,
            ..BranchConfig::default()
        });
    }

    #[test]
    fn multi_arm_branch_is_valid_and_star_shaped() {
        let s = branched_line(&BranchConfig {
            arms: 4,
            arm_stations: 0,
            trunk_stations: 0,
            ..BranchConfig::default()
        });
        s.validate().expect("valid");
        s.discretise().expect("discretises");
        // 4 arm termini + trunk terminus.
        assert_eq!(s.network.stations().len(), 5);
        // The junction joins all four arm merge links plus the trunk.
        let mut incidence = std::collections::BTreeMap::new();
        for t in s.network.tracks() {
            *incidence.entry(t.from).or_insert(0usize) += 1;
            *incidence.entry(t.to).or_insert(0usize) += 1;
        }
        assert!(incidence.values().any(|&d| d == 5), "degree-5 junction");
        // One train per arm per wave, all bound for the trunk terminus.
        assert_eq!(s.schedule.len(), 4);
        let dest = s.schedule.runs()[0].destination;
        assert!(s.schedule.runs().iter().all(|r| r.destination == dest));
    }

    #[test]
    #[should_panic(expected = "arms must be in 2..=19")]
    fn too_many_arms_panics() {
        branched_line(&BranchConfig {
            arms: 20,
            ..BranchConfig::default()
        });
    }

    #[test]
    fn default_grid_is_valid() {
        let s = grid_ladder(&GridConfig::default());
        s.validate().expect("valid");
        let d = s.discretise().expect("discretises");
        assert!(d.num_edges() > 0);
    }

    #[test]
    fn grid_row_and_station_counts_match_config() {
        for (rows, cols) in [(2, 4), (3, 5), (4, 7)] {
            let s = grid_ladder(&GridConfig {
                rows,
                cols,
                ..GridConfig::default()
            });
            assert_eq!(s.network.stations().len(), rows * cols);
            s.validate().expect("valid");
        }
    }

    #[test]
    fn grid_rungs_make_junction_nodes() {
        let s = grid_ladder(&GridConfig {
            rows: 3,
            cols: 5,
            rung_every: 2,
            ..GridConfig::default()
        });
        let mut incidence = std::collections::BTreeMap::new();
        for t in s.network.tracks() {
            *incidence.entry(t.from).or_insert(0usize) += 1;
            *incidence.entry(t.to).or_insert(0usize) += 1;
        }
        // Interior rows at rung columns touch two rungs: degree 4.
        assert!(
            incidence.values().any(|&d| d >= 4),
            "a 3-row ladder has a degree-4 crossover cluster"
        );
    }

    #[test]
    fn grid_cross_trains_span_rows() {
        let s = grid_ladder(&GridConfig {
            cross_trains: 2,
            ..GridConfig::default()
        });
        let cross: Vec<_> = s
            .schedule
            .runs()
            .iter()
            .filter(|r| r.train.name.starts_with("X "))
            .collect();
        assert_eq!(cross.len(), 2);
        let origin_name = &s.network.stations()[cross[0].origin.index()].name;
        let dest_name = &s.network.stations()[cross[0].destination.index()].name;
        assert!(origin_name.starts_with("R0-"), "{origin_name}");
        assert!(dest_name.starts_with("R1-"), "{dest_name}");
    }

    #[test]
    fn grid_is_deterministic_per_seed() {
        let a = grid_ladder(&GridConfig::default());
        let b = grid_ladder(&GridConfig::default());
        assert_eq!(a.network, b.network);
        assert_eq!(a.schedule, b.schedule);
        let c = grid_ladder(&GridConfig {
            seed: 99,
            ..GridConfig::default()
        });
        assert_ne!(a.network, c.network, "different seed, different lengths");
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn grid_without_rungs_panics() {
        grid_ladder(&GridConfig {
            cols: 3,
            rung_every: 2,
            ..GridConfig::default()
        });
    }

    #[test]
    fn default_throat_is_valid() {
        let s = station_throat(&ThroatConfig::default());
        s.validate().expect("valid");
        let d = s.discretise().expect("discretises");
        assert!(d.num_edges() > 0);
    }

    #[test]
    fn throat_yard_holds_all_sidings() {
        let s = station_throat(&ThroatConfig {
            sidings: 4,
            ..ThroatConfig::default()
        });
        let yard = s
            .network
            .stations()
            .iter()
            .find(|st| st.name == "Yard")
            .expect("yard station");
        assert_eq!(yard.tracks.len(), 4);
        assert!(!yard.boundary);
        // Both throat nodes have degree sidings + 1.
        let mut incidence = std::collections::BTreeMap::new();
        for t in s.network.tracks() {
            *incidence.entry(t.from).or_insert(0usize) += 1;
            *incidence.entry(t.to).or_insert(0usize) += 1;
        }
        assert_eq!(incidence.values().filter(|&&d| d == 5).count(), 2);
    }

    #[test]
    fn throat_is_deterministic_per_seed() {
        let a = station_throat(&ThroatConfig::default());
        let b = station_throat(&ThroatConfig::default());
        assert_eq!(a.network, b.network);
        let c = station_throat(&ThroatConfig {
            seed: 3,
            ..ThroatConfig::default()
        });
        assert_ne!(a.network, c.network, "different seed, different lengths");
    }

    #[test]
    fn trains_run_in_both_directions() {
        let s = single_track_line(&LineConfig {
            trains_per_direction: 3,
            ..LineConfig::default()
        });
        assert_eq!(s.schedule.len(), 6);
        let runs = s.schedule.runs();
        assert_ne!(runs[0].origin, runs[1].origin);
    }
}
