//! Parametric scenario synthesis: deterministic single-track lines with
//! crossing loops and opposing traffic ([`single_track_line`]), and
//! branching Y-topologies where two arms merge into a shared trunk
//! ([`branched_line`]).
//!
//! Used by the property-based test suites (random-but-reproducible
//! topologies) and by the scaling benchmarks; also a convenient starting
//! point for custom experiments.

use crate::scenario::Scenario;
use crate::schedule::{Schedule, TrainRun};
use crate::topology::NetworkBuilder;
use crate::train::Train;
use crate::units::{KmPerHour, Meters, Seconds};

/// Parameters for [`single_track_line`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LineConfig {
    /// Number of stations along the line (≥ 2); the termini are two-track
    /// boundary stations.
    pub stations: usize,
    /// Every `loop_every`-th interior station is a two-track crossing loop
    /// (0 = no loops).
    pub loop_every: usize,
    /// Inter-station link length in metres (drawn deterministically in
    /// `link_m ..= 2·link_m`, quantised to `r_s`).
    pub link_m: u64,
    /// Trains per direction.
    pub trains_per_direction: usize,
    /// Departure headway between same-direction trains.
    pub headway: Seconds,
    /// Train speed.
    pub speed: KmPerHour,
    /// Train length in metres.
    pub train_m: u64,
    /// Spatial resolution.
    pub r_s: Meters,
    /// Temporal resolution.
    pub r_t: Seconds,
    /// Scenario horizon.
    pub horizon: Seconds,
    /// Seed for the deterministic length stream.
    pub seed: u64,
}

impl Default for LineConfig {
    fn default() -> Self {
        LineConfig {
            stations: 4,
            loop_every: 2,
            link_m: 1000,
            trains_per_direction: 1,
            headway: Seconds::from_minutes(2),
            speed: KmPerHour(120),
            train_m: 200,
            r_s: Meters(500),
            r_t: Seconds(30),
            horizon: Seconds::from_minutes(15),
            seed: 1,
        }
    }
}

fn xorshift(seed: &mut u64) -> u64 {
    *seed ^= *seed << 13;
    *seed ^= *seed >> 7;
    *seed ^= *seed << 17;
    *seed
}

/// Synthesises a single-track line scenario from `cfg`.
///
/// The network is a chain of `cfg.stations` stations; the two termini are
/// two-track boundary stations (so convoys can depart at tight headways),
/// interior stations are plain platforms or, every `loop_every`-th, a
/// two-track crossing loop. Trains run end to end in both directions
/// without arrival deadlines (add your own or run the optimisation task).
///
/// # Panics
///
/// Panics if `cfg.stations < 2`.
///
/// # Examples
///
/// ```
/// use etcs_network::generator::{single_track_line, LineConfig};
/// let scenario = single_track_line(&LineConfig::default());
/// assert_eq!(scenario.network.stations().len(), 4);
/// scenario.validate()?;
/// scenario.discretise()?;
/// # Ok::<(), etcs_network::NetworkError>(())
/// ```
pub fn single_track_line(cfg: &LineConfig) -> Scenario {
    assert!(cfg.stations >= 2, "a line needs at least two stations");
    let mut seed = cfg.seed | 1;
    let quantum = cfg.r_s.as_u64().max(1);
    let mut draw_link = || {
        let raw = cfg.link_m + xorshift(&mut seed) % (cfg.link_m + 1);
        Meters((raw.div_ceil(quantum)).max(1) * quantum)
    };
    let station_track_len = Meters(quantum);

    let mut b = NetworkBuilder::new();
    let mut ttd = 0usize;
    let mut station_ids = Vec::new();

    // First terminus: two boundary tracks joining at a point.
    let t_end_a = b.node();
    let t_end_a2 = b.node();
    let mut prev = b.node();
    let first_a = b.track(t_end_a, prev, station_track_len, "S0-a");
    let first_b = b.track(t_end_a2, prev, station_track_len, "S0-b");
    ttd += 1;
    b.ttd(format!("TTD{ttd}"), [first_a]);
    ttd += 1;
    b.ttd(format!("TTD{ttd}"), [first_b]);
    station_ids.push(b.station("S0", [first_a, first_b], true));

    for i in 1..cfg.stations {
        let link_len = draw_link();
        let is_last = i == cfg.stations - 1;
        let is_loop = !is_last && cfg.loop_every != 0 && i % cfg.loop_every == 0;
        let west = b.node();
        let link = b.track(prev, west, link_len, format!("link-{i}"));
        ttd += 1;
        b.ttd(format!("TTD{ttd}"), [link]);
        if is_last {
            // Second terminus: two boundary tracks.
            let end1 = b.node();
            let end2 = b.node();
            let ta = b.track(west, end1, station_track_len, format!("S{i}-a"));
            let tb = b.track(west, end2, station_track_len, format!("S{i}-b"));
            ttd += 1;
            b.ttd(format!("TTD{ttd}"), [ta]);
            ttd += 1;
            b.ttd(format!("TTD{ttd}"), [tb]);
            station_ids.push(b.station(format!("S{i}"), [ta, tb], true));
        } else if is_loop {
            let east = b.node();
            let loop_len = Meters(quantum * 2);
            let la = b.track(west, east, loop_len, format!("S{i}-a"));
            let lb = b.track(west, east, loop_len, format!("S{i}-b"));
            ttd += 1;
            b.ttd(format!("TTD{ttd}"), [la]);
            ttd += 1;
            b.ttd(format!("TTD{ttd}"), [lb]);
            station_ids.push(b.station(format!("S{i}"), [la, lb], false));
            prev = east;
            continue;
        } else {
            let east = b.node();
            let platform = b.track(west, east, station_track_len, format!("S{i}-pl"));
            ttd += 1;
            b.ttd(format!("TTD{ttd}"), [platform]);
            station_ids.push(b.station(format!("S{i}"), [platform], false));
            prev = east;
            continue;
        }
    }

    let network = b.build().expect("generated line topology is valid");
    let first = station_ids[0];
    let last = *station_ids.last().expect("at least two stations");

    let mut runs = Vec::new();
    for k in 0..cfg.trains_per_direction {
        let dep = Seconds(cfg.headway.as_u64() * k as u64);
        runs.push(TrainRun::new(
            Train::new(format!("East {k}"), Meters(cfg.train_m), cfg.speed),
            first,
            last,
            dep,
            None,
        ));
        runs.push(TrainRun::new(
            Train::new(format!("West {k}"), Meters(cfg.train_m), cfg.speed),
            last,
            first,
            dep,
            None,
        ));
    }

    Scenario {
        name: format!(
            "line-{}st-{}tr-seed{}",
            cfg.stations, cfg.trains_per_direction, cfg.seed
        ),
        network,
        schedule: Schedule::new(runs),
        r_s: cfg.r_s,
        r_t: cfg.r_t,
        horizon: cfg.horizon,
    }
}

/// Parameters for [`branched_line`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BranchConfig {
    /// Interior (plain-platform) stations on each arm between the arm's
    /// boundary terminus and the junction.
    pub arm_stations: usize,
    /// Interior stations on the shared trunk between the junction and the
    /// trunk's boundary terminus.
    pub trunk_stations: usize,
    /// Inter-station link length in metres (drawn deterministically in
    /// `link_m ..= 2·link_m`, quantised to `r_s`).
    pub link_m: u64,
    /// Trains departing from each arm terminus towards the trunk terminus.
    pub trains_per_arm: usize,
    /// Departure headway between same-arm trains.
    pub headway: Seconds,
    /// Train speed.
    pub speed: KmPerHour,
    /// Train length in metres.
    pub train_m: u64,
    /// Spatial resolution.
    pub r_s: Meters,
    /// Temporal resolution.
    pub r_t: Seconds,
    /// Scenario horizon.
    pub horizon: Seconds,
    /// Seed for the deterministic length stream.
    pub seed: u64,
}

impl Default for BranchConfig {
    fn default() -> Self {
        BranchConfig {
            arm_stations: 1,
            trunk_stations: 1,
            link_m: 1000,
            trains_per_arm: 1,
            headway: Seconds::from_minutes(2),
            speed: KmPerHour(120),
            train_m: 200,
            r_s: Meters(500),
            r_t: Seconds(30),
            horizon: Seconds::from_minutes(15),
            seed: 1,
        }
    }
}

/// Synthesises a branching Y-scenario: two single-track arms (`A`, `B`),
/// each starting at a two-track boundary terminus, merge at a junction
/// node into one shared single-track trunk ending in a two-track boundary
/// terminus (`T`).
///
/// All trains run arm → trunk terminus, so every schedule contends for the
/// junction — the non-linear case the differential encoder/validator tests
/// need: occupation chains across a degree-3 node, merge ordering, and VSS
/// borders whose cut sits on the trunk.
///
/// # Panics
///
/// Panics if `cfg.trains_per_arm == 0` (an empty schedule makes the
/// scenario trivially feasible and tests nothing).
///
/// # Examples
///
/// ```
/// use etcs_network::generator::{branched_line, BranchConfig};
/// let scenario = branched_line(&BranchConfig::default());
/// // Termini A0/B0/T0 plus one interior station per arm and trunk.
/// assert_eq!(scenario.network.stations().len(), 6);
/// scenario.validate()?;
/// scenario.discretise()?;
/// # Ok::<(), etcs_network::NetworkError>(())
/// ```
pub fn branched_line(cfg: &BranchConfig) -> Scenario {
    assert!(cfg.trains_per_arm >= 1, "at least one train per arm");
    let mut seed = cfg.seed | 1;
    let quantum = cfg.r_s.as_u64().max(1);
    let mut draw_link = || {
        let raw = cfg.link_m + xorshift(&mut seed) % (cfg.link_m + 1);
        Meters((raw.div_ceil(quantum)).max(1) * quantum)
    };
    let station_track_len = Meters(quantum);

    let mut b = NetworkBuilder::new();
    let mut ttd = 0usize;
    let mut new_ttd = |b: &mut NetworkBuilder, track| {
        ttd += 1;
        b.ttd(format!("TTD{ttd}"), [track]);
    };

    // One arm: boundary terminus, `arm_stations` interior platforms, then a
    // final link into the shared junction node. Returns the terminus id.
    let junction = b.node();
    let arm = |b: &mut NetworkBuilder,
               new_ttd: &mut dyn FnMut(&mut NetworkBuilder, crate::TrackId),
               draw_link: &mut dyn FnMut() -> Meters,
               prefix: &str| {
        let end1 = b.node();
        let end2 = b.node();
        let mut prev = b.node();
        let ta = b.track(end1, prev, station_track_len, format!("{prefix}0-a"));
        let tb = b.track(end2, prev, station_track_len, format!("{prefix}0-b"));
        new_ttd(b, ta);
        new_ttd(b, tb);
        let terminus = b.station(format!("{prefix}0"), [ta, tb], true);
        for i in 1..=cfg.arm_stations {
            let west = b.node();
            let link = b.track(prev, west, draw_link(), format!("{prefix}-link-{i}"));
            new_ttd(b, link);
            let east = b.node();
            let platform = b.track(west, east, station_track_len, format!("{prefix}{i}-pl"));
            new_ttd(b, platform);
            b.station(format!("{prefix}{i}"), [platform], false);
            prev = east;
        }
        let merge = b.track(prev, junction, draw_link(), format!("{prefix}-merge"));
        new_ttd(b, merge);
        terminus
    };
    let terminus_a = arm(&mut b, &mut new_ttd, &mut draw_link, "A");
    let terminus_b = arm(&mut b, &mut new_ttd, &mut draw_link, "B");

    // The shared trunk, junction → boundary terminus T0.
    let mut prev = junction;
    for i in 1..=cfg.trunk_stations {
        let west = b.node();
        let link = b.track(prev, west, draw_link(), format!("T-link-{i}"));
        new_ttd(&mut b, link);
        let east = b.node();
        let platform = b.track(west, east, station_track_len, format!("T{i}-pl"));
        new_ttd(&mut b, platform);
        b.station(format!("T{i}"), [platform], false);
        prev = east;
    }
    let west = b.node();
    let last_link = b.track(prev, west, draw_link(), "T-link-final");
    new_ttd(&mut b, last_link);
    let end1 = b.node();
    let end2 = b.node();
    let ta = b.track(west, end1, station_track_len, "T0-a");
    let tb = b.track(west, end2, station_track_len, "T0-b");
    new_ttd(&mut b, ta);
    new_ttd(&mut b, tb);
    let trunk_terminus = b.station("T0", [ta, tb], true);

    let network = b.build().expect("generated branch topology is valid");

    let mut runs = Vec::new();
    for k in 0..cfg.trains_per_arm {
        let dep = Seconds(cfg.headway.as_u64() * k as u64);
        runs.push(TrainRun::new(
            Train::new(format!("A {k}"), Meters(cfg.train_m), cfg.speed),
            terminus_a,
            trunk_terminus,
            dep,
            None,
        ));
        runs.push(TrainRun::new(
            Train::new(format!("B {k}"), Meters(cfg.train_m), cfg.speed),
            terminus_b,
            trunk_terminus,
            dep,
            None,
        ));
    }

    Scenario {
        name: format!(
            "branch-{}a-{}t-{}tr-seed{}",
            cfg.arm_stations, cfg.trunk_stations, cfg.trains_per_arm, cfg.seed
        ),
        network,
        schedule: Schedule::new(runs),
        r_s: cfg.r_s,
        r_t: cfg.r_t,
        horizon: cfg.horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_line_is_valid() {
        let s = single_track_line(&LineConfig::default());
        s.validate().expect("valid");
        let d = s.discretise().expect("discretises");
        assert!(d.num_edges() > 0);
    }

    #[test]
    fn station_count_matches_config() {
        for n in 2..8 {
            let s = single_track_line(&LineConfig {
                stations: n,
                ..LineConfig::default()
            });
            assert_eq!(s.network.stations().len(), n);
        }
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let a = single_track_line(&LineConfig::default());
        let b = single_track_line(&LineConfig::default());
        assert_eq!(a.network, b.network);
        let c = single_track_line(&LineConfig {
            seed: 99,
            ..LineConfig::default()
        });
        assert_ne!(a.network, c.network, "different seed, different lengths");
    }

    #[test]
    fn loops_appear_at_configured_interval() {
        let s = single_track_line(&LineConfig {
            stations: 7,
            loop_every: 2,
            ..LineConfig::default()
        });
        let loops = s
            .network
            .stations()
            .iter()
            .filter(|st| !st.boundary && st.tracks.len() == 2)
            .count();
        assert_eq!(loops, 2, "stations 2 and 4 are loops");
    }

    #[test]
    fn no_loops_when_disabled() {
        let s = single_track_line(&LineConfig {
            stations: 6,
            loop_every: 0,
            ..LineConfig::default()
        });
        assert!(s
            .network
            .stations()
            .iter()
            .filter(|st| !st.boundary)
            .all(|st| st.tracks.len() == 1));
    }

    #[test]
    #[should_panic(expected = "at least two stations")]
    fn one_station_panics() {
        single_track_line(&LineConfig {
            stations: 1,
            ..LineConfig::default()
        });
    }

    #[test]
    fn default_branch_is_valid() {
        let s = branched_line(&BranchConfig::default());
        s.validate().expect("valid");
        let d = s.discretise().expect("discretises");
        assert!(d.num_edges() > 0);
    }

    #[test]
    fn branch_has_a_degree_three_junction() {
        let s = branched_line(&BranchConfig {
            arm_stations: 0,
            trunk_stations: 0,
            ..BranchConfig::default()
        });
        // Exactly one node joins three plain tracks: both arm merge links
        // and the trunk link.
        let mut incidence = std::collections::BTreeMap::new();
        for t in s.network.tracks() {
            *incidence.entry(t.from).or_insert(0usize) += 1;
            *incidence.entry(t.to).or_insert(0usize) += 1;
        }
        let junctions = incidence.values().filter(|&&d| d >= 3).count();
        assert!(junctions >= 1, "a branch needs a junction node");
    }

    #[test]
    fn branch_station_count_matches_config() {
        for (arms, trunk) in [(0, 0), (1, 2), (2, 1)] {
            let s = branched_line(&BranchConfig {
                arm_stations: arms,
                trunk_stations: trunk,
                ..BranchConfig::default()
            });
            // 3 termini + interiors on both arms + trunk interiors.
            assert_eq!(s.network.stations().len(), 3 + 2 * arms + trunk);
        }
    }

    #[test]
    fn branch_is_deterministic_per_seed() {
        let a = branched_line(&BranchConfig::default());
        let b = branched_line(&BranchConfig::default());
        assert_eq!(a.network, b.network);
        let c = branched_line(&BranchConfig {
            seed: 7,
            ..BranchConfig::default()
        });
        assert_ne!(a.network, c.network, "different seed, different lengths");
    }

    #[test]
    fn branch_trains_start_on_both_arms() {
        let s = branched_line(&BranchConfig {
            trains_per_arm: 2,
            ..BranchConfig::default()
        });
        assert_eq!(s.schedule.len(), 4);
        let runs = s.schedule.runs();
        assert_ne!(runs[0].origin, runs[1].origin, "one train per arm per wave");
        assert_eq!(
            runs[0].destination, runs[1].destination,
            "all trains merge onto the trunk"
        );
    }

    #[test]
    #[should_panic(expected = "at least one train per arm")]
    fn branch_without_trains_panics() {
        branched_line(&BranchConfig {
            trains_per_arm: 0,
            ..BranchConfig::default()
        });
    }

    #[test]
    fn trains_run_in_both_directions() {
        let s = single_track_line(&LineConfig {
            trains_per_direction: 3,
            ..LineConfig::default()
        });
        assert_eq!(s.schedule.len(), 6);
        let runs = s.schedule.runs();
        assert_ne!(runs[0].origin, runs[1].origin);
    }
}
